"""Bench Fig. 3: the loss sequence L(kp) and its convexity structure.

Regenerates the loss landscape over every unoccupied key of the
Fig. 2 keyset and verifies the two claims the figure illustrates:
per-gap convexity and endpoint-attained maxima (Theorem 2).
"""

from repro.experiments import fig3_loss_landscape


def test_fig3_loss_landscape(once):
    result = once(lambda: fig3_loss_landscape.run())
    print()
    print(result.format())
    assert result.all_gaps_convex
    assert result.argmax_is_endpoint
