"""Bench Fig. 2: single-key compound effect on a 10-key CDF.

Regenerates both panels (regression before/after one optimal
poisoning insertion) and prints the residual table.  Paper shape: the
single insertion re-ranks all larger keys and multiplies the MSE.
"""

from repro.experiments import fig2_compound_effect


def test_fig2_compound_effect(once):
    result = once(lambda: fig2_compound_effect.run())
    print()
    print(result.format())
    assert result.attack.ratio_loss > 1.0
