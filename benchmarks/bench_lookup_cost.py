"""Bench A3: end-to-end lookup cost, clean RMI vs poisoned RMI vs B-Tree.

The performance story the Ratio Loss proxies: the clean learned index
beats the B-Tree on probes per lookup; poisoning erodes that edge.
"""

from repro.experiments import ablations


def test_lookup_cost(once):
    reports = once(lambda: ablations.run_lookup_cost(
        n_keys=20_000, model_size=200, poisoning_percentage=10.0))
    print()
    print(ablations.format_lookup_cost(reports))
    by_label = {r.structure: r for r in reports}
    assert (by_label["rmi (clean)"].mean_cost
            < by_label["btree (clean)"].mean_cost)
    assert (by_label["rmi (poisoned)"].mean_cost
            > by_label["rmi (clean)"].mean_cost)
