"""Microbenchmarks of the attack and index primitives.

These run in normal pytest-benchmark mode (many rounds) and document
the practical costs behind the complexity claims: the single-point
attack is linear in n, a greedy step is O(n), RMI builds and lookups
are cheap, B-Tree search is logarithmic.
"""

import numpy as np
import pytest

from repro.core import greedy_poison, optimal_single_point
from repro.data import Domain, uniform_keyset
from repro.index import BTree, RecursiveModelIndex


@pytest.fixture(scope="module")
def keyset_1k():
    return uniform_keyset(1_000, Domain(0, 9_999),
                          # repro: allow[REP001] -- bench corpus seed is pinned by the committed BENCH_workload.json trajectory
                          np.random.default_rng(0))


@pytest.fixture(scope="module")
def keyset_10k():
    return uniform_keyset(10_000, Domain(0, 99_999),
                          # repro: allow[REP001] -- bench corpus seed is pinned by the committed BENCH_workload.json trajectory
                          np.random.default_rng(0))


def test_single_point_1k(benchmark, keyset_1k):
    result = benchmark(lambda: optimal_single_point(keyset_1k))
    assert result.loss_after > result.loss_before


def test_single_point_10k(benchmark, keyset_10k):
    result = benchmark(lambda: optimal_single_point(keyset_10k))
    assert result.loss_after > result.loss_before


def test_greedy_100_points_on_1k(benchmark, keyset_1k):
    result = benchmark(lambda: greedy_poison(keyset_1k, 100))
    assert result.n_injected == 100


def test_rmi_build_10k(benchmark, keyset_10k):
    rmi = benchmark(
        lambda: RecursiveModelIndex.build_equal_size(keyset_10k, 100))
    assert rmi.n_models == 100


def test_rmi_lookup_10k(benchmark, keyset_10k):
    rmi = RecursiveModelIndex.build_equal_size(keyset_10k, 100)
    queries = keyset_10k.keys[::97]

    def lookups():
        return sum(rmi.lookup(int(k)).probes for k in queries)

    total = benchmark(lookups)
    assert total >= queries.size


def test_btree_bulk_load_10k(benchmark, keyset_10k):
    tree = benchmark(lambda: BTree.bulk_load(keyset_10k.keys))
    assert len(tree) == keyset_10k.n


def test_btree_search_10k(benchmark, keyset_10k):
    tree = BTree.bulk_load(keyset_10k.keys)
    queries = keyset_10k.keys[::97]

    def searches():
        return sum(tree.search(int(k)).comparisons for k in queries)

    total = benchmark(searches)
    assert total >= queries.size
