"""Bench A4: sweep of the per-model poisoning threshold alpha.

alpha = 1 pins every model at the uniform share (no volume
re-allocation possible); larger alpha lets Algorithm 2 concentrate
budget where it hurts most.  The paper evaluates alpha in {2, 3} and
finds the difference small — this sweep quantifies that.
"""

from repro.experiments import ablations


def test_ablation_alpha(once):
    rows = once(lambda: ablations.run_alpha_sweep(
        n_keys=10_000, model_size=500,
        alphas=(1.0, 1.5, 2.0, 3.0, 5.0)))
    print()
    print(ablations.format_alpha(rows))
    assert rows[0].exchanges == 0  # alpha=1 has no slack
    # Slack never hurts the attacker.
    assert rows[-1].rmi_ratio >= rows[0].rmi_ratio * 0.95
