"""Bench A2: TRIM defenses against the CDF poisoning attack.

Prints recall/precision and the residual ratio loss after trimming
for the classic and the rank-aware variant.  Section VI's claim:
the relational ranks and the in-dense-region placement make TRIM
substantially less effective here than on classic regression
poisoning.
"""

from repro.experiments import ablations


def test_defense_trim(once):
    rows = once(lambda: ablations.run_trim_defense(
        n_keys=1000, percentages=(5.0, 10.0, 20.0)))
    print()
    print(ablations.format_trim(rows))
    # The attack did real damage before the defense ran.
    assert all(r.attack_ratio > 2.0 for r in rows)
    # The defense is imperfect somewhere: either it misses poison
    # keys or it leaves residual loss, in at least one configuration.
    assert any(r.recall < 1.0 or r.residual_ratio > 2.0 for r in rows)
