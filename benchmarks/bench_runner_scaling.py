"""Bench the SweepEngine's process fan-out on the fig5 quick grid.

Runs the identical sweep at jobs in {1, 2, 4, 8} and reports
wall-clock, speedup over the serial engine, and a verification bit
(every jobs level must aggregate to the jobs=1 result, exactly).
Speedup tracks the machine: on an N-core box expect ~min(jobs, N)x
minus pool startup; on a single core expect ~1x (the engine must not
make things *slower* than serial by more than pool overhead).

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_runner_scaling.py

or through the bench harness (`pytest benchmarks/ ... -s`), which
times the whole scaling ladder once.
"""

import dataclasses
import os
import time

from repro.experiments import fig5_config, run_sweep
from repro.experiments.report import render_table, section

JOBS_LADDER = (1, 2, 4, 8)


def _fingerprint(result):
    """Comparable value summary of a sweep result."""
    return [
        (cell.n_keys, cell.density,
         tuple(sorted((pct, dataclasses.astuple(s))
                      for pct, s in cell.summaries.items())))
        for cell in result.cells
    ]


def run_scaling(profile: str = "quick",
                jobs_ladder: tuple[int, ...] = JOBS_LADDER) -> str:
    """Time the fig5 grid at each jobs level; return the table text."""
    config = fig5_config(profile)
    rows = []
    baseline_seconds = None
    baseline_fingerprint = None
    for jobs in jobs_ladder:
        start = time.perf_counter()
        result = run_sweep(config, jobs=jobs)
        elapsed = time.perf_counter() - start
        fingerprint = _fingerprint(result)
        if baseline_seconds is None:
            baseline_seconds = elapsed
            baseline_fingerprint = fingerprint
        rows.append([
            jobs,
            f"{elapsed:.2f}s",
            f"{baseline_seconds / elapsed:.2f}x",
            fingerprint == baseline_fingerprint,
        ])
    title = (f"SweepEngine scaling - fig5 {profile} grid "
             f"({os.cpu_count()} cpu cores visible)")
    return (section(title) + "\n"
            + render_table(["jobs", "wall-clock", "speedup",
                            "identical"], rows))


def test_runner_scaling(once):
    profile = os.environ.get("REPRO_PROFILE", "quick")
    table = once(lambda: run_scaling(profile))
    print()
    print(table)
    assert "False" not in table  # every jobs level bit-identical


if __name__ == "__main__":
    print(run_scaling(os.environ.get("REPRO_PROFILE", "quick")))
