"""Bench Fig. 5: regression-poisoning sweep over uniform keysets.

Grid of (keys x density) cells, poisoning 2-14%, 20 keysets per cell.
Paper shape: ratios grow with the poisoning percentage; sparser and
larger keysets allow bigger ratios (up to ~100x at paper scale); very
dense cells saturate.  Set REPRO_PROFILE=full to include the
10,000-key row.
"""

import os

from repro.experiments import fig5_config, run_sweep


def test_fig5_regression_sweep(once):
    profile = os.environ.get("REPRO_PROFILE", "quick")
    result = once(lambda: run_sweep(fig5_config(profile)))
    print()
    print(result.format())

    for cell in result.cells:
        # Monotone in the poisoning percentage outside saturation.
        if cell.density <= 0.4:
            assert (cell.summaries[14.0].median
                    >= cell.summaries[2.0].median)
    # Sparser cells beat denser cells at the same key count (the
    # paper's row-wise observation), checked on the largest count.
    largest = max(c.n_keys for c in result.cells)
    sparse = next(c for c in result.cells
                  if c.n_keys == largest and c.density == 0.1)
    dense = next(c for c in result.cells
                 if c.n_keys == largest and c.density == 0.8)
    assert sparse.summaries[14.0].median > dense.summaries[14.0].median
