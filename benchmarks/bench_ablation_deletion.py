"""Bench A6: deletion adversary vs insertion adversary.

Section VI names key removal as an open extension; the mirrored
compound effect makes the same O(n)-per-step greedy attack work.
Insertion stays stronger at equal budget (it *adds* degrees of
freedom to bend the CDF; deletion can only subtract), but deletion
achieves multi-x damage without contributing a single record.
"""

from repro.experiments import ablations


def test_ablation_deletion(once):
    rows = once(lambda: ablations.run_deletion_ablation(
        n_keys=1000, percentages=(5.0, 10.0, 20.0)))
    print()
    print(ablations.format_deletion(rows))
    for row in rows:
        assert row.deletion_ratio > 1.0
    # Damage grows with the budget for both adversaries.
    assert rows[-1].deletion_ratio > rows[0].deletion_ratio
    assert rows[-1].insertion_ratio > rows[0].insertion_ratio
