"""Bench A1: the O(n) attack vs the O(mn) brute force.

Equivalence (same key, same loss) is asserted; the printed speedup
column shows the asymptotic gap growing with the keyset size.
"""

from repro.experiments import ablations


def test_ablation_bruteforce(once):
    rows = once(lambda: ablations.run_bruteforce_equivalence(
        key_counts=(50, 100, 200, 400), density=0.05))
    print()
    print(ablations.format_bruteforce(rows))
    assert all(r.same_key for r in rows)
    assert rows[-1].speedup > rows[0].speedup * 0.5
