"""Shared helpers for the benchmark harness.

Each ``bench_fig*.py`` regenerates one figure of the paper: it runs
the corresponding :mod:`repro.experiments` module once under
pytest-benchmark (``rounds=1`` — these are experiments, not
microbenchmarks) and prints the paper-comparable tables.  Run with::

    pytest benchmarks/ --benchmark-only -s

The printed blocks are the rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark clock."""
    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1)
    return runner
