"""Bench A5: greedy volume allocation vs the uniform initialisation.

Quantifies what Algorithm 2's exchange loop adds over simply splitting
the budget evenly and running Algorithm 1 per partition.
"""

from repro.experiments import ablations


def test_ablation_allocation(once):
    rows = once(lambda: ablations.run_allocation_ablation(
        n_keys=10_000, model_size=500))
    print()
    print(ablations.format_allocation(rows))
    for row in rows:
        assert row.greedy_ratio >= row.uniform_ratio - 1e-9
