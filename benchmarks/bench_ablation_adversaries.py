"""Bench A11: the three Sec. VI adversaries head to head.

Insert (the paper's attack), delete, and modify at equal budgets.  The
modification adversary — a delete + insert pair per budget unit, key
count conserved — matches or beats pure insertion while remaining
invisible to cardinality audits.
"""

from repro.experiments import ablations


def test_ablation_adversaries(once):
    rows = once(lambda: ablations.run_adversary_comparison(
        n_keys=1000, percentages=(5.0, 10.0, 20.0)))
    print()
    print(ablations.format_adversaries(rows))
    for row in rows:
        assert row.insertion_ratio > 1.0
        assert row.deletion_ratio > 1.0
        # Two perturbations per unit: modify >= insert (with slack).
        assert row.modification_ratio >= 0.8 * row.insertion_ratio
    # Everything grows with the budget.
    assert rows[-1].modification_ratio > rows[0].modification_ratio
