"""Bench Fig. 7: RMI poisoning on the (simulated) real-world datasets.

Miami-Dade salaries (published size, n = 5,300) and OSM school
latitudes (quick: n = 30,000; REPRO_PROFILE=full: the published
n = 302,973).  Paper shape: RMI ratios between ~4x and ~24x, growing
with both the poisoning percentage and the second-stage model size.
"""

import os

from repro.experiments import fig7_rmi_realworld


def test_fig7_rmi_realworld(once):
    profile = os.environ.get("REPRO_PROFILE", "quick")
    config = (fig7_rmi_realworld.full_config() if profile == "full"
              else fig7_rmi_realworld.quick_config())
    result = once(lambda: fig7_rmi_realworld.run(config))
    print()
    print(result.format())

    for dataset in {c.dataset for c in result.cells}:
        # Percentage trend within every (dataset, model size) block.
        for size in config.model_sizes:
            cells = {c.poisoning_percentage: c for c in result.cells
                     if c.dataset == dataset and c.model_size == size}
            assert cells[20.0].rmi_ratio > cells[5.0].rmi_ratio
        # Model-size trend at 20% poisoning (the paper's observation
        # that larger models allow more poisoning per model).
        at20 = {c.model_size: c for c in result.cells
                if c.dataset == dataset
                and c.poisoning_percentage == 20.0}
        assert at20[200].rmi_ratio > at20[50].rmi_ratio * 0.8

    headline = max(c.rmi_ratio for c in result.cells)
    assert headline > 3.0  # paper band: 4x .. 24x
