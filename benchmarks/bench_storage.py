"""Bench: storage footprint — the other half of the learned-index pitch.

Prices the RMI, the B-Tree and the Sec. VI "harden with a polynomial
stage" option in bytes over the same keyset.  The paper's argument is
that the linear second stage is what makes tens of thousands of models
fit in memory; the poisoning defense of switching to bigger models
spends exactly that budget.
"""

import numpy as np

from repro.data import Domain, uniform_keyset
from repro.index import BTree, RecursiveModelIndex
from repro.index.storage import (
    btree_storage,
    polynomial_stage_storage,
    rmi_storage,
)


def test_storage_footprint(once):
    # repro: allow[REP001] -- bench corpus seed is pinned by the committed BENCH_workload.json trajectory
    rng = np.random.default_rng(0)
    keyset = uniform_keyset(100_000, Domain.of_size(2_000_000), rng)
    n_models = 1000

    def build_reports():
        rmi = RecursiveModelIndex.build_equal_size(keyset, n_models)
        tree = BTree.bulk_load(keyset.keys, min_degree=16)
        return [
            rmi_storage(rmi),
            btree_storage(tree),
            polynomial_stage_storage(n_models, 3),
        ]

    reports = once(build_reports)
    print()
    for report in reports:
        print(report.row())
    by_name = {r.structure: r for r in reports}
    # The learned index is an order of magnitude smaller than the tree.
    assert (by_name["rmi"].total_bytes
            < 0.1 * by_name["btree"].total_bytes)
    # Hardening with a cubic stage costs real bytes.
    assert (by_name["poly-deg3 stage"].total_bytes
            > by_name["rmi"].total_bytes)
