"""Bench Fig. 8 (appendix): the sweep with normally distributed keys.

Same grid as Fig. 5 but keys ~ Normal(mid, range/3) clipped to the
domain — a CDF linear models already fit poorly, so the clean loss is
large and the achievable ratio smaller (paper: up to ~8x).
"""

import os

from repro.experiments import fig5_config, fig8_config, run_sweep


def test_fig8_normal_sweep(once):
    profile = os.environ.get("REPRO_PROFILE", "quick")
    result = once(lambda: run_sweep(fig8_config(profile)))
    print()
    print(result.format())

    for cell in result.cells:
        assert cell.summaries[14.0].median >= 1.0


def test_fig8_ratios_below_fig5(once):
    """The appendix's point: normal keys cap the attack's leverage."""
    quick5 = run_sweep(fig5_config("quick"))
    result = once(lambda: run_sweep(fig8_config("quick")))
    # Compare the sparsest large cell of each figure.
    def headline(sweep):
        largest = max(c.n_keys for c in sweep.cells)
        cell = next(c for c in sweep.cells
                    if c.n_keys == largest and c.density == 0.1)
        return cell.summaries[14.0].median
    assert headline(result) < headline(quick5)
