"""Bench A8: black-box extraction of the second stage.

Section VI's conjecture, executed: because the second-stage models
are linear, probing recovers their parameters exactly (two distinct
keys per model suffice), and the attack mounted on the recovered
partition is indistinguishable from the white-box attack.
"""

from repro.experiments import ablations


def test_ablation_blackbox(once):
    report = once(lambda: ablations.run_blackbox_ablation(
        n_keys=5000, n_models=25, poisoning_percentage=10.0))
    print()
    print(ablations.format_blackbox(report))
    assert report.models_recovered == report.n_models
    assert report.max_slope_error < 1e-9
    # The black-box attack matches the white-box attack.
    assert report.blackbox_ratio == report.whitebox_ratio
