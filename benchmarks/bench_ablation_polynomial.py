"""Bench A7: polynomial second-stage models vs the linear attack.

Section VI's final mitigation idea, quantified: refitting the
poisoned CDF with degree-2/3/5 models absorbs part of the inflated
loss at 2-5x the storage and compute — but does not restore the clean
loss, so the mitigation buys robustness only by spending exactly the
efficiency that made the learned index attractive.
"""

from repro.experiments import ablations


def test_ablation_polynomial(once):
    rows = once(lambda: ablations.run_polynomial_ablation(
        n_keys=1000, poisoning_percentage=10.0, degrees=(1, 2, 3, 5)))
    print()
    print(ablations.format_polynomial(rows))
    # More capacity absorbs more poisoning...
    ratios = [r.poisoned_ratio for r in rows]
    assert ratios[-1] < ratios[0]
    # ...but even degree 5 leaves multi-x residual damage.
    assert ratios[-1] > 2.0
    # And the costs grow exactly as the paper warns.
    assert rows[-1].n_parameters > rows[0].n_parameters
    assert rows[-1].multiply_adds > rows[0].multiply_adds
