"""Bench A9: poisoning through the update channel of a dynamic index.

A deployed learned index that retrains on (base + buffered inserts)
gives an insert-only adversary the same poisoning power as the static
pre-training adversary: the final merged training set is identical, so
the post-retrain damage matches the static Algorithm 2 attack.
"""

from repro.experiments import ablations


def test_ablation_updates(once):
    report = once(lambda: ablations.run_update_ablation(
        n_keys=2000, n_models=20, poisoning_percentage=10.0))
    print()
    print(ablations.format_update(report))
    assert report.retrains_triggered >= 1
    # The update channel stages the identical training set, so the
    # damage matches the static attack (up to float summation order).
    assert abs(report.update_ratio - report.static_ratio) \
        <= 1e-9 * report.static_ratio
    assert report.poisoned_lookup_cost > report.clean_lookup_cost
