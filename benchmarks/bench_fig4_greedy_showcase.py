"""Bench Fig. 4: greedy attack on 90 uniform keys with 10 insertions.

Paper: 7.4x error increase with poisoning keys clustered in a dense
region.  The exact ratio depends on the random draw; the shape —
multiple-x inflation with tightly clustered poisoning keys — must
reproduce on any healthy run.
"""

from repro.experiments import fig4_greedy_showcase


def test_fig4_greedy_showcase(once):
    result = once(lambda: fig4_greedy_showcase.run())
    print()
    print(result.format())
    assert result.greedy.ratio_loss > 2.0
    assert result.poison_span_fraction < 0.5
