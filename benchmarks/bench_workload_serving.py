"""Bench the batched lookup hot path against the scalar loop.

The serving simulator lives or dies by ``lookup_batch``: one
vectorized windowed binary search replaces a Python loop of scalar
lookups, with bit-identical probe counts.  This benchmark measures the
speedup on the RMI and the dynamic index across batch sizes, replays
one quick workload scenario end to end, runs the closed-loop duel
(adaptive vs oblivious, fixed vs tuned), runs the sharded-cluster
duel (concentrated vs uniform placement, static vs managed), and
writes the numbers as ``BENCH_workload.json`` (schema
``repro.bench.workload/v1``; the ``closed_loop`` and ``cluster``
sections are additive) — the wall-clock perf trajectory the ROADMAP
asks for, now spanning four PRs of surface.

The replay sections time both serving paths — the columnar tick
pipeline (the headline ``ops_per_second``) and the scalar reference
(``ops_per_second_scalar``) — and assert their reports identical
before recording the speedup.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_workload_serving.py [out.json]

or through the bench harness (``pytest benchmarks/ --benchmark-only -s``).
``--check [snapshot.json]`` re-measures just the replay throughput and
exits non-zero when any backend falls more than 30% below the
committed snapshot, or when the snapshot is missing a checked section
— the (blocking) CI gate.  ``--check --sections serving_replay``
narrows the gate to a comma-separated subset of sections.

Regenerating the committed snapshot in place is guarded: the fresh
numbers must pass the ``--check`` tolerance against the existing file
or the run exits non-zero with the fresh payload parked at
``BENCH_workload.rejected.json`` (baseline untouched).

``--trajectory append [--label NAME] [--store DIR] [snapshot]`` copies
the committed snapshot into the append-only per-PR store
(``benchmarks/trajectory/``) and re-renders its ops/s sparkline;
``--trajectory check [--store DIR]`` re-measures and fails when any
lane drops more than 30% below the *best* snapshot ever recorded —
the trajectory gate.
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro import io
from repro.data.keyset import Domain
from repro.data.synthetic import uniform_keyset
from repro.experiments.report import render_table, section
from repro.index import DynamicLearnedIndex, RecursiveModelIndex
from repro.observe import gallery, trajectory
from repro.workload import (
    ServingSimulator,
    TraceSpec,
    generate_trace,
    make_backend,
)

BENCH_SCHEMA = "repro.bench.workload/v1"
BATCH_SIZES = (100, 1_000, 10_000)
N_KEYS = 50_000
N_MODELS = 500


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bench_batched_lookup() -> tuple[str, dict]:
    """Scalar-vs-vectorized lookup over growing batch sizes."""
    # repro: allow[REP001] -- bench corpus seed is pinned by the committed BENCH_workload.json trajectory
    rng = np.random.default_rng(97)
    keyset = uniform_keyset(N_KEYS, Domain.of_size(10 * N_KEYS), rng)
    structures = {
        "rmi": RecursiveModelIndex.build_equal_size(keyset, N_MODELS),
        "dynamic": DynamicLearnedIndex(keyset, n_models=N_MODELS),
    }
    rows = []
    record: dict = {}
    for name, index in structures.items():
        for size in BATCH_SIZES:
            queries = rng.choice(keyset.keys, size=size)
            scalar_s = _time(
                lambda: [index.lookup(int(q)) for q in queries])
            batch_s = _time(lambda: index.lookup_batch(queries))
            # The whole point: same probes, less interpreter.
            scalar_probes = sum(index.lookup(int(q)).probes
                                for q in queries)
            batch_probes = int(index.lookup_batch(queries).probes.sum())
            assert scalar_probes == batch_probes
            speedup = scalar_s / batch_s if batch_s > 0 else float("inf")
            rows.append([name, size, f"{scalar_s * 1e3:.1f}ms",
                         f"{batch_s * 1e3:.1f}ms", f"{speedup:.1f}x"])
            record[f"{name}/{size}"] = {
                "scalar_seconds": scalar_s,
                "batch_seconds": batch_s,
                "speedup": io.json_float(speedup),
            }
    table = (section(f"batched vs scalar lookup — {N_KEYS} keys, "
                     f"{N_MODELS} models") + "\n"
             + render_table(["index", "batch", "scalar", "batched",
                             "speedup"], rows))
    return table, record


def bench_serving_replay() -> tuple[str, dict]:
    """One quick streaming scenario end to end, per backend.

    Runs the columnar tick pipeline (the default, and the headline
    ``ops_per_second``) and the scalar reference path on the same
    trace; the reports must agree bit-for-bit, so the speedup column
    is pure interpreter overhead removed.
    """
    spec = TraceSpec(n_base_keys=5_000, n_ops=20_000,
                     query_mix="zipfian", insert_fraction=0.05,
                     delete_fraction=0.02, modify_fraction=0.02,
                     range_fraction=0.03, poison_schedule="drip",
                     poison_percentage=10.0, seed=101)
    trace = generate_trace(spec)
    rows = []
    record: dict = {}
    for name in ("binary", "rmi", "dynamic"):
        reports = {}
        for columnar in (True, False):
            backend = make_backend(name, trace.base_keys)
            reports[columnar] = ServingSimulator(
                backend, trace, tick_ops=1000,
                columnar=columnar).run()
        col, ref = reports[True], reports[False]
        assert col.to_dict() == ref.to_dict()  # the parity contract
        ops_per_s = trace.n_ops / col.wall_seconds
        scalar_ops_per_s = trace.n_ops / ref.wall_seconds
        speedup = ops_per_s / scalar_ops_per_s
        rows.append([name, f"{col.wall_seconds * 1e3:.0f}ms",
                     f"{ops_per_s:,.0f}", f"{scalar_ops_per_s:,.0f}",
                     f"{speedup:.1f}x", f"{col.p99:.1f}",
                     f"{col.final_amplification:.2f}x"])
        record[name] = {
            "wall_seconds": col.wall_seconds,
            "ops_per_second": ops_per_s,
            "wall_seconds_scalar": ref.wall_seconds,
            "ops_per_second_scalar": scalar_ops_per_s,
            "speedup": io.json_float(speedup),
            "p99_probes": io.json_float(col.p99),
            "amplification": io.json_float(
                col.final_amplification),
        }
    table = (section(f"serving replay — {spec.n_ops} ops, "
                     f"{spec.n_base_keys} base keys, drip poison")
             + "\n" + render_table(
                 ["backend", "wall", "ops/s", "scalar ops/s",
                  "speedup", "p99 probes", "amplif."], rows))
    return table, record


def bench_closed_loop() -> tuple[str, dict]:
    """The closed-loop duel on the calibrated quick scenario.

    Times the control-loop grid (the per-cell cost now includes
    Algorithm 2 pool crafting and the policy/tuner bookkeeping) and
    records the headline numbers the acceptance regression pins: the
    adaptive-over-oblivious amplification gap and how much of it the
    auto-tuner recovers.
    """
    from repro.experiments import closedloop_serving

    config = closedloop_serving.ClosedLoopConfig(
        adversaries=("oblivious", "escalate"))
    started = time.perf_counter()
    result = closedloop_serving.run(config)
    wall = time.perf_counter() - started
    rows = []
    record: dict = {
        "wall_seconds": wall,
        "cells": len(result.rows),
        "cells_per_second": (len(result.rows) / wall if wall > 0
                             else 0.0),
    }
    for backend in config.backends:
        oblivious = result.row(backend=backend,
                               adversary="oblivious",
                               defense="fixed").amplification
        fixed = result.row(backend=backend, adversary="escalate",
                           defense="fixed").amplification
        tuned = result.row(backend=backend, adversary="escalate",
                           defense="tuned").amplification
        rows.append([backend, f"{oblivious:.3f}", f"{fixed:.3f}",
                     f"{tuned:.3f}", f"{fixed - oblivious:+.3f}",
                     f"{fixed - tuned:+.3f}"])
        record[backend] = {
            "oblivious_amplification": io.json_float(oblivious),
            "adaptive_amplification": io.json_float(fixed),
            "tuned_amplification": io.json_float(tuned),
            "adaptive_gap": io.json_float(fixed - oblivious),
            "tuner_recovered": io.json_float(fixed - tuned),
        }
    table = (section(f"closed-loop duel — {len(result.rows)} cells, "
                     f"{wall:.1f}s wall")
             + "\n" + render_table(
                 ["backend", "oblivious", "adaptive", "tuned",
                  "gap", "recovered"], rows))
    return table, record


def bench_cluster() -> tuple[str, dict]:
    """The sharded-cluster duel on the calibrated quick scenario.

    Times the tenant-layout grid (a cell now builds a shard map, one
    backend per shard, the crafted pools, and the whole management
    loop) and records the headline numbers the cluster acceptance
    regression pins: the concentrated-over-uniform victim-tenant
    amplification gap and how much of it cluster management
    (rebalancing + SLO-weighted per-shard tuning) claws back.
    """
    from repro.experiments import cluster_serving

    config = cluster_serving.quick_config()
    started = time.perf_counter()
    result = cluster_serving.run(config)
    wall = time.perf_counter() - started
    rows = []
    record: dict = {
        "wall_seconds": wall,
        "cells": len(result.rows),
        "cells_per_second": (len(result.rows) / wall if wall > 0
                             else 0.0),
    }
    for backend in config.backends:
        uniform = result.row(backend=backend, adversary="uniform",
                             defense="static").victim_amplification
        static = result.row(backend=backend,
                            adversary="concentrated",
                            defense="static").victim_amplification
        managed = result.row(backend=backend,
                             adversary="concentrated",
                             defense="managed").victim_amplification
        rows.append([backend, f"{uniform:.3f}", f"{static:.3f}",
                     f"{managed:.3f}", f"{static - uniform:+.3f}",
                     f"{static - managed:+.3f}"])
        record[backend] = {
            "uniform_amplification": io.json_float(uniform),
            "concentrated_amplification": io.json_float(static),
            "managed_amplification": io.json_float(managed),
            "placement_gap": io.json_float(static - uniform),
            "management_recovered": io.json_float(static - managed),
        }
    # Raw replay throughput: one larger sharded scenario per backend,
    # columnar (the headline) vs the scalar reference, same parity
    # contract as the single-backend section.
    from repro.cluster import ClusterRouter, ClusterSimulator, ShardMap

    spec = TraceSpec(n_base_keys=5_000, n_ops=20_000,
                     query_mix="zipfian", insert_fraction=0.05,
                     delete_fraction=0.02, modify_fraction=0.02,
                     range_fraction=0.03, n_tenants=3,
                     tenant_layout="skewed", slo_p95=5.0, seed=101)
    trace = generate_trace(spec)
    throughput_rows = []
    for backend in config.backends:
        kw = ({"model_size": config.model_size}
              if backend in ("rmi", "dynamic") else {})
        reports = {}
        for columnar in (True, False):
            shard_map = ShardMap.balanced(trace.base_keys, 4,
                                          spec.domain())
            router = ClusterRouter(
                shard_map, trace.base_keys, backend,
                rebuild_threshold=config.rebuild_threshold, **kw)
            reports[columnar] = ClusterSimulator(
                router, trace, tick_ops=1000,
                columnar=columnar).run()
        col, ref = reports[True], reports[False]
        assert col.to_dict() == ref.to_dict()  # the parity contract
        ops_per_s = trace.n_ops / col.wall_seconds
        scalar_ops_per_s = trace.n_ops / ref.wall_seconds
        speedup = ops_per_s / scalar_ops_per_s
        throughput_rows.append([
            backend, f"{col.wall_seconds * 1e3:.0f}ms",
            f"{ops_per_s:,.0f}", f"{scalar_ops_per_s:,.0f}",
            f"{speedup:.1f}x"])
        record[backend].update({
            "wall_seconds_replay": col.wall_seconds,
            "ops_per_second": ops_per_s,
            "wall_seconds_scalar": ref.wall_seconds,
            "ops_per_second_scalar": scalar_ops_per_s,
            "speedup": io.json_float(speedup),
        })
    table = (section(f"cluster duel — {len(result.rows)} cells, "
                     f"{wall:.1f}s wall, victim tenant 0")
             + "\n" + render_table(
                 ["backend", "uniform", "concentrated", "managed",
                  "gap", "recovered"], rows)
             + "\n\n" + section(
                 f"cluster replay — {spec.n_ops} ops, 4 shards")
             + "\n" + render_table(
                 ["backend", "wall", "ops/s", "scalar ops/s",
                  "speedup"], throughput_rows))
    return table, record


def _run_sections() -> tuple[str, dict]:
    """Measure every section once; return (tables, snapshot payload)."""
    lookup_table, lookup_record = bench_batched_lookup()
    replay_table, replay_record = bench_serving_replay()
    loop_table, loop_record = bench_closed_loop()
    cluster_table, cluster_record = bench_cluster()
    payload = {
        "schema": BENCH_SCHEMA,
        "batched_lookup": lookup_record,
        "serving_replay": replay_record,
        "closed_loop": loop_record,
        "cluster": cluster_record,
    }
    return (f"{lookup_table}\n\n{replay_table}\n\n{loop_table}"
            f"\n\n{cluster_table}", payload)


def run_bench(out_path: str = "BENCH_workload.json") -> str:
    """Run all sections; persist the JSON record; return the tables.

    Regeneration in place is guarded: when ``out_path`` already holds
    a snapshot, the fresh numbers must pass the ``--check`` tolerance
    against it before the file is replaced — see
    :func:`_guarded_save`.
    """
    tables, payload = _run_sections()
    _guarded_save(payload, out_path)
    return tables


#: Throughput may regress this far against the committed snapshot
#: before ``--check`` fails — generous because CI machines differ
#: from the machine that recorded the snapshot.
CHECK_TOLERANCE = 0.30

#: The replay sections ``--check`` re-measures.  Each checked section
#: must exist in the committed snapshot: a missing section means the
#: snapshot predates the section (or was trimmed), and silently
#: passing it would let a new serving path ship ungated.
CHECK_SECTIONS = ("serving_replay", "cluster")


def _measure_section(name: str) -> dict:
    """Fresh numbers for one checkable section (measurer dispatch)."""
    if name == "serving_replay":
        return bench_serving_replay()[1]
    if name == "cluster":
        return bench_cluster()[1]
    raise ValueError(
        f"unknown bench section {name!r}; checkable sections: "
        f"{', '.join(CHECK_SECTIONS)}")


def _compare_ops(baseline: dict, fresh: dict,
                 sections: "tuple[str, ...]",
                 ) -> "tuple[list[list[str]], list[tuple]]":
    """Per-backend ops/s comparison shared by every gate.

    Returns (table rows, failures).  A backend present in ``fresh``
    but absent from ``baseline`` passes as ``new`` — a fresh backend
    can land before its first recording; one that lost more than
    ``CHECK_TOLERANCE`` of its baseline throughput is a failure.
    """
    failures = []
    rows = []
    for section_name in sections:
        record = fresh.get(section_name, {})
        if not isinstance(record, dict):
            continue
        recorded_section = baseline.get(section_name, {})
        for backend, stats in record.items():
            if not isinstance(stats, dict) \
                    or "ops_per_second" not in stats:
                continue
            recorded = recorded_section.get(backend, {}) \
                if isinstance(recorded_section.get(backend), dict) \
                else {}
            recorded_ops = recorded.get("ops_per_second")
            measured = stats["ops_per_second"]
            if recorded_ops is None:
                rows.append([section_name, backend, "-",
                             f"{measured:,.0f}", "new"])
                continue
            ratio = measured / recorded_ops
            verdict = "ok" if ratio >= 1.0 - CHECK_TOLERANCE \
                else "REGRESSED"
            rows.append([section_name, backend,
                         f"{recorded_ops:,.0f}", f"{measured:,.0f}",
                         f"{ratio:.2f}x {verdict}"])
            if verdict == "REGRESSED":
                failures.append((section_name, backend, ratio))
    return rows, failures


def _guarded_save(payload: dict, out_path: str) -> None:
    """Replace a committed snapshot only when the fresh numbers pass.

    Regenerating ``BENCH_workload.json`` in place used to be able to
    silently lower the bar: a slow machine rewriting the snapshot 40%
    down would make every later ``--check`` pass trivially.  Now a
    fresh payload must clear the same tolerance as ``--check``
    against the existing file before it may replace it; on failure
    the fresh numbers are parked at ``<out stem>.rejected.json``, the
    committed baseline stays untouched, and the run exits non-zero.
    (``io.save_json`` writes through a temp file + ``os.replace``, so
    a passing replacement is atomic as well.)
    """
    out = Path(out_path)
    if out.exists():
        committed = io.load_json(out_path)
        rows, failures = _compare_ops(committed, payload,
                                      CHECK_SECTIONS)
        if failures:
            rejected = out.with_name(out.stem + ".rejected.json")
            io.save_json(payload, rejected)
            print(section("snapshot regeneration guard"))
            print(render_table(["section", "backend", "recorded",
                                "measured", "verdict"], rows))
            print(f"\nFAIL: fresh numbers regressed more than "
                  f"{CHECK_TOLERANCE:.0%} below the committed "
                  f"snapshot; kept {out_path}, parked the fresh "
                  f"payload at {rejected}")
            raise SystemExit(1)
    io.save_json(payload, out_path)


def check_throughput(snapshot_path: str = "BENCH_workload.json",
                     sections: "tuple[str, ...] | None" = None) -> int:
    """Fast regression gate: fresh replay throughput vs the snapshot.

    Re-measures the replay sections (skipping the grid duels),
    compares every backend's ``ops_per_second`` against the committed
    ``BENCH_workload.json``, and returns a non-zero exit code when any
    backend lost more than ``CHECK_TOLERANCE`` of its recorded
    throughput — or when the snapshot is *missing* a checked section
    outright (an expected section with no baseline is a check
    failure, not a free pass).  Individual backends absent from a
    present section still pass as ``new`` — a fresh backend can land
    before its first recording.  ``sections`` narrows the gate (the
    quickest CI step checks ``serving_replay`` alone).
    """
    sections = tuple(sections) if sections else CHECK_SECTIONS
    committed = io.load_json(snapshot_path)
    missing = [name for name in sections if name not in committed]
    if missing:
        print(section("throughput check vs committed snapshot"))
        print(f"FAIL: snapshot {snapshot_path} is missing expected "
              f"section(s): {', '.join(missing)}.  Regenerate it with "
              f"`PYTHONPATH=src python "
              f"benchmarks/bench_workload_serving.py` and commit the "
              f"result.")
        return 1
    fresh = {name: _measure_section(name) for name in sections}
    rows, failures = _compare_ops(committed, fresh, sections)
    print(section("throughput check vs committed snapshot"))
    print(render_table(["section", "backend", "recorded",
                        "measured", "verdict"], rows))
    if failures:
        print(f"\nFAIL: {len(failures)} backend(s) regressed more "
              f"than {CHECK_TOLERANCE:.0%}")
        return 1
    print("\nOK: throughput within tolerance")
    return 0


def trajectory_append(snapshot_path: str = "BENCH_workload.json",
                      store_dir: "str | None" = None,
                      label: str = "snapshot") -> int:
    """Append the committed snapshot to the trajectory store.

    Copies the snapshot in under the next append-only index, then
    re-renders the ops/s-over-PRs sparkline (``trajectory.svg``) next
    to the store so the gallery stays current.
    """
    store = Path(store_dir) if store_dir else trajectory.DEFAULT_STORE
    target = trajectory.append(snapshot_path, store_dir=store,
                               label=label)
    print(f"appended {target}")
    svg = gallery.trajectory_figure(store)
    if svg is not None:
        figure = store / "trajectory.svg"
        figure.write_text(svg)
        print(f"rendered {figure}")
    return 0


def trajectory_check(store_dir: "str | None" = None,
                     sections: "tuple[str, ...] | None" = None) -> int:
    """The trajectory gate: fresh throughput vs the *best* snapshot.

    Unlike ``--check`` (which diffs against the one committed
    snapshot), this gate re-measures and compares against the best
    ops/s each lane ever recorded across the whole append-only store
    — so a weak snapshot recorded on a slow runner can never lower
    the bar.  An empty store passes trivially.
    """
    sections = tuple(sections) if sections else CHECK_SECTIONS
    store = Path(store_dir) if store_dir else trajectory.DEFAULT_STORE
    best = trajectory.best_ops(store, sections=sections)
    if not best:
        print(section("trajectory gate"))
        print(f"OK: no snapshots under {store} — nothing to gate "
              f"against")
        return 0
    baseline: dict = {}
    for lane, ops in best.items():
        section_name, backend = lane.split("/", 1)
        baseline.setdefault(section_name, {})[backend] = {
            "ops_per_second": ops}
    fresh = {name: _measure_section(name) for name in sections}
    rows, failures = _compare_ops(baseline, fresh, sections)
    print(section(f"trajectory gate — fresh vs best of "
                  f"{len(trajectory.list_snapshots(store))} "
                  f"snapshot(s)"))
    print(render_table(["section", "backend", "best", "measured",
                        "verdict"], rows))
    if failures:
        print(f"\nFAIL: {len(failures)} backend(s) regressed more "
              f"than {CHECK_TOLERANCE:.0%} below the best recorded "
              f"snapshot")
        return 1
    print("\nOK: throughput within tolerance of the best snapshot")
    return 0


def test_workload_serving_bench(once, tmp_path):
    table = once(lambda: run_bench(str(tmp_path / "BENCH.json")))
    print()
    print(table)


def _pop_option(rest: "list[str]", flag: str,
                example: str) -> "str | None":
    """Extract ``flag VALUE`` from an argument list, if present."""
    if flag not in rest:
        return None
    at = rest.index(flag)
    if at + 1 >= len(rest):
        raise SystemExit(f"{flag} needs a value, e.g. {flag} {example}")
    value = rest[at + 1]
    del rest[at:at + 2]
    return value


if __name__ == "__main__":
    args = sys.argv[1:]
    if args and args[0] == "--check":
        rest = list(args[1:])
        raw = _pop_option(rest, "--sections", "serving_replay,cluster")
        sections = (tuple(s for s in raw.split(",") if s)
                    if raw is not None else None)
        snapshot = rest[0] if rest else "BENCH_workload.json"
        raise SystemExit(check_throughput(snapshot,
                                          sections=sections))
    if args and args[0] == "--trajectory":
        rest = list(args[1:])
        mode = rest.pop(0) if rest and not rest[0].startswith("-") \
            else "check"
        if mode not in ("append", "check"):
            raise SystemExit(
                f"--trajectory mode must be 'append' or 'check', "
                f"got {mode!r}")
        store = _pop_option(rest, "--store", "benchmarks/trajectory")
        if mode == "append":
            label = _pop_option(rest, "--label", "pr8") or "snapshot"
            snapshot = rest[0] if rest else "BENCH_workload.json"
            raise SystemExit(trajectory_append(snapshot,
                                               store_dir=store,
                                               label=label))
        raw = _pop_option(rest, "--sections", "serving_replay,cluster")
        sections = (tuple(s for s in raw.split(",") if s)
                    if raw is not None else None)
        raise SystemExit(trajectory_check(store_dir=store,
                                          sections=sections))
    out = args[0] if args else "BENCH_workload.json"
    print(run_bench(out))
    print(f"\nwrote {out}")
