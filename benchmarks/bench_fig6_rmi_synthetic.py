"""Bench Fig. 6: RMI poisoning on uniform and log-normal keys.

The paper's flagship grid, scaled per DESIGN.md section 2 (quick:
n = 10^4 with model sizes 10^2/10^3; REPRO_PROFILE=full: n = 10^5
with model sizes up to 10^4).  Shape assertions: more poisoning and
bigger second-stage models mean bigger ratios, and the log-normal
distribution yields heavier per-model tails (the paper's 3000x
extremes live in that tail at full scale).
"""

import os

from repro.experiments import fig6_rmi_synthetic


def test_fig6_rmi_synthetic(once):
    profile = os.environ.get("REPRO_PROFILE", "quick")
    config = (fig6_rmi_synthetic.full_config() if profile == "full"
              else fig6_rmi_synthetic.quick_config())
    result = once(lambda: fig6_rmi_synthetic.run(config))
    print()
    print(result.format())

    sizes = sorted(config.model_sizes)
    top = max(config.poisoning_percentages)

    # Column trend (uniform keys): larger second-stage models mean a
    # larger RMI ratio at the top poisoning percentage.  For the
    # log-normal keys this trend holds at paper scale but is diluted
    # at quick scale by the huge *clean* loss of big skewed models
    # (the Sec. VI dense-cluster caveat), so it is not asserted there.
    for mult in config.domain_multipliers:
        by_size = {
            c.model_size: c for c in result.cells
            if (c.distribution == "uniform"
                and c.domain_multiplier == mult
                and c.poisoning_percentage == top
                and c.alpha == max(config.alphas))}
        assert by_size[sizes[-1]].rmi_ratio \
            >= by_size[sizes[0]].rmi_ratio * 0.8

    # Per-model tail (the paper's 3000x-extremes live here): on the
    # large domain, log-normal big models show a heavier tail than
    # small models.
    if "lognormal" in config.distributions:
        mult = max(config.domain_multipliers)
        tail = {
            c.model_size: c.per_model.maximum for c in result.cells
            if (c.distribution == "lognormal"
                and c.domain_multiplier == mult
                and c.poisoning_percentage == top
                and c.alpha == max(config.alphas))}
        assert tail[sizes[-1]] > tail[sizes[0]]

    # Poisoning percentage trend everywhere.
    low = min(config.poisoning_percentages)
    for cell in result.cells:
        if cell.poisoning_percentage != top:
            continue
        partner = next(
            c for c in result.cells
            if (c.distribution, c.model_size, c.domain_multiplier,
                c.alpha) == (cell.distribution, cell.model_size,
                             cell.domain_multiplier, cell.alpha)
            and c.poisoning_percentage == low)
        assert cell.rmi_ratio >= partner.rmi_ratio * 0.9
