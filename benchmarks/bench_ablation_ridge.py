"""Bench A10: ridge regularisation against the poisoning attack.

The paper sets regularisation aside ("the impact of regularization is
unclear in the context of LIS" — queries are training data).  This
ablation closes the question empirically: shrinkage reduces the
*ratio* only by inflating the clean loss, i.e. by pre-paying the
damage — the poisoned absolute loss barely moves.
"""

from repro.experiments import ablations


def test_ablation_ridge(once):
    rows = once(lambda: ablations.run_ridge_ablation(
        n_keys=1000, lam_fractions=(0.0, 0.01, 0.1, 0.5)))
    print()
    print(ablations.format_ridge(rows))
    # Ratio falls with shrinkage...
    assert rows[-1].poisoned_ratio < rows[0].poisoned_ratio
    # ...but only because the clean loss explodes,
    assert rows[-1].clean_mse > 10 * rows[0].clean_mse
    # while the poisoned absolute loss never improves materially.
    assert rows[-1].poisoned_mse > 0.5 * rows[0].poisoned_mse
