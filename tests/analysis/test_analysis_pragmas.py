"""Pragma parsing: the escape hatch must round-trip and must never
silently swallow a typo."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import Pragma, collect_pragmas, format_pragma, \
    parse_pragma

RULE_IDS = st.integers(min_value=0, max_value=999).map(
    lambda n: f"REP{n:03d}")
REASONS = st.text(min_size=1).filter(lambda s: s.split())


class TestParse:
    def test_trailing_pragma(self):
        parsed = parse_pragma(
            "x = time.time()  # repro: allow[REP003] -- demo clock")
        assert isinstance(parsed, Pragma)
        assert parsed.rules == frozenset({"REP003"})
        assert parsed.reason == "demo clock"

    def test_multiple_rules(self):
        parsed = parse_pragma(
            "# repro: allow[REP001,REP002] -- fixture needs both")
        assert parsed.rules == frozenset({"REP001", "REP002"})
        assert parsed.allows("REP001")
        assert not parsed.allows("REP003")

    def test_non_pragma_comment_is_none(self):
        assert parse_pragma("# plain comment") is None
        assert parse_pragma("x = 1") is None

    @pytest.mark.parametrize("line", [
        "# repro: allow[REP001]",          # missing reason
        "# repro: allow[] -- reason",      # empty rule list
        "# repro: allow[REPX] -- reason",  # bad rule id
        "# repro: allwo[REP001] -- r",     # typo'd directive
        "# repro: disable REP001",         # unknown directive
    ])
    def test_malformed_pragma_is_an_error_string(self, line):
        parsed = parse_pragma(line)
        assert isinstance(parsed, str), line


class TestFormat:
    def test_canonical_rendering(self):
        assert format_pragma(["REP002", "REP001"], "  two\nrules ") \
            == "# repro: allow[REP001,REP002] -- two rules"

    def test_rejects_bad_rule_id(self):
        with pytest.raises(ValueError, match="rule id"):
            format_pragma(["nope"], "reason")

    def test_rejects_empty_reason(self):
        with pytest.raises(ValueError, match="reason"):
            format_pragma(["REP001"], "   ")


@given(rules=st.lists(RULE_IDS, min_size=1, max_size=8),
       reason=REASONS)
def test_format_parse_round_trip(rules, reason):
    """format_pragma output always parses back to the same pragma."""
    line = format_pragma(rules, reason)
    parsed = parse_pragma(line)
    assert isinstance(parsed, Pragma), line
    assert parsed.rules == frozenset(rules)
    assert parsed.reason == " ".join(reason.split())
    # ...whether trailing code or on a comment-only line:
    trailing = parse_pragma(f"value = compute()  {line}")
    assert trailing == parsed


class TestCollect:
    def test_trailing_covers_own_line_comment_covers_next(self):
        source = (
            "x = 1  # repro: allow[REP001] -- trailing\n"
            "# repro: allow[REP002] -- standalone\n"
            "y = 2\n")
        covers, malformed = collect_pragmas(source)
        assert malformed == []
        assert covers[1].rules == frozenset({"REP001"})
        assert covers[3].rules == frozenset({"REP002"})
        assert 2 not in covers

    def test_docstring_mention_is_not_a_pragma(self):
        source = (
            '"""Docs show `# repro: allow[REP001] -- why`."""\n'
            "s = '# repro: allow[broken'\n")
        covers, malformed = collect_pragmas(source)
        assert covers == {}
        assert malformed == []

    def test_malformed_comment_is_reported_with_its_line(self):
        source = "z = 3\nq = 4  # repro: allow[REP001]\n"
        covers, malformed = collect_pragmas(source)
        assert covers == {}
        assert [line for line, _ in malformed] == [2]
        assert "reason" in malformed[0][1]
