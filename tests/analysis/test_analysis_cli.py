"""CLI behavior of ``python -m repro.analysis`` and the self-hosted
gate over the real tree."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import BASELINE_SCHEMA
from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _tree(tmp_path, monkeypatch, source):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text(source)


class TestGate:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch,
                                   capsys):
        _tree(tmp_path, monkeypatch, "x = 1\n")
        assert main(["--check", "src"]) == 0
        assert "0 new" in capsys.readouterr().err

    def test_new_finding_fails_check(self, tmp_path, monkeypatch,
                                     capsys):
        _tree(tmp_path, monkeypatch, "x = hash('x')\n")
        assert main(["--check", "src"]) == 1
        out = capsys.readouterr().out
        assert "src/mod.py:1: REP002" in out

    def test_without_check_reports_but_exits_zero(
            self, tmp_path, monkeypatch):
        _tree(tmp_path, monkeypatch, "x = hash('x')\n")
        assert main(["src"]) == 0

    def test_baselined_finding_passes_then_stale(
            self, tmp_path, monkeypatch, capsys):
        _tree(tmp_path, monkeypatch, "x = hash('x')\n")
        assert main(["--update-baseline", "src"]) == 0
        payload = json.loads(Path(
            ".repro-analysis-baseline.json").read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        assert payload["findings"] == [
            {"path": "src/mod.py", "rule": "REP002", "line": 1}]
        assert main(["--check", "src"]) == 0

        # the violation gets fixed: entry goes stale, gate stays 0
        (tmp_path / "src" / "mod.py").write_text("x = 1\n")
        capsys.readouterr()
        assert main(["--check", "src"]) == 0
        assert "stale baseline entry" in capsys.readouterr().err

        # shrinking the baseline is explicit
        assert main(["--update-baseline", "src"]) == 0
        payload = json.loads(Path(
            ".repro-analysis-baseline.json").read_text())
        assert payload["findings"] == []

    def test_custom_baseline_path(self, tmp_path, monkeypatch):
        _tree(tmp_path, monkeypatch, "x = hash('x')\n")
        assert main(["--update-baseline", "--baseline", "b.json",
                     "src"]) == 0
        assert Path("b.json").exists()
        assert main(["--check", "--baseline", "b.json", "src"]) == 0


def test_list_rules_covers_the_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP000", "REP001", "REP002", "REP003",
                    "REP004", "REP005", "REP006", "REP007"):
        assert rule_id in out


def test_self_hosted_gate_is_green(monkeypatch, capsys):
    """The shipped tree passes its own linter with a zero delta —
    the exact command CI runs."""
    monkeypatch.chdir(REPO_ROOT)
    assert main(["--check", "src", "tests", "examples",
                 "benchmarks"]) == 0
    err = capsys.readouterr().err
    assert "0 new" in err
    assert "0 stale" in err
