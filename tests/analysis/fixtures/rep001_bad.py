"""Known-bad REP001 corpus: ambient and one-off-literal RNG."""

import random

import numpy as np


def sample():
    random.seed(42)
    x = random.random()
    rng = np.random.default_rng()
    rng2 = np.random.default_rng(1234)
    noise = np.random.normal(0.0, 1.0)
    return x, rng, rng2, noise
