"""Known-clean REP005 twin: integral floats and tolerances only."""

import math


def check(report):
    assert report.count == 3
    assert report.scale == 2.0
    assert math.isclose(report.ratio, 0.42, rel_tol=1e-9)
