"""Known-clean REP006 twin: every mutation holds the lock."""

import threading


class Book:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = []

    def record(self, item):
        with self._lock:
            self._entries.append(item)

    def reset(self):
        with self._lock:
            self._entries.clear()
