"""Known-clean REP002 twin: CRC-backed stable hashing.

A ``.hash(...)`` *method* is fine — only the salted builtin is a
hazard.
"""

from repro.runtime import stable_text_hash


def seed_for(name, hasher):
    return stable_text_hash(name) ^ hasher.hash(name)
