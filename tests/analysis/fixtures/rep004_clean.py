"""Known-clean REP004 twin: canonical JSON, sorted digest input."""

import hashlib
import json


def fingerprint(payload, tags):
    blob = json.dumps(payload, sort_keys=True)
    digest = hashlib.sha256(
        ",".join(sorted(tags.keys())).encode())
    width = len(payload.keys())
    return blob, digest.hexdigest(), width
