"""Known-clean REP007 twin: keys and codes match the contract."""

MSG_PING = 1
MSG_STOP = 2


def load(payload):
    target = payload["target"]
    profile = payload.get("profile")
    return target, profile


def dispatch(code):
    if code == MSG_PING:
        return "ping"
    if code == MSG_STOP:
        return "stop"
    return None
