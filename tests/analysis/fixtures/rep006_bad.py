"""Known-bad REP006 corpus: mutation outside the owning lock."""

import threading


class Book:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = []

    def record(self, item):
        with self._lock:
            self._entries.append(item)

    def reset(self):
        self._entries.clear()
