"""Known-bad REP002 corpus: builtin hash() on a seed path."""


def seed_for(name):
    return hash(name) % 2**32
