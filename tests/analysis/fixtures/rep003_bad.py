"""Known-bad REP003 corpus: wall clock leaking into tick results."""

import time


def run_tick(events):
    cost = time.perf_counter()
    deadline = time.time() + 5.0
    return {"cost": cost, "deadline": deadline}
