"""Known-clean REP003 twin: timer anchors and observe() sinks."""

import time


def run_tick(events, metrics):
    started = time.perf_counter()
    cost = sum(event.weight for event in events)
    metrics.observe(time.perf_counter() - started)
    tick_seconds = time.perf_counter() - started
    return cost, tick_seconds
