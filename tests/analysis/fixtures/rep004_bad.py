"""Known-bad REP004 corpus: unsorted iteration into digests."""

import hashlib
import json


def fingerprint(payload, tags):
    blob = json.dumps(payload)
    digest = hashlib.sha256(",".join(tags.keys()).encode())
    token = hashlib.sha256(str({1, 2, 3}).encode())
    return blob, digest.hexdigest(), token.hexdigest()
