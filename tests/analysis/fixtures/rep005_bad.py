"""Known-bad REP005 corpus: bare float equality in assertions."""


def check(report):
    assert report.ratio == 0.42
    assert report.error != 1.5
