"""Known-clean REP001 twin: every seed is derived, never ambient."""

import numpy as np

from repro.runtime import stable_seed_words


def sample(config):
    rng = np.random.default_rng(stable_seed_words("demo", 1))
    other = np.random.default_rng(config.seed)
    gen = np.random.Generator(np.random.PCG64(
        np.random.SeedSequence(stable_seed_words("demo", 2))))
    return rng, other, gen
