"""Known-bad REP007 corpus: reader keys drifting from contract.

The test binds ``payload`` to the key universe {schema, target,
profile} and ``MSG_`` to the registry {MSG_PING, MSG_STOP}.
"""

MSG_PING = 1
MSG_DRIFT = 99


def load(payload):
    target = payload["target"]
    extra = payload["tarmac"]
    profile = payload.get("profle")
    return target, extra, profile


def dispatch(code):
    if code == MSG_PING:
        return "ping"
    if code == MSG_DRIFT:
        return "drift"
    return None
