"""The rule corpus: every REP rule fires on its known-bad fixture
and stays silent on the known-clean twin."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import DispatchBinding, KeyBinding, LintConfig, \
    RULES, lint_file

FIXTURES = Path(__file__).parent / "fixtures"

#: Scope everything so the fixtures (outside src/) are in range.
WIDE = dict(
    rep001_exclude=(),
    rep003_scope=("",),
    rep004_json_scope=("",),
    rep005_scope=("",),
)

#: The binding universe the REP007 fixtures are written against.
REP007_BINDINGS = tuple(
    (name, (
        KeyBinding("payload",
                   frozenset({"schema", "target", "profile"}),
                   "fixture result"),
        DispatchBinding("MSG_",
                        frozenset({"MSG_PING", "MSG_STOP"}),
                        "fixture protocol"),
    ))
    for name in ("rep007_bad.py", "rep007_clean.py"))

#: rule -> set of 1-based lines where the bad fixture must fire.
EXPECTED_BAD_LINES = {
    "REP001": {9, 10, 11, 12, 13},
    "REP002": {5},
    "REP003": {7, 8},
    "REP004": {8, 9, 10},
    "REP005": {5, 6},
    "REP006": {16},
    "REP007": {1, 8, 13, 14},
}


def lint_fixture(name: str, rule: str):
    config = LintConfig(enabled=(rule,),
                        contract_bindings=REP007_BINDINGS, **WIDE)
    return lint_file(FIXTURES / name, config, relpath=name)


@pytest.mark.parametrize("rule", sorted(EXPECTED_BAD_LINES))
class TestCorpus:
    def test_fires_on_known_bad(self, rule):
        findings = lint_fixture(f"{rule.lower()}_bad.py", rule)
        assert findings, f"{rule} silent on its known-bad fixture"
        assert {f.rule for f in findings} == {rule}
        assert {f.line for f in findings} \
            == EXPECTED_BAD_LINES[rule]

    def test_silent_on_known_clean(self, rule):
        findings = lint_fixture(f"{rule.lower()}_clean.py", rule)
        assert findings == [], \
            f"{rule} false-positives on its clean twin"


def test_every_registered_rule_has_a_fixture_pair():
    for rule in RULES:
        assert (FIXTURES / f"{rule.lower()}_bad.py").exists()
        assert (FIXTURES / f"{rule.lower()}_clean.py").exists()
    assert set(RULES) == set(EXPECTED_BAD_LINES)


def test_rules_carry_one_line_docstrings():
    for rule_id, rule in RULES.items():
        doc = (rule.__doc__ or "").strip()
        assert doc, f"{rule_id} has no docstring for --list-rules"


def test_pragma_suppresses_only_named_rules(tmp_path):
    bad = (FIXTURES / "rep002_bad.py").read_text()
    patched = bad.replace(
        "return hash(name) % 2**32",
        "return hash(name) % 2**32  "
        "# repro: allow[REP002] -- corpus patch")
    target = tmp_path / "patched.py"
    target.write_text(patched)
    config = LintConfig(enabled=("REP002",), **WIDE)
    assert lint_file(target, config, relpath="patched.py") == []


def test_fixtures_parse_as_python():
    import ast
    for fixture in sorted(FIXTURES.glob("*.py")):
        ast.parse(fixture.read_text(), filename=str(fixture))
