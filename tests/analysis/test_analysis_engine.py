"""Engine mechanics: walking, pragma filtering, and the baseline
add/remove lifecycle."""

from __future__ import annotations

import pytest

from repro.analysis import Finding, LintConfig, baseline_delta, \
    iter_python_files, lint_file, load_baseline, write_baseline


def _write(tmp_path, name, source):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


class TestLintFile:
    def test_clean_file_has_no_findings(self, tmp_path):
        target = _write(tmp_path, "ok.py", "x = 1\n")
        assert lint_file(target, relpath="ok.py") == []

    def test_findings_are_sorted_and_deduplicated(self, tmp_path):
        target = _write(
            tmp_path, "two.py",
            "b = hash('b')\na = hash('a') + hash('a')\n")
        findings = lint_file(target, relpath="two.py")
        assert [(f.line, f.rule) for f in findings] \
            == [(1, "REP002"), (2, "REP002")]

    def test_pragma_on_preceding_line_suppresses(self, tmp_path):
        target = _write(
            tmp_path, "covered.py",
            "# repro: allow[REP002] -- exercised on purpose\n"
            "a = hash('a')\n")
        assert lint_file(target, relpath="covered.py") == []

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        target = _write(
            tmp_path, "wrong.py",
            "a = hash('a')  # repro: allow[REP001] -- wrong rule\n")
        findings = lint_file(target, relpath="wrong.py")
        assert [f.rule for f in findings] == ["REP002"]

    def test_malformed_pragma_is_rep000(self, tmp_path):
        target = _write(
            tmp_path, "typo.py",
            "a = 1  # repro: allow[REP002]\n")
        findings = lint_file(target, relpath="typo.py")
        assert [f.rule for f in findings] == ["REP000"]
        assert "reason" in findings[0].message

    def test_unparseable_file_is_rep000(self, tmp_path):
        target = _write(tmp_path, "broken.py", "def oops(:\n")
        findings = lint_file(target, relpath="broken.py")
        assert [f.rule for f in findings] == ["REP000"]
        assert "parse" in findings[0].message


class TestWalk:
    def test_skips_fixture_and_cache_dirs(self, tmp_path):
        _write(tmp_path, "pkg/mod.py", "x = 1\n")
        _write(tmp_path, "pkg/fixtures/bad.py", "x = hash(1)\n")
        _write(tmp_path, "pkg/__pycache__/mod.py", "x = 1\n")
        files = list(iter_python_files([tmp_path], LintConfig()))
        assert [f.name for f in files] == ["mod.py"]
        assert "fixtures" not in {p.parent.name for p in files}

    def test_explicit_file_always_linted(self, tmp_path):
        bad = _write(tmp_path, "fixtures/bad.py", "x = 1\n")
        files = list(iter_python_files([bad], LintConfig()))
        assert files == [bad]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files(["no/such/dir"], LintConfig()))


class TestBaselineLifecycle:
    F1 = Finding("a.py", 3, "REP002", "msg")
    F2 = Finding("b.py", 7, "REP005", "msg")

    def test_round_trip_and_delta_empty(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.F1, self.F2])
        baseline = load_baseline(path)
        new, stale = baseline_delta([self.F1, self.F2], baseline)
        assert new == [] and stale == []

    def test_new_finding_is_new_not_baselined(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.F1])
        new, stale = baseline_delta(
            [self.F1, self.F2], load_baseline(path))
        assert new == [self.F2]
        assert stale == []

    def test_fixed_finding_goes_stale(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.F1, self.F2])
        new, stale = baseline_delta([self.F2], load_baseline(path))
        assert new == []
        assert stale == [("a.py", "REP002", 3)]

    def test_reworded_message_does_not_churn(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.F1])
        reworded = Finding("a.py", 3, "REP002", "new wording")
        new, stale = baseline_delta([reworded], load_baseline(path))
        assert new == [] and stale == []

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"schema": "something/else", '
                        '"findings": []}')
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)
