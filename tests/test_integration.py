"""Cross-module integration tests: the full attack-to-impact pipeline."""

import numpy as np

from repro.core import (
    RMIAttackerCapability,
    fit_cdf_regression,
    greedy_poison,
    poison_rmi,
)
from repro.data import Domain, miami_salaries, uniform_keyset
from repro.defense import flag_densest_keys, score_detection, trim_cdf
from repro.index import BTree, LinearLearnedIndex, RecursiveModelIndex


class TestEndToEndRegressionAttack:
    """Generate data -> attack -> rebuild index -> measure slowdown."""

    def test_full_pipeline(self, rng):
        keyset = uniform_keyset(1000, Domain(0, 19_999), rng)
        attack = greedy_poison(keyset, 100)
        assert attack.ratio_loss > 3.0

        poisoned = keyset.insert(attack.poison_keys)
        clean_index = LinearLearnedIndex(keyset)
        dirty_index = LinearLearnedIndex(poisoned)

        # Every legitimate key still resolvable in both indexes.
        for key in keyset.keys[::97]:
            assert clean_index.lookup(int(key)).found
            assert dirty_index.lookup(int(key)).found

        # And lookups on legitimate keys got more expensive.
        queries = keyset.keys[::11]
        assert (dirty_index.lookup_cost(queries)
                > clean_index.lookup_cost(queries))


class TestEndToEndRMIAttack:
    def test_rmi_pipeline_with_btree_crossover(self, rng):
        keyset = uniform_keyset(3000, Domain(0, 59_999), rng)
        capability = RMIAttackerCapability(poisoning_percentage=15.0,
                                           alpha=3.0)
        attack = poison_rmi(keyset, 15, capability, max_exchanges=30)
        assert attack.rmi_ratio_loss > 1.5

        poisoned = keyset.insert(attack.poison_keys)
        clean_rmi = RecursiveModelIndex.build_equal_size(keyset, 15)
        dirty_rmi = RecursiveModelIndex.build_equal_size(poisoned, 15)
        tree = BTree.bulk_load(keyset.keys)

        queries = keyset.keys[::7]
        clean_cost = clean_rmi.lookup_cost(queries)
        dirty_cost = dirty_rmi.lookup_cost(queries)
        btree_cost = float(np.mean(
            [tree.search(int(k)).comparisons for k in queries]))

        # Clean learned index beats the B-Tree; poisoning narrows (and
        # at paper scale can flip) the gap.
        assert clean_cost < btree_cost
        assert dirty_cost > clean_cost

    def test_poisoned_index_remains_correct(self, rng):
        """Poisoning degrades speed, never correctness."""
        keyset = uniform_keyset(2000, Domain(0, 39_999), rng)
        capability = RMIAttackerCapability(poisoning_percentage=10.0)
        attack = poison_rmi(keyset, 10, capability, max_exchanges=10)
        poisoned = keyset.insert(attack.poison_keys)
        rmi = RecursiveModelIndex.build_equal_size(poisoned, 10)
        for key in poisoned.keys[::41]:
            result = rmi.lookup(int(key))
            assert result.found
            assert rmi.store.key_at(result.position) == key


class TestAttackVsDefensePipeline:
    def test_defense_stack_on_real_attack(self, rng):
        keyset = uniform_keyset(400, Domain(0, 7_999), rng)
        attack = greedy_poison(keyset, 60)
        poisoned = keyset.insert(attack.poison_keys)

        # Density detector: sees the clusters, imperfect precision.
        flagged = flag_densest_keys(poisoned.keys, 60, window=4)
        detection = score_detection(flagged, attack.poison_keys)
        assert detection.recall > 0.0

        # Rank-aware TRIM: reduces but rarely eliminates the damage.
        trimmed = trim_cdf(poisoned.keys, n_keep=keyset.n)
        poisoned_loss = fit_cdf_regression(poisoned).mse
        assert trimmed.final_loss <= poisoned_loss


class TestRealisticDatasetScenario:
    def test_salary_attack_story(self, rng):
        """The paper's Fig. 7 scenario at reduced scale."""
        salaries = miami_salaries(rng, n=1000)
        capability = RMIAttackerCapability(poisoning_percentage=10.0,
                                           alpha=3.0)
        attack = poison_rmi(salaries, 10, capability, max_exchanges=10)
        assert attack.rmi_ratio_loss > 1.0
        assert attack.total_injected <= capability.budget(salaries.n)
        # Injected salaries are plausible (inside the observed range).
        assert attack.poison_keys.min() >= salaries.keys.min()
        assert attack.poison_keys.max() <= salaries.keys.max()


class TestDeterminism:
    def test_same_seed_same_attack(self):
        a = uniform_keyset(300, Domain(0, 5_999),
                           np.random.default_rng(42))
        b = uniform_keyset(300, Domain(0, 5_999),
                           np.random.default_rng(42))
        attack_a = greedy_poison(a, 30)
        attack_b = greedy_poison(b, 30)
        assert attack_a.poison_keys.tolist() == attack_b.poison_keys.tolist()
        assert attack_a.loss_after == attack_b.loss_after

    def test_rmi_attack_deterministic(self):
        ks = uniform_keyset(500, Domain(0, 9_999),
                            np.random.default_rng(7))
        capability = RMIAttackerCapability(poisoning_percentage=10.0)
        r1 = poison_rmi(ks, 5, capability, max_exchanges=10)
        r2 = poison_rmi(ks, 5, capability, max_exchanges=10)
        assert r1.poison_keys.tolist() == r2.poison_keys.tolist()
        assert r1.rmi_ratio_loss == r2.rmi_ratio_loss
