"""The bench ``--check`` gate (ISSUE 7 satellite).

The regression being pinned: a snapshot *missing* an expected section
used to make every comparison key "new" and the check exit 0 — a
freshly added serving path could ship with no throughput gate at all.
A missing checked section is now a failure with a clear message, and
``--sections`` narrows the gate (the CI blocking step checks
``serving_replay`` alone).
"""

import importlib
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"


@pytest.fixture(scope="module")
def bench():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        return importlib.import_module("bench_workload_serving")
    finally:
        sys.path.remove(str(BENCH_DIR))


MEASURED = {
    "serving_replay": {"rmi": {"ops_per_second": 1_000.0}},
    "cluster": {"rmi": {"ops_per_second": 500.0},
                "wall_seconds": 3.0},
}


@pytest.fixture
def canned_measurers(bench, monkeypatch):
    """Replace the real (slow) section measurers with fixed numbers."""
    monkeypatch.setattr(
        bench, "bench_serving_replay",
        lambda: ("", dict(MEASURED["serving_replay"])))
    monkeypatch.setattr(
        bench, "bench_cluster",
        lambda: ("", dict(MEASURED["cluster"])))


def snapshot(tmp_path, payload):
    path = tmp_path / "BENCH.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestMissingSections:
    def test_complete_snapshot_passes(self, bench, canned_measurers,
                                      tmp_path):
        path = snapshot(tmp_path, MEASURED)
        assert bench.check_throughput(path) == 0

    def test_missing_section_is_a_failure(self, bench,
                                          canned_measurers,
                                          tmp_path, capsys):
        path = snapshot(tmp_path,
                        {"serving_replay": MEASURED["serving_replay"]})
        assert bench.check_throughput(path) == 1
        out = capsys.readouterr().out
        assert "missing expected section" in out
        assert "cluster" in out
        assert "Regenerate" in out

    def test_sections_filter_narrows_the_gate(self, bench,
                                              canned_measurers,
                                              tmp_path):
        """The blocking CI step checks serving_replay alone, so a
        snapshot without the cluster section must still pass it."""
        path = snapshot(tmp_path,
                        {"serving_replay": MEASURED["serving_replay"]})
        assert bench.check_throughput(
            path, sections=("serving_replay",)) == 0

    def test_unknown_section_is_loud(self, bench, canned_measurers,
                                     tmp_path):
        path = snapshot(tmp_path, {"nope": {}})
        with pytest.raises(ValueError, match="unknown bench section"):
            bench.check_throughput(path, sections=("nope",))


class TestThresholds:
    def test_regression_beyond_tolerance_fails(self, bench,
                                               canned_measurers,
                                               tmp_path):
        path = snapshot(tmp_path, {
            "serving_replay": {"rmi": {"ops_per_second": 10_000.0}},
            "cluster": MEASURED["cluster"],
        })
        assert bench.check_throughput(path) == 1

    def test_within_tolerance_passes(self, bench, canned_measurers,
                                     tmp_path):
        path = snapshot(tmp_path, {
            "serving_replay": {"rmi": {"ops_per_second": 1_100.0}},
            "cluster": MEASURED["cluster"],
        })
        assert bench.check_throughput(path) == 0

    def test_new_backend_in_a_present_section_passes(
            self, bench, canned_measurers, tmp_path, capsys):
        """Only whole-section absence fails; a fresh backend inside a
        recorded section still lands as ``new``."""
        path = snapshot(tmp_path, {
            "serving_replay": {"other": {"ops_per_second": 1.0}},
            "cluster": MEASURED["cluster"],
        })
        assert bench.check_throughput(path) == 0
        assert "new" in capsys.readouterr().out
