"""The bench ``--check`` gate (ISSUE 7 satellite).

The regression being pinned: a snapshot *missing* an expected section
used to make every comparison key "new" and the check exit 0 — a
freshly added serving path could ship with no throughput gate at all.
A missing checked section is now a failure with a clear message, and
``--sections`` narrows the gate (the CI blocking step checks
``serving_replay`` alone).
"""

import importlib
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"


@pytest.fixture(scope="module")
def bench():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        return importlib.import_module("bench_workload_serving")
    finally:
        sys.path.remove(str(BENCH_DIR))


MEASURED = {
    "serving_replay": {"rmi": {"ops_per_second": 1_000.0}},
    "cluster": {"rmi": {"ops_per_second": 500.0},
                "wall_seconds": 3.0},
}


@pytest.fixture
def canned_measurers(bench, monkeypatch):
    """Replace the real (slow) section measurers with fixed numbers."""
    monkeypatch.setattr(
        bench, "bench_serving_replay",
        lambda: ("", dict(MEASURED["serving_replay"])))
    monkeypatch.setattr(
        bench, "bench_cluster",
        lambda: ("", dict(MEASURED["cluster"])))


def snapshot(tmp_path, payload):
    path = tmp_path / "BENCH.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestMissingSections:
    def test_complete_snapshot_passes(self, bench, canned_measurers,
                                      tmp_path):
        path = snapshot(tmp_path, MEASURED)
        assert bench.check_throughput(path) == 0

    def test_missing_section_is_a_failure(self, bench,
                                          canned_measurers,
                                          tmp_path, capsys):
        path = snapshot(tmp_path,
                        {"serving_replay": MEASURED["serving_replay"]})
        assert bench.check_throughput(path) == 1
        out = capsys.readouterr().out
        assert "missing expected section" in out
        assert "cluster" in out
        assert "Regenerate" in out

    def test_sections_filter_narrows_the_gate(self, bench,
                                              canned_measurers,
                                              tmp_path):
        """The blocking CI step checks serving_replay alone, so a
        snapshot without the cluster section must still pass it."""
        path = snapshot(tmp_path,
                        {"serving_replay": MEASURED["serving_replay"]})
        assert bench.check_throughput(
            path, sections=("serving_replay",)) == 0

    def test_unknown_section_is_loud(self, bench, canned_measurers,
                                     tmp_path):
        path = snapshot(tmp_path, {"nope": {}})
        with pytest.raises(ValueError, match="unknown bench section"):
            bench.check_throughput(path, sections=("nope",))


class TestThresholds:
    def test_regression_beyond_tolerance_fails(self, bench,
                                               canned_measurers,
                                               tmp_path):
        path = snapshot(tmp_path, {
            "serving_replay": {"rmi": {"ops_per_second": 10_000.0}},
            "cluster": MEASURED["cluster"],
        })
        assert bench.check_throughput(path) == 1

    def test_within_tolerance_passes(self, bench, canned_measurers,
                                     tmp_path):
        path = snapshot(tmp_path, {
            "serving_replay": {"rmi": {"ops_per_second": 1_100.0}},
            "cluster": MEASURED["cluster"],
        })
        assert bench.check_throughput(path) == 0

    def test_new_backend_in_a_present_section_passes(
            self, bench, canned_measurers, tmp_path, capsys):
        """Only whole-section absence fails; a fresh backend inside a
        recorded section still lands as ``new``."""
        path = snapshot(tmp_path, {
            "serving_replay": {"other": {"ops_per_second": 1.0}},
            "cluster": MEASURED["cluster"],
        })
        assert bench.check_throughput(path) == 0
        assert "new" in capsys.readouterr().out


def fresh_payload(serving_ops, cluster_ops):
    return {
        "schema": "repro.bench.workload/v1",
        "serving_replay": {"rmi": {"ops_per_second": serving_ops}},
        "cluster": {"rmi": {"ops_per_second": cluster_ops},
                    "wall_seconds": 3.0},
    }


class TestRegenerationGuard:
    """Regenerating BENCH_workload.json in place may not lower the bar
    (ISSUE 8 satellite): a regressed re-measurement leaves the
    committed file untouched and exits non-zero."""

    def test_fresh_path_saves_unguarded(self, bench, tmp_path):
        out = tmp_path / "BENCH.json"
        bench._guarded_save(fresh_payload(1_000.0, 500.0), str(out))
        assert json.loads(out.read_text())["schema"] \
            == bench.BENCH_SCHEMA

    def test_regressed_regeneration_keeps_the_baseline(
            self, bench, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        committed = fresh_payload(10_000.0, 500.0)
        out.write_text(json.dumps(committed))
        regressed = fresh_payload(1_000.0, 500.0)  # -90% serving
        with pytest.raises(SystemExit) as exc:
            bench._guarded_save(regressed, str(out))
        assert exc.value.code == 1
        # Baseline untouched; fresh numbers parked for inspection.
        assert json.loads(out.read_text()) == committed
        rejected = tmp_path / "BENCH.rejected.json"
        assert json.loads(rejected.read_text()) == regressed
        assert "regeneration guard" in capsys.readouterr().out

    def test_passing_regeneration_replaces(self, bench, tmp_path):
        out = tmp_path / "BENCH.json"
        out.write_text(json.dumps(fresh_payload(1_000.0, 500.0)))
        improved = fresh_payload(1_200.0, 600.0)
        bench._guarded_save(improved, str(out))
        assert json.loads(out.read_text()) == improved
        assert not (tmp_path / "BENCH.rejected.json").exists()

    def test_run_bench_routes_through_the_guard(self, bench,
                                                tmp_path,
                                                monkeypatch):
        out = tmp_path / "BENCH.json"
        committed = fresh_payload(10_000.0, 500.0)
        out.write_text(json.dumps(committed))
        monkeypatch.setattr(
            bench, "_run_sections",
            lambda: ("tables", fresh_payload(1_000.0, 500.0)))
        with pytest.raises(SystemExit):
            bench.run_bench(str(out))
        assert json.loads(out.read_text()) == committed


class TestTrajectoryGate:
    """--trajectory check compares fresh numbers against the *best*
    snapshot in the append-only store."""

    def _store(self, bench, tmp_path, *payloads):
        from repro.observe import trajectory
        store = tmp_path / "store"
        for i, payload in enumerate(payloads):
            src = tmp_path / f"src{i}.json"
            src.write_text(json.dumps(payload))
            trajectory.append(src, store_dir=store, label=f"pr{i}")
        return store

    def test_empty_store_passes(self, bench, canned_measurers,
                                tmp_path, capsys):
        assert bench.trajectory_check(
            store_dir=str(tmp_path / "missing")) == 0
        assert "nothing to gate against" in capsys.readouterr().out

    def test_regression_against_best_fails(self, bench,
                                           canned_measurers,
                                           tmp_path, capsys):
        # Weakest-first history: the gate must pick the 10k snapshot,
        # not the latest one, so measured 1k (-90%) fails.
        store = self._store(
            bench, tmp_path,
            fresh_payload(10_000.0, 500.0),
            fresh_payload(1_000.0, 500.0))
        assert bench.trajectory_check(store_dir=str(store)) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_within_tolerance_of_best_passes(self, bench,
                                             canned_measurers,
                                             tmp_path):
        store = self._store(bench, tmp_path,
                            fresh_payload(1_100.0, 550.0))
        assert bench.trajectory_check(store_dir=str(store)) == 0

    def test_append_records_and_renders(self, bench, tmp_path,
                                        capsys):
        src = tmp_path / "BENCH.json"
        src.write_text(json.dumps(fresh_payload(1_000.0, 500.0)))
        store = tmp_path / "store"
        assert bench.trajectory_append(str(src),
                                       store_dir=str(store),
                                       label="pr8") == 0
        assert (store / "0001-pr8.json").exists()
        svg = (store / "trajectory.svg").read_text()
        assert svg.startswith("<svg")
        assert "serving_replay/rmi" in svg
