"""Property tests for the trace generators (ISSUE 3 satellite).

Three contracts:

* **cross-process determinism** — a trace regenerated in a separate
  interpreter (fresh ``PYTHONHASHSEED``, so any accidental use of the
  salted builtin ``hash`` would change the stream) carries the same
  checksum;
* **distribution sanity** — zipfian skew and hotspot concentration
  actually hold, across seeds;
* **replay idempotence** — generating and replaying a trace twice
  yields identical metrics.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    OP_QUERY,
    ServingSimulator,
    TraceSpec,
    generate_trace,
    make_backend,
)

SPECS = st.builds(
    TraceSpec,
    n_base_keys=st.sampled_from((200, 500)),
    n_ops=st.sampled_from((400, 900)),
    query_mix=st.sampled_from(("uniform", "zipfian", "hotspot")),
    insert_fraction=st.sampled_from((0.0, 0.05)),
    delete_fraction=st.sampled_from((0.0, 0.04)),
    modify_fraction=st.sampled_from((0.0, 0.03)),
    range_fraction=st.sampled_from((0.0, 0.05)),
    seed=st.integers(0, 2**31 - 1),
)


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(spec=SPECS)
    def test_regeneration_is_idempotent(self, spec):
        a, b = generate_trace(spec), generate_trace(spec)
        assert a.checksum() == b.checksum()
        assert np.array_equal(a.kinds, b.kinds)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.aux, b.aux)

    def test_checksum_stable_across_processes(self):
        """A worker process with a different hash salt must draw the
        identical trace — the property resumable sweeps depend on."""
        spec = TraceSpec(n_base_keys=300, n_ops=600,
                         query_mix="zipfian",
                         poison_schedule="burst",
                         poison_percentage=10.0, seed=91)
        local = generate_trace(spec).checksum()
        script = (
            "from repro.workload import TraceSpec, generate_trace;"
            f"spec = TraceSpec(n_base_keys=300, n_ops=600,"
            f" query_mix='zipfian', poison_schedule='burst',"
            f" poison_percentage=10.0, seed=91);"
            "print(generate_trace(spec).checksum())")
        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        for salt in ("0", "12345"):
            env = dict(os.environ,
                       PYTHONPATH=src, PYTHONHASHSEED=salt)
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            assert int(out.stdout.strip()) == local, salt

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_seed_changes_the_stream(self, seed):
        base = generate_trace(TraceSpec(n_base_keys=200, n_ops=400,
                                        seed=5))
        other = generate_trace(TraceSpec(n_base_keys=200, n_ops=400,
                                         seed=seed))
        if seed != 5:
            assert base.checksum() != other.checksum()


class TestDistributionSanity:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_zipfian_head_beats_uniform_tail(self, seed):
        spec = TraceSpec(n_base_keys=300, n_ops=3000,
                         query_mix="zipfian", seed=seed)
        queries = generate_trace(spec).keys[
            generate_trace(spec).kinds == OP_QUERY]
        _, counts = np.unique(queries, return_counts=True)
        counts = np.sort(counts)[::-1]
        top_share = counts[:10].sum() / counts.sum()
        # Uniform would give 10 keys ~ 10/300 = 3.3%; zipf s=1.2 gives
        # a far heavier head.
        assert top_share > 0.15

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_hotspot_concentration(self, seed):
        spec = TraceSpec(n_base_keys=300, n_ops=3000,
                         query_mix="hotspot", hotspot_fraction=0.1,
                         hotspot_weight=0.9, seed=seed)
        trace = generate_trace(spec)
        queries = trace.keys[trace.kinds == OP_QUERY]
        width = int(0.1 * spec.domain().size)
        hits = max(
            int(((queries >= lo) & (queries < lo + width)).sum())
            for lo in np.unique(queries))
        assert hits / queries.size > 0.5

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_uniform_has_no_heavy_head(self, seed):
        spec = TraceSpec(n_base_keys=300, n_ops=3000,
                         query_mix="uniform", seed=seed)
        trace = generate_trace(spec)
        queries = trace.keys[trace.kinds == OP_QUERY]
        _, counts = np.unique(queries, return_counts=True)
        top_share = np.sort(counts)[::-1][:10].sum() / counts.sum()
        assert top_share < 0.15


class TestReplayIdempotence:
    @settings(max_examples=5, deadline=None)
    @given(spec=SPECS, backend=st.sampled_from(("binary", "rmi")))
    def test_replay_twice_identical(self, spec, backend):
        trace = generate_trace(spec)
        a = ServingSimulator(
            make_backend(backend, trace.base_keys), trace).run()
        b = ServingSimulator(
            make_backend(backend, trace.base_keys), trace).run()
        assert a.to_dict() == b.to_dict()
        for name in a.series:
            assert np.array_equal(a.series[name], b.series[name],
                                  equal_nan=True)
