"""Unit tests for trace specs and generation."""

import numpy as np
import pytest

from repro.workload.trace import (
    OP_DELETE,
    OP_INSERT,
    OP_MODIFY,
    OP_POISON,
    OP_QUERY,
    OP_RANGE,
    TENANT_LAYOUTS,
    TraceSpec,
    generate_trace,
)


class TestTraceSpec:
    def test_digest_stable_across_constructions(self):
        a = TraceSpec(n_base_keys=500, n_ops=1000, seed=3)
        b = TraceSpec(seed=3, n_ops=1000, n_base_keys=500)
        assert a.digest == b.digest
        assert a.canonical_json() == b.canonical_json()

    def test_digest_pinned(self):
        """The canonical serialisation is a contract: checkpointed
        workload cells reference scenarios by this digest."""
        assert TraceSpec().digest == TraceSpec().digest
        assert len(TraceSpec().digest) == 16
        int(TraceSpec().digest, 16)  # hex

    def test_digest_changes_with_any_field(self):
        base = TraceSpec()
        assert TraceSpec(seed=999).digest != base.digest
        assert TraceSpec(query_mix="zipfian").digest != base.digest

    def test_rejects_unknown_mix(self):
        with pytest.raises(ValueError, match="query mix"):
            TraceSpec(query_mix="gaussian")

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            TraceSpec(poison_schedule="tsunami", poison_percentage=5.0)

    def test_schedule_and_percentage_must_agree(self):
        with pytest.raises(ValueError, match="poison_percentage"):
            TraceSpec(poison_schedule="drip")  # percentage left at 0
        with pytest.raises(ValueError, match="poison_percentage"):
            TraceSpec(poison_percentage=5.0)  # schedule left at none

    def test_rejects_budget_that_crowds_out_queries(self):
        with pytest.raises(ValueError, match="no queries"):
            TraceSpec(n_base_keys=10_000, n_ops=100,
                      poison_schedule="oneshot", poison_percentage=20.0)

    def test_rejects_draining_mutations(self):
        with pytest.raises(ValueError, match="half"):
            TraceSpec(n_base_keys=100, n_ops=2_000,
                      delete_fraction=0.5)

    def test_op_counts_sum_to_n_ops(self):
        spec = TraceSpec(insert_fraction=0.1, delete_fraction=0.05,
                         modify_fraction=0.05, range_fraction=0.1,
                         poison_schedule="burst",
                         poison_percentage=10.0)
        assert sum(spec.op_counts().values()) == spec.n_ops

    def test_validation_errors_name_field_and_value(self):
        """Every rejection points at the offending field and carries
        its value — the ISSUE 5 debuggability bugfix."""
        cases = [
            (dict(n_base_keys=0), "n_base_keys", "0"),
            (dict(domain_factor=1), "domain_factor", "1"),
            (dict(n_ops=0), "n_ops", "0"),
            (dict(query_mix="gaussian"), "query_mix", "gaussian"),
            (dict(poison_schedule="tsunami", poison_percentage=5.0),
             "poison_schedule", "tsunami"),
            (dict(poison_percentage=25.0, poison_schedule="drip"),
             "poison_percentage", "25"),
            (dict(insert_fraction=0.7), "insert_fraction", "0.7"),
            (dict(burst_count=0), "burst_count", "0"),
            (dict(n_tenants=0), "n_tenants", "0"),
            (dict(tenant_layout="mesh", n_tenants=2),
             "tenant_layout", "mesh"),
            (dict(tenant_skew=0.0, n_tenants=2), "tenant_skew", "0"),
            (dict(slo_p95=-1.0), "slo_p95", "-1"),
            (dict(slo_tier_factor=0.0), "slo_tier_factor", "0"),
            (dict(n_base_keys=10, n_tenants=4,
                  tenant_layout="ranges"), "n_base_keys", "10"),
            (dict(delete_fraction=0.5, n_base_keys=100, n_ops=2_000),
             "delete_fraction", "100"),
        ]
        for overrides, field, value in cases:
            with pytest.raises(ValueError) as err:
                TraceSpec(**overrides)
            message = str(err.value)
            assert field in message, overrides
            assert value in message, overrides


class TestMultiTenancy:
    SPEC = TraceSpec(n_base_keys=600, n_tenants=3,
                     tenant_layout="skewed", tenant_skew=0.5,
                     slo_p95=8.0, slo_tier_factor=1.5, seed=7)

    def test_tenant_defaults_keep_legacy_digest(self):
        """The backward-compatibility contract: single-tenant specs
        serialise exactly as before multi-tenancy existed."""
        spec = TraceSpec()
        assert "n_tenants" not in spec.spec()
        explicit = TraceSpec(n_tenants=1, tenant_layout="shared")
        assert explicit.digest == spec.digest

    def test_tenant_fields_enter_the_digest_when_set(self):
        assert self.SPEC.digest != TraceSpec(n_base_keys=600,
                                             seed=7).digest
        assert "n_tenants" in self.SPEC.spec()

    def test_ranges_partition_the_domain(self):
        ranges = self.SPEC.tenant_ranges()
        assert len(ranges) == 3
        assert ranges[0][0] == self.SPEC.domain().lo
        assert ranges[-1][1] == self.SPEC.domain().hi
        for (a_lo, a_hi), (b_lo, b_hi) in zip(ranges, ranges[1:]):
            assert b_lo == a_hi + 1

    def test_skewed_weights_are_geometric(self):
        weights = self.SPEC.tenant_weights()
        assert weights[0] > weights[1] > weights[2]
        assert weights.sum() == pytest.approx(1.0)
        assert weights[1] / weights[0] == pytest.approx(0.5)

    def test_key_counts_apportion_exactly(self):
        counts = self.SPEC.tenant_key_counts()
        assert counts.sum() == self.SPEC.n_base_keys
        assert (counts >= 1).all()

    def test_tenant_of_matches_ranges(self):
        trace = generate_trace(self.SPEC)
        tenants = self.SPEC.tenant_of(trace.base_keys)
        for tenant, (lo, hi) in enumerate(self.SPEC.tenant_ranges()):
            own = trace.base_keys[tenants == tenant]
            assert (own >= lo).all() and (own <= hi).all()
            assert own.size == self.SPEC.tenant_key_counts()[tenant]

    def test_shared_layout_attribution_is_stable_and_covering(self):
        spec = TraceSpec(n_base_keys=600, n_tenants=4,
                         tenant_layout="shared", seed=7)
        trace = generate_trace(spec)
        tenants = spec.tenant_of(trace.base_keys)
        assert np.array_equal(tenants, spec.tenant_of(trace.base_keys))
        assert set(np.unique(tenants)) == {0, 1, 2, 3}

    def test_single_tenant_everything_is_tenant_zero(self):
        spec = TraceSpec()
        assert (spec.tenant_of(np.arange(50)) == 0).all()
        assert spec.tenant_slos() == (float("inf"),)

    def test_slo_tiers(self):
        assert self.SPEC.tenant_slos() == (8.0, 12.0, 18.0)
        no_slo = TraceSpec(n_base_keys=600, n_tenants=3,
                           tenant_layout="ranges", seed=7)
        assert no_slo.tenant_slos() == (float("inf"),) * 3

    def test_trace_tenants_align_with_ops(self):
        trace = generate_trace(self.SPEC)
        assert np.array_equal(trace.tenants(),
                              self.SPEC.tenant_of(trace.keys))

    def test_all_layouts_generate(self):
        for layout in TENANT_LAYOUTS:
            spec = TraceSpec(n_base_keys=300, n_ops=600, n_tenants=3,
                             tenant_layout=layout, seed=3)
            trace = generate_trace(spec)
            assert trace.base_keys.size == 300
            assert np.unique(trace.base_keys).size == 300

    def test_overpacked_tenant_range_rejected_up_front(self):
        """A skew that packs one tenant denser than its range can
        hold must fail at spec time, naming the knobs — never deep
        inside generation."""
        with pytest.raises(ValueError, match="tenant_skew"):
            TraceSpec(n_base_keys=100, domain_factor=2, n_tenants=4,
                      tenant_layout="skewed", tenant_skew=0.05)


class TestGeneration:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(TraceSpec(
            n_base_keys=400, n_ops=800, query_mix="uniform",
            insert_fraction=0.1, delete_fraction=0.05,
            modify_fraction=0.05, range_fraction=0.05,
            poison_schedule="drip", poison_percentage=10.0, seed=11))

    def test_counts_match_spec(self, trace):
        assert trace.counts() == trace.spec.op_counts()
        assert trace.n_ops == trace.spec.n_ops

    def test_base_keys_sorted_unique_in_domain(self, trace):
        keys = trace.base_keys
        assert (np.diff(keys) > 0).all()
        assert keys.size == trace.spec.n_base_keys
        domain = trace.spec.domain()
        assert keys.min() >= domain.lo and keys.max() <= domain.hi

    def test_poison_keys_are_fresh_and_in_domain(self, trace):
        poison = trace.poison_keys()
        domain = trace.spec.domain()
        assert poison.size == trace.spec.poison_budget()
        assert np.intersect1d(poison, trace.base_keys).size == 0
        assert poison.min() >= domain.lo and poison.max() <= domain.hi

    def test_inserted_keys_never_collide(self, trace):
        """No insert/poison/modify-new key duplicates the base keys or
        each other — the invariant backends' insert paths rely on."""
        fresh = np.concatenate([
            trace.keys[trace.kinds == OP_INSERT],
            trace.keys[trace.kinds == OP_POISON],
            trace.aux[trace.kinds == OP_MODIFY],
        ])
        assert np.unique(fresh).size == fresh.size
        assert np.intersect1d(fresh, trace.base_keys).size == 0

    def test_mutation_victims_are_distinct_base_keys(self, trace):
        victims = np.concatenate([
            trace.keys[trace.kinds == OP_DELETE],
            trace.keys[trace.kinds == OP_MODIFY],
        ])
        assert np.unique(victims).size == victims.size
        assert np.isin(victims, trace.base_keys).all()

    def test_queries_drawn_from_base(self, trace):
        queries = trace.keys[trace.kinds == OP_QUERY]
        assert np.isin(queries, trace.base_keys).all()

    def test_range_bounds_ordered(self, trace):
        lo = trace.keys[trace.kinds == OP_RANGE]
        hi = trace.aux[trace.kinds == OP_RANGE]
        assert (hi >= lo).all()

    def test_arrays_read_only(self, trace):
        with pytest.raises(ValueError):
            trace.kinds[0] = OP_QUERY


class TestSchedules:
    def _positions(self, schedule, **kwargs):
        spec = TraceSpec(n_base_keys=500, n_ops=1000,
                         poison_schedule=schedule,
                         poison_percentage=10.0, **kwargs)
        trace = generate_trace(spec)
        return np.nonzero(trace.kinds == OP_POISON)[0], spec

    def test_oneshot_is_one_contiguous_block(self):
        positions, spec = self._positions("oneshot")
        assert positions.size == spec.poison_budget()
        assert (np.diff(positions) == 1).all()

    def test_drip_is_evenly_spread(self):
        positions, spec = self._positions("drip")
        gaps = np.diff(positions)
        # Even spacing: every gap within one slot of the ideal.
        ideal = spec.n_ops / spec.poison_budget()
        assert gaps.min() >= int(ideal) - 1
        assert gaps.max() <= int(ideal) + 1

    def test_burst_makes_the_requested_runs(self):
        positions, spec = self._positions("burst", burst_count=4)
        gaps = np.diff(positions)
        # 4 contiguous runs => exactly 3 gaps larger than 1.
        assert (gaps > 1).sum() == 3
        assert positions.size == spec.poison_budget()


class TestQueryMixes:
    def test_zipfian_is_skewed(self):
        trace = generate_trace(TraceSpec(
            n_base_keys=500, n_ops=4000, query_mix="zipfian", seed=23))
        queries = trace.keys[trace.kinds == OP_QUERY]
        _, counts = np.unique(queries, return_counts=True)
        counts = np.sort(counts)[::-1]
        # Head dominance: the top key alone far exceeds the uniform
        # expectation of n_queries / n_base ~ 8.
        assert counts[0] > 40

    def test_hotspot_hits_its_range(self):
        spec = TraceSpec(n_base_keys=500, n_ops=4000,
                         query_mix="hotspot", hotspot_fraction=0.1,
                         hotspot_weight=0.9, seed=29)
        trace = generate_trace(spec)
        queries = trace.keys[trace.kinds == OP_QUERY]
        width = int(0.1 * spec.domain().size)
        # Find the densest window of that width among the queries.
        order = np.sort(queries)
        best = 0
        for lo in np.unique(order):
            best = max(best, int(((order >= lo)
                                  & (order < lo + width)).sum()))
        assert best / queries.size > 0.8

    def test_uniform_is_not_skewed(self):
        trace = generate_trace(TraceSpec(
            n_base_keys=500, n_ops=4000, query_mix="uniform", seed=31))
        queries = trace.keys[trace.kinds == OP_QUERY]
        _, counts = np.unique(queries, return_counts=True)
        assert counts.max() < 30  # mean 8; generous ceiling
