"""Columnar fast path vs scalar reference: the parity contract.

The serving simulator's columnar tick pipeline (the default) must be
**bit-identical** to the one-op-at-a-time scalar path — same series
arrays, same finals, same retrain timing, same backend end state.
These tests pin that contract across the scenario grid: fixed-tick
and rate-driven replays, closed-loop runs with an adversary and a
defense tuner, and every registered backend (including the hazard
fallback and the BTree scalar override).

Satellite regressions ride along: probe-sample validation, the
poison-budget ledger (``injected_poison + discarded_poison`` equals
what the adversary emitted), and a re-chunking invariance property.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    BACKENDS,
    AdaptiveAdversary,
    ServingSimulator,
    TraceSpec,
    TrimAutoTuner,
    generate_rate_driven_trace,
    generate_trace,
    make_adversary,
    make_arrival,
    make_backend,
)

MIX = TraceSpec(n_base_keys=500, n_ops=1_500, insert_fraction=0.12,
                delete_fraction=0.08, modify_fraction=0.05,
                range_fraction=0.08, seed=23)


def assert_reports_identical(a, b):
    da, db = a.to_dict(), b.to_dict()
    assert da == db, {k: (da[k], db[k]) for k in da if da[k] != db[k]}
    assert sorted(a.series) == sorted(b.series)
    for name in a.series:
        assert np.array_equal(a.series[name], b.series[name],
                              equal_nan=True), name


def run_both(spec_or_trace, backend, make_ports=None, **kwargs):
    trace = (generate_trace(spec_or_trace)
             if isinstance(spec_or_trace, TraceSpec)
             else spec_or_trace)
    reports = []
    for columnar in (True, False):
        b = make_backend(backend, trace.base_keys,
                         rebuild_threshold=0.12)
        ports = make_ports(trace) if make_ports else {}
        reports.append(ServingSimulator(
            b, trace, columnar=columnar, **ports, **kwargs).run())
    return reports


class TestServingParity:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_fixed_tick(self, backend):
        col, ref = run_both(MIX, backend, tick_ops=200)
        assert_reports_identical(col, ref)

    @pytest.mark.parametrize("backend", ("rmi", "dynamic"))
    def test_odd_tick_sizes(self, backend):
        for tick_ops in (37, 1):
            col, ref = run_both(MIX, backend, tick_ops=tick_ops)
            assert_reports_identical(col, ref)

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_rate_driven(self, backend):
        sizes = make_arrival("poisson", rate=120, seed=9).tick_sizes(8)
        spec = TraceSpec(n_base_keys=400, n_ops=int(sizes.sum()),
                         insert_fraction=0.08, delete_fraction=0.05,
                         range_fraction=0.05, seed=9)
        trace = generate_rate_driven_trace(spec, sizes)
        col, ref = run_both(trace, backend, tick_sizes=sizes)
        assert_reports_identical(col, ref)

    @pytest.mark.parametrize("backend", ("rmi", "dynamic"))
    def test_closed_loop_adversary_and_tuner(self, backend):
        spec = TraceSpec(n_base_keys=500, n_ops=1_600,
                         insert_fraction=0.10, delete_fraction=0.05,
                         seed=31)

        def make_ports(trace):
            return dict(
                adversary=make_adversary(
                    "escalate", trace.base_keys,
                    spec.domain(), 60, 7),
                tuner=TrimAutoTuner(base_threshold=0.12))

        col, ref = run_both(spec, backend, tick_ops=100,
                            make_ports=make_ports)
        assert_reports_identical(col, ref)
        assert col.injected_poison > 0  # the loop actually closed

    def test_backend_end_state_matches(self):
        trace = generate_trace(MIX)
        backends = []
        for columnar in (True, False):
            b = make_backend("dynamic", trace.base_keys,
                             rebuild_threshold=0.12)
            ServingSimulator(b, trace, tick_ops=200,
                             columnar=columnar).run()
            backends.append(b)
        col, ref = backends
        assert col.retrain_count == ref.retrain_count
        assert col.pending_updates == ref.pending_updates
        assert np.array_equal(col.live_keys(), ref.live_keys())


class TestProbeSampleValidation:
    def test_zero_sample_size_rejected(self):
        trace = generate_trace(MIX)
        backend = make_backend("binary", trace.base_keys)
        with pytest.raises(ValueError, match="probe_sample_size"):
            ServingSimulator(backend, trace, probe_sample_size=0)

    def test_traceless_base_keys_rejected(self):
        """A trace with no base keys cannot seed the amplification
        baseline; the constructor must say so instead of letting a
        NaN baseline blank the series."""
        spec = TraceSpec(n_base_keys=200, n_ops=300, seed=5)
        trace = generate_trace(spec)
        empty = dataclasses.replace(
            trace, base_keys=np.empty(0, dtype=np.int64))
        backend = make_backend("binary", trace.base_keys)
        with pytest.raises(ValueError, match="no base keys"):
            ServingSimulator(backend, empty)


class _GuardlessAdversary(AdaptiveAdversary):
    """Emits on every tick including the last, so some of its budget
    lands after the stream ends — exactly the discard the ledger
    must account for."""

    name = "guardless"

    def __init__(self, base_keys, domain, budget, seed, per_tick=7):
        super().__init__(base_keys, domain, budget, seed)
        self._per_tick = per_tick
        self._cursor = int(domain.hi) + 1

    def __call__(self, obs):  # bypass the final-tick guard
        if self.remaining <= 0:
            return None
        count = min(self._per_tick, self.remaining)
        keys = np.arange(self._cursor, self._cursor + count,
                         dtype=np.int64)
        self._cursor += count
        self._emitted += count
        return keys


class TestPoisonLedger:
    @pytest.mark.parametrize("columnar", (True, False))
    def test_budget_reconciles_with_discards(self, columnar):
        spec = TraceSpec(n_base_keys=400, n_ops=900, seed=11)
        trace = generate_trace(spec)
        adv = _GuardlessAdversary(trace.base_keys, spec.domain(),
                                  budget=1_000, seed=3)
        backend = make_backend("rmi", trace.base_keys,
                               rebuild_threshold=0.12)
        report = ServingSimulator(backend, trace, tick_ops=200,
                                  adversary=adv,
                                  columnar=columnar).run()
        # The final observation's keys have no tick left to land in.
        assert report.discarded_poison > 0
        assert (adv._emitted
                == report.injected_poison + report.discarded_poison)
        assert report.to_dict()["discarded_poison"] \
            == report.discarded_poison

    def test_guarded_adversaries_never_discard(self):
        spec = TraceSpec(n_base_keys=400, n_ops=900, seed=11)
        trace = generate_trace(spec)
        adv = make_adversary("oblivious", trace.base_keys,
                             spec.domain(), 40, 7)
        backend = make_backend("rmi", trace.base_keys,
                               rebuild_threshold=0.12)
        report = ServingSimulator(backend, trace, tick_ops=200,
                                  adversary=adv).run()
        assert report.discarded_poison == 0
        assert report.injected_poison == adv.budget


class TestRechunkInvariance:
    """Replay metrics are a function of the op stream, not of how the
    stream is cut into ticks — on both serving paths."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           tick_ops=st.sampled_from((50, 81, 200)),
           backend=st.sampled_from(("binary", "rmi", "dynamic")),
           columnar=st.booleans())
    def test_totals_survive_rechunking(self, seed, tick_ops, backend,
                                       columnar):
        spec = TraceSpec(n_base_keys=300, n_ops=600,
                         insert_fraction=0.10, delete_fraction=0.05,
                         range_fraction=0.05, seed=seed)
        trace = generate_trace(spec)
        runs = []
        for ticks in (tick_ops, trace.n_ops):
            b = make_backend(backend, trace.base_keys,
                             rebuild_threshold=0.12)
            runs.append(ServingSimulator(
                b, trace, tick_ops=ticks, columnar=columnar).run())
        a, whole = runs
        # Tick-size-independent aggregates: the probe stream and the
        # query hit totals are identical, so the finals agree.
        assert a.p50 == whole.p50
        assert a.p95 == whole.p95
        assert a.p99 == whole.p99
        assert a.mean_probes == whole.mean_probes
        assert a.found_fraction == whole.found_fraction
        assert a.retrains == whole.retrains
