"""Property tests for the closed-loop policies (ISSUE 4 satellite).

Three contracts:

* **arrival models** — every rate is non-negative, regeneration is
  deterministic (same parameters ⇒ same counts, random-access equals
  sequential, and a fresh interpreter under a different hash salt
  draws the identical stream), and the diurnal ramp is *exactly*
  periodic;
* **tuner monotonicity** — more observed poison damage (a pointwise
  higher amplification history) can never loosen the TRIM screen;
* **adversary ledgers** — no policy ever exceeds its budget, for any
  observation stream.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.keyset import Domain
from repro.workload import (
    ADVERSARIES,
    ARRIVALS,
    TickObservation,
    TrimAutoTuner,
    make_adversary,
    make_arrival,
)

DOMAIN = Domain.of_size(5_000)
BASE = np.arange(10, 5_000, 9, dtype=np.int64)

ARRIVAL_CASES = st.sampled_from(sorted(ARRIVALS))
RATES = st.sampled_from((1.0, 7.5, 40.0, 300.0))
SEEDS = st.integers(0, 2**31 - 1)


def _arrival(name, rate, seed):
    kwargs = {"period": 6, "amplitude": 1.0} if name == "diurnal" \
        else {}
    return make_arrival(name, rate=rate, seed=seed, **kwargs)


def _obs(tick, amplification, n_keys=600):
    return TickObservation(
        tick=tick, ticks_total=50, p50=3.0, p95=5.0, p99=7.0,
        mean_probes=3.0, error_bound=8.0, retrains=0,
        retrains_delta=0, amplification=amplification,
        n_keys=n_keys, injected_total=0)


class TestArrivalProperties:
    @settings(max_examples=40, deadline=None)
    @given(name=ARRIVAL_CASES, rate=RATES, seed=SEEDS)
    def test_rates_are_non_negative(self, name, rate, seed):
        sizes = _arrival(name, rate, seed).tick_sizes(48)
        assert (sizes >= 0).all()

    @settings(max_examples=25, deadline=None)
    @given(name=ARRIVAL_CASES, rate=RATES, seed=SEEDS)
    def test_regeneration_is_deterministic(self, name, rate, seed):
        a = _arrival(name, rate, seed).tick_sizes(30)
        b = _arrival(name, rate, seed).tick_sizes(30)
        assert np.array_equal(a, b)

    @settings(max_examples=25, deadline=None)
    @given(name=ARRIVAL_CASES, rate=RATES, seed=SEEDS,
           tick=st.integers(0, 100))
    def test_counts_are_random_access(self, name, rate, seed, tick):
        """Tick t's count never depends on which ticks came before —
        the property that makes resumed runs regenerate identical
        streams."""
        model = _arrival(name, rate, seed)
        assert model.ops_for_tick(tick) == \
            _arrival(name, rate, seed).tick_sizes(tick + 1)[-1]

    @settings(max_examples=25, deadline=None)
    @given(rate=RATES, period=st.integers(2, 24),
           amplitude=st.floats(0.0, 1.0, allow_nan=False),
           tick=st.integers(0, 200))
    def test_diurnal_ramp_is_exactly_periodic(self, rate, period,
                                              amplitude, tick):
        model = make_arrival("diurnal", rate=rate, period=period,
                             amplitude=amplitude)
        assert model.ops_for_tick(tick) == \
            model.ops_for_tick(tick + period)

    def test_poisson_counts_stable_across_processes(self):
        """A worker with a different hash salt must draw identical
        arrival counts — stable_seed_words, never builtin hash."""
        local = make_arrival("poisson", rate=120,
                             seed=77).tick_sizes(32)
        script = (
            "from repro.workload import make_arrival;"
            "print(make_arrival('poisson', rate=120, seed=77)"
            ".tick_sizes(32).tolist())")
        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        for salt in ("0", "12345"):
            env = dict(os.environ,
                       PYTHONPATH=src, PYTHONHASHSEED=salt)
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            assert eval(out.stdout.strip()) == local.tolist(), salt


class TestTunerMonotonicity:
    @settings(max_examples=50, deadline=None)
    @given(
        amps=st.lists(st.floats(1.0, 4.0, allow_nan=False,
                                allow_infinity=False),
                      min_size=1, max_size=20),
        bumps=st.lists(st.floats(0.0, 2.0, allow_nan=False,
                                 allow_infinity=False),
                       min_size=1, max_size=20),
    )
    def test_more_poison_never_loosens_the_screen(self, amps, bumps):
        """The pinned contract: feed two observation streams that
        differ only in amplification, the dominating one pointwise
        higher — its keep-fraction decisions are pointwise <=."""
        n = min(len(amps), len(bumps))
        lo, hi = TrimAutoTuner(), TrimAutoTuner()
        for tick in range(n):
            keep_lo = lo(_obs(tick, amps[tick])).keep_fraction
            keep_hi = hi(_obs(tick,
                              amps[tick] + bumps[tick])).keep_fraction
            assert keep_hi <= keep_lo + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(amps=st.lists(st.floats(1.0, 5.0, allow_nan=False),
                         min_size=1, max_size=15))
    def test_decisions_stay_inside_the_validated_ranges(self, amps):
        tuner = TrimAutoTuner(base_threshold=0.1, boost=2.5)
        for tick, amp in enumerate(amps):
            decision = tuner(_obs(tick, amp, n_keys=600 + 40 * tick))
            assert 0.0 < decision.keep_fraction <= 1.0
            assert 0.0 < decision.rebuild_threshold <= 0.25


class TestAdversaryLedgers:
    @settings(max_examples=20, deadline=None)
    @given(name=st.sampled_from(sorted(ADVERSARIES)),
           budget=st.integers(1, 150), seed=SEEDS,
           amps=st.lists(st.floats(0.5, 3.0, allow_nan=False),
                         min_size=5, max_size=30))
    def test_budget_never_exceeded(self, name, budget, seed, amps):
        adversary = make_adversary(name, BASE, DOMAIN, budget, seed)
        emitted = 0
        for tick, amp in enumerate(amps):
            keys = adversary(_obs(tick, amp))
            if keys is not None:
                emitted += keys.size
        assert emitted <= budget
        assert emitted == adversary.budget - adversary.remaining
