"""Unit tests for the serving simulator's replay and metrics."""

import json
import math

import numpy as np
import pytest

from repro.workload import (
    BACKENDS,
    ServingSimulator,
    Trace,
    TraceSpec,
    generate_trace,
    last_finite,
    make_backend,
)
from repro.workload.trace import OP_INSERT, OP_QUERY

SPEC = TraceSpec(n_base_keys=500, n_ops=800, query_mix="uniform",
                 insert_fraction=0.05, delete_fraction=0.03,
                 modify_fraction=0.02, range_fraction=0.05,
                 poison_schedule="drip", poison_percentage=10.0,
                 seed=43)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SPEC)


def replay(trace, backend_name, **kwargs):
    backend = make_backend(backend_name, trace.base_keys,
                           rebuild_threshold=0.08)
    return ServingSimulator(backend, trace, **kwargs).run()


@pytest.mark.parametrize("name", sorted(BACKENDS))
class TestReportInvariants:
    def test_percentiles_ordered(self, name, trace):
        report = replay(trace, name)
        assert report.p50 <= report.p95 <= report.p99
        assert report.mean_probes > 0
        assert report.total_probes > 0

    def test_series_aligned_and_complete(self, name, trace):
        report = replay(trace, name, tick_ops=150)
        expected_ticks = -(-trace.n_ops // 150)  # ceil
        assert report.n_ticks == expected_ticks
        for series in report.series.values():
            assert series.size == expected_ticks
        assert (np.diff(report.series["retrains"]) >= 0).all()
        assert report.series["amplification"][0] > 0

    def test_counts_carried(self, name, trace):
        report = replay(trace, name)
        assert report.ops_by_kind == trace.counts()
        assert report.n_ops == trace.n_ops
        assert 0.9 < report.found_fraction <= 1.0
        assert report.final_n_keys > 0
        assert report.wall_seconds > 0

    def test_to_dict_json_safe(self, name, trace):
        import json

        payload = replay(trace, name).to_dict()
        json.dumps(payload)  # must not raise
        assert payload["backend"] == name
        assert payload["spec_digest"] == SPEC.digest


class TestDeterminism:
    def test_identical_reports_on_identical_replays(self, trace):
        a = replay(trace, "rmi")
        b = replay(trace, "rmi")
        assert a.to_dict() == b.to_dict()
        for name in a.series:
            assert np.array_equal(a.series[name], b.series[name],
                                  equal_nan=True)

    def test_batched_replay_equals_op_at_a_time(self, trace):
        """Run batching is an optimisation, not a semantics change:
        a tick size of 1 (no batching possible) must produce the same
        summary as the default batched replay."""
        batched = replay(trace, "rmi", tick_ops=800)
        serial = replay(trace, "rmi", tick_ops=1)
        for key in ("p50", "p95", "p99", "mean_probes", "total_probes",
                    "found_fraction", "retrains", "final_n_keys"):
            assert batched.to_dict()[key] == serial.to_dict()[key]

    @pytest.mark.parametrize("backend", ("rmi", "dynamic"))
    def test_tick_size_invariant_under_mutation_pressure(self,
                                                         backend):
        """Rebuild thresholds must fire at the same op regardless of
        batching: a mutation-heavy trace whose insert runs straddle
        threshold crossings is the case that would diverge if the
        simulator let a backend's batch-level rebuild check decide
        retrain timing."""
        heavy = generate_trace(TraceSpec(
            n_base_keys=300, n_ops=1000, insert_fraction=0.3,
            delete_fraction=0.1, poison_schedule="burst",
            poison_percentage=15.0, seed=3))
        a, b = [ServingSimulator(
            make_backend(backend, heavy.base_keys,
                         rebuild_threshold=0.1),
            heavy, tick_ops=tick).run().to_dict()
            for tick in (1000, 1)]
        for key in ("p50", "p95", "p99", "mean_probes", "total_probes",
                    "found_fraction", "retrains", "final_n_keys",
                    "final_amplification", "max_error_bound"):
            assert a[key] == b[key], key
        assert a["retrains"] >= 5  # pressure actually applied


class TestPoisonVisibility:
    def test_drip_poison_amplifies_learned_lookups(self):
        """By the end of a drip trace the learned index pays more per
        lookup than it did clean; the binary baseline does not care."""
        spec = TraceSpec(n_base_keys=600, n_ops=1200,
                         poison_schedule="drip",
                         poison_percentage=15.0, seed=47)
        trace = generate_trace(spec)
        rmi = replay(trace, "rmi")
        binary = replay(trace, "binary")
        assert rmi.final_amplification > 1.05
        assert binary.final_amplification < 1.05
        assert rmi.retrains >= 1

    def test_retrains_track_dynamic_threshold(self, trace):
        report = replay(trace, "dynamic")
        assert report.retrains >= 1
        assert report.series["retrains"][-1] == report.retrains


class TestValidation:
    def test_bad_tick_ops_rejected(self, trace):
        backend = make_backend("binary", trace.base_keys)
        with pytest.raises(ValueError, match="tick_ops"):
            ServingSimulator(backend, trace, tick_ops=0)


def _hand_trace(kinds, keys, aux=None):
    """A synthetic trace over a tiny arithmetic base keyset."""
    spec = TraceSpec(n_base_keys=64, n_ops=len(kinds), seed=3)
    kinds = np.asarray(kinds, dtype=np.int8)
    keys = np.asarray(keys, dtype=np.int64)
    aux = (np.zeros(kinds.size, dtype=np.int64) if aux is None
           else np.asarray(aux, dtype=np.int64))
    return Trace(spec=spec, base_keys=np.arange(0, 640, 10,
                                                dtype=np.int64),
                 kinds=kinds, keys=keys, aux=aux)


class TestLastFiniteFinals:
    """ISSUE 4 satellite: a read-free tail must never leak NaN into
    the summary fields — finals fall back to the last finite tick."""

    def test_churn_only_tail_keeps_finals_finite(self):
        base = np.arange(0, 640, 10, dtype=np.int64)
        queries = base[np.arange(100) % base.size]
        inserts = np.arange(5, 1005, 10, dtype=np.int64)[:100]
        trace = _hand_trace(
            kinds=[OP_QUERY] * 100 + [OP_INSERT] * 100,
            keys=np.concatenate([queries, inserts]))
        report = ServingSimulator(
            make_backend("rmi", trace.base_keys), trace,
            tick_ops=100).run()
        # The tail tick measured no reads: NaN in the series is the
        # documented per-tick encoding ...
        assert math.isnan(float(report.series["p50"][-1]))
        # ... but every summary field is finite, and the final
        # amplification is the churn-only tick's (finite) reading.
        payload = report.to_dict()
        for field in ("p50", "p95", "p99", "mean_probes",
                      "final_amplification", "max_error_bound"):
            assert isinstance(payload[field], float), field
            assert math.isfinite(payload[field]), field
        assert report.final_amplification == float(
            report.series["amplification"][-1])
        assert "nan" not in json.dumps(payload)

    def test_read_free_trace_falls_back_to_zero(self):
        inserts = np.arange(5, 2005, 10, dtype=np.int64)[:100]
        trace = _hand_trace(kinds=[OP_INSERT] * 100, keys=inserts)
        report = ServingSimulator(
            make_backend("binary", trace.base_keys), trace,
            tick_ops=50).run()
        assert report.p50 == report.p95 == report.p99 == 0.0
        assert report.mean_probes == 0.0
        assert report.found_fraction == 0.0
        assert "nan" not in json.dumps(report.to_dict())

    def test_last_finite_helper(self):
        nan = float("nan")
        assert last_finite([1.0, 2.0, nan]) == 2.0
        assert last_finite([nan, 3.5, nan, nan]) == 3.5
        assert last_finite([nan, nan]) == 0.0
        assert last_finite([], default=1.0) == 1.0
        assert last_finite([float("inf"), 4.0, nan]) == 4.0
