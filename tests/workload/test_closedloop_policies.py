"""Unit tests for the closed-loop policies and the feedback ports."""

import math

import numpy as np
import pytest

from repro.data.keyset import Domain
from repro.data.synthetic import uniform_keyset
from repro.workload import (
    ADVERSARIES,
    ARRIVALS,
    ServingSimulator,
    TickObservation,
    TraceSpec,
    TrimAutoTuner,
    TunerDecision,
    generate_rate_driven_trace,
    make_adversary,
    make_arrival,
    make_backend,
)

DOMAIN = Domain.of_size(8_000)


@pytest.fixture(scope="module")
def base_keys():
    rng = np.random.default_rng(91)
    return uniform_keyset(600, DOMAIN, rng).keys


def obs(tick=0, ticks_total=10, p95=5.0, amplification=1.0,
        retrains=0, retrains_delta=0, n_keys=600, injected_total=0):
    return TickObservation(
        tick=tick, ticks_total=ticks_total, p50=p95 - 1.0, p95=p95,
        p99=p95 + 1.0, mean_probes=p95 - 2.0, error_bound=8.0,
        retrains=retrains, retrains_delta=retrains_delta,
        amplification=amplification, n_keys=n_keys,
        injected_total=injected_total)


class TestArrivalModels:
    def test_registry_names_match_classes(self):
        for name, cls in ARRIVALS.items():
            assert cls.name == name

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival"):
            make_arrival("bursty", rate=10)

    def test_constant_is_flat(self):
        sizes = make_arrival("constant", rate=50).tick_sizes(6)
        assert sizes.dtype == np.int64
        assert (sizes == 50).all()

    def test_poisson_varies_but_averages_near_rate(self):
        sizes = make_arrival("poisson", rate=100, seed=3).tick_sizes(
            200)
        assert sizes.min() >= 0
        assert len(set(sizes.tolist())) > 1
        assert abs(sizes.mean() - 100) < 5

    def test_diurnal_swings_around_the_base_rate(self):
        arrival = make_arrival("diurnal", rate=100, period=8,
                               amplitude=0.5)
        sizes = arrival.tick_sizes(8)
        assert sizes.max() > 100 > sizes.min()
        assert abs(sizes.mean() - 100) < 10

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            make_arrival("constant", rate=0)
        with pytest.raises(ValueError, match="amplitude"):
            make_arrival("diurnal", rate=10, amplitude=1.5)
        with pytest.raises(ValueError, match="period"):
            make_arrival("diurnal", rate=10, period=1)
        with pytest.raises(ValueError, match="non-negative"):
            make_arrival("poisson", rate=10).ops_for_tick(-1)
        with pytest.raises(ValueError, match="at least one tick"):
            make_arrival("constant", rate=10).tick_sizes(0)


class TestAdversaries:
    def test_registry_names_match_classes(self):
        for name, cls in ADVERSARIES.items():
            assert cls.name == name
        assert "oblivious" in ADVERSARIES

    def test_unknown_adversary_rejected(self, base_keys):
        with pytest.raises(ValueError, match="unknown adversary"):
            make_adversary("ddos", base_keys, DOMAIN, 10, 1)

    @pytest.mark.parametrize("name", sorted(ADVERSARIES))
    def test_budget_is_a_hard_cap(self, name, base_keys):
        adversary = make_adversary(name, base_keys, DOMAIN, 37, 5)
        emitted = 0
        for tick in range(20):
            keys = adversary(obs(tick=tick, ticks_total=20,
                                 amplification=1.0))
            emitted += 0 if keys is None else keys.size
        assert emitted <= 37
        assert adversary.remaining == adversary.budget - emitted

    @pytest.mark.parametrize("name", sorted(ADVERSARIES))
    def test_nothing_emitted_at_the_final_tick(self, name, base_keys):
        adversary = make_adversary(name, base_keys, DOMAIN, 20, 5)
        assert adversary(obs(tick=9, ticks_total=10)) is None

    def test_oblivious_paces_evenly_and_ignores_feedback(self,
                                                         base_keys):
        adversary = make_adversary("oblivious", base_keys, DOMAIN,
                                   36, 5)
        doses = [adversary(obs(tick=t, ticks_total=10,
                               amplification=float(t)))
                 for t in range(9)]
        sizes = [d.size for d in doses if d is not None]
        assert sizes == [4] * 9  # ceil(36 / 9), observation-blind

    def test_escalate_doubles_until_target_then_holds(self,
                                                      base_keys):
        adversary = make_adversary("escalate", base_keys, DOMAIN, 200,
                                   5, target_amplification=1.5)
        below = [adversary(obs(tick=t, ticks_total=30,
                               amplification=1.0)).size
                 for t in range(4)]
        assert below == [2, 4, 8, 16]  # doubling ramp
        above = adversary(obs(tick=4, ticks_total=30,
                              amplification=2.0))
        assert above.size == 1  # back to the probe dose

    def test_escalate_dumps_its_remaining_budget_at_endgame(
            self, base_keys):
        adversary = make_adversary("escalate", base_keys, DOMAIN, 50,
                                   5, endgame_ticks=2)
        adversary(obs(tick=0, ticks_total=10))
        remaining = adversary.remaining
        dump = adversary(obs(tick=7, ticks_total=10))
        assert dump.size == remaining
        assert adversary.remaining == 0

    def test_backoff_goes_quiet_after_an_observed_retrain(self,
                                                          base_keys):
        adversary = make_adversary("backoff", base_keys, DOMAIN, 100,
                                   5, dose=8, backoff_ticks=2)
        assert adversary(obs(tick=0, ticks_total=30)).size == 8
        assert adversary(obs(tick=1, ticks_total=30,
                             retrains_delta=1)) is None
        assert adversary(obs(tick=2, ticks_total=30)) is None
        resumed = adversary(obs(tick=3, ticks_total=30))
        assert resumed.size == 4  # halved after detection

    def test_hillclimb_crafts_fresh_unoccupied_keys(self, base_keys):
        adversary = make_adversary("hillclimb", base_keys, DOMAIN, 60,
                                   5, dose=10)
        crafted = []
        p95 = 5.0
        for tick in range(5):
            keys = adversary(obs(tick=tick, ticks_total=20, p95=p95))
            p95 += 1.0  # pretend the placement keeps paying off
            crafted.extend(keys.tolist())
        assert len(crafted) == len(set(crafted))  # never re-emitted
        assert not np.isin(np.asarray(crafted), base_keys).any()
        assert all(DOMAIN.lo <= k <= DOMAIN.hi for k in crafted)

    def test_pool_override_is_released_verbatim(self, base_keys):
        pool = np.arange(7_000, 7_040, dtype=np.int64)
        adversary = make_adversary("oblivious", base_keys, DOMAIN, 40,
                                   5, pool=pool)
        out = []
        for tick in range(19):
            keys = adversary(obs(tick=tick, ticks_total=20))
            if keys is not None:
                out.extend(keys.tolist())
        assert out == pool.tolist()

    def test_budget_must_be_positive(self, base_keys):
        with pytest.raises(ValueError, match="budget"):
            make_adversary("oblivious", base_keys, DOMAIN, 0, 5)


class TestTrimAutoTuner:
    def test_quiet_stream_leaves_the_knobs_alone(self):
        tuner = TrimAutoTuner(base_threshold=0.1)
        for tick in range(8):
            decision = tuner(obs(tick=tick, amplification=1.0,
                                 n_keys=600 + 2 * tick))
        assert decision.keep_fraction == 1.0
        assert decision.rebuild_threshold == pytest.approx(0.1)

    def test_churn_burst_defers_the_rebuild(self):
        tuner = TrimAutoTuner(base_threshold=0.1, boost=2.0,
                              hold_ticks=3)
        tuner(obs(tick=0, n_keys=600))
        tuner(obs(tick=1, n_keys=604))   # establishes the churn EMA
        burst = tuner(obs(tick=2, n_keys=680))  # 76-key spike
        assert burst.rebuild_threshold == pytest.approx(0.2)
        held = tuner(obs(tick=3, n_keys=682))
        assert held.rebuild_threshold == pytest.approx(0.2)

    def test_threshold_decays_back_toward_base(self):
        tuner = TrimAutoTuner(base_threshold=0.1, boost=2.0,
                              hold_ticks=1, decay=0.5)
        tuner(obs(tick=0, n_keys=600))
        tuner(obs(tick=1, n_keys=604))
        tuner(obs(tick=2, n_keys=680))          # burst: held once
        after = [tuner(obs(tick=t, n_keys=680)).rebuild_threshold
                 for t in range(3, 7)]
        assert after == sorted(after, reverse=True)
        assert after[-1] == pytest.approx(0.1, abs=0.01)

    def test_high_amplification_tightens_the_screen(self):
        tuner = TrimAutoTuner(base_threshold=0.1, keep_gain=0.5,
                              keep_deadband=0.2, keep_floor=0.8)
        for tick in range(10):
            decision = tuner(obs(tick=tick, amplification=3.0))
        assert decision.keep_fraction < 1.0
        assert decision.keep_fraction >= 0.8

    def test_validation(self):
        with pytest.raises(ValueError, match="base threshold"):
            TrimAutoTuner(base_threshold=0.0)
        with pytest.raises(ValueError, match="alpha"):
            TrimAutoTuner(alpha=0.0)
        with pytest.raises(ValueError, match="keep floor"):
            TrimAutoTuner(keep_floor=0.0)
        with pytest.raises(ValueError, match="burst factor"):
            TrimAutoTuner(burst_factor=0.5)
        with pytest.raises(ValueError, match="boost"):
            TrimAutoTuner(boost=0.5)
        with pytest.raises(ValueError, match="hold_ticks"):
            TrimAutoTuner(hold_ticks=0)
        with pytest.raises(ValueError, match="decay"):
            TrimAutoTuner(decay=1.0)


class TestClosedLoopSimulator:
    @pytest.fixture(scope="class")
    def scenario(self):
        sizes = make_arrival("poisson", rate=80, seed=9).tick_sizes(8)
        spec = TraceSpec(n_base_keys=400, n_ops=int(sizes.sum()),
                         insert_fraction=0.05, seed=9)
        return generate_rate_driven_trace(spec, sizes), sizes, spec

    def test_tick_sizes_validation(self, scenario):
        trace, sizes, _ = scenario
        backend = make_backend("binary", trace.base_keys)
        with pytest.raises(ValueError, match="sum to"):
            ServingSimulator(backend, trace, tick_sizes=sizes[:-1])
        with pytest.raises(ValueError, match="non-negative"):
            ServingSimulator(backend, trace,
                             tick_sizes=[-1, trace.n_ops + 1])
        with pytest.raises(ValueError, match="non-empty"):
            ServingSimulator(backend, trace, tick_sizes=[])

    def test_rate_driven_ticks_follow_the_arrival_counts(self,
                                                         scenario):
        trace, sizes, _ = scenario
        report = ServingSimulator(
            make_backend("binary", trace.base_keys), trace,
            tick_sizes=sizes).run()
        assert report.n_ticks == sizes.size
        assert report.tick_ops == 0  # marks a rate-driven replay
        for name in ("injected", "keep_fraction",
                     "rebuild_threshold"):
            assert report.series[name].size == sizes.size

    def test_zero_op_tick_records_nan_percentiles(self, scenario):
        trace, _, _ = scenario
        sizes = np.concatenate([
            np.asarray([trace.n_ops], dtype=np.int64),
            np.zeros(2, dtype=np.int64)])
        report = ServingSimulator(
            make_backend("binary", trace.base_keys), trace,
            tick_sizes=sizes).run()
        assert math.isnan(float(report.series["p95"][-1]))
        assert math.isfinite(report.p95)

    def test_adversary_port_injects_next_tick(self, scenario):
        trace, sizes, spec = scenario
        seen = []

        def adversary(observation):
            seen.append(observation)
            if observation.tick == 2:
                return np.asarray([3_901, 3_903], dtype=np.int64)
            return None

        backend = make_backend("rmi", trace.base_keys)
        report = ServingSimulator(backend, trace, tick_sizes=sizes,
                                  adversary=adversary).run()
        assert report.injected_poison == 2
        assert report.series["injected"].sum() == 2
        assert report.series["injected"][3] == 2  # lands one tick on
        assert len(seen) == sizes.size
        assert [o.tick for o in seen] == list(range(sizes.size))
        assert all(o.ticks_total == sizes.size for o in seen)
        found, _ = backend.lookup_batch(
            np.asarray([3_901, 3_903], dtype=np.int64))
        assert found.all()

    def test_observation_percentiles_are_backfilled(self, scenario):
        trace, _, _ = scenario
        sizes = np.concatenate([
            np.asarray([trace.n_ops], dtype=np.int64),
            np.zeros(2, dtype=np.int64)])
        seen = []
        ServingSimulator(make_backend("binary", trace.base_keys),
                         trace, tick_sizes=sizes,
                         adversary=lambda o: seen.append(o)).run()
        # Ticks 1 and 2 measured nothing; the port still sees the
        # last finite percentiles instead of NaN.
        assert seen[1].p95 == seen[0].p95
        assert math.isfinite(seen[2].p95)

    def test_tuner_port_drives_the_backend_knobs(self, scenario):
        trace, sizes, _ = scenario

        def tuner(observation):
            return TunerDecision(keep_fraction=0.95,
                                 rebuild_threshold=0.42)

        backend = make_backend("rmi", trace.base_keys)
        report = ServingSimulator(backend, trace, tick_sizes=sizes,
                                  tuner=tuner).run()
        assert backend.rebuild_threshold == 0.42
        assert backend.trim_keep_fraction == 0.95
        assert (report.series["rebuild_threshold"][1:] == 0.42).all()
        assert (report.series["keep_fraction"][1:] == 0.95).all()

    def test_trim_decision_is_inert_on_model_free_backends(
            self, scenario):
        trace, sizes, _ = scenario
        backend = make_backend("binary", trace.base_keys)
        report = ServingSimulator(
            backend, trace, tick_sizes=sizes,
            tuner=lambda o: TunerDecision(keep_fraction=0.9,
                                          rebuild_threshold=0.3),
        ).run()
        assert backend.trim_keep_fraction is None
        assert backend.rebuild_threshold == 0.3
        assert math.isnan(float(report.series["keep_fraction"][-1]))

    def test_open_loop_replay_has_no_loop_series(self, scenario):
        trace, _, _ = scenario
        report = ServingSimulator(
            make_backend("binary", trace.base_keys), trace).run()
        assert "injected" not in report.series
        assert report.injected_poison == 0
