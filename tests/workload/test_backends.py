"""Unit tests for the serving backends' uniform online surface."""

import numpy as np
import pytest

from repro.data.keyset import Domain
from repro.data.synthetic import uniform_keyset
from repro.workload.backends import BACKENDS, make_backend

ALL = sorted(BACKENDS)
LEARNED = ("linear", "rmi", "dynamic")


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(81)
    return uniform_keyset(800, Domain.of_size(8_000), rng).keys


@pytest.fixture(scope="module")
def fresh(keys):
    rng = np.random.default_rng(82)
    return np.setdiff1d(rng.integers(0, 8_000, size=600), keys)[:200]


@pytest.mark.parametrize("name", ALL)
class TestUniformSurface:
    def test_every_base_key_found(self, name, keys):
        backend = make_backend(name, keys)
        found, probes = backend.lookup_batch(keys)
        assert found.all()
        assert (probes >= 1).all()
        assert backend.n_keys == keys.size

    def test_absent_keys_not_found(self, name, keys, fresh):
        backend = make_backend(name, keys)
        found, _ = backend.lookup_batch(fresh)
        assert not found.any()

    def test_insert_then_found(self, name, keys, fresh):
        backend = make_backend(name, keys)
        backend.insert_batch(fresh[:50])
        found, _ = backend.lookup_batch(fresh[:50])
        assert found.all()
        assert backend.n_keys == keys.size + 50

    def test_delete_then_missing(self, name, keys):
        backend = make_backend(name, keys)
        victims = keys[::37]
        backend.delete_batch(victims)
        found, _ = backend.lookup_batch(victims)
        assert not found.any()
        assert backend.n_keys == keys.size - victims.size
        # Neighbours survive.
        survivors = np.setdiff1d(keys, victims)
        found, _ = backend.lookup_batch(survivors)
        assert found.all()

    def test_reinsert_after_delete_revives(self, name, keys):
        backend = make_backend(name, keys)
        victim = keys[100:101]
        backend.delete_batch(victim)
        backend.insert_batch(victim)
        found, _ = backend.lookup_batch(victim)
        assert found.all()
        assert backend.n_keys == keys.size

    def test_range_scan_charges_probes(self, name, keys):
        backend = make_backend(name, keys)
        assert backend.range_scan(int(keys[10]), int(keys[20])) >= 1

    def test_error_bound_positive(self, name, keys):
        assert make_backend(name, keys).error_bound() >= 1.0


class TestRebuildCycle:
    @pytest.mark.parametrize("name", LEARNED)
    def test_update_pressure_triggers_retrain(self, name, keys, fresh):
        backend = make_backend(name, keys, rebuild_threshold=0.05)
        before = backend.retrain_count
        backend.insert_batch(fresh)  # 200 fresh >> 5% of 800
        assert backend.retrain_count > before
        found, _ = backend.lookup_batch(np.concatenate([keys, fresh]))
        assert found.all()

    def test_btree_inserts_natively_without_rebuild(self, keys, fresh):
        backend = make_backend("btree", keys)
        backend.insert_batch(fresh)
        assert backend.retrain_count == 0
        found, _ = backend.lookup_batch(fresh)
        assert found.all()

    @pytest.mark.parametrize("name", LEARNED + ("btree",))
    def test_delete_pressure_compacts(self, name, keys):
        backend = make_backend(name, keys, rebuild_threshold=0.05)
        backend.delete_batch(keys[:100])
        assert backend.retrain_count >= 1
        assert backend.pending_updates == 0 or name == "dynamic"
        found, _ = backend.lookup_batch(keys[100:])
        assert found.all()


class TestBinaryNeverRetrains:
    def test_no_rebuilds_ever(self, keys, fresh):
        backend = make_backend("binary", keys)
        backend.insert_batch(fresh)
        backend.delete_batch(keys[:300])
        assert backend.retrain_count == 0


@pytest.mark.parametrize("name", LEARNED)
class TestTrimDefense:
    def test_quarantine_filled_and_still_served(self, name, keys,
                                                fresh):
        backend = make_backend(name, keys, rebuild_threshold=0.1,
                               trim_keep_fraction=0.9)
        backend.insert_batch(fresh)  # forces >= 1 sanitized rebuild
        assert backend.retrain_count >= 1
        assert backend.quarantine_size > 0
        # Correctness is untouched: every live key answers.
        found, _ = backend.lookup_batch(np.concatenate([keys, fresh]))
        assert found.all()

    def test_invalid_keep_fraction_rejected(self, name, keys):
        with pytest.raises(ValueError, match="keep fraction"):
            make_backend(name, keys, trim_keep_fraction=0.0)


class TestTrimUnsupported:
    @pytest.mark.parametrize("name", ("binary", "btree"))
    def test_model_free_backends_reject_trim(self, name, keys):
        with pytest.raises(ValueError, match="TRIM"):
            make_backend(name, keys, trim_keep_fraction=0.9)


@pytest.mark.parametrize("name", ALL)
class TestInsertAccounting:
    """ISSUE 4 satellite: live-key accounting under re-insertion.

    Upsert semantics everywhere: inserting a key that is already live
    (model, delta buffer, or quarantine) is a no-op — it must never
    inflate ``n_keys`` nor count twice against the rebuild threshold.
    """

    def test_duplicate_insert_of_model_key_is_noop(self, name, keys):
        backend = make_backend(name, keys)
        backend.insert_batch(keys[:10])
        assert backend.n_keys == keys.size
        assert backend.pending_updates == 0

    def test_reinsert_while_still_in_delta_not_double_counted(
            self, name, keys, fresh):
        backend = make_backend(name, keys)
        backend.insert_batch(fresh[:5])
        before_pending = backend.pending_updates
        backend.insert_batch(fresh[:5])  # same keys again
        assert backend.n_keys == keys.size + 5
        assert backend.pending_updates == before_pending
        found, _ = backend.lookup_batch(fresh[:5])
        assert found.all()

    def test_revive_clears_the_tombstone_from_pending(self, name,
                                                      keys):
        backend = make_backend(name, keys)
        victim = keys[42:43]
        backend.delete_batch(victim)
        backend.insert_batch(victim)
        assert backend.pending_updates == 0
        assert backend.n_keys == keys.size
        # A second delete+revive cycle stays consistent.
        backend.delete_batch(victim)
        backend.insert_batch(victim)
        assert backend.n_keys == keys.size


class TestQuarantineAccounting:
    @pytest.mark.parametrize("name", LEARNED)
    def test_insert_of_quarantined_key_is_noop(self, name, keys,
                                               fresh):
        backend = make_backend(name, keys, rebuild_threshold=0.1,
                               trim_keep_fraction=0.9)
        backend.insert_batch(fresh)
        assert backend.quarantine_size > 0
        live_before = backend.n_keys
        if name == "dynamic":
            quarantined = backend._index.quarantine_keys[:5]
        else:
            quarantined = backend._quarantine[:5]
        backend.insert_batch(np.asarray(quarantined))
        assert backend.n_keys == live_before

    @pytest.mark.parametrize("name", LEARNED)
    def test_quarantined_keys_rejoin_candidacy_at_next_rebuild(
            self, name, keys, fresh):
        """Pins the *rehabilitation* contract: quarantine is a holding
        pen, not a blacklist — disarming TRIM returns every
        quarantined key to the model at the next rebuild, with no key
        lost or duplicated along the way."""
        backend = make_backend(name, keys, rebuild_threshold=0.1,
                               trim_keep_fraction=0.9)
        backend.insert_batch(fresh)
        assert backend.quarantine_size > 0
        live_before = backend.n_keys
        backend.set_trim_keep_fraction(None)
        backend.insert_batch(
            np.arange(20_000, 20_000 + 120, dtype=np.int64))
        assert backend.quarantine_size == 0
        assert backend.n_keys == live_before + 120
        found, _ = backend.lookup_batch(np.concatenate([keys, fresh]))
        assert found.all()


class TestTunerHooks:
    @pytest.mark.parametrize("name", ALL)
    def test_threshold_setter_validates_and_applies(self, name, keys):
        backend = make_backend(name, keys)
        backend.set_rebuild_threshold(0.25)
        assert backend.rebuild_threshold == 0.25
        with pytest.raises(ValueError, match="threshold"):
            backend.set_rebuild_threshold(0.0)

    @pytest.mark.parametrize("name", LEARNED)
    def test_lowering_threshold_never_rebuilds_on_the_spot(self, name,
                                                           keys,
                                                           fresh):
        backend = make_backend(name, keys, rebuild_threshold=0.9)
        backend.insert_batch(fresh[:30])  # pending, far below 90%
        before = backend.retrain_count
        backend.set_rebuild_threshold(0.01)  # now far above threshold
        assert backend.retrain_count == before
        backend.insert_batch(fresh[30:31])  # next mutation trips it
        assert backend.retrain_count > before

    @pytest.mark.parametrize("name", LEARNED)
    def test_trim_setter_arms_the_next_rebuild(self, name, keys,
                                               fresh):
        backend = make_backend(name, keys, rebuild_threshold=0.1)
        assert backend.trim_keep_fraction is None
        backend.set_trim_keep_fraction(0.9)
        assert backend.trim_keep_fraction == 0.9
        backend.insert_batch(fresh)  # forces a sanitized rebuild
        assert backend.quarantine_size > 0

    def test_dynamic_forwards_threshold_to_the_index(self, keys):
        backend = make_backend("dynamic", keys)
        backend.set_rebuild_threshold(0.5)
        assert backend._index.retrain_threshold == 0.5

    @pytest.mark.parametrize("name", ("binary", "btree"))
    def test_model_free_setter_rejects_numeric_keep(self, name, keys):
        backend = make_backend(name, keys)
        backend.set_trim_keep_fraction(None)  # disarm is always legal
        with pytest.raises(ValueError, match="TRIM"):
            backend.set_trim_keep_fraction(0.9)

    @pytest.mark.parametrize("name", LEARNED)
    def test_invalid_keep_fraction_rejected_by_setter(self, name,
                                                      keys):
        backend = make_backend(name, keys)
        with pytest.raises(ValueError, match="keep fraction"):
            backend.set_trim_keep_fraction(1.5)


class TestRegistry:
    def test_unknown_backend_rejected(self, keys):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("skiplist", keys)

    def test_registry_names_match_classes(self):
        for name, cls in BACKENDS.items():
            assert cls.name == name

    def test_invalid_threshold_rejected(self, keys):
        with pytest.raises(ValueError, match="threshold"):
            make_backend("rmi", keys, rebuild_threshold=0.0)
