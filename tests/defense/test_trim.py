"""Unit tests for the TRIM defenses (classic and rank-aware)."""

import numpy as np
import pytest

from repro.core import greedy_poison
from repro.data import Domain, uniform_keyset
from repro.defense import trim_cdf, trim_regression


class TestClassicTrim:
    def test_recovers_obvious_vertical_outliers(self, rng):
        """Sanity: on classic (fixed-y) poisoning TRIM works."""
        keys = np.arange(0, 1000, 10, dtype=np.float64)
        responses = keys * 0.1  # a clean line
        bad_keys = np.array([005.0, 500.0, 900.0])
        bad_responses = np.array([90.0, 5.0, 40.0])  # wild y-values
        all_keys = np.concatenate([keys, bad_keys])
        all_resp = np.concatenate([responses, bad_responses])
        result = trim_regression(all_keys, all_resp, n_keep=keys.size)
        assert result.final_loss < 1e-6
        assert result.converged

    def test_result_partition_sizes(self, rng):
        ks = uniform_keyset(200, Domain(0, 1999), rng)
        attack = greedy_poison(ks, 20)
        poisoned = ks.insert(attack.poison_keys)
        result = trim_regression(
            poisoned.keys.astype(np.float64),
            poisoned.ranks.astype(np.float64), n_keep=200)
        assert result.kept_keys.size == 200
        assert result.removed_keys.size == 20

    def test_n_keep_validated(self):
        with pytest.raises(ValueError):
            trim_regression(np.array([1.0, 2.0]), np.array([1.0, 2.0]),
                            n_keep=0)
        with pytest.raises(ValueError):
            trim_regression(np.array([1.0]), np.array([1.0]), n_keep=2)

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            trim_regression(np.array([1.0, 2.0]), np.array([1.0]),
                            n_keep=1)


class TestRankAwareTrim:
    def test_result_partition_sizes(self, rng):
        ks = uniform_keyset(300, Domain(0, 2999), rng)
        attack = greedy_poison(ks, 30)
        poisoned = ks.insert(attack.poison_keys)
        result = trim_cdf(poisoned.keys, n_keep=300)
        assert result.kept_keys.size == 300
        assert result.removed_keys.size == 30
        combined = np.sort(np.concatenate(
            [result.kept_keys, result.removed_keys]))
        assert np.array_equal(combined, poisoned.keys)

    def test_no_poison_keeps_low_loss(self, rng):
        """On a clean keyset trimming nothing essential."""
        ks = uniform_keyset(200, Domain(0, 1999), rng)
        result = trim_cdf(ks.keys, n_keep=180)
        clean_loss = float(np.var(np.arange(1, 201)))  # worst case ref
        assert result.final_loss < clean_loss

    def test_reduces_loss_relative_to_poisoned(self, rng):
        """Trimming should at least beat doing nothing."""
        from repro.core import fit_cdf_regression
        ks = uniform_keyset(300, Domain(0, 2999), rng)
        attack = greedy_poison(ks, 45)
        poisoned = ks.insert(attack.poison_keys)
        poisoned_loss = fit_cdf_regression(poisoned).mse
        result = trim_cdf(poisoned.keys, n_keep=300)
        assert result.final_loss <= poisoned_loss + 1e-9

    def test_section6_claim_defense_is_imperfect(self, rng):
        """Sec. VI: poisoning keys hide among dense legitimate keys.

        Across seeds the rank-aware defense should (a) fail to achieve
        perfect recall in at least some runs and (b) leave residual
        loss above the clean loss in at least some runs — the defense
        is measurably imperfect against this attack.
        """
        imperfect_recall = 0
        residual_runs = 0
        for seed in range(5):
            rng_local = np.random.default_rng(seed)
            ks = uniform_keyset(200, Domain(0, 1999), rng_local)
            attack = greedy_poison(ks, 30)
            poisoned = ks.insert(attack.poison_keys)
            result = trim_cdf(poisoned.keys, n_keep=200, seed=seed)
            if result.recall_against(attack.poison_keys) < 1.0:
                imperfect_recall += 1
            if result.final_loss > 2.0 * attack.loss_before:
                residual_runs += 1
        assert imperfect_recall + residual_runs > 0

    def test_n_keep_validated(self):
        with pytest.raises(ValueError):
            trim_cdf(np.array([1, 2, 3]), n_keep=5)


class TestTrimResultScoring:
    def test_recall_and_precision(self):
        from repro.defense import TrimResult
        result = TrimResult(
            kept_keys=np.array([1, 2, 3]),
            removed_keys=np.array([10, 11]),
            iterations=1, converged=True, final_loss=0.0)
        poison = np.array([10, 99])
        assert result.recall_against(poison) == pytest.approx(0.5)
        assert result.precision_against(poison) == pytest.approx(0.5)

    def test_empty_poison_set(self):
        from repro.defense import TrimResult
        result = TrimResult(
            kept_keys=np.array([1]), removed_keys=np.array([], dtype=np.int64),
            iterations=1, converged=True, final_loss=0.0)
        assert result.recall_against(np.array([])) == 1.0
        assert result.precision_against(np.array([])) == 1.0
