"""Unit tests for the density-based anomaly detector."""

import numpy as np
import pytest

from repro.core import greedy_poison
from repro.data import Domain, uniform_keyset
from repro.defense import (
    density_anomaly_scores,
    flag_densest_keys,
    score_detection,
)


class TestScores:
    def test_uniform_keys_score_near_one(self):
        keys = np.arange(0, 1000, 10)
        scores = density_anomaly_scores(keys)
        assert scores.mean() == pytest.approx(1.0, rel=0.2)

    def test_dense_cluster_scores_high(self):
        sparse = np.arange(0, 10_000, 100)
        cluster = np.arange(5_001, 5_030)  # tightly packed intruders
        keys = np.unique(np.concatenate([sparse, cluster]))
        scores = density_anomaly_scores(keys, window=4)
        in_cluster = np.isin(keys, cluster)
        assert scores[in_cluster].mean() > 3 * scores[~in_cluster].mean()

    def test_short_inputs(self):
        assert density_anomaly_scores(np.array([5])).tolist() == [1.0]
        assert density_anomaly_scores(np.array([5, 5])).tolist() == [1.0, 1.0]

    def test_window_validated(self):
        with pytest.raises(ValueError):
            density_anomaly_scores(np.arange(10), window=0)


class TestFlagging:
    def test_flags_requested_count(self, rng):
        ks = uniform_keyset(200, Domain(0, 1999), rng)
        flagged = flag_densest_keys(ks.keys, 15)
        assert flagged.size == 15
        assert np.isin(flagged, ks.keys).all()

    def test_zero_flags(self, rng):
        ks = uniform_keyset(50, Domain(0, 499), rng)
        assert flag_densest_keys(ks.keys, 0).size == 0

    def test_count_validated(self, rng):
        ks = uniform_keyset(50, Domain(0, 499), rng)
        with pytest.raises(ValueError):
            flag_densest_keys(ks.keys, 51)

    def test_detector_catches_some_poison_but_not_cleanly(self, rng):
        """Sec. VI: the attack populates already-dense areas, so the
        detector's flags hit legitimate neighbours too."""
        ks = uniform_keyset(300, Domain(0, 5999), rng)
        attack = greedy_poison(ks, 45)
        poisoned = ks.insert(attack.poison_keys)
        flagged = flag_densest_keys(poisoned.keys, 45, window=4)
        report = score_detection(flagged, attack.poison_keys)
        assert report.recall > 0.0  # it sees the dense cluster...
        assert report.precision < 1.0  # ...but flags legit keys too


class TestDetectionReport:
    def test_counts(self):
        report = score_detection(np.array([1, 2, 3]), np.array([2, 3, 4]))
        assert report.true_positives == 2
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == pytest.approx(2 / 3)
        assert 0 < report.f1 < 1

    def test_perfect_detection(self):
        report = score_detection(np.array([7, 8]), np.array([7, 8]))
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_empty_flags(self):
        report = score_detection(np.array([], dtype=np.int64),
                                 np.array([1]))
        assert report.precision == 1.0
        assert report.recall == 0.0
        assert report.f1 == 0.0

    def test_empty_poison(self):
        report = score_detection(np.array([1]), np.array([], dtype=np.int64))
        assert report.recall == 1.0
