"""Hypothesis property tests for the ``defense`` package.

The other attack-side packages got property coverage in PR 1; these
pin the defenses' algebraic contracts:

* ``trim_regression`` / ``trim_cdf`` — the kept/removed sets partition
  the input; on clean data the fitted result never loses to an
  unfitted baseline line (OLS optimality on the kept subset), and
  keeping everything degenerates to the plain full fit exactly.
* ``filter_out_of_range`` — idempotent, partitioning, and trusted-
  domain-respecting.
* ``density_anomaly_scores`` — permutation-invariant (the detector
  sees a key *multiset*), exactly one for evenly spaced keys, and
  saturating to one once the window covers the whole array.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cdf_regression import fit_cdf_regression
from repro.data.keyset import Domain
from repro.defense.density import (
    density_anomaly_scores,
    flag_densest_keys,
)
from repro.defense.sanitize import filter_out_of_range
from repro.defense.trim import trim_cdf, trim_regression

clean_keys = st.lists(
    st.integers(min_value=0, max_value=10**6),
    min_size=3, max_size=60, unique=True,
).map(lambda xs: np.sort(np.asarray(xs, dtype=np.int64)))

key_arrays = st.lists(
    st.integers(min_value=-10**6, max_value=10**6),
    min_size=0, max_size=60,
).map(lambda xs: np.asarray(xs, dtype=np.int64))


def ranks_of(keys: np.ndarray) -> np.ndarray:
    return np.arange(1, keys.size + 1, dtype=np.float64)


def line_mse(slope, intercept, x, y):
    r = slope * x + intercept - y
    return float(np.mean(r * r))


class TestTrimRegressionClean:
    @given(keys=clean_keys)
    @settings(max_examples=60)
    def test_keeping_everything_is_the_plain_fit(self, keys):
        """n_keep = n degenerates to the untrimmed regression."""
        ranks = ranks_of(keys)
        res = trim_regression(keys, ranks, n_keep=keys.size)
        full = fit_cdf_regression(keys.astype(np.float64), ranks)
        assert res.removed_keys.size == 0
        assert res.converged
        assert res.final_loss == pytest.approx(full.mse, rel=1e-12,
                                               abs=1e-12)

    @given(keys=clean_keys, data=st.data())
    @settings(max_examples=60)
    def test_fitted_loss_never_exceeds_unfitted_line(self, keys, data):
        """The defense *fits* its kept subset, so no unfitted line —
        here the endpoint-connecting diagonal — can do better on that
        subset.  (OLS optimality; the clean-data sanity from Sec. VI's
        discussion that TRIM converges to a low-loss subset.)"""
        ranks = ranks_of(keys)
        n_keep = data.draw(
            st.integers(min_value=2, max_value=keys.size))
        res = trim_regression(keys, ranks, n_keep=n_keep, seed=0)
        rank_of = {int(k): r for k, r in zip(keys, ranks)}
        kept_x = res.kept_keys.astype(np.float64)
        kept_y = np.asarray([rank_of[int(k)] for k in res.kept_keys])
        x0, x1 = kept_x[0], kept_x[-1]
        if x1 == x0:
            return
        slope = (kept_y[-1] - kept_y[0]) / (x1 - x0)
        intercept = kept_y[0] - slope * x0
        unfitted = line_mse(slope, intercept, kept_x, kept_y)
        assert res.final_loss <= unfitted + 1e-9

    @given(keys=clean_keys, data=st.data())
    @settings(max_examples=60)
    def test_kept_and_removed_partition_the_input(self, keys, data):
        ranks = ranks_of(keys)
        n_keep = data.draw(
            st.integers(min_value=1, max_value=keys.size))
        res = trim_regression(keys, ranks, n_keep=n_keep, seed=1)
        assert res.kept_keys.size == n_keep
        together = np.sort(np.concatenate(
            [res.kept_keys, res.removed_keys]))
        assert np.array_equal(together, keys)


class TestTrimCdfProperties:
    @given(keys=clean_keys, data=st.data())
    @settings(max_examples=60)
    def test_partition_and_finite_loss(self, keys, data):
        n_keep = data.draw(
            st.integers(min_value=1, max_value=keys.size))
        res = trim_cdf(keys, n_keep=n_keep, seed=2)
        assert res.kept_keys.size == n_keep
        together = np.sort(np.concatenate(
            [res.kept_keys, res.removed_keys]))
        assert np.array_equal(together, keys)
        assert np.isfinite(res.final_loss)
        assert res.final_loss >= 0.0

    @given(keys=clean_keys, poison=key_arrays, data=st.data())
    @settings(max_examples=60)
    def test_scores_are_probabilities(self, keys, poison, data):
        n_keep = data.draw(
            st.integers(min_value=1, max_value=keys.size))
        res = trim_cdf(keys, n_keep=n_keep, seed=3)
        assert 0.0 <= res.recall_against(poison) <= 1.0
        assert 0.0 <= res.precision_against(poison) <= 1.0


class TestFilterOutOfRangeProperties:
    domains = st.tuples(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    ).map(lambda pair: Domain(pair[0], pair[0] + pair[1]))

    @given(keys=key_arrays, domain=domains)
    @settings(max_examples=100)
    def test_idempotent(self, keys, domain):
        once = filter_out_of_range(keys, domain)
        twice = filter_out_of_range(once.kept, domain)
        assert np.array_equal(twice.kept, once.kept)
        assert twice.n_dropped == 0

    @given(keys=key_arrays, domain=domains)
    @settings(max_examples=100)
    def test_partitions_and_respects_domain(self, keys, domain):
        report = filter_out_of_range(keys, domain)
        assert report.kept.size + report.dropped.size == keys.size
        assert np.array_equal(
            np.sort(np.concatenate([report.kept, report.dropped])),
            np.sort(keys))
        assert np.all((report.kept >= domain.lo)
                      & (report.kept <= domain.hi))
        outside = (report.dropped < domain.lo) | (report.dropped
                                                  > domain.hi)
        assert np.all(outside)


class TestDensityScoreProperties:
    windows = st.integers(min_value=1, max_value=80)

    @given(keys=key_arrays, window=windows, seed=st.integers(0, 2**16))
    @settings(max_examples=100)
    def test_permutation_invariant(self, keys, window, seed):
        """The detector scores a key *multiset*; input order is noise."""
        shuffled = np.random.default_rng(seed).permutation(keys)
        assert np.array_equal(
            density_anomaly_scores(shuffled, window=window),
            density_anomaly_scores(keys, window=window))

    @given(keys=key_arrays, window=windows)
    @settings(max_examples=100)
    def test_shape_and_positivity(self, keys, window):
        scores = density_anomaly_scores(keys, window=window)
        assert scores.size == keys.size
        assert np.all(scores > 0)

    @given(start=st.integers(-10**6, 10**6),
           gap=st.integers(1, 10**4),
           n=st.integers(2, 60),
           window=windows)
    @settings(max_examples=100)
    def test_evenly_spaced_keys_score_one(self, start, gap, n, window):
        """Constant spacing means no neighbourhood is denser than the
        dataset average — every score is exactly 1."""
        keys = start + gap * np.arange(n, dtype=np.int64)
        scores = density_anomaly_scores(keys, window=window)
        assert np.allclose(scores, 1.0)

    @given(keys=clean_keys)
    @settings(max_examples=100)
    def test_window_covering_everything_scores_one(self, keys):
        """Once the window clamps to the whole array, local density
        equals global density by construction."""
        scores = density_anomaly_scores(keys, window=keys.size)
        assert np.allclose(scores, 1.0)

    @given(keys=key_arrays, data=st.data())
    @settings(max_examples=100)
    def test_flagged_keys_are_a_subset(self, keys, data):
        n_flags = data.draw(
            st.integers(min_value=0, max_value=keys.size))
        flagged = flag_densest_keys(keys, n_flags)
        assert flagged.size == n_flags
        assert np.all(np.isin(flagged, keys))
