"""Unit tests for the range/outlier sanitizers the attack evades."""

import numpy as np
import pytest

from repro.core import greedy_poison
from repro.data import Domain, uniform_keyset
from repro.defense import filter_out_of_range, filter_quantile_outliers


class TestRangeFilter:
    def test_drops_out_of_range(self):
        report = filter_out_of_range(
            np.array([5, 50, 500, -3]), Domain(0, 100))
        assert report.kept.tolist() == [5, 50]
        assert report.dropped.tolist() == [-3, 500]
        assert report.n_dropped == 2

    def test_keeps_everything_in_range(self):
        report = filter_out_of_range(np.array([1, 2, 3]), Domain(0, 10))
        assert report.n_dropped == 0

    def test_catches_naive_out_of_range_poisoning(self, rng):
        """The mitigation that motivates the in-range restriction."""
        ks = uniform_keyset(100, Domain(100, 1099), rng)
        naive_poison = np.array([0, 5, 2_000, 5_000])
        report = filter_out_of_range(
            np.concatenate([ks.keys, naive_poison]),
            Domain(100, 1099))
        assert set(report.dropped.tolist()) == set(naive_poison.tolist())

    def test_misses_the_papers_attack(self, rng):
        """The paper's in-range attack sails through untouched."""
        ks = uniform_keyset(200, Domain(0, 1999), rng)
        attack = greedy_poison(ks, 30)
        poisoned = ks.insert(attack.poison_keys)
        report = filter_out_of_range(poisoned.keys, ks.domain)
        assert report.n_dropped == 0


class TestQuantileFilter:
    def test_drops_extreme_tails(self):
        keys = np.concatenate([np.arange(100, 200),
                               np.array([0, 10_000])])
        report = filter_quantile_outliers(keys, tail_fraction=0.02)
        assert 0 in report.dropped
        assert 10_000 in report.dropped

    def test_zero_fraction_keeps_all(self):
        keys = np.arange(50)
        report = filter_quantile_outliers(keys, tail_fraction=0.0)
        assert report.n_dropped == 0

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            filter_quantile_outliers(np.arange(10), tail_fraction=0.5)
        with pytest.raises(ValueError):
            filter_quantile_outliers(np.arange(10), tail_fraction=-0.1)

    def test_tiny_inputs_passthrough(self):
        report = filter_quantile_outliers(np.array([1, 2]),
                                          tail_fraction=0.1)
        assert report.n_dropped == 0

    def test_attack_survives_mostly(self, rng):
        """Interior clustering defeats tail trimming (Sec. IV-C)."""
        ks = uniform_keyset(300, Domain(0, 2999), rng)
        attack = greedy_poison(ks, 45)
        poisoned = ks.insert(attack.poison_keys)
        report = filter_quantile_outliers(poisoned.keys,
                                          tail_fraction=0.02)
        survived = np.isin(attack.poison_keys, report.kept).mean()
        assert survived > 0.8
