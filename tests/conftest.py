"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Domain, KeySet, uniform_keyset


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic per-test random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_keyset() -> KeySet:
    """The running example of Section IV-C: 4 keys on [1, 13]."""
    return KeySet([2, 6, 7, 12], Domain(1, 13))


@pytest.fixture
def small_keyset(rng: np.random.Generator) -> KeySet:
    """A small random uniform keyset for unit tests."""
    return uniform_keyset(50, Domain(0, 499), rng)


@pytest.fixture
def medium_keyset(rng: np.random.Generator) -> KeySet:
    """A medium uniform keyset for integration-ish tests."""
    return uniform_keyset(500, Domain(0, 9999), rng)
