"""Unit tests for the persistence helpers."""

import numpy as np
import pytest

from repro import io
from repro.core import RMIAttackerCapability, greedy_poison, poison_rmi
from repro.data import Domain, KeySet, uniform_keyset


class TestKeysetRoundTrip:
    def test_round_trip(self, tmp_path, rng):
        keyset = uniform_keyset(200, Domain(0, 4999), rng)
        path = tmp_path / "keys.npz"
        io.save_keyset(keyset, path)
        loaded = io.load_keyset(path)
        assert loaded == keyset

    def test_domain_preserved(self, tmp_path):
        keyset = KeySet([5, 10], Domain(0, 100))
        path = tmp_path / "keys.npz"
        io.save_keyset(keyset, path)
        assert io.load_keyset(path).domain == Domain(0, 100)


class TestGreedyResultDict:
    def test_fields(self, rng):
        keyset = uniform_keyset(100, Domain(0, 999), rng)
        result = greedy_poison(keyset, 10)
        payload = io.greedy_result_to_dict(result)
        assert payload["n_injected"] == 10
        assert len(payload["poison_keys"]) == 10
        assert payload["ratio_loss"] == pytest.approx(result.ratio_loss)
        assert len(payload["loss_trajectory"]) == 10

    def test_infinite_ratio_stringified(self):
        keyset = KeySet([0, 10, 20, 30, 40])
        result = greedy_poison(keyset, 2)
        payload = io.greedy_result_to_dict(result)
        assert payload["ratio_loss"] == "inf"

    def test_json_round_trip(self, tmp_path, rng):
        keyset = uniform_keyset(100, Domain(0, 999), rng)
        payload = io.greedy_result_to_dict(greedy_poison(keyset, 10))
        path = tmp_path / "attack.json"
        io.save_json(payload, path)
        assert io.load_json(path) == payload


class TestRmiResultDict:
    def test_fields_and_round_trip(self, tmp_path, rng):
        keyset = uniform_keyset(500, Domain(0, 9999), rng)
        capability = RMIAttackerCapability(poisoning_percentage=10.0)
        result = poison_rmi(keyset, 5, capability, max_exchanges=5)
        payload = io.rmi_result_to_dict(result)
        assert payload["n_models"] == 5
        assert payload["total_injected"] == result.total_injected
        assert len(payload["per_model"]) == 5
        path = tmp_path / "rmi.json"
        io.save_json(payload, path)
        assert io.load_json(path) == payload

    def test_per_model_consistency(self, rng):
        keyset = uniform_keyset(500, Domain(0, 9999), rng)
        capability = RMIAttackerCapability(poisoning_percentage=10.0)
        result = poison_rmi(keyset, 5, capability, max_exchanges=0)
        payload = io.rmi_result_to_dict(result)
        injected = sum(m["n_injected"] for m in payload["per_model"])
        assert injected == payload["total_injected"]
