"""Unit tests for the persistence helpers."""

import numpy as np
import pytest

from repro import io
from repro.core import RMIAttackerCapability, greedy_poison, poison_rmi
from repro.data import Domain, KeySet, uniform_keyset


class TestKeysetRoundTrip:
    def test_round_trip(self, tmp_path, rng):
        keyset = uniform_keyset(200, Domain(0, 4999), rng)
        path = tmp_path / "keys.npz"
        io.save_keyset(keyset, path)
        loaded = io.load_keyset(path)
        assert loaded == keyset

    def test_domain_preserved(self, tmp_path):
        keyset = KeySet([5, 10], Domain(0, 100))
        path = tmp_path / "keys.npz"
        io.save_keyset(keyset, path)
        assert io.load_keyset(path).domain == Domain(0, 100)

    def test_extreme_int64_domain_bounds(self, tmp_path):
        """Keys and bounds at the edge of int64 survive losslessly."""
        hi = 2**63 - 1
        keyset = KeySet([0, hi - 1, hi], Domain(0, hi))
        path = tmp_path / "keys.npz"
        io.save_keyset(keyset, path)
        loaded = io.load_keyset(path)
        assert loaded == keyset
        assert loaded.domain.hi == hi
        assert loaded.keys.dtype == np.int64
        assert loaded.keys.tolist() == [0, hi - 1, hi]

    def test_large_offset_domain(self, tmp_path):
        lo = 2**62
        keyset = KeySet([lo, lo + 7], Domain(lo, lo + 100))
        path = tmp_path / "keys.npz"
        io.save_keyset(keyset, path)
        assert io.load_keyset(path) == keyset


class TestArraysRoundTrip:
    def test_named_arrays(self, tmp_path):
        path = tmp_path / "arrays.npz"
        io.save_arrays(path, poison=np.array([1, 2], dtype=np.int64),
                       losses=np.array([0.5], dtype=np.float64))
        loaded = io.load_arrays(path)
        assert set(loaded) == {"poison", "losses"}
        assert loaded["poison"].tolist() == [1, 2]
        assert loaded["losses"].tolist() == [0.5]

    def test_empty_array_round_trips(self, tmp_path):
        """An exhausted attack ships an empty poison set."""
        path = tmp_path / "arrays.npz"
        io.save_arrays(path, poison=np.empty(0, dtype=np.int64))
        loaded = io.load_arrays(path)
        assert loaded["poison"].size == 0
        assert loaded["poison"].dtype == np.int64

    def test_no_arrays_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            io.save_arrays(tmp_path / "arrays.npz")

    def test_array_names_listed_without_loading(self, tmp_path):
        path = tmp_path / "arrays.npz"
        io.save_arrays(path, poison=np.array([1, 2], dtype=np.int64),
                       losses=np.array([0.5], dtype=np.float64))
        assert io.npz_array_names(path) == ["losses", "poison"]

    def test_array_names_of_garbage_raises(self, tmp_path):
        """Callers (the artifact manifest collector) are expected to
        catch this; the io layer itself stays strict."""
        path = tmp_path / "arrays.npz"
        path.write_bytes(b"PK\x03\x04trunc")
        with pytest.raises(Exception):
            io.npz_array_names(path)


class TestGreedyResultDict:
    def test_fields(self, rng):
        keyset = uniform_keyset(100, Domain(0, 999), rng)
        result = greedy_poison(keyset, 10)
        payload = io.greedy_result_to_dict(result)
        assert payload["n_injected"] == 10
        assert len(payload["poison_keys"]) == 10
        assert payload["ratio_loss"] == pytest.approx(result.ratio_loss)
        assert len(payload["loss_trajectory"]) == 10

    def test_infinite_ratio_stringified(self):
        keyset = KeySet([0, 10, 20, 30, 40])
        result = greedy_poison(keyset, 2)
        payload = io.greedy_result_to_dict(result)
        assert payload["ratio_loss"] == "inf"

    def test_json_round_trip(self, tmp_path, rng):
        keyset = uniform_keyset(100, Domain(0, 999), rng)
        payload = io.greedy_result_to_dict(greedy_poison(keyset, 10))
        path = tmp_path / "attack.json"
        io.save_json(payload, path)
        assert io.load_json(path) == payload

    def test_empty_poison_set(self, rng):
        """Zero budget: no keys, no trajectory, ratio exactly 1."""
        keyset = uniform_keyset(50, Domain(0, 999), rng)
        payload = io.greedy_result_to_dict(greedy_poison(keyset, 0))
        assert payload["n_injected"] == 0
        assert payload["poison_keys"] == []
        assert payload["loss_trajectory"] == []
        assert payload["ratio_loss"] == 1.0

    def test_exhausted_attack_round_trips(self, tmp_path):
        """A gap-free keyset exhausts immediately: empty poison set."""
        keyset = KeySet([7, 8, 9, 10])
        result = greedy_poison(keyset, 3)
        payload = io.greedy_result_to_dict(result)
        assert payload["exhausted"] is True
        assert payload["poison_keys"] == []
        path = tmp_path / "exhausted.json"
        io.save_json(payload, path)
        assert io.load_json(path) == payload


class TestJsonFloat:
    def test_round_trip_of_sentinels(self):
        for value in (float("inf"), float("-inf"), 1.5, 0.0):
            encoded = io.json_float(value)
            assert io.parse_json_float(encoded) == value

    def test_nan_round_trip(self):
        encoded = io.json_float(float("nan"))
        assert encoded == "nan"
        decoded = io.parse_json_float(encoded)
        assert decoded != decoded

    def test_save_json_atomic_no_temp_left(self, tmp_path):
        path = tmp_path / "payload.json"
        io.save_json({"a": 1}, path)
        io.save_json({"a": 2}, path)  # overwrite also atomic
        assert io.load_json(path) == {"a": 2}
        assert list(tmp_path.glob("*.tmp")) == []


class TestRmiResultDict:
    def test_fields_and_round_trip(self, tmp_path, rng):
        keyset = uniform_keyset(500, Domain(0, 9999), rng)
        capability = RMIAttackerCapability(poisoning_percentage=10.0)
        result = poison_rmi(keyset, 5, capability, max_exchanges=5)
        payload = io.rmi_result_to_dict(result)
        assert payload["n_models"] == 5
        assert payload["total_injected"] == result.total_injected
        assert len(payload["per_model"]) == 5
        path = tmp_path / "rmi.json"
        io.save_json(payload, path)
        assert io.load_json(path) == payload

    def test_per_model_consistency(self, rng):
        keyset = uniform_keyset(500, Domain(0, 9999), rng)
        capability = RMIAttackerCapability(poisoning_percentage=10.0)
        result = poison_rmi(keyset, 5, capability, max_exchanges=0)
        payload = io.rmi_result_to_dict(result)
        injected = sum(m["n_injected"] for m in payload["per_model"])
        assert injected == payload["total_injected"]
