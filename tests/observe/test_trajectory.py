"""The append-only trajectory store and its sparkline feed."""

import pytest

from repro import io
from repro.observe import gallery, trajectory


def _snapshot(serving_ops: float, cluster_ops: "float | None" = None,
              ) -> dict:
    payload = {
        "schema": "repro.bench.workload/v1",
        "serving_replay": {"rmi": {"ops_per_second": serving_ops}},
    }
    if cluster_ops is not None:
        payload["cluster"] = {
            "rmi": {"ops_per_second": cluster_ops},
            "wall_seconds": 2.0}
    return payload


def _write(tmp_path, payload, name="BENCH.json"):
    path = tmp_path / name
    io.save_json(payload, path)
    return path


class TestAppend:
    def test_indices_grow_lexicographically(self, tmp_path):
        store = tmp_path / "store"
        src = _write(tmp_path, _snapshot(1000.0))
        first = trajectory.append(src, store_dir=store, label="pr-1")
        second = trajectory.append(src, store_dir=store, label="pr-2")
        assert first.name == "0001-pr-1.json"
        assert second.name == "0002-pr-2.json"
        assert trajectory.list_snapshots(store) == [first, second]

    def test_label_is_sanitized(self, tmp_path):
        store = tmp_path / "store"
        src = _write(tmp_path, _snapshot(1.0))
        path = trajectory.append(src, store_dir=store,
                                 label="PR 8: observe/figures!")
        assert path.name == "0001-PR-8-observe-figures.json"

    def test_appending_preserves_the_payload(self, tmp_path):
        store = tmp_path / "store"
        payload = _snapshot(123.0, 45.0)
        path = trajectory.append(_write(tmp_path, payload),
                                 store_dir=store)
        assert io.load_json(path) == payload

    def test_non_snapshot_payload_is_rejected(self, tmp_path):
        src = _write(tmp_path, {"serving_replay": {}})
        with pytest.raises(ValueError, match="schema"):
            trajectory.append(src, store_dir=tmp_path / "store")

    def test_stray_files_are_ignored(self, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / "README.md").write_text("not a snapshot\n")
        (store / "trajectory.svg").write_text("<svg/>\n")
        src = _write(tmp_path, _snapshot(1.0))
        path = trajectory.append(src, store_dir=store)
        assert path.name == "0001-snapshot.json"
        assert trajectory.list_snapshots(store) == [path]


class TestSeries:
    def test_ops_series_pads_missing_lanes_with_nan(self, tmp_path):
        store = tmp_path / "store"
        trajectory.append(_write(tmp_path, _snapshot(1000.0)),
                          store_dir=store, label="a")
        trajectory.append(
            _write(tmp_path, _snapshot(1100.0, 500.0)),
            store_dir=store, label="b")
        series = trajectory.ops_series(store)
        assert series["serving_replay/rmi"] == [1000.0, 1100.0]
        cluster = series["cluster/rmi"]
        assert cluster[0] != cluster[0]  # NaN: lane predates section
        assert cluster[1] == 500.0

    def test_best_ops_takes_the_maximum_per_lane(self, tmp_path):
        store = tmp_path / "store"
        for ops in (1000.0, 1400.0, 900.0):
            trajectory.append(_write(tmp_path, _snapshot(ops)),
                              store_dir=store, label=f"v{ops:.0f}")
        assert trajectory.best_ops(store) \
            == {"serving_replay/rmi": 1400.0}

    def test_empty_store_is_empty_everything(self, tmp_path):
        store = tmp_path / "missing"
        assert trajectory.list_snapshots(store) == []
        assert trajectory.ops_series(store) == {}
        assert trajectory.best_ops(store) == {}


class TestSparkline:
    def test_figure_renders_one_row_per_lane(self, tmp_path):
        store = tmp_path / "store"
        trajectory.append(
            _write(tmp_path, _snapshot(1000.0, 500.0)),
            store_dir=store)
        svg = gallery.trajectory_figure(store)
        assert svg is not None
        assert "serving_replay/rmi" in svg
        assert "cluster/rmi" in svg

    def test_empty_store_renders_nothing(self, tmp_path):
        assert gallery.trajectory_figure(tmp_path / "missing") is None

    def test_figure_is_deterministic(self, tmp_path):
        store = tmp_path / "store"
        trajectory.append(_write(tmp_path, _snapshot(1000.0)),
                          store_dir=store)
        assert gallery.trajectory_figure(store) \
            == gallery.trajectory_figure(store)
