"""Instrumentation must be observational only.

The contract of the whole subsystem: with a registry installed, every
simulator/cluster run produces bit-identical reports, series, and
digests — the profile is a side channel, never a participant.  These
tests run each pipeline with and without a registry and compare the
canonical dicts, then assert the registry actually saw the stage
timers it promises (so a refactor can't silently disconnect a hook
and keep passing).
"""

import numpy as np

from repro import observe
from repro.cluster import ClusterRouter, ClusterSimulator, ShardMap
from repro.workload import ServingSimulator, TraceSpec, generate_trace
from repro.workload.backends import make_backend

SPEC = TraceSpec(n_base_keys=400, n_ops=1_600, query_mix="zipfian",
                 insert_fraction=0.05, delete_fraction=0.02,
                 modify_fraction=0.02, range_fraction=0.03,
                 poison_schedule="drip", poison_percentage=10.0,
                 seed=31)

CLUSTER_SPEC = TraceSpec(n_base_keys=400, n_ops=1_200,
                         query_mix="zipfian", insert_fraction=0.05,
                         n_tenants=3, tenant_layout="skewed",
                         slo_p95=5.0, seed=31)


def _serving_report(metrics):
    trace = generate_trace(SPEC)
    backend = make_backend("rmi", trace.base_keys)
    return ServingSimulator(backend, trace, tick_ops=200,
                            metrics=metrics).run()


def _cluster_report(metrics):
    trace = generate_trace(CLUSTER_SPEC)
    shard_map = ShardMap.balanced(trace.base_keys, 3,
                                  CLUSTER_SPEC.domain())
    router = ClusterRouter(shard_map, trace.base_keys, "rmi")
    return ClusterSimulator(router, trace, tick_ops=200,
                            metrics=metrics).run()


class TestServingParity:
    def test_reports_bit_identical_with_instrumentation(self):
        plain = _serving_report(None)
        reg = observe.MetricsRegistry()
        instrumented = _serving_report(reg)
        assert plain.to_dict() == instrumented.to_dict()
        for name in plain.series:
            assert np.array_equal(plain.series[name],
                                  instrumented.series[name],
                                  equal_nan=True), name

    def test_stage_timers_and_counters_recorded(self):
        reg = observe.MetricsRegistry()
        report = _serving_report(reg)
        counters = reg.counters
        assert counters["serving.ticks"] == report.n_ticks
        assert counters["serving.ops"] == report.n_ops
        assert counters["columnar.ops"] == report.n_ops
        for stage in ("serving.tick", "columnar.decompose",
                      "columnar.classify", "columnar.model_lookup",
                      "columnar.adjust"):
            assert reg.timings[stage].count > 0, stage

    def test_trace_log_is_per_tick_and_deterministic(self):
        a, b = observe.MetricsRegistry(), observe.MetricsRegistry()
        report = _serving_report(a)
        _serving_report(b)
        assert a.events == b.events
        assert len(a.events) == report.n_ticks
        assert a.events[0]["event"] == "serving.tick"
        assert sum(e["ops"] + e["injected"] for e in a.events) \
            == report.n_ops

    def test_installed_registry_is_picked_up(self):
        """Components fall back to the process-global hook when no
        registry is passed explicitly."""
        trace = generate_trace(SPEC)
        with observe.installed() as reg:
            backend = make_backend("rmi", trace.base_keys)
            ServingSimulator(backend, trace, tick_ops=200).run()
        assert reg.counters["serving.ticks"] > 0


class TestClusterParity:
    def test_reports_bit_identical_with_instrumentation(self):
        plain = _cluster_report(None)
        reg = observe.MetricsRegistry()
        instrumented = _cluster_report(reg)
        assert plain.to_dict() == instrumented.to_dict()
        for family in ("series", "tenant_series", "shard_series"):
            mine = getattr(plain, family)
            theirs = getattr(instrumented, family)
            for name in mine:
                assert np.array_equal(mine[name], theirs[name],
                                      equal_nan=True), name

    def test_cluster_and_router_stages_recorded(self):
        reg = observe.MetricsRegistry()
        report = _cluster_report(reg)
        counters = reg.counters
        assert counters["cluster.ticks"] == report.n_ticks
        assert counters["cluster.ops"] == report.n_ops
        assert counters["router.events"] >= report.n_ops
        assert counters["router.shard_batches"] > 0
        for stage in ("cluster.tick", "router.fanout",
                      "columnar.model_lookup"):
            assert reg.timings[stage].count > 0, stage
        assert len(reg.events) == report.n_ticks

    def test_split_points_series_matches_shard_map(self):
        """The satellite channel: interior splits as a first-class
        per-tick series, NaN-padded like the other shard families."""
        report = _cluster_report(None)
        splits = report.shard_series["shard_split_points"]
        loads = report.shard_series["shard_loads"]
        assert splits.shape == loads.shape
        assert splits.dtype == np.float64
        # k shards -> k-1 interior splits; the final column pads.
        finite = np.isfinite(splits)
        n_shards = report.series["n_shards"].astype(int)
        assert (finite.sum(axis=1) == n_shards - 1).all()
        # Split positions are strictly increasing across each row.
        for row, k in zip(splits, n_shards):
            vals = row[np.isfinite(row)]
            assert (np.diff(vals) > 0).all()
            assert vals.size == k - 1
