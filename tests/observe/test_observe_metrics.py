"""The metrics registry and its opt-in install hook."""

import threading

import pytest

from repro import observe
from repro.observe.metrics import TimingStat


class TestCounters:
    def test_inc_accumulates(self):
        reg = observe.MetricsRegistry()
        reg.inc("ops")
        reg.inc("ops", 41)
        assert reg.counters == {"ops": 42}

    def test_gauge_keeps_latest(self):
        reg = observe.MetricsRegistry()
        reg.gauge("keep", 1.0)
        reg.gauge("keep", 0.25)
        assert reg.gauges == {"keep": 0.25}

    def test_len_counts_distinct_names(self):
        reg = observe.MetricsRegistry()
        assert len(reg) == 0
        reg.inc("a")
        reg.gauge("b", 1.0)
        reg.observe("c", 0.5)
        assert len(reg) == 3

    def test_thread_safety_of_inc(self):
        reg = observe.MetricsRegistry()

        def hammer():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counters["n"] == 4000


class TestTimings:
    def test_observe_accumulates_stats(self):
        reg = observe.MetricsRegistry()
        reg.observe("stage", 0.5)
        reg.observe("stage", 1.5)
        stat = reg.timings["stage"]
        assert stat.count == 2
        assert stat.total == 2.0
        assert stat.min == 0.5
        assert stat.max == 1.5
        assert stat.to_dict()["mean_seconds"] == 1.0

    def test_empty_stat_serializes_finite(self):
        stat = TimingStat()
        d = stat.to_dict()
        assert d["count"] == 0
        assert d["min_seconds"] == 0.0
        assert d["mean_seconds"] == 0.0


class TestTrace:
    def test_events_preserve_order_and_fields(self):
        reg = observe.MetricsRegistry()
        reg.trace("tick", tick=0, ops=10)
        reg.trace("tick", tick=1, ops=20)
        assert reg.events == [
            {"event": "tick", "tick": 0, "ops": 10},
            {"event": "tick", "tick": 1, "ops": 20}]


class TestProfile:
    def test_profile_shape_and_sorted_keys(self):
        reg = observe.MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        reg.observe("stage", 0.1)
        reg.trace("e")
        profile = reg.to_profile()
        assert list(profile["counters"]) == ["a", "z"]
        assert profile["trace_events"] == 1
        assert profile["timings"]["stage"]["count"] == 1

    def test_merge_sums_and_extends(self):
        a, b = observe.MetricsRegistry(), observe.MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        a.observe("t", 1.0)
        b.observe("t", 3.0)
        b.trace("e")
        a.merge(b)
        assert a.counters["n"] == 3
        stat = a.timings["t"]
        assert (stat.count, stat.total, stat.min, stat.max) \
            == (2, 4.0, 1.0, 3.0)
        assert len(a.events) == 1


class TestInstallHook:
    def test_active_defaults_to_none(self):
        assert observe.active() is None

    def test_install_uninstall_roundtrip(self):
        reg = observe.MetricsRegistry()
        try:
            assert observe.install(reg) is reg
            assert observe.active() is reg
        finally:
            observe.uninstall()
        assert observe.active() is None

    def test_installed_context_restores_previous(self):
        outer = observe.MetricsRegistry()
        inner = observe.MetricsRegistry()
        with observe.installed(outer):
            with observe.installed(inner):
                assert observe.active() is inner
            assert observe.active() is outer
        assert observe.active() is None

    def test_installed_honours_an_empty_registry(self):
        """The regression: an empty registry is len() == 0, and a
        truthiness check would silently install a fresh one."""
        reg = observe.MetricsRegistry()
        assert len(reg) == 0
        with observe.installed(reg) as got:
            assert got is reg
            assert observe.active() is reg

    def test_installed_without_argument_makes_one(self):
        with observe.installed() as reg:
            assert isinstance(reg, observe.MetricsRegistry)
            assert observe.active() is reg
        assert observe.active() is None

    def test_exception_still_restores(self):
        with pytest.raises(RuntimeError):
            with observe.installed():
                raise RuntimeError("boom")
        assert observe.active() is None
