"""The dependency-free SVG builders: byte determinism, golden digests.

The golden digests pin the exact bytes for tiny fixed inputs — any
renderer change that alters output must consciously update them,
because gallery byte-identity across jobs/executors is a CI gate.
"""

import hashlib

import numpy as np
import pytest

from repro.observe import figures

NAN = float("nan")


def _line():
    return figures.line_figure("golden line", [
        ("panel one", [("a", np.array([0.0, 1.0, 2.0, 3.0])),
                       ("b", np.array([3.0, NAN, 1.0, 0.5]))]),
        ("panel two", [("c", np.array([1.0, 1.0, 1.0, 1.0]))]),
    ])


def _heat():
    return figures.heatmap_figure("golden heat", np.array(
        [[0.0, 1.0], [2.0, NAN], [4.0, 5.0]]))


def _spark():
    return figures.sparkline_figure("golden spark", [
        ("lane/a", np.array([100.0, 150.0, 120.0])),
        ("lane/b", np.array([NAN, 50.0, 80.0])),
    ])


def _bar():
    return figures.bar_figure("golden bars", [
        ("1. deferral", 0.405),
        ("2. slo_weighting", 0.043),
        ("3. quarantine", 0.0),
        ("4. trim", -0.02),
        ("5. quorum", NAN),
    ])


GOLDEN = {
    "bar": (_bar, "76753b548f1e786053db0851616b4822ac"
                  "bdf83db4681a48ae9bcec6ece84040"),
    "line": (_line, "f5f5cdc2664559a213648788bc12c25b3f"
                    "0d5a040cfdb83a91511dd72ef99d63"),
    "heat": (_heat, "ef5a9fafa155555ec21fd9e2808ef461"
                    "2b48893af1e5bd55de8d5bdf1219a29b"),
    "spark": (_spark, "7a1b0d4285e998c9d9e52f077c4696f9"
                      "63174bc2071de9c5a591e03a7194f8ee"),
}


class TestGoldenDigests:
    @pytest.mark.parametrize("kind", sorted(GOLDEN))
    def test_digest_is_pinned(self, kind):
        build, expected = GOLDEN[kind]
        digest = hashlib.sha256(build().encode()).hexdigest()
        assert digest == expected, (
            f"{kind} SVG bytes changed; if intentional, update the "
            f"pinned digest to {digest}")

    @pytest.mark.parametrize("kind", sorted(GOLDEN))
    def test_rendering_twice_is_byte_identical(self, kind):
        build, _ = GOLDEN[kind]
        assert build() == build()


class TestWellFormedness:
    @pytest.mark.parametrize("kind", sorted(GOLDEN))
    def test_svg_shape(self, kind):
        svg = GOLDEN[kind][0]()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.endswith("\n")

    def test_text_is_escaped(self):
        svg = figures.line_figure("a <b> & c", [
            ("p", [("s", np.array([1.0, 2.0]))])])
        assert "<b>" not in svg
        assert "&lt;b&gt;" in svg
        assert "&amp;" in svg


class TestNaNHandling:
    def test_nan_breaks_the_polyline(self):
        whole = figures.line_figure("t", [
            ("p", [("s", np.array([1.0, 2.0, 3.0, 4.0]))])])
        broken = figures.line_figure("t", [
            ("p", [("s", np.array([1.0, 2.0, NAN, 4.0]))])])
        assert whole.count("<polyline") == 1
        # The NaN splits the series into a 2-point segment plus a
        # lone point (drawn as a short dash), so more elements.
        assert broken.count("<polyline") >= 2

    def test_all_nan_series_renders_no_polyline(self):
        svg = figures.line_figure("t", [
            ("p", [("s", np.array([NAN, NAN, NAN]))])])
        assert "<polyline" not in svg

    def test_nan_heatmap_cell_uses_the_nan_fill(self):
        svg = _heat()
        assert svg.count('fill="#e6e6e6"') == 1

    def test_nan_bar_renders_the_stub_fill(self):
        svg = _bar()
        assert svg.count('fill="#e6e6e6"') == 1
        assert svg.count("nan") >= 1  # the value label says so
        # Sign decides the hue: protective vs harmful bars.
        assert svg.count('fill="#1f77b4"') == 3
        assert svg.count('fill="#d62728"') == 1

    def test_flat_series_is_still_finite(self):
        svg = figures.line_figure("t", [
            ("p", [("s", np.array([2.0, 2.0, 2.0]))])])
        assert "nan" not in svg.lower().replace("anchor", "")
