"""Gallery rendering: manifest-order invariance, stable outputs."""

import json

import numpy as np
import pytest

from repro import io
from repro.observe import gallery


def _closedloop_arrays(seed: int) -> dict:
    rng = np.random.default_rng(seed)
    n = 8
    return {
        "tick_amplification": 1.0 + rng.random(n),
        "tick_injected": rng.integers(0, 50, n).astype(np.float64),
        "tick_keep_fraction": np.linspace(1.0, 0.8, n),
        "tick_rebuild_threshold": np.full(n, 1.6),
    }


def _cluster_arrays(seed: int) -> dict:
    rng = np.random.default_rng(seed)
    n = 6
    splits = np.full((n, 3), np.nan)
    splits[:, 0] = np.linspace(100.0, 140.0, n)
    splits[:, 1] = np.linspace(220.0, 200.0, n)
    return {
        "tick_p50": 1.0 + rng.random(n),
        "tick_p95": 2.0 + rng.random(n),
        "tick_p99": 3.0 + rng.random(n),
        "tick_injected": rng.integers(0, 20, n).astype(np.float64),
        "tick_migrated": np.zeros(n),
        "tick_retrains": rng.integers(0, 3, n).astype(np.float64),
        "tick_imbalance": 1.0 + rng.random(n),
        "tick_degraded": np.zeros(n),
        "tick_flagged": np.zeros(n),
        "tick_latency_ms": rng.random(n) * 5.0,
        "shard_loads": rng.random((n, 4)) * 100,
        "tenant_p95": 2.0 + rng.random((n, 3)),
        "shard_split_points": splits,
    }


def _write_target(out_dir, target: str, cells: dict) -> None:
    """A synthetic ``<out>/<target>/`` tree with a result manifest."""
    target_dir = out_dir / target
    (target_dir / "cells").mkdir(parents=True)
    manifest = []
    for stem, arrays in cells.items():
        path = target_dir / "cells" / f"{stem}.npz"
        io.save_arrays(path, **arrays)
        manifest.append({"file": f"cells/{stem}.npz",
                         "arrays": sorted(arrays)})
    io.save_json({
        "schema": "repro.experiments.result/v2",
        "target": target,
        "profile": "quick",
        "jobs": 1,
        "executor": "process",
        "result": {},
        "artifacts": manifest,
    }, target_dir / "result.json")


def _gallery_bytes(out_dir, target: str) -> dict:
    written = gallery.render_result_gallery(out_dir / target)
    assert written, "gallery rendered nothing"
    return {p.name: p.read_bytes()
            for p in (out_dir / target / "figures").iterdir()}


class TestManifestOrderInvariance:
    @pytest.mark.parametrize("target,builder", [
        ("closedloop", _closedloop_arrays),
        ("cluster", _cluster_arrays)])
    def test_shuffled_manifest_renders_identically(self, tmp_path,
                                                   target, builder):
        cells = {f"{target}-serving-{stem}": builder(seed)
                 for seed, stem in enumerate(
                     ("aa11", "bb22", "cc33"))}
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        _write_target(a_dir, target, cells)
        _write_target(b_dir, target, cells)
        # Reverse b's manifest on disk: same artifacts, new order.
        result = b_dir / target / "result.json"
        payload = json.loads(result.read_text())
        payload["artifacts"] = payload["artifacts"][::-1]
        result.write_text(json.dumps(payload))
        assert _gallery_bytes(a_dir, target) \
            == _gallery_bytes(b_dir, target)

    def test_rerender_is_byte_identical(self, tmp_path):
        _write_target(tmp_path, "closedloop",
                      {"cell-1234": _closedloop_arrays(7)})
        first = _gallery_bytes(tmp_path, "closedloop")
        assert _gallery_bytes(tmp_path, "closedloop") == first


class TestGalleryContents:
    def test_cluster_gallery_has_all_figure_kinds(self, tmp_path):
        _write_target(tmp_path, "cluster",
                      {"cell-abcd": _cluster_arrays(3)})
        names = set(_gallery_bytes(tmp_path, "cluster"))
        assert names == {
            "GALLERY.md",
            "cell-abcd.timeline.svg", "cell-abcd.transport.svg",
            "cell-abcd.shards.svg", "cell-abcd.tenants.svg",
            "cell-abcd.drift.svg"}

    def test_gallery_index_links_every_figure(self, tmp_path):
        _write_target(tmp_path, "cluster",
                      {"cell-abcd": _cluster_arrays(3)})
        files = _gallery_bytes(tmp_path, "cluster")
        index = files["GALLERY.md"].decode()
        for name in files:
            if name != "GALLERY.md":
                assert f"[{name}]({name})" in index

    def test_ablate_target_renders_importance_bars(self, tmp_path):
        metrics = {"amplification": 1.0, "p95": 10.0,
                   "slo_violations": "nan"}
        section = {"scenarios": [{
            "scenario": "drip",
            "baseline": dict(metrics),
            "floor": {**metrics, "amplification": 1.2},
            "components": [
                {"component": "deferral", "rank": 1, "score": 0.2,
                 "amplification_delta": 0.2, "p95_delta": 2.0,
                 "slo_delta": "nan", "harmful": False},
                {"component": "trim", "rank": 2, "score": "nan",
                 "amplification_delta": "nan", "p95_delta": "nan",
                 "slo_delta": "nan", "harmful": False},
            ],
        }]}
        target_dir = tmp_path / "ablate"
        target_dir.mkdir()
        io.save_json({"schema": "repro.experiments.result/v2",
                      "target": "ablate", "profile": "quick",
                      "jobs": 1, "executor": "thread",
                      "result": {"ablation": section},
                      "artifacts": []},
                     target_dir / "result.json")
        first = _gallery_bytes(tmp_path, "ablate")
        assert set(first) == {"GALLERY.md",
                              "ablation-drip.importance.svg"}
        svg = first["ablation-drip.importance.svg"].decode()
        assert "1. deferral" in svg
        assert "2. trim" in svg
        index = first["GALLERY.md"].decode()
        assert "[ablation-drip.importance.svg]" \
               "(ablation-drip.importance.svg)" in index
        # Re-rendering is byte-identical — the CI diff -r gate.
        assert _gallery_bytes(tmp_path, "ablate") == first

    def test_unknown_target_renders_nothing(self, tmp_path):
        target_dir = tmp_path / "fig5"
        target_dir.mkdir()
        io.save_json({"schema": "repro.experiments.result/v2",
                      "target": "fig5", "profile": "quick",
                      "jobs": 1, "executor": "process",
                      "result": {}, "artifacts": []},
                     target_dir / "result.json")
        assert gallery.render_result_gallery(target_dir) == []
        assert not (target_dir / "figures").exists()

    def test_contract_violation_is_a_named_error(self, tmp_path):
        from repro.contracts import ContractViolation
        target_dir = tmp_path / "fig5"
        target_dir.mkdir()
        io.save_json({"target": "fig5", "artifacts": []},
                     target_dir / "result.json")
        with pytest.raises(ContractViolation, match="schema"):
            gallery.render_result_gallery(target_dir)

    def test_render_out_tree_walks_every_target(self, tmp_path):
        _write_target(tmp_path, "closedloop",
                      {"cell-1": _closedloop_arrays(1)})
        _write_target(tmp_path, "cluster",
                      {"cell-2": _cluster_arrays(2)})
        written = gallery.render_out_tree(
            tmp_path, store_dir=tmp_path / "no-store")
        names = {p.name for p in written}
        assert "GALLERY.md" in names
        assert any(n.endswith(".drift.svg") for n in names)
        assert any(n.endswith(".timeline.svg") for n in names)
