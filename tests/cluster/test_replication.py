"""Replica groups: quorum combining, divergence detection, poison
routing, and quarantine (ISSUE 7 tentpole)."""

import numpy as np
import pytest

from repro.cluster import (
    DivergenceConfig,
    DivergenceDetector,
    FaultSpec,
    ReplicaGroup,
    ShardMap,
    TransportBook,
    TransportClusterRouter,
    TransportConfig,
)
from repro.data.keyset import Domain
from repro.workload.trace import OP_QUERY

KEYS = np.arange(100, 900, 2, dtype=np.int64)


def make_group(n_replicas=3, faults=(), read_mode="quorum",
               divergence=DivergenceConfig(), shard=0):
    book = TransportBook(TransportConfig(faults=tuple(faults)))
    group = ReplicaGroup(book, shard, "binary", KEYS, 0.1, {},
                        n_replicas=n_replicas, read_mode=read_mode,
                        divergence=divergence)
    return book, group


# ---------------------------------------------------------------------
# Detector math (pure unit level)
# ---------------------------------------------------------------------
class TestDivergenceDetector:
    CFG = DivergenceConfig(tolerance=0.5, slack=2.0, patience=2)

    def test_needs_three_live_replicas(self):
        detector = DivergenceDetector(self.CFG, 2)
        for _ in range(10):
            assert detector.observe([(0, 0.0), (1, 1e9)]) == []

    def test_flags_after_patience_consecutive_ticks(self):
        detector = DivergenceDetector(self.CFG, 3)
        drifted = [(0, 4.0), (1, 4.0), (2, 40.0)]
        assert detector.observe(drifted) == []   # strike 1
        assert detector.observe(drifted) == [2]  # strike 2 == patience
        assert detector.observe(drifted) == []   # flags only once

    def test_in_band_tick_resets_the_strikes(self):
        detector = DivergenceDetector(self.CFG, 3)
        drifted = [(0, 4.0), (1, 4.0), (2, 40.0)]
        healthy = [(0, 4.0), (1, 4.0), (2, 4.5)]
        assert detector.observe(drifted) == []
        assert detector.observe(healthy) == []  # blip self-clears
        assert detector.observe(drifted) == []
        assert detector.observe(drifted) == [2]

    def test_slack_forgives_near_zero_wobble(self):
        detector = DivergenceDetector(self.CFG, 3)
        wobble = [(0, 0.0), (1, 0.5), (2, 1.9)]
        for _ in range(5):
            assert detector.observe(wobble) == []


class TestQuorumCombine:
    def test_majority_vote_and_qth_smallest_probes(self):
        rows = [
            (np.asarray([True, True, False]), np.asarray([1, 9, 3])),
            (np.asarray([True, False, False]), np.asarray([5, 2, 4])),
            (np.asarray([False, True, False]), np.asarray([8, 6, 7])),
        ]
        found, probes = ReplicaGroup._combine(rows)
        assert found.tolist() == [True, True, False]  # 2-of-3 votes
        assert probes.tolist() == [5, 6, 4]  # q=2 => 2nd smallest

    def test_single_row_passes_through(self):
        row = (np.asarray([True]), np.asarray([7]))
        found, probes = ReplicaGroup._combine([row])
        assert found is row[0] and probes is row[1]


# ---------------------------------------------------------------------
# Group behaviour over real workers
# ---------------------------------------------------------------------
class TestReplicaGroup:
    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1 replica"):
            make_group(n_replicas=0)
        with pytest.raises(ValueError, match="unknown read mode"):
            make_group(read_mode="fastest")

    def test_healthy_replicas_stay_bit_identical(self):
        _, group = make_group(n_replicas=3)
        try:
            group.insert_batch(np.asarray([101, 103], dtype=np.int64))
            digests = group.replica_digests()
            assert len(set(digests)) == 1
        finally:
            group.close()

    def test_poison_reaches_the_target_replica_only(self):
        book, group = make_group(n_replicas=3, faults=[
            FaultSpec(kind="poison", shard=0, replica=0, tick=0,
                      until=0, keys=(111, 113, 115))])
        try:
            book.start_tick(0)
            kinds = np.full(4, OP_QUERY, dtype=np.int8)
            keys = KEYS[:4].copy()
            aux = np.zeros(4, dtype=np.int64)
            found, _ = group.replay_ops(kinds, keys, aux)
            assert found.all()  # reads still agree this tick
            digests = group.replica_digests()
            assert digests[0] != digests[1]  # replica 0 compromised
            assert digests[1] == digests[2]  # peers untouched
        finally:
            group.close()

    def test_detect_quarantines_and_reads_survive(self):
        """A replica whose error bound drifts out of band is flagged,
        loses traffic, and the quorum keeps answering correctly."""
        book, group = make_group(
            n_replicas=3,
            divergence=DivergenceConfig(tolerance=0.5, slack=2.0,
                                        patience=1))
        try:
            # Poison the books directly: pretend replica 2's bound
            # drifted by feeding the detector via a quarantine.
            flagged = group.detect()
            assert flagged == []  # healthy group: nothing to flag
            book.quarantine_replica(0, 2)
            assert group.live_replicas() == [0, 1]
            found, _ = group.lookup_batch(KEYS[:8])
            assert found.all()
            assert book.flagged() == [(0, 2)]
        finally:
            group.close()

    def test_total_outage_reads_zero(self):
        book, group = make_group(n_replicas=1)
        try:
            book.quarantine_replica(0, 0)
            found, probes = group.lookup_batch(KEYS[:5])
            assert not found.any()
            assert probes.sum() == 0
            assert group.state_digest() == "dead"
            assert group.n_keys == 0
        finally:
            group.close()

    def test_primary_mode_reads_lowest_live_index(self):
        book, group = make_group(n_replicas=3, read_mode="primary",
                                 divergence=None)
        try:
            book.quarantine_replica(0, 0)
            found, _ = group.lookup_batch(KEYS[:6])
            assert found.all()  # replica 1 takes over as primary
        finally:
            group.close()

    def test_tuner_hooks_are_local_and_broadcast(self):
        _, group = make_group(n_replicas=2, divergence=None)
        try:
            group.set_rebuild_threshold(0.42)
            assert group.rebuild_threshold == 0.42
            assert group.trim_keep_fraction is None
        finally:
            group.close()


class TestTransportClusterRouter:
    def test_migration_closes_orphaned_groups(self):
        domain = Domain(0, 2_000)
        shard_map = ShardMap.balanced(KEYS, 2, domain)
        router = TransportClusterRouter(shard_map, KEYS, "binary",
                                        replicas=2)
        try:
            before = list(router._spawned)
            assert len(before) == 2
            router.apply_map(shard_map.merge(0))
            assert len(router._spawned) == 1
            # Spawned list only tracks live groups; orphans closed.
            closed = [g for g in before if g not in router._spawned]
            assert all(g._closed for g in closed)
            found, _ = router.lookup_batch(KEYS[:10])
            assert found.all()
        finally:
            router.close()

    def test_context_manager_closes_workers(self):
        domain = Domain(0, 2_000)
        shard_map = ShardMap.balanced(KEYS, 2, domain)
        with TransportClusterRouter(shard_map, KEYS, "binary",
                                    replicas=2) as router:
            assert router.lookup_batch(KEYS[:4])[0].all()
            groups = list(router._spawned)
        assert all(g._closed for g in groups)
