"""Property tests for shard-map determinism (ISSUE 5 satellite).

Mirrors the trace-replay properties of PR 3 one level up:

* **cross-process determinism** — split points and routing computed
  in a separate interpreter (fresh ``PYTHONHASHSEED``, so any
  accidental use of the salted builtin ``hash`` would change them)
  are identical;
* **re-chunking invariance** — routing an op batch equals routing
  its concatenation in any partition into sub-batches (routing is
  stateless, so per-tick batching can never change placement);
* **balance** — equal-mass split points keep per-shard key counts
  within one of each other for any keyset and shard count.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ShardMap
from repro.data.keyset import Domain

CASES = st.fixed_dictionaries({
    "n_keys": st.sampled_from((50, 200, 999)),
    "domain_factor": st.sampled_from((3, 10)),
    "n_shards": st.integers(1, 9),
    "seed": st.integers(0, 2**31 - 1),
})


def build(case):
    domain = Domain.of_size(case["domain_factor"] * case["n_keys"])
    rng = np.random.default_rng(case["seed"])
    keys = np.sort(rng.choice(domain.size, size=case["n_keys"],
                              replace=False) + domain.lo)
    return keys, domain, ShardMap.balanced(keys, case["n_shards"],
                                           domain)


class TestDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(case=CASES)
    def test_construction_is_idempotent(self, case):
        keys, domain, m = build(case)
        again = ShardMap.balanced(keys, case["n_shards"], domain)
        assert m == again
        assert m.digest == again.digest
        assert np.array_equal(m.route(keys), again.route(keys))

    def test_splits_and_routing_stable_across_processes(self):
        """A worker with a different hash salt must derive identical
        split points and routes — the property resumable cluster
        sweeps depend on."""
        case = {"n_keys": 500, "domain_factor": 10, "n_shards": 7,
                "seed": 41}
        keys, domain, local = build(case)
        local_routes = local.route(keys)
        script = (
            "import numpy as np;"
            "from repro.cluster import ShardMap;"
            "from repro.data.keyset import Domain;"
            "domain = Domain.of_size(5000);"
            "rng = np.random.default_rng(41);"
            "keys = np.sort(rng.choice(domain.size, size=500,"
            " replace=False) + domain.lo);"
            "m = ShardMap.balanced(keys, 7, domain);"
            "import zlib;"
            "print(m.digest);"
            "print(zlib.crc32(m.route(keys).tobytes()))")
        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        for salt in ("0", "12345"):
            env = dict(os.environ, PYTHONPATH=src,
                       PYTHONHASHSEED=salt)
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            digest, crc = out.stdout.split()
            assert digest == local.digest, salt
            import zlib
            assert int(crc) == zlib.crc32(local_routes.tobytes()), salt


class TestRechunkingInvariance:
    @settings(max_examples=30, deadline=None)
    @given(case=CASES, chunk_seed=st.integers(0, 2**31 - 1))
    def test_routing_invariant_under_batch_rechunking(self, case,
                                                      chunk_seed):
        """route(batch) == concat(route(chunk) for chunk in batch)
        for ANY partition of the batch — per-tick batching can never
        move a key to a different shard."""
        keys, domain, m = build(case)
        rng = np.random.default_rng(chunk_seed)
        ops = rng.choice(keys, size=300)  # queries, with repeats
        whole = m.route(ops)
        n_cuts = int(rng.integers(0, 10))
        cuts = np.sort(rng.integers(0, ops.size + 1, size=n_cuts))
        chunks = np.split(ops, cuts)
        rechunked = np.concatenate([m.route(c) for c in chunks])
        assert np.array_equal(whole, rechunked)

    @settings(max_examples=30, deadline=None)
    @given(case=CASES)
    def test_shard_counts_match_routing(self, case):
        keys, domain, m = build(case)
        counts = m.shard_counts(keys)
        routed = m.route(keys)
        for shard in range(m.n_shards):
            assert counts[shard] == int((routed == shard).sum())


class TestBalance:
    @settings(max_examples=30, deadline=None)
    @given(case=CASES)
    def test_equal_mass_within_one(self, case):
        keys, domain, m = build(case)
        counts = m.shard_counts(keys)
        # Duplicate quantile keys may collapse shards, never unbalance
        # them beyond the apportionment slack.
        assert counts.sum() == keys.size
        if m.n_shards == case["n_shards"]:
            assert counts.max() - counts.min() <= 1

    @settings(max_examples=30, deadline=None)
    @given(case=CASES)
    def test_every_key_routes_inside_its_shard_range(self, case):
        keys, domain, m = build(case)
        shards = m.route(keys)
        edges = m.edges
        assert (keys >= edges[shards]).all()
        assert (keys < edges[shards + 1]).all()


class TestDerivationChains:
    """ISSUE 7 satellite: split-boundary routing after arbitrary
    merge-then-split derivation chains.

    Every map reachable by split/merge/rebalance steps must keep the
    routing contract intact at the *boundaries* it accumulated along
    the way: for any probe key (live keys, every split point, and the
    keys adjacent to each split), ``route`` places it inside the
    half-open range ``[edges[s], edges[s+1])`` of the shard it names,
    and a key equal to a split point lands in the RIGHT-hand shard.
    This is what makes shard handoff during a merge-then-split
    rebalance loss-free: no key can fall between shards or be owned
    by two.
    """

    @staticmethod
    def derive(m, keys, chain_seed, n_steps=6):
        rng = np.random.default_rng(chain_seed)
        chain = [m]
        for _ in range(n_steps):
            action = rng.integers(0, 3)
            if action == 0:
                m = m.split(int(rng.integers(0, m.n_shards)), keys)
            elif action == 1 and m.n_shards > 1:
                m = m.merge(int(rng.integers(0, m.n_shards - 1)))
            else:
                m = m.rebalanced(keys)
            chain.append(m)
        return chain

    @staticmethod
    def probe_keys(m, keys, domain):
        splits = np.asarray(m.splits, dtype=np.int64)
        probes = np.concatenate([keys, splits, splits - 1,
                                 splits + 1])
        return np.unique(np.clip(probes, domain.lo, domain.hi))

    @settings(max_examples=30, deadline=None)
    @given(case=CASES, chain_seed=st.integers(0, 2**31 - 1))
    def test_boundaries_route_consistently_along_the_chain(
            self, case, chain_seed):
        keys, domain, m = build(case)
        for derived in self.derive(m, keys, chain_seed):
            probes = self.probe_keys(derived, keys, domain)
            shards = derived.route(probes)
            edges = derived.edges
            assert (probes >= edges[shards]).all()
            assert (probes < edges[shards + 1]).all()
            # A key exactly on a split belongs to the right-hand
            # shard: its shard range starts at the split itself.
            for i, cut in enumerate(derived.splits):
                owner = int(derived.route(
                    np.asarray([cut], dtype=np.int64))[0])
                assert owner == i + 1
                assert derived.shard_range(owner)[0] == cut

    @settings(max_examples=30, deadline=None)
    @given(case=CASES, chain_seed=st.integers(0, 2**31 - 1))
    def test_no_key_lost_or_double_counted_along_the_chain(
            self, case, chain_seed):
        keys, domain, m = build(case)
        for derived in self.derive(m, keys, chain_seed):
            counts = derived.shard_counts(keys)
            assert counts.sum() == keys.size
            routed = derived.route(keys)
            assert np.array_equal(
                counts, np.bincount(routed,
                                    minlength=derived.n_shards))
