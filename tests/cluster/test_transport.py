"""The cross-process shard transport: wire format, worker RPC, and
the injected fault grid (ISSUE 7 tentpole)."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSimulator,
    FaultSpec,
    ReplicaDeadError,
    ShardMap,
    ShardWorkerError,
    TransportBook,
    TransportClusterRouter,
    TransportConfig,
    WorkerClient,
)
from repro.cluster.transport import (
    MSG_REPLAY,
    PROTOCOL_VERSION,
    ProtocolError,
    _frame,
    _parse_frame,
    decode_build_spec,
    encode_build_spec,
    spawn_context,
)
from repro.workload import TraceSpec, generate_trace, make_backend
from repro.workload.columnar import (
    WIRE_VERSION,
    decode_event_batch,
    encode_event_batch,
)
from repro.workload.trace import OP_QUERY

KEYS = np.arange(10, 810, 2, dtype=np.int64)


def inert_book(**overrides) -> TransportBook:
    return TransportBook(TransportConfig(**overrides))


def make_client(book, shard=0, backend="rmi", **build_args):
    build_args.setdefault("model_size", 50)
    if backend == "binary":
        build_args = {}
    return WorkerClient(book, shard, 0, backend, 0.12, build_args,
                        KEYS, ctx=spawn_context())


# ---------------------------------------------------------------------
# Wire format (the columnar event batch as the wire unit)
# ---------------------------------------------------------------------
class TestWireFormat:
    def test_round_trip(self, rng):
        kinds = rng.integers(0, 6, size=257).astype(np.int8)
        keys = rng.integers(-2**40, 2**40, size=257, dtype=np.int64)
        aux = rng.integers(0, 2**20, size=257, dtype=np.int64)
        out = decode_event_batch(encode_event_batch(kinds, keys, aux))
        for sent, got in zip((kinds, keys, aux), out):
            assert got.dtype == sent.dtype
            assert np.array_equal(sent, got)

    def test_empty_batch_round_trips(self):
        empty = np.empty(0, dtype=np.int64)
        out = decode_event_batch(encode_event_batch(
            empty.astype(np.int8), empty, empty))
        assert all(a.size == 0 for a in out)

    def test_rejects_bad_magic(self):
        payload = bytearray(encode_event_batch(
            np.zeros(3, dtype=np.int8), np.arange(3), np.arange(3)))
        payload[:4] = b"NOPE"
        with pytest.raises(ValueError, match="magic"):
            decode_event_batch(bytes(payload))

    def test_rejects_version_mismatch(self):
        payload = bytearray(encode_event_batch(
            np.zeros(3, dtype=np.int8), np.arange(3), np.arange(3)))
        payload[4] = WIRE_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            decode_event_batch(bytes(payload))

    def test_rejects_truncation(self):
        payload = encode_event_batch(
            np.zeros(3, dtype=np.int8), np.arange(3), np.arange(3))
        with pytest.raises(ValueError):
            decode_event_batch(payload[:-1])


class TestFrames:
    def test_round_trip(self):
        code, seq, body = _parse_frame(_frame(MSG_REPLAY, 42, b"xy"))
        assert (code, seq, body) == (MSG_REPLAY, 42, b"xy")

    def test_rejects_foreign_version(self):
        raw = bytearray(_frame(MSG_REPLAY, 0))
        raw[0] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            _parse_frame(bytes(raw))

    def test_build_spec_round_trip(self):
        blob = encode_build_spec("rmi", 0.12, {"model_size": 50}, KEYS)
        backend = decode_build_spec(blob)
        assert backend.n_keys == KEYS.size
        found, _ = backend.lookup_batch(KEYS[:5])
        assert found.all()


# ---------------------------------------------------------------------
# Worker RPC
# ---------------------------------------------------------------------
class TestWorkerClient:
    @pytest.fixture(scope="class")
    def client(self):
        client = make_client(inert_book())
        yield client
        client.close()

    def test_replay_matches_local_backend(self, client, rng):
        local = make_backend("rmi", KEYS, rebuild_threshold=0.12,
                             model_size=50)
        queries = rng.choice(KEYS, size=64)
        misses = queries + 1
        kinds = np.full(128, OP_QUERY, dtype=np.int8)
        keys = np.concatenate([queries, misses])
        aux = np.zeros(128, dtype=np.int64)
        found, probes = client.replay(kinds, keys, aux)
        lfound, lprobes = local.replay_ops(kinds, keys, aux)
        assert np.array_equal(found, lfound)
        assert np.array_equal(probes, lprobes)
        assert client.digest() == local.state_digest()

    def test_stats_mirror_the_backend_surface(self, client):
        stats = client.stats()
        assert stats.n_keys == KEYS.size
        assert stats.rebuild_threshold == 0.12
        assert stats.trim_keep_fraction is None
        assert stats.error_bound >= 0.0

    def test_worker_error_carries_the_shard_id(self):
        client = make_client(inert_book(), shard=3)
        try:
            kinds = np.asarray([99], dtype=np.int8)  # unknown op
            with pytest.raises(ShardWorkerError,
                               match="shard 3") as err:
                client.replay(kinds, np.asarray([1]), np.asarray([0]))
            assert err.value.shard == 3
            # The worker survives a dispatch error: next call serves.
            assert client.stats().n_keys == KEYS.size
        finally:
            client.close()

    def test_build_failure_surfaces_at_spawn(self):
        with pytest.raises(ShardWorkerError, match="shard 0"):
            WorkerClient(inert_book(), 0, 0, "no-such-backend", 0.1,
                         {}, KEYS, ctx=spawn_context())

    def test_close_is_idempotent_and_calls_after_close_fail(self):
        client = make_client(inert_book(), backend="binary")
        client.close()
        client.close()
        with pytest.raises(ReplicaDeadError):
            client.stats()


# ---------------------------------------------------------------------
# The injected fault grid
# ---------------------------------------------------------------------
SPEC = TraceSpec(n_base_keys=300, n_ops=800, insert_fraction=0.05,
                 n_tenants=2, tenant_layout="ranges", seed=11)


def run_sim(faults=(), latency=0.0, seed=0, replicas=1, jobs=1,
            backend="binary"):
    trace = generate_trace(SPEC)
    shard_map = ShardMap.balanced(trace.base_keys, 2, SPEC.domain())
    router = TransportClusterRouter(
        shard_map, trace.base_keys, backend,
        transport=TransportConfig(faults=tuple(faults),
                                  latency_mean_ms=latency, seed=seed,
                                  timeout_ms=8.0),
        replicas=replicas, fanout_jobs=jobs)
    try:
        return ClusterSimulator(router, trace, tick_ops=200).run()
    finally:
        router.close()


@pytest.mark.parametrize("jobs", (1, 2))
class TestFaultGrid:
    def test_dead_worker_fails_over_to_the_peer_replica(self, jobs):
        """Replica 0 of shard 0 dies at tick 1; after the failover
        budget burns, its twin keeps the shard serving every key."""
        report = run_sim(
            faults=[FaultSpec(kind="dead", shard=0, replica=0,
                              tick=1)],
            replicas=2, jobs=jobs)
        assert report.found_fraction == 1.0
        degraded = report.series["degraded"]
        assert degraded[0] == 0  # fault not active yet
        assert (degraded[1:] > 0).all()  # dead slot stays on record
        assert report.degraded_ticks == report.n_ticks - 1

    def test_dead_sole_replica_degrades_to_misses(self, jobs):
        """With no peer to fail over to, the shard's reads miss at
        zero cost instead of wedging the cluster."""
        report = run_sim(
            faults=[FaultSpec(kind="dead", shard=0, replica=0,
                              tick=1)],
            replicas=1, jobs=jobs)
        assert 0.0 < report.found_fraction < 1.0
        assert report.degraded_ticks == report.n_ticks - 1

    def test_timeout_then_retry_succeeds_within_the_tick(self, jobs):
        """One injected timeout per request for one tick: every call
        retries into success, so results are unharmed — but the tick
        is degraded and charged timeout + backoff latency."""
        fault = FaultSpec(kind="timeout", shard=0, replica=0, tick=2,
                          until=2, attempts=1)
        report = run_sim(faults=[fault], jobs=jobs)
        clean = run_sim(jobs=jobs)
        assert report.found_fraction == 1.0
        assert np.array_equal(report.series["p95"],
                              clean.series["p95"])
        degraded = report.series["degraded"]
        assert degraded[2] > 0
        assert degraded[[0, 1, 3]].sum() == 0
        latency = report.series["latency_ms"]
        assert latency[2] > 0.0
        assert latency[[0, 1, 3]].sum() == 0.0

    def test_injected_latency_is_deterministic_in_the_seed(self, jobs):
        """Same seed => bit-identical degraded/latency series at any
        fan-out job count; a different seed draws a different world."""
        a = run_sim(latency=3.0, seed=7, jobs=jobs)
        b = run_sim(latency=3.0, seed=7, jobs=jobs)
        other = run_sim(latency=3.0, seed=8, jobs=jobs)
        for name in ("latency_ms", "degraded", "p95"):
            assert np.array_equal(a.series[name], b.series[name]), name
        assert not np.array_equal(a.series["latency_ms"],
                                  other.series["latency_ms"])

    def test_latency_series_parity_across_job_counts(self, jobs):
        """The seeding contract: per-slot request counters reset each
        tick, so jobs=N replays the jobs=1 latency series exactly."""
        report = run_sim(latency=3.0, seed=7, jobs=jobs)
        reference = run_sim(latency=3.0, seed=7, jobs=1)
        assert report.to_dict() == reference.to_dict()
        for name in reference.series:
            assert np.array_equal(report.series[name],
                                  reference.series[name]), name


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="flaky", shard=0)

    def test_window(self):
        spec = FaultSpec(kind="dead", shard=0, tick=2, until=4)
        assert [spec.active(t) for t in range(6)] == [
            False, False, True, True, True, False]
        forever = FaultSpec(kind="dead", shard=0, tick=3)
        assert forever.active(10**6)


class TestBookAccounting:
    def test_inert_book_charges_nothing(self):
        book = inert_book()
        assert not book.config.injection_enabled
        book.start_tick(0)
        assert book.plan_attempt(0, 0, 0)
        assert book.drain_tick_stats() == (0, 0, 0.0)

    def test_dead_fault_is_declared_only_after_the_budget(self):
        """The graceful-degradation contract: a dead machine looks
        like timeouts until the failover budget says otherwise."""
        cfg = TransportConfig(
            faults=(FaultSpec(kind="dead", shard=0, replica=0),))
        book = TransportBook(cfg)
        book.start_tick(0)
        for attempt in range(cfg.failover_budget):
            assert not book.is_dead(0, 0)
            assert not book.plan_attempt(0, 0, attempt)
        book.mark_dead(0, 0)  # what the client does after the loop
        assert book.is_dead(0, 0)
        degraded, flagged, latency = book.drain_tick_stats()
        assert degraded == 1
        assert flagged == 0
        assert latency > 0.0  # timeout + backoff charged per attempt

    def test_quarantine_flags_once(self):
        book = inert_book()
        book.quarantine_replica(2, 1)
        book.quarantine_replica(2, 1)
        assert book.flagged() == [(2, 1)]
        assert not book.healthy(2, 1)
        assert book.drain_tick_stats()[0] == 1
