"""Cluster columnar fast path vs scalar reference: the parity contract.

The cluster simulator's columnar tick pipeline (one
:meth:`ClusterRouter.replay_ops` call per tick, optionally fanning
shards out across a thread pool) must be **bit-identical** to the
one-op-at-a-time scalar path: same 1D/tenant/shard series, same
finals, same map digests — under adversaries, rebalancing, and the
per-shard defense, at any fan-out width.  The sweep-engine grid test
pins the same contract across jobs and executors.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterRouter,
    ClusterSimulator,
    Rebalancer,
    ShardMap,
    SloWeightedDefense,
    make_cluster_adversary,
)
from repro.experiments import cluster_serving
from repro.workload import TraceSpec, generate_trace

SPEC = TraceSpec(n_base_keys=400, n_ops=1_200, insert_fraction=0.05,
                 n_tenants=3, tenant_layout="skewed", slo_p95=5.0,
                 slo_tier_factor=1.5, seed=17)
MIX = TraceSpec(n_base_keys=500, n_ops=1_500, insert_fraction=0.12,
                delete_fraction=0.08, modify_fraction=0.05,
                range_fraction=0.08, n_tenants=4,
                tenant_layout="skewed", slo_p95=6.0, seed=23)


def build(spec, backend, n_shards, columnar, tick_ops=200,
          fanout_jobs=1, managed=False, trim=None):
    trace = generate_trace(spec)
    shard_map = ShardMap.balanced(trace.base_keys, n_shards,
                                  spec.domain())
    kw = {"model_size": 100} if backend in ("rmi", "dynamic") else {}
    router = ClusterRouter(shard_map, trace.base_keys, backend,
                           rebuild_threshold=0.12,
                           trim_keep_fraction=trim,
                           fanout_jobs=fanout_jobs, **kw)
    adversary = rebalancer = defense = None
    if managed:
        adversary = make_cluster_adversary(
            "hotshard", trace.base_keys, spec.domain(), 40, 17,
            victim_range=spec.tenant_ranges()[0])
        rebalancer = Rebalancer(cooldown_ticks=0, max_shards=8)
        defense = SloWeightedDefense(spec.tenant_slos(),
                                     base_threshold=0.12)
    return ClusterSimulator(router, trace, tick_ops=tick_ops,
                            adversary=adversary,
                            rebalancer=rebalancer, defense=defense,
                            columnar=columnar)


def assert_reports_identical(a, b):
    da, db = a.to_dict(), b.to_dict()
    assert da == db, {k: (da[k], db[k]) for k in da if da[k] != db[k]}
    for name in a.series:
        assert np.array_equal(a.series[name], b.series[name],
                              equal_nan=True), name
    for family in ("tenant_series", "shard_series"):
        mine, theirs = getattr(a, family), getattr(b, family)
        for name in mine:
            assert np.array_equal(mine[name], theirs[name],
                                  equal_nan=True), (family, name)


class TestClusterParity:
    @pytest.mark.parametrize("backend", ("rmi", "dynamic", "binary"))
    def test_plain_cluster(self, backend):
        ref = build(MIX, backend, 4, columnar=False).run()
        col = build(MIX, backend, 4, columnar=True).run()
        assert_reports_identical(col, ref)

    @pytest.mark.parametrize("backend", ("rmi", "dynamic"))
    def test_managed_cluster(self, backend):
        """Adversary + rebalancer + per-shard defense, with TRIM."""
        ref = build(MIX, backend, 4, columnar=False, managed=True,
                    trim=0.9).run()
        col = build(MIX, backend, 4, columnar=True, managed=True,
                    trim=0.9).run()
        assert_reports_identical(col, ref)
        assert col.injected_poison > 0

    def test_odd_tick_sizes(self):
        for tick_ops in (37, 1):
            ref = build(SPEC, "rmi", 4, columnar=False,
                        tick_ops=tick_ops).run()
            col = build(SPEC, "rmi", 4, columnar=True,
                        tick_ops=tick_ops).run()
            assert_reports_identical(col, ref)

    @pytest.mark.parametrize("fanout_jobs", (2, 4))
    def test_fanout_matches_serial(self, fanout_jobs):
        """Concurrent shard fan-out is bit-identical to serial."""
        ref = build(MIX, "rmi", 4, columnar=False).run()
        fan = build(MIX, "rmi", 4, columnar=True,
                    fanout_jobs=fanout_jobs).run()
        assert_reports_identical(fan, ref)

    def test_unprovisioned_shard_materialises(self):
        """Inserts landing on an empty shard build it mid-tick on
        both paths."""
        spec = TraceSpec(n_base_keys=400, n_ops=800,
                         insert_fraction=0.25, n_tenants=3,
                         tenant_layout="skewed", slo_p95=5.0, seed=17)
        trace = generate_trace(spec)
        empty_split = int(trace.base_keys.max()) + 1
        reports = []
        for columnar in (True, False):
            shard_map = ShardMap(spec.domain().lo, spec.domain().hi,
                                 (empty_split,))
            router = ClusterRouter(shard_map, trace.base_keys, "rmi",
                                   rebuild_threshold=0.12,
                                   model_size=100)
            assert router.shard(1) is None
            reports.append(ClusterSimulator(
                router, trace, tick_ops=200,
                columnar=columnar).run())
        assert_reports_identical(*reports)


class TestRouterFanoutValidation:
    def test_rejects_zero_jobs(self):
        trace = generate_trace(SPEC)
        shard_map = ShardMap.balanced(trace.base_keys, 2,
                                      SPEC.domain())
        with pytest.raises(ValueError, match="fanout_jobs"):
            ClusterRouter(shard_map, trace.base_keys, "binary",
                          fanout_jobs=0)

    def test_rejects_unknown_executor(self):
        trace = generate_trace(SPEC)
        shard_map = ShardMap.balanced(trace.base_keys, 2,
                                      SPEC.domain())
        with pytest.raises(ValueError, match="unknown executor"):
            ClusterRouter(shard_map, trace.base_keys, "binary",
                          fanout_executor="fiber")

    def test_rejects_process_pools(self):
        """Shards are shared mutable state; a process pool would
        serve copies and silently drop every mutation."""
        trace = generate_trace(SPEC)
        shard_map = ShardMap.balanced(trace.base_keys, 2,
                                      SPEC.domain())
        with pytest.raises(ValueError, match="in-process"):
            ClusterRouter(shard_map, trace.base_keys, "binary",
                          fanout_executor="process")


class TestClusterEdgeCases:
    def test_zero_probe_sample_rejected(self):
        trace = generate_trace(SPEC)
        shard_map = ShardMap.balanced(trace.base_keys, 2,
                                      SPEC.domain())
        router = ClusterRouter(shard_map, trace.base_keys, "binary")
        with pytest.raises(ValueError, match="probe_sample_size"):
            ClusterSimulator(router, trace, probe_sample_size=0)

    @pytest.mark.parametrize("columnar", (True, False))
    def test_poison_ledger_reconciles(self, columnar):
        """emitted == injected + discarded, with a guard-less port
        that wastes budget on the final tick."""

        class Guardless:
            def __init__(self, lo):
                self.emitted = 0
                self._cursor = lo

            def __call__(self, obs):
                keys = np.arange(self._cursor, self._cursor + 5,
                                 dtype=np.int64)
                self._cursor += 5
                self.emitted += 5
                return keys

        trace = generate_trace(SPEC)
        shard_map = ShardMap.balanced(trace.base_keys, 4,
                                      SPEC.domain())
        router = ClusterRouter(shard_map, trace.base_keys, "rmi",
                               rebuild_threshold=0.12, model_size=100)
        adv = Guardless(int(SPEC.domain().hi) + 1)
        report = ClusterSimulator(router, trace, tick_ops=200,
                                  adversary=adv,
                                  columnar=columnar).run()
        assert report.discarded_poison == 5  # the final tick's emit
        assert adv.emitted == (report.injected_poison
                               + report.discarded_poison)
        assert report.to_dict()["discarded_poison"] \
            == report.discarded_poison


class TestSweepGridParity:
    def test_jobs_and_executors_agree(self, tmp_path):
        """The cluster grid replays identically at jobs=1/2 on both
        registered executors (the columnar path runs inside every
        worker)."""
        config = cluster_serving.ClusterConfig(
            backends=("rmi",), adversaries=("concentrated",),
            n_base_keys=400, n_ops=1_200)
        results = [
            cluster_serving.run(config, jobs=jobs, executor=executor)
            for jobs, executor in (
                (1, "thread"), (2, "thread"), (2, "process"))]
        baseline = results[0]
        for other in results[1:]:
            assert other.rows == baseline.rows
