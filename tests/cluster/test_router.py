"""Unit tests for the cluster router: fan-out, migration, hooks."""

import numpy as np
import pytest

from repro.cluster import ClusterRouter, ShardMap, ShardServingError
from repro.data.keyset import Domain
from repro.workload import make_backend


@pytest.fixture()
def setup():
    domain = Domain.of_size(4_000)
    rng = np.random.default_rng(3)
    keys = np.sort(rng.choice(domain.size, size=400, replace=False))
    shard_map = ShardMap.balanced(keys, 4, domain)
    return domain, keys, shard_map


class TestFanOut:
    def test_lookup_matches_single_backend(self, setup):
        """Sharding must not change what is found, and per-key probes
        must equal each key's own shard backend serving it alone."""
        domain, keys, shard_map = setup
        router = ClusterRouter(shard_map, keys, "rmi", model_size=50)
        misses = np.setdiff1d(keys[::7] + 1, keys)
        queries = np.concatenate([keys[::7], misses])
        found, probes = router.lookup_batch(queries)
        assert found[:keys[::7].size].all()
        assert not found[keys[::7].size:].any()

        shards = shard_map.route(queries)
        for shard in range(shard_map.n_shards):
            mask = shards == shard
            solo = make_backend(
                "rmi", keys[shard_map.route(keys) == shard],
                model_size=50)
            f, p = solo.lookup_batch(queries[mask])
            assert np.array_equal(f, found[mask])
            assert np.array_equal(p, probes[mask])

    def test_batch_equals_one_at_a_time(self, setup):
        domain, keys, shard_map = setup
        a = ClusterRouter(shard_map, keys, "binary")
        b = ClusterRouter(shard_map, keys, "binary")
        queries = keys[::5]
        found_a, probes_a = a.lookup_batch(queries)
        found_b = np.zeros(queries.size, dtype=bool)
        probes_b = np.zeros(queries.size, dtype=np.int64)
        for i, key in enumerate(queries):
            f, p = b.lookup_batch(key[np.newaxis])
            found_b[i], probes_b[i] = f[0], p[0]
        assert np.array_equal(found_a, found_b)
        assert np.array_equal(probes_a, probes_b)

    def test_mutations_route_to_one_shard(self, setup):
        domain, keys, shard_map = setup
        router = ClusterRouter(shard_map, keys, "binary")
        lo, hi = shard_map.shard_range(2)
        fresh = np.asarray([lo + 1], dtype=np.int64)
        assert not router.lookup_batch(fresh)[0][0]
        router.insert_batch(fresh)
        assert router.lookup_batch(fresh)[0][0]
        router.delete_batch(fresh)
        assert not router.lookup_batch(fresh)[0][0]

    def test_tick_loads_and_imbalance(self, setup):
        domain, keys, shard_map = setup
        router = ClusterRouter(shard_map, keys, "binary")
        router.drain_tick_loads()
        lo, hi = shard_map.shard_range(1)
        hot = keys[(keys >= lo) & (keys <= hi)]
        router.lookup_batch(hot)
        loads = router.drain_tick_loads()
        assert loads[1] == hot.size
        assert loads.sum() == hot.size
        assert ClusterRouter.imbalance(loads) == pytest.approx(4.0)
        assert ClusterRouter.imbalance(np.zeros(4)) == 1.0
        # Drained: a second drain sees an idle tick.
        assert ClusterRouter.imbalance(router.drain_tick_loads()) == 1.0

    def test_range_scan_spans_shards(self, setup):
        domain, keys, shard_map = setup
        router = ClusterRouter(shard_map, keys, "binary")
        lo = shard_map.shard_range(0)[1] - 1
        hi = shard_map.shard_range(1)[0] + 1
        cost = router.range_scan(lo, hi)
        assert cost > 0
        loads = router.drain_tick_loads()
        assert loads[0] == 1 and loads[1] == 1


class TestEmptyShards:
    def test_keyless_range_serves_misses_without_phantoms(self):
        """An empty shard is unprovisioned — no fabricated key is
        ever served or exported into migration pools."""
        domain = Domain.of_size(1_000)
        keys = np.arange(500, 600, dtype=np.int64)
        shard_map = ShardMap(domain.lo, domain.hi, (500,))
        router = ClusterRouter(shard_map, keys, "binary")
        assert router.shard(0) is None
        found, probes = router.lookup_batch(
            np.asarray([0, 499, 550], dtype=np.int64))
        assert found.tolist() == [False, False, True]
        assert probes[0] == 0  # zero-cost miss, no phantom hit
        assert router.n_keys == keys.size
        assert router.live_keys().tolist() == keys.tolist()

    def test_first_insert_provisions_the_shard(self):
        domain = Domain.of_size(1_000)
        keys = np.arange(500, 600, dtype=np.int64)
        router = ClusterRouter(ShardMap(domain.lo, domain.hi, (500,)),
                               keys, "binary")
        router.insert_batch(np.asarray([7], dtype=np.int64))
        assert router.shard(0) is not None
        assert router.lookup_batch(np.asarray([7]))[0][0]
        assert router.n_keys == keys.size + 1

    def test_migration_through_an_empty_shard_stays_clean(self):
        domain = Domain.of_size(1_000)
        keys = np.arange(500, 600, dtype=np.int64)
        router = ClusterRouter(ShardMap(domain.lo, domain.hi, (500,)),
                               keys, "binary")
        moved = router.apply_map(ShardMap(domain.lo, domain.hi))
        assert moved == keys.size
        assert router.live_keys().tolist() == keys.tolist()


class TestMigration:
    def test_split_moves_only_that_shard(self, setup):
        domain, keys, shard_map = setup
        router = ClusterRouter(shard_map, keys, "binary")
        counts = router.shard_n_keys()
        moved = router.split_shard(1)
        assert moved == counts[1]
        assert router.n_shards == 5
        assert router.n_keys == keys.size
        # Everything still found after the migration.
        found, _ = router.lookup_batch(keys)
        assert found.all()

    def test_merge_moves_both_halves(self, setup):
        domain, keys, shard_map = setup
        router = ClusterRouter(shard_map, keys, "binary")
        counts = router.shard_n_keys()
        moved = router.merge_shards(2)
        assert moved == counts[2] + counts[3]
        assert router.n_shards == 3
        found, _ = router.lookup_batch(keys)
        assert found.all()

    def test_untouched_shards_keep_their_state(self, setup):
        """A rebalance must not silently reset the rest of the
        cluster: shard 0's pending delta survives a split of shard 2."""
        domain, keys, shard_map = setup
        router = ClusterRouter(shard_map, keys, "rmi",
                               rebuild_threshold=0.9, model_size=50)
        lo, _ = shard_map.shard_range(0)
        fresh = np.asarray([k for k in range(lo, lo + 40)
                            if k not in set(keys.tolist())][:5],
                           dtype=np.int64)
        router.insert_batch(fresh)
        assert router.shard(0).pending_updates == fresh.size
        before = router.shard(0)
        router.split_shard(2)
        assert router.shard(0) is before
        assert router.shard(0).pending_updates == fresh.size

    def test_migration_inherits_defense_settings(self, setup):
        """Splitting a defended shard rebuilds through the tuned TRIM
        screen — quarantined keys stay quarantined, never laundered
        into the new models."""
        domain, keys, shard_map = setup
        router = ClusterRouter(shard_map, keys, "rmi", model_size=50)
        router.set_shard_trim_keep_fraction(1, 0.8)
        router.set_shard_rebuild_threshold(1, 0.7)
        router.split_shard(1)
        # The two shards born from shard 1 carry its settings...
        for shard in (1, 2):
            assert router.shard(shard).trim_keep_fraction == 0.8
            assert router.shard(shard).rebuild_threshold == 0.7
            # ...and their migration rebuild screened: rejects sit in
            # quarantine, still served.
            assert router.shard(shard).quarantine_size > 0
        found, _ = router.lookup_batch(keys)
        assert found.all()
        # Unrelated shards keep the construction defaults.
        assert router.shard(0).trim_keep_fraction is None

    def test_migration_accounting_is_cumulative(self, setup):
        domain, keys, shard_map = setup
        router = ClusterRouter(shard_map, keys, "binary")
        a = router.split_shard(0)
        b = router.merge_shards(0)
        assert router.keys_migrated_total == a + b

    def test_retrain_counter_monotone_across_migration(self, setup):
        domain, keys, shard_map = setup
        router = ClusterRouter(shard_map, keys, "rmi",
                               rebuild_threshold=0.01, model_size=50)
        lo, _ = shard_map.shard_range(0)
        taken = set(keys.tolist())
        fresh = np.asarray([k for k in range(lo, lo + 200)
                            if k not in taken][:10], dtype=np.int64)
        for key in fresh:
            router.insert_batch(key[np.newaxis])
        before = router.retrain_count
        assert before > 0
        router.split_shard(0)
        assert router.retrain_count >= before

    def test_rejects_foreign_domain_map(self, setup):
        domain, keys, shard_map = setup
        router = ClusterRouter(shard_map, keys, "binary")
        with pytest.raises(ValueError, match="same domain"):
            router.apply_map(ShardMap(0, domain.hi + 5))


class TestDynamicMigration:
    def test_dynamic_split_screens_via_its_own_quarantine(self, setup):
        """The dynamic backend's migration rebuild screens through its
        index-owned quarantine (the generic list is invisible to its
        lookups), so quarantined keys still resolve."""
        domain, keys, shard_map = setup
        router = ClusterRouter(shard_map, keys, "dynamic",
                               model_size=50)
        router.set_shard_trim_keep_fraction(1, 0.8)
        router.split_shard(1)
        assert router.shard(1).quarantine_size > 0
        found, _ = router.lookup_batch(keys)
        assert found.all()


class TestFanOutErrors:
    """The PR 7 satellite bugfix: a shard failing mid-fan-out must
    surface as one ShardServingError naming the shard, with the
    still-pending sibling jobs cancelled — not a bare exception from
    whichever future happened to be inspected first."""

    @pytest.fixture()
    def broken_router(self, setup):
        domain, keys, shard_map = setup

        def run(jobs):
            router = ClusterRouter(shard_map, keys, "binary",
                                   fanout_jobs=jobs)

            def explode(kinds, keys, aux):
                raise RuntimeError("disk on fire")

            router.shard(2).replay_ops = explode
            n = keys.size
            kinds = np.zeros(n, dtype=np.int8)  # all queries
            return router, kinds, keys, np.zeros(n, dtype=np.int64)

        return run

    @pytest.mark.parametrize("jobs", (1, 4))
    def test_error_names_the_failing_shard(self, broken_router, jobs):
        router, kinds, keys, aux = broken_router(jobs)
        with pytest.raises(ShardServingError,
                           match="shard 2: RuntimeError") as err:
            router.replay_ops(kinds, keys, aux)
        assert err.value.shard == 2

    def test_healthy_shards_unaffected_after_the_error(
            self, broken_router):
        router, kinds, keys, aux = broken_router(4)
        with pytest.raises(ShardServingError):
            router.replay_ops(kinds, keys, aux)
        shards = router.shard_map.route(keys)
        healthy = keys[shards != 2]
        found, _ = router.lookup_batch(healthy)
        assert found.all()
