"""Unit tests for the CDF-partitioned shard map."""

import numpy as np
import pytest

from repro.cluster import ShardMap
from repro.data.keyset import Domain


def keys_of(n, domain, seed=5):
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(domain.size, size=n, replace=False)
                   + domain.lo)


class TestConstruction:
    def test_single_shard_has_no_splits(self):
        domain = Domain.of_size(1000)
        m = ShardMap.balanced(keys_of(100, domain), 1, domain)
        assert m.n_shards == 1
        assert m.splits == ()
        assert m.shard_range(0) == (domain.lo, domain.hi)

    def test_balanced_equal_mass(self):
        domain = Domain.of_size(10_000)
        keys = keys_of(1_000, domain)
        m = ShardMap.balanced(keys, 8, domain)
        counts = m.shard_counts(keys)
        assert counts.sum() == keys.size
        assert counts.max() - counts.min() <= 1

    def test_skewed_mass_still_balances(self):
        """Split points follow the CDF: a dense region gets narrow
        shards, a sparse one wide shards — key counts stay equal."""
        rng = np.random.default_rng(11)
        dense = rng.choice(1_000, size=800, replace=False)
        sparse = rng.choice(np.arange(50_000, 100_000), size=200,
                            replace=False)
        keys = np.sort(np.concatenate([dense, sparse]))
        domain = Domain.of_size(100_000)
        m = ShardMap.balanced(keys, 4, domain)
        counts = m.shard_counts(keys)
        assert counts.max() - counts.min() <= 1
        widths = np.diff(m.edges)
        assert widths[0] < widths[-1]  # dense side is narrower

    def test_empty_keys_collapse_to_one_shard(self):
        domain = Domain.of_size(100)
        m = ShardMap.balanced(np.empty(0, dtype=np.int64), 4, domain)
        assert m.n_shards == 1

    def test_rejects_bad_splits(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            ShardMap(0, 100, (50, 50))
        with pytest.raises(ValueError, match="strictly increasing"):
            ShardMap(0, 100, (0,))
        with pytest.raises(ValueError, match="strictly increasing"):
            ShardMap(0, 100, (101,))
        with pytest.raises(ValueError, match="empty shard-map domain"):
            ShardMap(10, 5)

    def test_rejects_out_of_domain_keys(self):
        with pytest.raises(ValueError, match="outside the domain"):
            ShardMap.balanced(np.asarray([5, 200]), 2,
                              Domain.of_size(100))

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardMap.balanced(np.asarray([1, 2]), 0, Domain.of_size(10))


class TestRouting:
    def test_route_respects_ranges(self):
        domain = Domain.of_size(1_000)
        keys = keys_of(200, domain)
        m = ShardMap.balanced(keys, 4, domain)
        shards = m.route(keys)
        for shard in range(m.n_shards):
            lo, hi = m.shard_range(shard)
            own = keys[shards == shard]
            assert (own >= lo).all() and (own <= hi).all()

    def test_split_key_routes_right(self):
        m = ShardMap(0, 100, (50,))
        assert m.route(np.asarray([49, 50, 51])).tolist() == [0, 1, 1]

    def test_ranges_partition_domain(self):
        m = ShardMap(0, 99, (10, 40))
        ranges = [m.shard_range(i) for i in range(3)]
        assert ranges == [(0, 9), (10, 39), (40, 99)]


class TestDerivation:
    def test_split_at_mass_median(self):
        domain = Domain.of_size(1_000)
        keys = keys_of(100, domain)
        m = ShardMap.balanced(keys, 2, domain)
        before = m.n_shards
        split = m.split(0, keys)
        assert split.n_shards == before + 1
        # The cut isolates half of shard 0's mass.
        lo, hi = m.shard_range(0)
        inside = keys[(keys >= lo) & (keys <= hi)]
        left = split.shard_counts(inside)[0]
        assert abs(left - inside.size / 2) <= 1

    def test_split_without_enough_keys_is_a_noop(self):
        m = ShardMap(0, 100, ())
        assert m.split(0, np.asarray([5])) is m

    def test_merge_drops_the_boundary(self):
        m = ShardMap(0, 100, (30, 60))
        merged = m.merge(0)
        assert merged.splits == (60,)
        with pytest.raises(ValueError, match="no right neighbour"):
            merged.merge(1)

    def test_rebalanced_recomputes_equal_mass(self):
        domain = Domain.of_size(10_000)
        keys = keys_of(500, domain)
        skew = ShardMap(domain.lo, domain.hi, (9_000, 9_500, 9_900))
        counts = skew.shard_counts(keys)
        assert counts.max() - counts.min() > 1  # badly unbalanced
        fixed = skew.rebalanced(keys)
        assert fixed.n_shards == skew.n_shards
        counts = fixed.shard_counts(keys)
        assert counts.max() - counts.min() <= 1


class TestContentAddressing:
    def test_digest_names_the_partition(self):
        a = ShardMap(0, 100, (30, 60))
        b = ShardMap(0, 100, (30, 60))
        c = ShardMap(0, 100, (30, 61))
        assert a.digest == b.digest
        assert a.digest != c.digest
        assert len(a.digest) == 16
        int(a.digest, 16)

    def test_digest_covers_the_domain(self):
        assert ShardMap(0, 100).digest != ShardMap(0, 101).digest

    def test_derivations_change_the_digest(self):
        domain = Domain.of_size(1_000)
        keys = keys_of(100, domain)
        m = ShardMap.balanced(keys, 2, domain)
        assert m.split(0, keys).digest != m.digest
        assert m.split(0, keys).merge(0).n_shards == m.n_shards
