"""Process transport == in-process router, bit for bit.

The in-process :class:`ClusterRouter` is the executable spec: with no
injected latency or faults the :class:`TransportClusterRouter` must
reproduce its full simulation report, every recorded series, and the
per-shard state digests, at any replica count.  This is the parity
contract that lets the scalar path survive as the reference while the
process path serves.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterRouter,
    ClusterSimulator,
    Rebalancer,
    ShardMap,
    SloWeightedDefense,
    TransportClusterRouter,
)
from repro.workload import TraceSpec, generate_trace

SPEC = TraceSpec(n_base_keys=300, n_ops=800, insert_fraction=0.06,
                 delete_fraction=0.02, range_fraction=0.05,
                 n_tenants=2, tenant_layout="ranges", seed=19)
BUILD = dict(rebuild_threshold=0.15, model_size=60)


def simulate(router_cls, managed=False, **router_kwargs):
    trace = generate_trace(SPEC)
    shard_map = ShardMap.balanced(trace.base_keys, 3, SPEC.domain())
    router = router_cls(shard_map, trace.base_keys, "rmi", **BUILD,
                        **router_kwargs)
    rebalancer = Rebalancer(max_shards=6) if managed else None
    defense = (SloWeightedDefense(trace.spec.tenant_slos())
               if managed else None)
    try:
        report = ClusterSimulator(router, trace, tick_ops=200,
                                  rebalancer=rebalancer,
                                  defense=defense).run()
        return report, router.shard_digests()
    finally:
        router.close()


def assert_reports_equal(process, inproc):
    p_report, p_digests = process
    i_report, i_digests = inproc
    assert p_digests == i_digests
    assert p_report.to_dict() == i_report.to_dict()
    assert set(p_report.series) == set(i_report.series)
    for name, series in i_report.series.items():
        assert np.array_equal(p_report.series[name], series), name
    for name, series in i_report.tenant_series.items():
        assert np.array_equal(p_report.tenant_series[name],
                              series), name


@pytest.mark.parametrize("replicas", (1, 2))
def test_process_transport_matches_inproc(replicas):
    process = simulate(TransportClusterRouter, replicas=replicas)
    inproc = simulate(ClusterRouter)
    assert_reports_equal(process, inproc)


def test_managed_run_parity():
    """Rebalancer splits/merges and defense tuning drive migrations
    through the replica groups; state must still track the spec."""
    process = simulate(TransportClusterRouter, managed=True,
                       replicas=2)
    inproc = simulate(ClusterRouter, managed=True)
    assert_reports_equal(process, inproc)


def test_transport_stats_inert_without_injection():
    report, _ = simulate(TransportClusterRouter, replicas=2)
    assert report.degraded_ticks == 0
    assert report.flagged_replicas == 0
    assert report.series["degraded"].sum() == 0
    assert report.series["flagged"].sum() == 0
    assert report.series["latency_ms"].sum() == 0.0
