"""Unit tests for rebalancing triggers and the SLO-weighted defense."""

import numpy as np
import pytest

from repro.cluster import Rebalancer, SloWeightedDefense
from repro.workload.simulator import TickObservation


def loads(*values):
    return np.asarray(values, dtype=np.int64)


def p95s(*values):
    return np.asarray(values, dtype=np.float64)


KEYS = np.asarray([100, 100, 100, 100], dtype=np.int64)


def obs(tick=3, amplification=1.0, n_keys=100):
    return TickObservation(
        tick=tick, ticks_total=10, p50=4.0, p95=5.0, p99=6.0,
        mean_probes=4.0, error_bound=8.0, retrains=0,
        retrains_delta=0, amplification=amplification, n_keys=n_keys,
        injected_total=0)


class TestRebalancerTriggers:
    def test_hot_load_split(self):
        r = Rebalancer(cooldown_ticks=0)
        decision = r.decide(loads(300, 20, 20, 20), p95s(5, 5, 5, 5),
                            KEYS)
        assert decision is not None
        assert (decision.kind, decision.shard) == ("split", 0)
        assert decision.reason == "hot-load"

    def test_slow_shard_split(self):
        r = Rebalancer(cooldown_ticks=0, split_latency_factor=1.5)
        decision = r.decide(loads(25, 25, 25, 25), p95s(5, 5, 9, 5),
                            KEYS)
        assert decision is not None
        assert (decision.kind, decision.shard) == ("split", 2)
        assert decision.reason == "slow-shard"

    def test_cold_pair_merge(self):
        r = Rebalancer(cooldown_ticks=0)
        decision = r.decide(loads(60, 2, 2, 60), p95s(5, 5, 5, 5),
                            KEYS)
        assert decision is not None
        assert (decision.kind, decision.shard) == ("merge", 1)
        assert decision.reason == "cold-pair"

    def test_balanced_cluster_is_left_alone(self):
        r = Rebalancer(cooldown_ticks=0)
        assert r.decide(loads(25, 25, 25, 25), p95s(5, 5, 5, 5),
                        KEYS) is None

    def test_cooldown_suppresses_consecutive_actions(self):
        r = Rebalancer(cooldown_ticks=2)
        hot = loads(300, 20, 20, 20)
        flat = p95s(5, 5, 5, 5)
        assert r.decide(hot, flat, KEYS) is not None
        assert r.decide(hot, flat, KEYS) is None
        assert r.decide(hot, flat, KEYS) is None
        assert r.decide(hot, flat, KEYS) is not None

    def test_max_shards_blocks_splits(self):
        """At the shard cap a hot shard cannot split; merging the
        cold tail instead frees room for a future split."""
        r = Rebalancer(cooldown_ticks=0, max_shards=4)
        decision = r.decide(loads(300, 20, 20, 20), p95s(5, 5, 5, 5),
                            KEYS)
        assert decision is not None and decision.kind == "merge"

    def test_min_shards_blocks_merges(self):
        r = Rebalancer(cooldown_ticks=0, min_shards=4)
        assert r.decide(loads(60, 2, 2, 60), p95s(5, 5, 5, 5),
                        KEYS) is None

    def test_tiny_shard_never_splits(self):
        r = Rebalancer(cooldown_ticks=0, min_shard_keys=64)
        decision = r.decide(loads(300, 20, 20, 20), p95s(5, 5, 5, 5),
                            loads(10, 100, 100, 100))
        assert decision is None or decision.shard != 0

    def test_nan_p95_is_no_signal(self):
        r = Rebalancer(cooldown_ticks=0)
        assert r.decide(loads(25, 25, 25, 25),
                        p95s(float("nan"), 5, 5, 5), KEYS) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="min_shards"):
            Rebalancer(min_shards=0)
        with pytest.raises(ValueError, match="max_shards"):
            Rebalancer(min_shards=4, max_shards=2)
        with pytest.raises(ValueError, match="split_load_factor"):
            Rebalancer(split_load_factor=1.0)
        with pytest.raises(ValueError, match="merge_load_factor"):
            Rebalancer(merge_load_factor=1.0)


class TestSloWeightedDefense:
    SLOS = (5.0, 7.5, 11.25)

    def test_pressure_is_worst_tenant_ratio(self):
        d = SloWeightedDefense(self.SLOS, amp_slo=1.1)
        pressure = d.pressure(
            np.asarray([6.0, 5.0, 5.0]),
            np.asarray([1.0, 1.0, 1.0]),
            np.asarray([0, 1]))
        assert pressure == pytest.approx(6.0 / 5.0)

    def test_amplification_arm_sees_sub_probe_drift(self):
        """Integer p95s hide early damage; the amplification budget
        must pressure anyway."""
        d = SloWeightedDefense(self.SLOS, amp_slo=1.1)
        pressure = d.pressure(
            np.asarray([5.0, 5.0, 5.0]),      # all inside p95 SLO
            np.asarray([1.32, 1.0, 1.0]),     # but tenant 0 drifted
            np.asarray([0]))
        assert pressure == pytest.approx(1.32 / 1.1)

    def test_nan_and_inf_contribute_nothing(self):
        d = SloWeightedDefense((float("inf"),), amp_slo=1.1)
        assert d.pressure(np.asarray([99.0]),
                          np.asarray([float("nan")]),
                          np.asarray([0])) == 0.0

    def test_pressure_defers_and_tightens(self):
        d = SloWeightedDefense(self.SLOS, base_threshold=0.12,
                               keep_deadband=0.1, keep_gain=0.75)
        keep, threshold = d.decide_shard(
            0, 4, obs(), np.asarray([9.0, 5.0, 5.0]),
            np.asarray([1.0, 1.0, 1.0]), np.asarray([0]))
        assert threshold == pytest.approx(0.5)   # deferral kicked in
        assert keep is not None and keep < 1.0   # screen tightened

    def test_no_pressure_keeps_neutral_decision(self):
        d = SloWeightedDefense(self.SLOS, base_threshold=0.12,
                               keep_deadband=0.1, keep_gain=0.75)
        keep, threshold = d.decide_shard(
            0, 4, obs(), np.asarray([4.0, 5.0, 5.0]),
            np.asarray([1.0, 1.0, 1.0]), np.asarray([0]))
        assert threshold == pytest.approx(0.12)
        assert keep == 1.0

    def test_keep_respects_the_floor(self):
        d = SloWeightedDefense(self.SLOS, keep_floor=0.7,
                               pressure_gain=5.0)
        keep, _ = d.decide_shard(
            0, 4, obs(), np.asarray([50.0, 5.0, 5.0]),
            np.asarray([1.0, 1.0, 1.0]), np.asarray([0]))
        assert keep == pytest.approx(0.7)

    def test_topology_change_resets_tuner_state(self):
        d = SloWeightedDefense(self.SLOS, base_threshold=0.12)
        hot = obs(amplification=3.0)
        for _ in range(4):  # drive shard 0's EMA up at 4 shards
            d.decide_shard(0, 4, hot, np.asarray([4.0, 5.0, 5.0]),
                           np.asarray([1.0, 1.0, 1.0]),
                           np.asarray([0]))
        armed = d._tuners[0]._amp_ema
        assert armed > 1.5
        # A split re-keys the shards: fresh tuners, neutral EMAs.
        d.decide_shard(0, 5, obs(), np.asarray([4.0, 5.0, 5.0]),
                       np.asarray([1.0, 1.0, 1.0]), np.asarray([0]))
        assert d._tuners[0]._amp_ema < armed

    def test_validation(self):
        with pytest.raises(ValueError, match="SLO targets"):
            SloWeightedDefense((0.0,))
        with pytest.raises(ValueError, match="amp_slo"):
            SloWeightedDefense(self.SLOS, amp_slo=1.0)
        with pytest.raises(ValueError, match="deferral_threshold"):
            SloWeightedDefense(self.SLOS, deferral_threshold=0.0)
