"""Unit tests for the cluster simulator and its adversaries."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterRouter,
    ClusterSimulator,
    Rebalancer,
    ShardMap,
    SloWeightedDefense,
    make_cluster_adversary,
)
from repro.workload import TraceSpec, generate_trace

SPEC = TraceSpec(n_base_keys=400, n_ops=1_200, insert_fraction=0.05,
                 n_tenants=3, tenant_layout="skewed", slo_p95=5.0,
                 slo_tier_factor=1.5, seed=17)

CLUSTER_SERIES = ("p50", "p95", "p99", "mean_probes", "error_bound",
                  "retrains", "n_keys", "n_shards", "imbalance",
                  "migrated", "injected", "degraded", "flagged",
                  "latency_ms")


def build(backend="rmi", n_shards=4, spec=SPEC, **sim_kwargs):
    trace = generate_trace(spec)
    shard_map = ShardMap.balanced(trace.base_keys, n_shards,
                                  spec.domain())
    router = ClusterRouter(shard_map, trace.base_keys, backend,
                           rebuild_threshold=0.12, model_size=100)
    return trace, ClusterSimulator(router, trace, tick_ops=200,
                                   **sim_kwargs)


class TestReplay:
    @pytest.fixture(scope="class")
    def report(self):
        return build()[1].run()

    def test_series_shapes(self, report):
        assert sorted(report.series) == sorted(CLUSTER_SERIES)
        n_ticks = report.n_ticks
        assert n_ticks == 6  # 1200 ops / 200 per tick
        for name, series in report.series.items():
            assert series.shape == (n_ticks,), name
        for name, series in report.tenant_series.items():
            assert series.shape == (n_ticks, SPEC.n_tenants), name
        for name, series in report.shard_series.items():
            assert series.shape[0] == n_ticks, name

    def test_found_fraction_is_total(self, report):
        assert report.found_fraction == 1.0

    def test_tenant_attribution_covers_all_reads(self, report):
        """Per-shard loads sum to the ops served (reads + mutations),
        and shard p95 rows are finite wherever the shard saw reads."""
        loads = report.shard_series["shard_loads"]
        assert np.nansum(loads) == pytest.approx(report.n_ops)

    def test_replay_is_deterministic(self, report):
        again = build()[1].run()
        assert again.to_dict() == report.to_dict()
        for name in report.series:
            assert np.array_equal(report.series[name],
                                  again.series[name], equal_nan=True)
        for family in ("tenant_series", "shard_series"):
            mine, theirs = (getattr(r, family)
                            for r in (report, again))
            for name in mine:
                assert np.array_equal(mine[name], theirs[name],
                                      equal_nan=True), name

    def test_single_shard_cluster_matches_shape(self):
        report = build(n_shards=1)[1].run()
        assert report.final_n_shards == 1
        assert report.shard_series["shard_loads"].shape[1] == 1
        assert (report.series["imbalance"] == 1.0).all()

    def test_map_digests_recorded(self, report):
        assert report.initial_map_digest == report.final_map_digest
        int(report.initial_map_digest, 16)


class TestAdversaries:
    def test_budget_ledger_spends_exactly_the_pool(self):
        trace = generate_trace(SPEC)
        for name in ("uniform", "concentrated", "hotshard"):
            adv = make_cluster_adversary(
                name, trace.base_keys, SPEC.domain(), 40, 17,
                victim_range=SPEC.tenant_ranges()[0])
            _, sim = build(adversary=adv)
            report = sim.run()
            assert report.injected_poison == adv.budget, name
            assert adv.remaining == 0, name

    def test_concentrated_keys_stay_in_the_victim_range(self):
        trace = generate_trace(SPEC)
        lo, hi = SPEC.tenant_ranges()[0]
        adv = make_cluster_adversary(
            "concentrated", trace.base_keys, SPEC.domain(), 40, 17,
            victim_range=(lo, hi))
        assert adv._pool.size > 0
        assert (adv._pool >= lo).all() and (adv._pool <= hi).all()

    def test_uniform_keys_spread_over_every_shard(self):
        trace = generate_trace(SPEC)
        shard_map = ShardMap.balanced(trace.base_keys, 4,
                                      SPEC.domain())
        adv = make_cluster_adversary(
            "uniform", trace.base_keys, SPEC.domain(), 40, 17,
            victim_range=SPEC.tenant_ranges()[0])
        counts = shard_map.shard_counts(adv._pool)
        assert (counts > 0).all()

    def test_crafted_keys_are_fresh(self):
        trace = generate_trace(SPEC)
        for name in ("uniform", "concentrated"):
            adv = make_cluster_adversary(
                name, trace.base_keys, SPEC.domain(), 40, 17,
                victim_range=SPEC.tenant_ranges()[0])
            assert np.intersect1d(adv._pool,
                                  trace.base_keys).size == 0, name

    def test_victim_range_must_sit_in_domain(self):
        trace = generate_trace(SPEC)
        with pytest.raises(ValueError, match="victim range"):
            make_cluster_adversary(
                "uniform", trace.base_keys, SPEC.domain(), 40, 17,
                victim_range=(0, SPEC.domain().hi + 1))

    def test_unknown_adversary(self):
        with pytest.raises(ValueError, match="unknown cluster"):
            make_cluster_adversary(
                "nope", np.asarray([1, 2]), SPEC.domain(), 4, 1,
                victim_range=(0, 1))


class TestManagementLoop:
    def test_hot_shard_split_fires_and_is_recorded(self):
        """A query hotspot on one shard must trigger the load split,
        grow the cluster, and account its migration in the series."""
        spec = TraceSpec(n_base_keys=400, n_ops=1_600,
                         query_mix="hotspot", hotspot_fraction=0.08,
                         hotspot_weight=0.95, n_tenants=3,
                         tenant_layout="ranges", slo_p95=5.0,
                         seed=29)
        trace = generate_trace(spec)
        shard_map = ShardMap.balanced(trace.base_keys, 4,
                                      spec.domain())
        router = ClusterRouter(shard_map, trace.base_keys, "binary")
        report = ClusterSimulator(
            router, trace, tick_ops=200,
            rebalancer=Rebalancer(max_shards=8)).run()
        assert report.final_n_shards > 4
        assert report.migrated_keys > 0
        assert report.series["migrated"].sum() == report.migrated_keys
        assert report.final_map_digest != report.initial_map_digest

    def test_defense_decisions_reach_the_shards(self):
        trace = generate_trace(SPEC)
        shard_map = ShardMap.balanced(trace.base_keys, 4,
                                      SPEC.domain())
        router = ClusterRouter(shard_map, trace.base_keys, "rmi",
                               rebuild_threshold=0.12, model_size=100)
        defense = SloWeightedDefense(SPEC.tenant_slos(),
                                     base_threshold=0.12,
                                     keep_deadband=0.1)
        ClusterSimulator(router, trace, tick_ops=200,
                         defense=defense).run()
        for shard in range(router.n_shards):
            # The tuner has spoken every tick: the keep screen is armed
            # (possibly at the pass-everything 1.0).
            assert router.shard(shard).trim_keep_fraction is not None

    def test_defense_skips_unprovisioned_shards(self):
        """A keyless shard has no backend to tune; the defense must
        step over it instead of crashing at the first tick."""
        spec = TraceSpec(n_base_keys=400, n_ops=800, n_tenants=3,
                         tenant_layout="skewed", slo_p95=5.0,
                         seed=17)
        trace = generate_trace(spec)
        empty_split = int(trace.base_keys.max()) + 1
        shard_map = ShardMap(spec.domain().lo, spec.domain().hi,
                             (empty_split,))
        router = ClusterRouter(shard_map, trace.base_keys, "rmi",
                               rebuild_threshold=0.12, model_size=100)
        assert router.shard(1) is None
        defense = SloWeightedDefense(spec.tenant_slos(),
                                     base_threshold=0.12)
        report = ClusterSimulator(router, trace, tick_ops=200,
                                  defense=defense).run()
        assert report.found_fraction == 1.0

    def test_defense_is_inert_on_model_free_backends(self):
        trace = generate_trace(SPEC)
        shard_map = ShardMap.balanced(trace.base_keys, 2,
                                      SPEC.domain())
        router = ClusterRouter(shard_map, trace.base_keys, "binary")
        defense = SloWeightedDefense(SPEC.tenant_slos())
        report = ClusterSimulator(router, trace, tick_ops=200,
                                  defense=defense).run()
        assert report.retrains == 0

    def test_slo_violations_counted(self):
        spec = TraceSpec(n_base_keys=400, n_ops=1_200, n_tenants=3,
                         tenant_layout="skewed", slo_p95=1.0,
                         seed=17)  # impossible SLO: every tick violates
        trace = generate_trace(spec)
        shard_map = ShardMap.balanced(trace.base_keys, 2,
                                      spec.domain())
        router = ClusterRouter(shard_map, trace.base_keys, "binary")
        report = ClusterSimulator(router, trace, tick_ops=200).run()
        assert report.tenant_slo_violation_fraction[0] == 1.0

    def test_no_slo_means_no_violations(self):
        report = build()[1].run()
        spec_no_slo = TraceSpec(n_base_keys=400, n_ops=1_200,
                                insert_fraction=0.05, n_tenants=3,
                                tenant_layout="skewed", seed=17)
        report = build(spec=spec_no_slo)[1].run()
        assert report.tenant_slo_violation_fraction == (0.0, 0.0, 0.0)
