"""repro.contracts — the declarations both runtime and linter trust."""

from __future__ import annotations

import pytest

from repro import contracts
from repro.contracts import ContractViolation, \
    validate_ablation_section, validate_artifact_entry, \
    validate_result


def canonical_document():
    return {
        "schema": contracts.RESULT_SCHEMA,
        "target": "fig7",
        "profile": "quick",
        "jobs": 2,
        "executor": "thread",
        "result": {"rows": []},
        "artifacts": [{"file": "fig7.npz", "arrays": ["x", "y"]}],
    }


class TestValidateResult:
    def test_accepts_canonical_document(self):
        document = canonical_document()
        assert validate_result(document) is document

    def test_accepts_optional_instrument(self):
        document = canonical_document()
        document["instrument"] = {"enabled": True}
        assert validate_result(document) is document

    def test_rejects_non_object(self):
        with pytest.raises(ContractViolation, match="object"):
            validate_result(["not", "a", "dict"])

    def test_rejects_wrong_schema(self):
        document = canonical_document()
        document["schema"] = "repro.experiments.result/v1"
        with pytest.raises(ContractViolation, match="schema"):
            validate_result(document)

    def test_rejects_missing_key(self):
        document = canonical_document()
        del document["executor"]
        with pytest.raises(ContractViolation,
                           match=r"missing keys \['executor'\]"):
            validate_result(document)

    def test_rejects_unknown_key(self):
        document = canonical_document()
        document["extra"] = 1
        with pytest.raises(ContractViolation,
                           match=r"unknown keys \['extra'\]"):
            validate_result(document)

    def test_rejects_non_list_artifacts(self):
        document = canonical_document()
        document["artifacts"] = {"file": "x"}
        with pytest.raises(ContractViolation, match="list"):
            validate_result(document)

    def test_rejects_drifted_artifact_entry(self):
        document = canonical_document()
        document["artifacts"].append({"file": "a.npz",
                                      "arrys": []})
        with pytest.raises(ContractViolation,
                           match=r"artifacts\[1\]"):
            validate_result(document)

    def test_violation_is_a_value_error(self):
        assert issubclass(ContractViolation, ValueError)


def canonical_ablation():
    metrics = {"amplification": 1.0, "p95": 10.0,
               "slo_violations": "nan"}
    return {
        "scenarios": [{
            "scenario": "drip",
            "baseline": dict(metrics),
            "floor": dict(metrics),
            "components": [{
                "component": "trim", "rank": 1, "score": 0.2,
                "amplification_delta": 0.2, "p95_delta": 1.0,
                "slo_delta": "nan", "harmful": False,
            }],
        }],
    }


class TestAblationSection:
    def test_accepts_canonical_section(self):
        block = canonical_ablation()
        assert validate_ablation_section(block) is block

    def test_result_with_ablation_section_validates(self):
        document = canonical_document()
        document["result"] = {"ablation": canonical_ablation()}
        assert validate_result(document) is document

    def test_result_with_drifted_section_rejected(self):
        document = canonical_document()
        document["result"] = {"ablation": {"scenario": []}}
        with pytest.raises(ContractViolation, match="result.ablation"):
            validate_result(document)

    def test_rejects_non_object(self):
        with pytest.raises(ContractViolation, match="object"):
            validate_ablation_section(["drip"])

    def test_rejects_non_list_scenarios(self):
        with pytest.raises(ContractViolation, match="list"):
            validate_ablation_section({"scenarios": {}})

    def test_rejects_drifted_scenario_entry(self):
        block = canonical_ablation()
        del block["scenarios"][0]["floor"]
        with pytest.raises(ContractViolation,
                           match=r"scenarios\[0\].*missing keys "
                                 r"\['floor'\]"):
            validate_ablation_section(block)

    def test_rejects_drifted_metric_summary(self):
        block = canonical_ablation()
        block["scenarios"][0]["baseline"]["p99"] = 1.0
        with pytest.raises(ContractViolation,
                           match=r"scenarios\[0\]\.baseline.*"
                                 r"unknown keys \['p99'\]"):
            validate_ablation_section(block)

    def test_rejects_drifted_component_row(self):
        block = canonical_ablation()
        row = block["scenarios"][0]["components"][0]
        row["scor"] = row.pop("score")
        with pytest.raises(ContractViolation,
                           match=r"components\[0\]"):
            validate_ablation_section(block)

    def test_rejects_non_list_component_rows(self):
        block = canonical_ablation()
        block["scenarios"][0]["components"] = "trim"
        with pytest.raises(ContractViolation, match="list"):
            validate_ablation_section(block)


class TestArtifactEntry:
    def test_accepts_declared_keys(self):
        entry = {"file": "a.npz", "arrays": ["x"]}
        assert validate_artifact_entry(entry) is entry

    def test_rejects_non_dict(self):
        with pytest.raises(ContractViolation, match="object"):
            validate_artifact_entry("a.npz")


class TestFrameProtocol:
    def test_header_layout_is_ten_bytes(self):
        assert contracts.FRAME.size == 10
        packed = contracts.FRAME.pack(
            contracts.PROTOCOL_VERSION, contracts.MSG_STATS, 7)
        assert contracts.FRAME.unpack(packed) \
            == (contracts.PROTOCOL_VERSION, contracts.MSG_STATS, 7)

    def test_registries_match_the_module_constants(self):
        for name, code in contracts.REQUEST_CODES.items():
            assert getattr(contracts, name) == code
        for name, code in contracts.REPLY_CODES.items():
            assert getattr(contracts, name) == code

    def test_codes_are_unique_and_disjoint(self):
        requests = set(contracts.REQUEST_CODES.values())
        replies = set(contracts.REPLY_CODES.values())
        assert len(requests) == len(contracts.REQUEST_CODES)
        assert not requests & replies


class TestColumnarWire:
    def test_header_round_trip(self):
        packed = contracts.WIRE_HEADER.pack(
            contracts.WIRE_MAGIC, contracts.WIRE_VERSION, 42)
        assert contracts.WIRE_HEADER.unpack(packed) \
            == (contracts.WIRE_MAGIC, contracts.WIRE_VERSION, 42)

    def test_decoder_raises_the_named_error(self):
        from repro.workload import columnar
        with pytest.raises(ContractViolation, match="magic"):
            columnar.decode_event_batch(
                b"XXXX" + bytes(columnar.WIRE_VERSION
                                .to_bytes(1, "little"))
                + bytes(3) + (0).to_bytes(8, "little"))

    def test_contracts_module_is_numpy_free(self):
        """The contract layer stays importable from lint CLIs and
        worker bootstraps — it must not pull in numpy itself."""
        import ast
        tree = ast.parse(
            __import__("inspect").getsource(contracts))
        imported = {
            alias.name.split(".")[0]
            for node in ast.walk(tree)
            if isinstance(node, ast.Import)
            for alias in node.names
        } | {
            node.module.split(".")[0]
            for node in ast.walk(tree)
            if isinstance(node, ast.ImportFrom) and node.module
        }
        assert "numpy" not in imported
        assert imported <= {"struct", "__future__"}
