"""Property tests: the greedy fast path equals the reference attack.

``greedy_poison`` runs Algorithm 1 through the allocation-free
:class:`GreedyWorkspace`; the public single-step reference is
``optimal_single_point`` over immutable :class:`KeySet` objects.  The
fast path must pick **bit-identical poison keys** across random
keysets — including stopping identically at the
:class:`KeySpaceExhausted` edge — otherwise every figure built on it
silently drifts from the paper's algorithm.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KeySpaceExhausted, greedy_poison, optimal_single_point
from repro.data import Domain, KeySet


def reference_greedy(keyset: KeySet, n_poison: int):
    """Algorithm 1 via the public single-step API (the slow oracle)."""
    chosen: list[int] = []
    exhausted = False
    current = keyset
    for _ in range(n_poison):
        try:
            step = optimal_single_point(current, interior_only=True)
        except KeySpaceExhausted:
            exhausted = True
            break
        chosen.append(step.key)
        current = current.insert([step.key])
    return chosen, exhausted


keysets = st.lists(st.integers(min_value=0, max_value=5_000),
                   min_size=4, max_size=60, unique=True)


@given(keysets, st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_fast_path_picks_identical_keys(raw, budget):
    keyset = KeySet(np.asarray(sorted(raw), dtype=np.int64))
    fast = greedy_poison(keyset, budget)
    want_keys, want_exhausted = reference_greedy(keyset, budget)
    assert fast.poison_keys.tolist() == want_keys
    assert fast.exhausted == want_exhausted


@given(st.integers(min_value=0, max_value=2**40),
       st.integers(min_value=2, max_value=12))
@settings(max_examples=40, deadline=None, derandomize=True)
def test_contiguous_keysets_exhaust_identically(start, length):
    """The KeySpaceExhausted edge: a gap-free keyset defeats both paths."""
    keyset = KeySet(np.arange(start, start + length, dtype=np.int64))
    fast = greedy_poison(keyset, 3)
    assert fast.exhausted
    assert fast.n_injected == 0
    with pytest.raises(KeySpaceExhausted):
        optimal_single_point(keyset, interior_only=True)


@given(keysets)
@settings(max_examples=40, deadline=None, derandomize=True)
def test_exhaustion_consumes_every_interior_slot(raw):
    """With an oversized budget the attack fills the interior exactly."""
    keys = np.asarray(sorted(raw), dtype=np.int64)
    keyset = KeySet(keys)
    interior_slots = int(keys[-1] - keys[0] + 1) - keys.size
    result = greedy_poison(keyset, interior_slots + 5)
    assert result.exhausted
    assert result.n_injected == interior_slots


class TestSeededFuzzLoop:
    """Plain seeded fuzz sweep — no hypothesis machinery in the loop,
    so failures reproduce from the printed seed alone."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_keysets_match_reference(self, seed):
        rng = np.random.default_rng([987, seed])
        n = int(rng.integers(5, 80))
        domain = Domain.of_size(int(n / rng.uniform(0.05, 0.9)) + 2)
        keys = rng.choice(domain.size, size=n, replace=False)
        keyset = KeySet(np.sort(keys).astype(np.int64), domain)
        budget = int(rng.integers(1, 12))

        fast = greedy_poison(keyset, budget)
        want_keys, want_exhausted = reference_greedy(keyset, budget)
        assert fast.poison_keys.tolist() == want_keys, (
            f"divergence at seed={seed}: fast={fast.poison_keys.tolist()} "
            f"reference={want_keys}")
        assert fast.exhausted == want_exhausted

    def test_dense_keyset_partial_exhaustion(self):
        """Budget larger than the remaining gaps: both paths stop at
        the same prefix and flag exhaustion."""
        keyset = KeySet(np.array([0, 2, 3, 5, 6, 8], dtype=np.int64))
        fast = greedy_poison(keyset, 10)
        want_keys, want_exhausted = reference_greedy(keyset, 10)
        assert want_exhausted
        assert fast.exhausted
        assert fast.poison_keys.tolist() == want_keys
        assert fast.n_injected == 3  # slots 1, 4, 7
