"""Unit tests for black-box second-stage extraction (Sec. VI extension)."""

import numpy as np
import pytest

from repro.core import extract_second_stage, observe_rmi
from repro.core.blackbox import Observation
from repro.data import Domain, uniform_keyset
from repro.index import RecursiveModelIndex


@pytest.fixture
def rmi_and_keys(rng):
    keyset = uniform_keyset(1000, Domain(0, 19_999), rng)
    return RecursiveModelIndex.build_equal_size(keyset, 10), keyset


class TestObserve:
    def test_one_observation_per_probe(self, rmi_and_keys):
        rmi, keyset = rmi_and_keys
        obs = observe_rmi(rmi, keyset.keys[:50])
        assert len(obs) == 50

    def test_observations_consistent_with_models(self, rmi_and_keys):
        rmi, keyset = rmi_and_keys
        obs = observe_rmi(rmi, keyset.keys[:50])
        for record in obs:
            model = rmi.models[record.model_index]
            assert record.predicted_position == pytest.approx(
                float(model.predict(float(record.key))))


class TestExtraction:
    def test_exact_recovery_with_full_probing(self, rmi_and_keys):
        """Linear responses make two probes per model sufficient;
        probing everything recovers parameters to machine precision."""
        rmi, keyset = rmi_and_keys
        obs = observe_rmi(rmi, keyset.keys)
        extraction = extract_second_stage(obs)
        assert len(extraction.models) == rmi.n_models
        assert extraction.slope_errors(rmi).max() < 1e-9
        for inferred in extraction.models:
            truth = rmi.models[inferred.model_index]
            assert inferred.intercept == pytest.approx(truth.intercept,
                                                       rel=1e-6,
                                                       abs=1e-6)

    def test_partial_probing_recovers_probed_models(self, rmi_and_keys):
        rmi, keyset = rmi_and_keys
        obs = observe_rmi(rmi, keyset.keys[:300])  # first 3 partitions
        extraction = extract_second_stage(obs)
        assert 1 <= len(extraction.models) <= rmi.n_models
        assert extraction.slope_errors(rmi).max() < 1e-9

    def test_single_probe_gives_intercept_only(self):
        obs = [Observation(key=100, model_index=0,
                           predicted_position=42.0)]
        extraction = extract_second_stage(obs)
        assert extraction.models[0].slope == 0.0
        assert extraction.models[0].intercept == pytest.approx(42.0)

    def test_no_observations_rejected(self):
        with pytest.raises(ValueError):
            extract_second_stage([])

    def test_boundaries_increase(self, rmi_and_keys):
        rmi, keyset = rmi_and_keys
        extraction = extract_second_stage(observe_rmi(rmi, keyset.keys))
        assert np.all(np.diff(extraction.boundaries) > 0)


class TestBlackboxAttackEquivalence:
    def test_recovered_partition_count_matches(self, rmi_and_keys):
        """With full probing the attacker sees all N partitions, so
        the black-box attack degenerates to the white-box attack."""
        rmi, keyset = rmi_and_keys
        extraction = extract_second_stage(observe_rmi(rmi, keyset.keys))
        assert extraction.boundaries.size == rmi.n_models
