"""Unit tests for polynomial CDF regression (Sec. VI mitigation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    fit_cdf_regression,
    fit_polynomial_cdf,
    greedy_poison,
)
from repro.data import Domain, KeySet, uniform_keyset


class TestFit:
    def test_degree_one_equals_linear_closed_form(self, medium_keyset):
        poly = fit_polynomial_cdf(medium_keyset, degree=1)
        linear = fit_cdf_regression(medium_keyset)
        assert poly.mse == pytest.approx(linear.mse, rel=1e-6, abs=1e-9)

    def test_quadratic_cdf_fit_exactly_by_degree_two(self):
        # ranks ~ key^2 shape: keys at i^2 make the CDF a sqrt curve;
        # instead build keys so rank is a quadratic in the key.
        keys = np.arange(0, 50)
        ks = KeySet(keys)
        poly = fit_polynomial_cdf(ks, degree=2)
        assert poly.mse == pytest.approx(0.0, abs=1e-9)

    def test_higher_degree_never_worse(self, medium_keyset):
        losses = [fit_polynomial_cdf(medium_keyset, d).mse
                  for d in (1, 2, 3, 4)]
        for lower, higher in zip(losses, losses[1:]):
            assert higher <= lower + 1e-6

    def test_degree_validated(self, small_keyset):
        with pytest.raises(ValueError):
            fit_polynomial_cdf(small_keyset, degree=0)

    def test_degree_vs_points(self):
        with pytest.raises(ValueError):
            fit_polynomial_cdf(KeySet([1, 2, 3]), degree=3)

    def test_raw_arrays_need_ranks(self):
        with pytest.raises(ValueError):
            fit_polynomial_cdf(np.array([1, 2, 3]), degree=1)

    def test_raw_arrays_with_ranks(self):
        fit = fit_polynomial_cdf(np.array([0, 10, 20, 30]), degree=1,
                                 ranks=np.array([1.0, 2.0, 3.0, 4.0]))
        assert fit.mse == pytest.approx(0.0, abs=1e-9)


class TestModel:
    def test_cost_accounting(self, small_keyset):
        poly = fit_polynomial_cdf(small_keyset, degree=3)
        assert poly.model.degree == 3
        assert poly.model.n_parameters == 6  # 4 coeffs + lo + span
        assert poly.model.multiply_adds_per_lookup == 3

    def test_predict_matches_training_points(self):
        keys = np.arange(0, 100, 5)
        ks = KeySet(keys)
        poly = fit_polynomial_cdf(ks, degree=1)
        pred = poly.model.predict(keys)
        assert np.allclose(pred, ks.ranks, atol=1e-6)

    def test_large_magnitude_keys_conditioned(self):
        keys = 10**9 + np.arange(0, 1000, 13)
        ks = KeySet(keys)
        poly = fit_polynomial_cdf(ks, degree=3)
        assert poly.mse < 1.0  # normalisation keeps lstsq well-behaved


class TestRobustnessStory:
    def test_extra_capacity_absorbs_some_poisoning(self, rng):
        """A7's narrative: degree 3 < degree 1 loss on poisoned data."""
        ks = uniform_keyset(400, Domain(0, 3999), rng)
        attack = greedy_poison(ks, 40)
        poisoned = ks.insert(attack.poison_keys)
        linear = fit_polynomial_cdf(poisoned, 1).mse
        cubic = fit_polynomial_cdf(poisoned, 3).mse
        assert cubic < linear

    def test_but_does_not_restore_clean_loss(self, rng):
        """...and the residual still dwarfs the clean loss."""
        ks = uniform_keyset(400, Domain(0, 3999), rng)
        attack = greedy_poison(ks, 60)
        poisoned = ks.insert(attack.poison_keys)
        cubic_dirty = fit_polynomial_cdf(poisoned, 3).mse
        cubic_clean = fit_polynomial_cdf(ks, 3).mse
        assert cubic_dirty > 2.0 * max(cubic_clean, 1e-9)


@given(st.lists(st.integers(min_value=0, max_value=20_000), min_size=6,
                max_size=120, unique=True),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_polynomial_loss_at_most_linear_loss(raw, degree):
    """Property: a degree-d fit never loses to the linear fit."""
    ks = KeySet(raw)
    if degree >= ks.n:
        return
    linear = fit_cdf_regression(ks).mse
    poly = fit_polynomial_cdf(ks, degree).mse
    assert poly <= linear + 1e-6 * max(1.0, linear)
