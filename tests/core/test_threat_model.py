"""Unit tests for the Section III-C attacker capability objects."""

import pytest

from repro.core import AttackerCapability, RMIAttackerCapability


class TestAttackerCapability:
    def test_budget(self):
        cap = AttackerCapability(poisoning_percentage=10.0)
        assert cap.budget(1000) == 100

    def test_budget_floors(self):
        cap = AttackerCapability(poisoning_percentage=10.0)
        assert cap.budget(105) == 10

    def test_twenty_percent_cap(self):
        AttackerCapability(poisoning_percentage=20.0)  # boundary ok
        with pytest.raises(ValueError):
            AttackerCapability(poisoning_percentage=20.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AttackerCapability(poisoning_percentage=-1.0)

    def test_defaults_interior(self):
        assert AttackerCapability(poisoning_percentage=5.0).interior_only

    def test_frozen(self):
        cap = AttackerCapability(poisoning_percentage=5.0)
        with pytest.raises(AttributeError):
            cap.poisoning_percentage = 15.0


class TestRMIAttackerCapability:
    def test_per_model_threshold(self):
        cap = RMIAttackerCapability(poisoning_percentage=10.0, alpha=3.0)
        # t = alpha * phi * n / N = 3 * 0.1 * 1000 / 10 = 30
        assert cap.per_model_threshold(1000, 10) == 30

    def test_paper_example(self):
        """Sec. V: phi=10%, n=1e6, partitions of 1e3 -> t in {200, 300}."""
        for alpha, expected in ((2.0, 200), (3.0, 300)):
            cap = RMIAttackerCapability(poisoning_percentage=10.0,
                                        alpha=alpha)
            assert cap.per_model_threshold(1_000_000, 1000) == expected

    def test_threshold_at_least_one(self):
        cap = RMIAttackerCapability(poisoning_percentage=1.0, alpha=2.0)
        assert cap.per_model_threshold(100, 50) == 1

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ValueError):
            RMIAttackerCapability(poisoning_percentage=5.0, alpha=0.5)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            RMIAttackerCapability(poisoning_percentage=5.0, epsilon=-1e-3)

    def test_inherits_percentage_validation(self):
        with pytest.raises(ValueError):
            RMIAttackerCapability(poisoning_percentage=21.0)
