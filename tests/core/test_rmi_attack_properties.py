"""Property-based invariants of Algorithm 2 over random configurations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RMIAttackerCapability, fit_cdf_regression, poison_rmi
from repro.data import Domain, KeySet


@st.composite
def attack_scenarios(draw):
    """Random (keyset, n_models, capability) triples that are valid."""
    n_keys = draw(st.integers(min_value=40, max_value=200))
    spread = draw(st.integers(min_value=4, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    keys = rng.choice(n_keys * spread, size=n_keys, replace=False)
    keyset = KeySet(keys, Domain(0, n_keys * spread))
    n_models = draw(st.integers(min_value=1, max_value=max(1, n_keys // 10)))
    percentage = draw(st.sampled_from([5.0, 10.0, 20.0]))
    alpha = draw(st.sampled_from([2.0, 3.0, 5.0]))
    capability = RMIAttackerCapability(poisoning_percentage=percentage,
                                       alpha=alpha)
    return keyset, n_models, capability


@given(attack_scenarios())
@settings(max_examples=25, deadline=None)
def test_rmi_attack_invariants(scenario):
    """Budget conservation, threshold, disjointness, refit exactness."""
    keyset, n_models, capability = scenario
    try:
        result = poison_rmi(keyset, n_models, capability,
                            max_exchanges=min(10, n_models))
    except ValueError:
        # Threshold below the uniform share for this (alpha, N): the
        # config is rejected loudly, which is itself the contract.
        assert capability.per_model_threshold(keyset.n, n_models) \
            < int(np.ceil(capability.budget(keyset.n) / n_models))
        return

    # Budgets conserve the total and respect the per-model threshold.
    budgets = [r.budget for r in result.reports]
    assert sum(budgets) == capability.budget(keyset.n)
    assert all(b <= result.threshold for b in budgets)

    # Injected keys are unique, absent from the keyset, in-domain.
    poison = result.poison_keys
    assert np.unique(poison).size == poison.size
    assert not np.isin(poison, keyset.keys).any()
    if poison.size:
        assert poison.min() >= keyset.domain.lo
        assert poison.max() <= keyset.domain.hi

    # Loss never decreases and ratios are consistent.
    assert result.rmi_loss_after >= result.rmi_loss_before - 1e-9
    for report in result.reports:
        assert report.n_injected <= report.budget
        assert report.loss_after >= -1e-12


@given(attack_scenarios())
@settings(max_examples=15, deadline=None)
def test_rmi_attack_full_refit_consistency(scenario):
    """The poisoned index really exhibits the reported damage.

    Rebuild the per-partition regressions on (original partition keys
    + the poison keys that landed in their span) and compare with the
    attack's own report, uniform-allocation mode so partitions match.
    """
    keyset, n_models, capability = scenario
    try:
        result = poison_rmi(keyset, n_models, capability,
                            max_exchanges=0)
    except ValueError:
        return
    partitions = keyset.partition(n_models)
    for part, report in zip(partitions, result.reports):
        in_part = result.poison_keys[
            (result.poison_keys >= part.keys[0])
            & (result.poison_keys <= part.keys[-1])]
        if in_part.size == 0:
            assert report.loss_after == pytest.approx(
                fit_cdf_regression(part).mse, rel=1e-7, abs=1e-9)
            continue
        refit = fit_cdf_regression(part.insert(in_part)).mse
        assert report.loss_after == pytest.approx(refit, rel=1e-6,
                                                  abs=1e-9)