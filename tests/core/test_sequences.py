"""Unit tests for gap structure and discrete derivatives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    all_unoccupied_keys,
    candidate_endpoints,
    discrete_derivative,
    find_gaps,
)
from repro.data import Domain, KeySet


class TestFindGapsInterior:
    def test_running_example(self, tiny_keyset):
        """The paper's example: keys {2,6,7,12} on [1,13]."""
        gaps = find_gaps(tiny_keyset)
        assert gaps.lefts.tolist() == [3, 8]
        assert gaps.rights.tolist() == [5, 11]

    def test_no_gaps_when_contiguous(self):
        gaps = find_gaps(KeySet([5, 6, 7, 8]))
        assert gaps.count == 0
        assert gaps.total_slots == 0
        assert gaps.endpoints().size == 0

    def test_length_one_gap(self):
        gaps = find_gaps(KeySet([1, 3]))
        assert gaps.lefts.tolist() == [2]
        assert gaps.rights.tolist() == [2]
        assert gaps.endpoints().tolist() == [2]

    def test_total_slots(self, tiny_keyset):
        assert find_gaps(tiny_keyset).total_slots == 3 + 4


class TestFindGapsWithBoundaries:
    def test_boundary_gaps_included(self):
        ks = KeySet([5, 6], Domain(0, 10))
        gaps = find_gaps(ks, interior_only=False)
        assert gaps.lefts.tolist() == [0, 7]
        assert gaps.rights.tolist() == [4, 10]

    def test_paper_example_full_domain(self, tiny_keyset):
        gaps = find_gaps(tiny_keyset, interior_only=False)
        # {1}, {3,4,5}, {8..11}, {13}
        assert gaps.lefts.tolist() == [1, 3, 8, 13]
        assert gaps.rights.tolist() == [1, 5, 11, 13]

    def test_keys_fill_domain(self):
        ks = KeySet([0, 1, 2], Domain(0, 2))
        assert find_gaps(ks, interior_only=False).count == 0


class TestEndpoints:
    def test_paper_example_endpoints(self, tiny_keyset):
        got = find_gaps(tiny_keyset, interior_only=False).endpoints()
        assert got.tolist() == [1, 3, 5, 8, 11, 13]

    def test_candidate_endpoints_interior(self, tiny_keyset):
        assert candidate_endpoints(tiny_keyset).tolist() == [3, 5, 8, 11]

    def test_endpoints_are_unoccupied(self, medium_keyset):
        for endpoint in candidate_endpoints(medium_keyset):
            assert int(endpoint) not in medium_keyset


class TestAllUnoccupied:
    def test_enumerates_every_slot(self, tiny_keyset):
        got = all_unoccupied_keys(tiny_keyset)
        assert got.tolist() == [3, 4, 5, 8, 9, 10, 11]

    def test_full_domain(self, tiny_keyset):
        got = all_unoccupied_keys(tiny_keyset, interior_only=False)
        assert got.tolist() == [1, 3, 4, 5, 8, 9, 10, 11, 13]

    def test_matches_complement(self, small_keyset):
        unocc = all_unoccupied_keys(small_keyset, interior_only=False)
        occupied = set(small_keyset.keys.tolist())
        universe = set(range(small_keyset.domain.lo,
                             small_keyset.domain.hi + 1))
        assert set(unocc.tolist()) == universe - occupied


class TestDiscreteDerivative:
    def test_definition(self):
        got = discrete_derivative(np.array([1, 4, 9, 16]))
        assert got.tolist() == [3, 5, 7]

    def test_short_input(self):
        assert discrete_derivative(np.array([5])).size == 0
        assert discrete_derivative(np.array([])).size == 0

    def test_linear_sequence_constant_derivative(self):
        got = discrete_derivative(np.arange(0, 50, 5))
        assert np.all(got == 5)

    def test_second_difference_of_quadratic_constant(self):
        xs = np.arange(10, dtype=float)
        second = discrete_derivative(discrete_derivative(xs * xs))
        assert np.allclose(second, 2.0)


@given(st.lists(st.integers(min_value=0, max_value=2_000), min_size=2,
                max_size=120, unique=True))
@settings(max_examples=60, deadline=None)
def test_gaps_tile_the_interior(raw):
    """Property: gaps + keys exactly tile [min(K), max(K)]."""
    ks = KeySet(raw)
    gaps = find_gaps(ks)
    covered = ks.n + gaps.total_slots
    assert covered == int(ks.keys[-1] - ks.keys[0] + 1)
    # Gap bounds never touch a stored key.
    for lo, hi in zip(gaps.lefts, gaps.rights):
        assert int(lo - 1) in ks
        assert int(hi + 1) in ks
