"""Unit tests for the ratio-loss metric and boxplot summaries."""

import numpy as np
import pytest

from repro.core import ratio_loss, summarize


class TestRatioLoss:
    def test_basic_ratio(self):
        assert ratio_loss(2.0, 8.0) == pytest.approx(4.0)

    def test_unchanged_is_one(self):
        assert ratio_loss(3.0, 3.0) == pytest.approx(1.0)

    def test_zero_before_nonzero_after(self):
        assert ratio_loss(0.0, 1.0) == float("inf")

    def test_zero_before_zero_after(self):
        assert ratio_loss(0.0, 0.0) == pytest.approx(1.0)


class TestSummarize:
    def test_five_numbers(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.minimum == 1.0
        assert s.median == 3.0
        assert s.maximum == 5.0
        assert s.q1 == 2.0
        assert s.q3 == 4.0
        assert s.mean == pytest.approx(3.0)
        assert s.count == 5

    def test_single_value(self):
        s = summarize([7.5])
        assert s.minimum == s.median == s.maximum == 7.5

    def test_accepts_generators(self):
        s = summarize(float(x) for x in range(10))
        assert s.count == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_row_renders_all_fields(self):
        row = summarize([1.0, 2.0, 3.0]).row()
        for token in ("min=", "q1=", "med=", "q3=", "max=", "mean="):
            assert token in row

    def test_quartiles_bracket_median(self):
        rng = np.random.default_rng(0)
        s = summarize(rng.lognormal(0, 1, 500).tolist())
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
