"""Unit tests for the closed-form CDF regression (Theorem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinearModel, fit_cdf_regression, mse_of
from repro.data import KeySet


class TestLinearModel:
    def test_predict_scalar(self):
        model = LinearModel(2.0, 1.0)
        assert model.predict(3.0) == pytest.approx(7.0)

    def test_predict_array(self):
        model = LinearModel(0.5, -1.0)
        got = model.predict(np.array([0, 2, 4]))
        assert np.allclose(got, [-1.0, 0.0, 1.0])

    def test_frozen(self):
        model = LinearModel(1.0, 0.0)
        with pytest.raises(AttributeError):
            model.slope = 2.0


class TestFit:
    def test_perfectly_linear_cdf_has_zero_loss(self):
        ks = KeySet([10, 20, 30, 40, 50])
        fit = fit_cdf_regression(ks)
        assert fit.mse == pytest.approx(0.0, abs=1e-12)
        assert fit.model.slope == pytest.approx(0.1)

    def test_matches_polyfit(self, medium_keyset):
        fit = fit_cdf_regression(medium_keyset)
        slope, intercept = np.polyfit(
            medium_keyset.keys.astype(float),
            medium_keyset.ranks.astype(float), 1)
        assert fit.model.slope == pytest.approx(slope, rel=1e-9)
        assert fit.model.intercept == pytest.approx(intercept, rel=1e-6)

    def test_loss_is_mean_squared_residual(self, small_keyset):
        fit = fit_cdf_regression(small_keyset)
        residuals = (fit.model.predict(small_keyset.keys.astype(float))
                     - small_keyset.ranks)
        assert fit.mse == pytest.approx(
            float(residuals @ residuals) / small_keyset.n, rel=1e-9)

    def test_single_key_degenerate(self):
        fit = fit_cdf_regression(KeySet([42]))
        assert fit.model.slope == 0.0
        assert fit.model.intercept == pytest.approx(1.0)
        assert fit.mse == pytest.approx(0.0)

    def test_raw_arrays_with_explicit_ranks(self):
        keys = np.array([1.0, 2.0, 3.0])
        ranks = np.array([10.0, 20.0, 30.0])
        fit = fit_cdf_regression(keys, ranks)
        assert fit.model.slope == pytest.approx(10.0)

    def test_raw_arrays_require_ranks(self):
        with pytest.raises(ValueError):
            fit_cdf_regression(np.array([1.0, 2.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_cdf_regression(np.array([1.0, 2.0]), np.array([1.0]))

    def test_rank_shift_invariance(self, small_keyset):
        """Global vs partition-local ranks: identical MSE.

        This is the observation that makes the RMI attack's per-model
        decomposition exact (DESIGN.md section 4).
        """
        keys = small_keyset.keys.astype(float)
        local = fit_cdf_regression(keys, np.arange(1, keys.size + 1,
                                                   dtype=float))
        shifted = fit_cdf_regression(
            keys, np.arange(1001, 1001 + keys.size, dtype=float))
        assert local.mse == pytest.approx(shifted.mse, rel=1e-9)
        assert local.model.slope == pytest.approx(shifted.model.slope,
                                                  rel=1e-9)

    def test_key_translation_invariance(self, small_keyset):
        """Shifting all keys leaves slope and loss unchanged."""
        keys = small_keyset.keys.astype(float)
        ranks = small_keyset.ranks.astype(float)
        base = fit_cdf_regression(keys, ranks)
        moved = fit_cdf_regression(keys + 1e9, ranks)
        assert base.model.slope == pytest.approx(moved.model.slope,
                                                 rel=1e-6)
        assert base.mse == pytest.approx(moved.mse, rel=1e-6, abs=1e-9)

    def test_large_magnitude_narrow_band_stability(self):
        """Second-stage regime: 100 keys near 1e9, variance tiny."""
        keys = np.arange(1_000_000_000, 1_000_000_000 + 1000, 10,
                         dtype=np.int64)
        ks = KeySet(keys)
        fit = fit_cdf_regression(ks)
        assert fit.mse == pytest.approx(0.0, abs=1e-6)


class TestMseOf:
    def test_zero_for_exact_model(self):
        model = LinearModel(1.0, 0.0)
        keys = np.array([1.0, 2.0, 3.0])
        assert mse_of(model, keys, keys) == pytest.approx(0.0)

    def test_stale_model_on_poisoned_cdf(self, small_keyset):
        """Evaluating the clean model on poisoned data exceeds refit."""
        from repro.core import optimal_single_point
        clean = fit_cdf_regression(small_keyset)
        attack = optimal_single_point(small_keyset)
        poisoned = small_keyset.insert([attack.key])
        stale = mse_of(clean.model, poisoned.keys.astype(float),
                       poisoned.ranks.astype(float))
        refit = fit_cdf_regression(poisoned).mse
        assert stale >= refit - 1e-9  # refit is the minimiser

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            mse_of(LinearModel(1.0, 0.0), np.array([]), np.array([]))


@given(st.lists(st.integers(min_value=0, max_value=100_000),
                min_size=2, max_size=150, unique=True))
@settings(max_examples=80, deadline=None)
def test_closed_form_is_least_squares(raw):
    """Property: Theorem 1's closed form equals numpy's lstsq fit."""
    ks = KeySet(raw)
    fit = fit_cdf_regression(ks)
    design = np.vstack([ks.keys.astype(float),
                        np.ones(ks.n)]).T
    (slope, intercept), *_ = np.linalg.lstsq(
        design, ks.ranks.astype(float), rcond=None)
    assert fit.model.slope == pytest.approx(slope, rel=1e-6, abs=1e-9)
    assert fit.model.intercept == pytest.approx(intercept, rel=1e-6,
                                                abs=1e-6)


@given(st.lists(st.integers(min_value=0, max_value=50_000),
                min_size=2, max_size=100, unique=True),
       st.floats(min_value=-2.0, max_value=2.0),
       st.floats(min_value=-50.0, max_value=50.0))
@settings(max_examples=60, deadline=None)
def test_fitted_loss_is_minimal(raw, other_slope, other_intercept):
    """Property: no other line beats the closed-form loss."""
    ks = KeySet(raw)
    fit = fit_cdf_regression(ks)
    other = LinearModel(other_slope, other_intercept)
    other_loss = mse_of(other, ks.keys.astype(float),
                        ks.ranks.astype(float))
    assert fit.mse <= other_loss + 1e-6


class TestRidge:
    def test_zero_penalty_equals_plain_fit(self, medium_keyset):
        from repro.core.cdf_regression import fit_ridge_cdf
        plain = fit_cdf_regression(medium_keyset)
        ridge = fit_ridge_cdf(medium_keyset, lam=0.0)
        assert ridge.model.slope == pytest.approx(plain.model.slope,
                                                  rel=1e-12)
        assert ridge.mse == pytest.approx(plain.mse, rel=1e-9)

    def test_penalty_shrinks_slope(self, medium_keyset):
        from repro.core.cdf_regression import fit_ridge_cdf
        plain = fit_cdf_regression(medium_keyset)
        var_k = float(medium_keyset.keys.astype(float).var())
        ridge = fit_ridge_cdf(medium_keyset, lam=var_k)
        assert abs(ridge.model.slope) == pytest.approx(
            abs(plain.model.slope) / 2.0, rel=1e-9)

    def test_shrinkage_raises_training_error(self, medium_keyset):
        from repro.core.cdf_regression import fit_ridge_cdf
        plain = fit_cdf_regression(medium_keyset)
        var_k = float(medium_keyset.keys.astype(float).var())
        ridge = fit_ridge_cdf(medium_keyset, lam=0.5 * var_k)
        assert ridge.mse > plain.mse

    def test_negative_penalty_rejected(self, medium_keyset):
        from repro.core.cdf_regression import fit_ridge_cdf
        with pytest.raises(ValueError):
            fit_ridge_cdf(medium_keyset, lam=-1.0)

    def test_raw_arrays_need_ranks(self):
        from repro.core.cdf_regression import fit_ridge_cdf
        with pytest.raises(ValueError):
            fit_ridge_cdf(np.array([1.0, 2.0]), lam=0.0)
