"""Unit + property tests for Algorithm 1 (greedy multi-point)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    fit_cdf_regression,
    greedy_poison,
    optimal_single_point,
    poison_budget,
)
from repro.data import Domain, KeySet, uniform_keyset


class TestPoisonBudget:
    def test_floor_semantics(self):
        assert poison_budget(1000, 10.0) == 100
        assert poison_budget(105, 10.0) == 10

    def test_zero(self):
        assert poison_budget(1000, 0.0) == 0

    def test_cap_enforced(self):
        with pytest.raises(ValueError):
            poison_budget(100, 25.0)
        with pytest.raises(ValueError):
            poison_budget(100, -1.0)


class TestGreedyPoison:
    def test_injects_requested_count(self, small_keyset):
        result = greedy_poison(small_keyset, 5)
        assert result.n_injected == 5
        assert result.poison_keys.size == 5
        assert result.losses.size == 5
        assert not result.exhausted

    def test_loss_trajectory_monotone(self, medium_keyset):
        """Each greedy insertion increases the augmented loss."""
        result = greedy_poison(medium_keyset, 25)
        assert np.all(np.diff(result.losses) > -1e-9)
        assert result.losses[0] > result.loss_before

    def test_final_loss_matches_refit(self, small_keyset):
        result = greedy_poison(small_keyset, 7)
        poisoned = small_keyset.insert(result.poison_keys)
        assert fit_cdf_regression(poisoned).mse == pytest.approx(
            result.loss_after, rel=1e-9)

    def test_poison_keys_distinct_and_absent(self, small_keyset):
        result = greedy_poison(small_keyset, 6)
        assert np.unique(result.poison_keys).size == 6
        for key in result.poison_keys:
            assert int(key) not in small_keyset

    def test_keys_stay_interior(self, small_keyset):
        result = greedy_poison(small_keyset, 6)
        assert result.poison_keys.min() > small_keyset.keys[0]
        assert result.poison_keys.max() < small_keyset.keys[-1]

    def test_zero_budget(self, small_keyset):
        result = greedy_poison(small_keyset, 0)
        assert result.n_injected == 0
        assert result.loss_after == result.loss_before
        assert result.ratio_loss == pytest.approx(1.0)

    def test_negative_budget_rejected(self, small_keyset):
        with pytest.raises(ValueError):
            greedy_poison(small_keyset, -1)

    def test_exhaustion_stops_early(self):
        """A nearly-full interior runs out of candidate slots."""
        ks = KeySet([0, 1, 2, 4, 5, 6])  # one interior slot: 3
        result = greedy_poison(ks, 5)
        assert result.exhausted
        assert result.n_injected == 1
        assert result.poison_keys.tolist() == [3]

    def test_first_step_is_single_point_optimum(self, medium_keyset):
        single = optimal_single_point(medium_keyset)
        greedy = greedy_poison(medium_keyset, 1)
        assert greedy.poison_keys.tolist() == [single.key]
        assert greedy.loss_after == pytest.approx(single.loss_after,
                                                  rel=1e-12)

    def test_fast_path_equals_keyset_path(self, rng):
        """Workspace hot path == step-by-step KeySet reference."""
        ks = uniform_keyset(80, Domain(0, 800), rng)
        fast = greedy_poison(ks, 12, interior_only=True)
        current = ks
        reference = []
        for _ in range(12):
            step = optimal_single_point(current, interior_only=True)
            reference.append(step.key)
            current = current.insert([step.key])
        assert fast.poison_keys.tolist() == reference

    def test_non_interior_mode(self):
        ks = KeySet([4, 5, 6], Domain(0, 20))
        result = greedy_poison(ks, 3, interior_only=False)
        assert result.n_injected == 3

    def test_ratio_loss_inf_for_perfect_cdf(self):
        ks = KeySet([0, 10, 20, 30, 40, 50])
        result = greedy_poison(ks, 2)
        assert result.loss_before == pytest.approx(0.0, abs=1e-12)
        assert result.ratio_loss == float("inf")

    def test_clusters_in_dense_regions(self, rng):
        """Fig. 4's observation: poisoning keys bunch together."""
        ks = uniform_keyset(90, Domain(0, 499), rng)
        result = greedy_poison(ks, 10)
        span = result.poison_keys.max() - result.poison_keys.min()
        key_range = ks.keys[-1] - ks.keys[0]
        assert span < 0.5 * key_range


@given(st.lists(st.integers(min_value=0, max_value=2_000), min_size=5,
                max_size=60, unique=True),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_greedy_invariants(raw, budget):
    """Property: distinctness, interiority, monotone loss, exact refit."""
    ks = KeySet(raw)
    result = greedy_poison(ks, budget)
    assert result.n_injected <= budget
    if result.n_injected == 0:
        assert result.exhausted
        return
    # Distinct, absent from the original keyset, inside the key range.
    assert np.unique(result.poison_keys).size == result.n_injected
    assert not np.isin(result.poison_keys, ks.keys).any()
    assert result.poison_keys.min() > ks.keys[0]
    assert result.poison_keys.max() < ks.keys[-1]
    # Monotone non-decreasing trajectory.
    assert np.all(np.diff(result.losses) > -1e-9)
    # The recorded final loss is the true refit loss.
    refit = fit_cdf_regression(ks.insert(result.poison_keys)).mse
    assert result.loss_after == pytest.approx(refit, rel=1e-7, abs=1e-9)
