"""Tests pinning the fast attack to the brute-force oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    KeySpaceExhausted,
    brute_force_single_point,
    exhaustive_multi_point,
    greedy_poison,
    optimal_single_point,
)
from repro.data import Domain, KeySet, uniform_keyset


class TestBruteForceSinglePoint:
    def test_equals_fast_attack(self, small_keyset):
        fast = optimal_single_point(small_keyset)
        slow = brute_force_single_point(small_keyset)
        assert fast.key == slow.key
        assert fast.loss_after == pytest.approx(slow.loss_after, rel=1e-9)

    def test_multiple_seeds(self):
        for seed in range(8):
            rng = np.random.default_rng(seed)
            ks = uniform_keyset(40, Domain(0, 400), rng)
            fast = optimal_single_point(ks)
            slow = brute_force_single_point(ks)
            assert fast.key == slow.key, f"seed {seed}"
            assert fast.loss_after == pytest.approx(slow.loss_after,
                                                    rel=1e-9)

    def test_exhausted_raises(self):
        with pytest.raises(KeySpaceExhausted):
            brute_force_single_point(KeySet([1, 2, 3]))

    def test_non_interior_mode(self):
        ks = KeySet([4, 5, 6], Domain(0, 9))
        fast = optimal_single_point(ks, interior_only=False)
        slow = brute_force_single_point(ks, interior_only=False)
        assert fast.key == slow.key


class TestExhaustiveMultiPoint:
    def test_single_point_case_matches(self, tiny_keyset):
        best_set, best_loss = exhaustive_multi_point(tiny_keyset, 1)
        single = optimal_single_point(tiny_keyset)
        assert best_set.tolist() == [single.key]
        assert best_loss == pytest.approx(single.loss_after, rel=1e-9)

    def test_greedy_close_to_exhaustive_pairs(self):
        """Sec. IV-D: greedy empirically matches the brute force."""
        for seed in range(5):
            rng = np.random.default_rng(seed)
            ks = uniform_keyset(12, Domain(0, 60), rng)
            _, best_loss = exhaustive_multi_point(ks, 2)
            greedy = greedy_poison(ks, 2)
            assert greedy.loss_after >= 0.85 * best_loss, f"seed {seed}"

    def test_refuses_explosive_search(self, medium_keyset):
        with pytest.raises(ValueError):
            exhaustive_multi_point(medium_keyset, 5)

    def test_insufficient_candidates(self):
        ks = KeySet([1, 3])  # a single unoccupied slot
        with pytest.raises(KeySpaceExhausted):
            exhaustive_multi_point(ks, 2)


@given(st.lists(st.integers(min_value=0, max_value=600), min_size=4,
                max_size=40, unique=True))
@settings(max_examples=30, deadline=None)
def test_fast_attack_is_never_beaten_by_brute_force(raw):
    """Property: the O(n) attack achieves the brute-force maximum."""
    ks = KeySet(raw)
    try:
        fast = optimal_single_point(ks)
    except KeySpaceExhausted:
        return
    slow = brute_force_single_point(ks)
    assert fast.loss_after == pytest.approx(slow.loss_after, rel=1e-9)
    assert fast.key == slow.key
