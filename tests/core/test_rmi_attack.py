"""Unit tests for Algorithm 2 (the two-stage RMI attack)."""

import numpy as np
import pytest

from repro.core import (
    RMIAttackerCapability,
    fit_cdf_regression,
    poison_rmi,
)
from repro.data import Domain, KeySet, lognormal_keyset, uniform_keyset


@pytest.fixture
def keyset(rng):
    return uniform_keyset(1000, Domain(0, 19_999), rng)


@pytest.fixture
def capability():
    return RMIAttackerCapability(poisoning_percentage=10.0, alpha=3.0)


class TestBudgetAccounting:
    def test_total_budget_conserved(self, keyset, capability):
        result = poison_rmi(keyset, 10, capability)
        budgets = sum(r.budget for r in result.reports)
        assert budgets == capability.budget(keyset.n) == 100

    def test_threshold_respected(self, keyset, capability):
        result = poison_rmi(keyset, 10, capability)
        for report in result.reports:
            assert report.budget <= result.threshold
        assert result.threshold == capability.per_model_threshold(
            keyset.n, 10) == 30

    def test_injected_at_most_budget(self, keyset, capability):
        result = poison_rmi(keyset, 10, capability)
        for report in result.reports:
            assert report.n_injected <= report.budget

    def test_alpha_one_means_uniform(self, keyset):
        capability = RMIAttackerCapability(poisoning_percentage=10.0,
                                           alpha=1.0)
        result = poison_rmi(keyset, 10, capability)
        assert result.exchanges == 0  # no slack to exchange into
        assert all(r.budget == 10 for r in result.reports)

    def test_threshold_below_uniform_share_rejected(self, keyset):
        # 10% of 1000 keys over 8 models -> shares of 13 with
        # remainder; alpha=1 gives threshold 12 < 13.
        capability = RMIAttackerCapability(poisoning_percentage=10.0,
                                           alpha=1.0)
        with pytest.raises(ValueError):
            poison_rmi(keyset, 8, capability)


class TestAttackEffect:
    def test_loss_increases(self, keyset, capability):
        result = poison_rmi(keyset, 10, capability)
        assert result.rmi_loss_after > result.rmi_loss_before
        assert result.rmi_ratio_loss > 1.0

    def test_exchanges_never_hurt(self, keyset, capability):
        flat = poison_rmi(keyset, 10, capability, max_exchanges=0)
        greedy = poison_rmi(keyset, 10, capability, max_exchanges=50)
        assert greedy.rmi_loss_after >= flat.rmi_loss_after - 1e-9

    def test_poison_keys_disjoint_from_legitimate(self, keyset,
                                                  capability):
        result = poison_rmi(keyset, 10, capability)
        assert not np.isin(result.poison_keys, keyset.keys).any()
        assert np.unique(result.poison_keys).size == result.total_injected

    def test_per_model_loss_matches_refit(self, keyset, capability):
        """Each report's loss_after equals an independent refit."""
        result = poison_rmi(keyset, 5, capability, max_exchanges=0)
        partitions = keyset.partition(5)
        for part, report in zip(partitions, result.reports):
            in_part = result.poison_keys[
                (result.poison_keys >= part.keys[0])
                & (result.poison_keys <= part.keys[-1])]
            assert in_part.size == report.n_injected
            refit = fit_cdf_regression(part.insert(in_part)).mse
            assert report.loss_after == pytest.approx(refit, rel=1e-7)

    def test_rank_shift_decomposition_is_exact(self, keyset, capability):
        """Global-rank RMI loss == sum of partition-local losses.

        Poisoning partition i shifts later partitions' global ranks
        uniformly; the intercept absorbs it, so the decomposition the
        attack relies on introduces no error.
        """
        result = poison_rmi(keyset, 4, capability, max_exchanges=0)
        poisoned = keyset.insert(result.poison_keys)
        # Build global-rank second-stage losses over the *poisoned*
        # equal-rank partition boundaries implied by the attack.
        partitions = keyset.partition(4)
        global_losses = []
        for part in partitions:
            in_part_mask = ((poisoned.keys >= part.keys[0])
                            & (poisoned.keys <= part.keys[-1]))
            keys = poisoned.keys[in_part_mask].astype(float)
            ranks = poisoned.ranks[in_part_mask].astype(float)
            global_losses.append(fit_cdf_regression(keys, ranks).mse)
        local_losses = [r.loss_after for r in result.reports]
        assert np.allclose(global_losses, local_losses, rtol=1e-7)


class TestResultAggregates:
    def test_ratio_definitions(self, keyset, capability):
        result = poison_rmi(keyset, 10, capability)
        before = np.mean([r.loss_before for r in result.reports])
        after = np.mean([r.loss_after for r in result.reports])
        assert result.rmi_loss_before == pytest.approx(before)
        assert result.rmi_loss_after == pytest.approx(after)
        assert result.rmi_ratio_loss == pytest.approx(after / before)

    def test_per_model_ratios_shape(self, keyset, capability):
        result = poison_rmi(keyset, 10, capability)
        assert result.per_model_ratios.shape == (10,)

    def test_report_ratio_handles_zero_clean_loss(self):
        """A perfectly linear partition has zero clean loss."""
        ks = KeySet(np.arange(0, 1000, 2))  # uniform stride
        capability = RMIAttackerCapability(poisoning_percentage=10.0,
                                           alpha=2.0)
        result = poison_rmi(ks, 5, capability, max_exchanges=0)
        # Clean losses are ~0; ratios must be inf, not NaN.
        for report in result.reports:
            if report.loss_before == 0.0 and report.loss_after > 0:
                assert report.ratio_loss == float("inf")


class TestDistributions:
    def test_lognormal_dense_clusters_still_work(self, rng):
        keyset = lognormal_keyset(2000, Domain.of_size(200_000), rng)
        capability = RMIAttackerCapability(poisoning_percentage=5.0,
                                           alpha=3.0)
        result = poison_rmi(keyset, 20, capability, max_exchanges=20)
        assert result.rmi_ratio_loss >= 1.0
        assert result.total_injected <= capability.budget(keyset.n)

    def test_larger_models_larger_ratios(self, rng):
        """Fig. 6 trend: model size up -> attack effect up."""
        keyset = uniform_keyset(4000, Domain.of_size(400_000), rng)
        capability = RMIAttackerCapability(poisoning_percentage=10.0,
                                           alpha=3.0)
        small_models = poison_rmi(keyset, 40, capability,
                                  max_exchanges=0)  # 100 keys/model
        large_models = poison_rmi(keyset, 8, capability,
                                  max_exchanges=0)  # 500 keys/model
        assert (large_models.rmi_ratio_loss
                > small_models.rmi_ratio_loss)


class TestEdgeCases:
    def test_single_model_degenerates_to_algorithm1(self, rng):
        keyset = uniform_keyset(200, Domain(0, 3_999), rng)
        capability = RMIAttackerCapability(poisoning_percentage=10.0,
                                           alpha=2.0)
        result = poison_rmi(keyset, 1, capability)
        assert len(result.reports) == 1
        assert result.exchanges == 0
        assert result.total_injected == 20

    def test_zero_percentage(self, keyset):
        capability = RMIAttackerCapability(poisoning_percentage=0.0)
        result = poison_rmi(keyset, 10, capability)
        assert result.total_injected == 0
        assert result.rmi_ratio_loss == pytest.approx(1.0)

    def test_exchange_cap_zero_is_uniform_allocation(self, keyset,
                                                     capability):
        result = poison_rmi(keyset, 10, capability, max_exchanges=0)
        assert result.exchanges == 0
        assert all(r.budget == 10 for r in result.reports)
