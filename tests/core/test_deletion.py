"""Unit + property tests for the deletion adversary (Sec. VI extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    deletion_losses,
    fit_cdf_regression,
    greedy_delete,
    optimal_single_deletion,
)
from repro.data import Domain, KeySet, uniform_keyset


class TestDeletionLosses:
    def test_matches_direct_refit(self, small_keyset):
        """Vectorised deletion losses equal removing-and-refitting."""
        losses = deletion_losses(small_keyset)
        for i in range(0, small_keyset.n, 7):
            victim = int(small_keyset.keys[i])
            direct = fit_cdf_regression(small_keyset.remove([victim])).mse
            assert losses[i] == pytest.approx(direct, rel=1e-9, abs=1e-9)

    def test_aligned_with_keys(self, small_keyset):
        assert deletion_losses(small_keyset).shape == (small_keyset.n,)

    def test_two_key_degenerate(self):
        losses = deletion_losses(KeySet([3, 9]))
        assert np.allclose(losses, 0.0)

    def test_nonnegative(self, medium_keyset):
        assert np.all(deletion_losses(medium_keyset) >= 0.0)


class TestOptimalSingleDeletion:
    def test_beats_every_other_victim(self, small_keyset):
        victim, loss = optimal_single_deletion(small_keyset)
        losses = deletion_losses(small_keyset)
        assert loss == pytest.approx(float(losses.max()), rel=1e-12)
        assert victim in small_keyset

    def test_requires_three_keys(self):
        with pytest.raises(ValueError):
            optimal_single_deletion(KeySet([1, 2]))

    def test_deletion_can_increase_loss(self, rng):
        """Deleting the right key from a near-linear CDF hurts it."""
        ks = uniform_keyset(50, Domain(0, 499), rng)
        before = fit_cdf_regression(ks).mse
        _, after = optimal_single_deletion(ks)
        assert after >= before * 0.5  # max over victims is never tiny


class TestGreedyDelete:
    def test_removes_requested_count(self, medium_keyset):
        result = greedy_delete(medium_keyset, 20)
        assert result.n_removed == 20
        assert result.losses.size == 20

    def test_victims_were_stored(self, medium_keyset):
        result = greedy_delete(medium_keyset, 15)
        assert np.isin(result.removed_keys, medium_keyset.keys).all()
        assert np.unique(result.removed_keys).size == 15

    def test_final_loss_matches_refit(self, medium_keyset):
        result = greedy_delete(medium_keyset, 10)
        remaining = medium_keyset.remove(result.removed_keys)
        assert fit_cdf_regression(remaining).mse == pytest.approx(
            result.loss_after, rel=1e-9)

    def test_zero_budget(self, small_keyset):
        result = greedy_delete(small_keyset, 0)
        assert result.n_removed == 0
        assert result.ratio_loss == pytest.approx(1.0)

    def test_negative_budget_rejected(self, small_keyset):
        with pytest.raises(ValueError):
            greedy_delete(small_keyset, -1)

    def test_stops_before_degenerate(self):
        ks = KeySet([1, 5, 9, 13, 17])
        result = greedy_delete(ks, 10)
        assert result.n_removed <= 2  # keeps at least 3 keys

    def test_increases_loss_on_uniform_keys(self, rng):
        ks = uniform_keyset(200, Domain(0, 1999), rng)
        result = greedy_delete(ks, 20)
        assert result.ratio_loss > 1.0


@given(st.lists(st.integers(min_value=0, max_value=5_000), min_size=4,
                max_size=80, unique=True))
@settings(max_examples=50, deadline=None)
def test_deletion_losses_equal_refit_everywhere(raw):
    """Property: the mirrored equations match removal + refit."""
    ks = KeySet(raw)
    losses = deletion_losses(ks)
    picks = np.linspace(0, ks.n - 1, min(8, ks.n)).astype(int)
    for i in picks:
        direct = fit_cdf_regression(ks.remove([int(ks.keys[i])])).mse
        assert losses[i] == pytest.approx(direct, rel=1e-7, abs=1e-7)
