"""Tests pinning the allocation-free workspace to the reference path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KeySpaceExhausted
from repro.core._fastpath import GreedyWorkspace
from repro.core.single_point import (
    _interior_endpoints_raw,
    _poisoning_losses_raw,
)
from repro.data import Domain, uniform_keyset


class TestWorkspaceBasics:
    def test_keys_view_tracks_insertions(self):
        ws = GreedyWorkspace(np.array([10, 20, 30], dtype=np.int64), 2)
        ws.insert(25)
        assert ws.keys.tolist() == [10, 20, 25, 30]
        ws.insert(15)
        assert ws.keys.tolist() == [10, 15, 20, 25, 30]

    def test_capacity_enforced(self):
        ws = GreedyWorkspace(np.array([1, 5], dtype=np.int64), 1)
        ws.insert(3)
        with pytest.raises(RuntimeError):
            ws.insert(4)

    def test_exhausted_interior(self):
        ws = GreedyWorkspace(np.array([4, 5, 6], dtype=np.int64), 1)
        with pytest.raises(KeySpaceExhausted):
            ws.best_candidate()


class TestWorkspaceVsReference:
    def test_single_step_matches_reference(self, rng):
        ks = uniform_keyset(100, Domain(0, 1500), rng)
        ws = GreedyWorkspace(ks.keys, 1)
        key_ws, loss_ws = ws.best_candidate()
        cands = _interior_endpoints_raw(ks.keys)
        losses = _poisoning_losses_raw(ks.keys, cands)
        assert loss_ws == pytest.approx(float(losses.max()), rel=1e-9)
        ref_at_choice = losses[np.searchsorted(cands, key_ws)]
        assert ref_at_choice == pytest.approx(float(losses.max()),
                                              rel=1e-9)

    def test_sequence_of_steps_matches(self, rng):
        ks = uniform_keyset(60, Domain(0, 900), rng)
        ws = GreedyWorkspace(ks.keys, 10)
        raw = ks.keys.copy()
        for _ in range(10):
            cands = _interior_endpoints_raw(raw)
            losses = _poisoning_losses_raw(raw, cands)
            got_key, got_loss = ws.best_candidate()
            assert got_loss == pytest.approx(float(losses.max()),
                                             rel=1e-9)
            ws.insert(got_key)
            raw = np.insert(raw, int(np.searchsorted(raw, got_key)),
                            got_key)


@given(st.lists(st.integers(min_value=0, max_value=3_000), min_size=4,
                max_size=80, unique=True))
@settings(max_examples=50, deadline=None)
def test_workspace_matches_reference_on_random_keysets(raw):
    """Property: in-place math == straightforward math, bit for bit."""
    keys = np.unique(np.asarray(raw, dtype=np.int64))
    cands = _interior_endpoints_raw(keys)
    ws = GreedyWorkspace(keys, 1)
    if cands.size == 0:
        with pytest.raises(KeySpaceExhausted):
            ws.best_candidate()
        return
    losses = _poisoning_losses_raw(keys, cands)
    ref_max = float(losses.max())
    got_key, got_loss = ws.best_candidate()
    # The two code paths may differ in the last ulp, so require the
    # workspace to achieve the reference maximum (and pick a key whose
    # reference loss is that maximum), not bit-equality.
    tol = 1e-9 * max(1.0, abs(ref_max))
    assert abs(got_loss - ref_max) <= tol
    ref_at_choice = float(losses[np.searchsorted(cands, got_key)])
    assert abs(ref_at_choice - ref_max) <= tol
