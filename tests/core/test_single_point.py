"""Unit + property tests for the optimal single-point attack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    KeySpaceExhausted,
    discrete_derivative,
    find_gaps,
    fit_cdf_regression,
    loss_landscape,
    optimal_single_point,
    poisoning_losses,
)
from repro.data import Domain, KeySet


class TestPoisoningLosses:
    def test_matches_direct_refit(self, small_keyset):
        """Vectorised O(1)-per-candidate loss equals refit from scratch."""
        candidates = loss_landscape(small_keyset)[0][:25]
        fast = poisoning_losses(small_keyset, candidates)
        for cand, loss in zip(candidates, fast):
            direct = fit_cdf_regression(
                small_keyset.insert([int(cand)])).mse
            assert loss == pytest.approx(direct, rel=1e-9, abs=1e-9)

    def test_empty_candidates(self, small_keyset):
        got = poisoning_losses(small_keyset, np.array([], dtype=np.int64))
        assert got.size == 0

    def test_losses_nonnegative(self, medium_keyset):
        _, losses = loss_landscape(medium_keyset)
        assert np.all(losses >= 0.0)

    def test_narrow_band_large_magnitude(self):
        """Numerical stability at second-stage scale (keys near 1e9)."""
        base = 1_000_000_000
        keys = base + np.array([0, 3, 7, 11, 19, 23, 31, 40])
        ks = KeySet(keys)
        cand = np.array([base + 1, base + 12, base + 30])
        fast = poisoning_losses(ks, cand)
        for c, loss in zip(cand, fast):
            direct = fit_cdf_regression(ks.insert([int(c)])).mse
            assert loss == pytest.approx(direct, rel=1e-6, abs=1e-6)


class TestOptimalSinglePoint:
    def test_increases_loss(self, small_keyset):
        result = optimal_single_point(small_keyset)
        assert result.loss_after > result.loss_before
        assert result.ratio_loss > 1.0

    def test_key_is_unoccupied_and_interior(self, small_keyset):
        result = optimal_single_point(small_keyset)
        assert result.key not in small_keyset
        assert small_keyset.keys[0] < result.key < small_keyset.keys[-1]

    def test_exhausted_interior_raises(self):
        with pytest.raises(KeySpaceExhausted):
            optimal_single_point(KeySet([4, 5, 6, 7]))

    def test_interior_false_uses_boundary_gaps(self):
        ks = KeySet([4, 5, 6, 7], Domain(0, 10))
        result = optimal_single_point(ks, interior_only=False)
        assert result.key in set(range(0, 4)) | set(range(8, 11))

    def test_beats_every_other_candidate(self, small_keyset):
        result = optimal_single_point(small_keyset)
        _, losses = loss_landscape(small_keyset)
        assert result.loss_after == pytest.approx(float(losses.max()),
                                                  rel=1e-12)

    def test_ratio_loss_with_zero_before(self):
        """A perfectly linear CDF has zero loss; ratio degrades to inf."""
        ks = KeySet([0, 10, 20, 30, 40])
        result = optimal_single_point(ks)
        assert result.loss_before == pytest.approx(0.0, abs=1e-12)
        assert result.ratio_loss == float("inf")

    def test_two_keys_minimal_input(self):
        ks = KeySet([0, 10])
        result = optimal_single_point(ks)
        assert 0 < result.key < 10


class TestLossLandscape:
    def test_covers_every_interior_slot(self, tiny_keyset):
        candidates, losses = loss_landscape(tiny_keyset)
        assert candidates.tolist() == [3, 4, 5, 8, 9, 10, 11]
        assert losses.shape == candidates.shape

    def test_convexity_within_each_gap(self, medium_keyset):
        """Theorem 2: second difference >= 0 inside every gap."""
        candidates, losses = loss_landscape(medium_keyset)
        gaps = find_gaps(medium_keyset)
        for lo, hi in zip(gaps.lefts, gaps.rights):
            mask = (candidates >= lo) & (candidates <= hi)
            piece = losses[mask]
            if piece.size < 3:
                continue
            second = discrete_derivative(discrete_derivative(piece))
            assert second.min() >= -1e-6 * max(1.0, abs(piece).max())

    def test_gap_maximum_at_endpoint(self, medium_keyset):
        """Corollary of Theorem 2 — the basis of the O(n) attack."""
        candidates, losses = loss_landscape(medium_keyset)
        gaps = find_gaps(medium_keyset)
        for lo, hi in zip(gaps.lefts, gaps.rights):
            mask = (candidates >= lo) & (candidates <= hi)
            piece = losses[mask]
            if piece.size == 0:
                continue
            interior_max = float(piece.max())
            endpoint_max = max(float(piece[0]), float(piece[-1]))
            assert endpoint_max == pytest.approx(interior_max, rel=1e-12)


@given(st.lists(st.integers(min_value=0, max_value=3_000), min_size=3,
                max_size=80, unique=True))
@settings(max_examples=50, deadline=None)
def test_vectorised_loss_equals_refit_everywhere(raw):
    """Property: equations (13) == refit, for every unoccupied key."""
    ks = KeySet(raw)
    candidates, losses = loss_landscape(ks)
    if candidates.size == 0:
        return
    # Spot-check up to 10 random positions to keep runtime bounded.
    picks = np.linspace(0, candidates.size - 1,
                        min(10, candidates.size)).astype(int)
    for i in picks:
        direct = fit_cdf_regression(ks.insert([int(candidates[i])])).mse
        assert losses[i] == pytest.approx(direct, rel=1e-7, abs=1e-7)


@given(st.lists(st.integers(min_value=0, max_value=1_500), min_size=3,
                max_size=60, unique=True))
@settings(max_examples=50, deadline=None)
def test_optimum_never_below_any_candidate(raw):
    """Property: the chosen key's loss is the global maximum."""
    ks = KeySet(raw)
    try:
        result = optimal_single_point(ks)
    except KeySpaceExhausted:
        return
    _, losses = loss_landscape(ks)
    assert result.loss_after >= float(losses.max()) - 1e-9
