"""Unit tests for the modification (move-a-key) adversary."""

import numpy as np
import pytest

from repro.core import fit_cdf_regression
from repro.core.modification import (
    best_modification,
    greedy_modify,
)
from repro.data import Domain, KeySet, uniform_keyset


class TestBestModification:
    def test_returns_valid_move(self, small_keyset):
        victim, destination, loss = best_modification(small_keyset)
        assert victim in small_keyset
        assert destination not in small_keyset
        assert loss > 0.0

    def test_loss_matches_refit(self, small_keyset):
        victim, destination, loss = best_modification(small_keyset)
        moved = small_keyset.remove([victim]).insert([destination])
        assert fit_cdf_regression(moved).mse == pytest.approx(
            loss, rel=1e-9)

    def test_shortlist_matches_exhaustive(self):
        """The top-deletion shortlist finds the exhaustive optimum."""
        for seed in range(6):
            rng = np.random.default_rng(seed)
            ks = uniform_keyset(30, Domain(0, 300), rng)
            fast = best_modification(ks, shortlist=8)
            full = best_modification(ks, exhaustive=True)
            assert fast[2] == pytest.approx(full[2], rel=0.05), seed

    def test_too_few_keys(self):
        with pytest.raises(ValueError):
            best_modification(KeySet([1, 2, 3]))

    def test_no_gaps_raises(self):
        with pytest.raises(ValueError):
            best_modification(KeySet([4, 5, 6, 7, 8]))


class TestGreedyModify:
    def test_moves_requested_count(self, medium_keyset):
        result = greedy_modify(medium_keyset, 10)
        assert result.n_moves == 10
        assert result.victims.size == result.destinations.size == 10

    def test_key_count_conserved(self, medium_keyset):
        """The stealth property: cardinality never changes."""
        result = greedy_modify(medium_keyset, 10)
        current = medium_keyset
        for victim, dest in zip(result.victims, result.destinations):
            current = current.remove([int(victim)]).insert([int(dest)])
            assert current.n == medium_keyset.n

    def test_final_loss_matches_refit(self, medium_keyset):
        result = greedy_modify(medium_keyset, 8)
        current = medium_keyset
        for victim, dest in zip(result.victims, result.destinations):
            current = current.remove([int(victim)]).insert([int(dest)])
        assert fit_cdf_regression(current).mse == pytest.approx(
            result.loss_after, rel=1e-9)

    def test_damage_compounds(self, medium_keyset):
        result = greedy_modify(medium_keyset, 15)
        assert result.ratio_loss > 1.5
        assert result.losses[-1] >= result.losses[0]

    def test_zero_budget(self, small_keyset):
        result = greedy_modify(small_keyset, 0)
        assert result.n_moves == 0
        assert result.ratio_loss == pytest.approx(1.0)

    def test_negative_budget_rejected(self, small_keyset):
        with pytest.raises(ValueError):
            greedy_modify(small_keyset, -1)

    def test_stronger_than_insertion_at_equal_budget(self, rng):
        """A move is a delete + insert pair — two perturbations per
        budget unit — so at equal budget the modification adversary
        matches or beats pure insertion, while staying invisible to
        cardinality audits."""
        from repro.core import greedy_poison
        ks = uniform_keyset(200, Domain(0, 1999), rng)
        insert = greedy_poison(ks, 20)
        modify = greedy_modify(ks, 20)
        assert modify.ratio_loss > 1.0
        assert modify.ratio_loss >= 0.8 * insert.ratio_loss
