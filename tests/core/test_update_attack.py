"""Tests for poisoning through the update channel (Sec. VI extension)."""

import pytest

from repro.core import poison_via_updates
from repro.data import Domain, uniform_keyset
from repro.index import DynamicLearnedIndex


@pytest.fixture
def live_index(rng):
    keyset = uniform_keyset(1000, Domain(0, 19_999), rng)
    return DynamicLearnedIndex(keyset, n_models=10,
                               retrain_threshold=0.05), keyset


class TestPoisonViaUpdates:
    def test_damage_lands_after_retrain(self, live_index):
        dyn, _ = live_index
        result = poison_via_updates(dyn, poisoning_percentage=10.0)
        assert result.retrains_triggered >= 1
        assert result.ratio_loss > 1.5
        assert dyn.delta_size == 0  # everything merged

    def test_matches_static_rmi_attack_keys(self, live_index):
        """One retrain window == the static pre-training attack."""
        from repro.core import RMIAttackerCapability, poison_rmi
        dyn, keyset = live_index
        capability = RMIAttackerCapability(poisoning_percentage=10.0,
                                           alpha=3.0)
        static = poison_rmi(keyset, 10, capability, max_exchanges=10)
        update = poison_via_updates(dyn, poisoning_percentage=10.0)
        assert sorted(update.injected_keys.tolist()) == \
            static.poison_keys.tolist()
        # Same poisoned merge -> same per-model damage direction.
        assert update.mse_after > update.mse_before

    def test_index_remains_correct(self, live_index):
        dyn, keyset = live_index
        poison_via_updates(dyn, poisoning_percentage=10.0)
        for key in keyset.keys[::91]:
            assert dyn.lookup(int(key)).found

    def test_lookup_cost_rises(self, rng):
        keyset = uniform_keyset(1000, Domain(0, 19_999), rng)
        clean = DynamicLearnedIndex(keyset, n_models=10)
        dirty = DynamicLearnedIndex(keyset, n_models=10)
        poison_via_updates(dirty, poisoning_percentage=15.0)
        queries = keyset.keys[::11]
        assert dirty.lookup_cost(queries) > clean.lookup_cost(queries)

    def test_percentage_validated(self, live_index):
        dyn, _ = live_index
        with pytest.raises(ValueError):
            poison_via_updates(dyn, poisoning_percentage=0.0)
        with pytest.raises(ValueError):
            poison_via_updates(dyn, poisoning_percentage=25.0)

    def test_budget_respected(self, live_index):
        dyn, keyset = live_index
        result = poison_via_updates(dyn, poisoning_percentage=5.0)
        assert result.injected_keys.size == keyset.n * 5 // 100
