"""Importance arithmetic: delta signs, harmful flag, rank order."""

import math

import pytest

from repro.ablate import (
    HARM_TOLERANCE,
    MetricSummary,
    build_report,
    to_section,
)
from repro.contracts import validate_ablation_section

NAN = float("nan")


def metrics(amplification, p95=10.0, slo=NAN):
    return MetricSummary(amplification=amplification, p95=p95,
                         slo_violations=slo)


BASELINE = metrics(1.0, p95=10.0, slo=0.1)
FLOOR = metrics(2.0, p95=30.0, slo=0.6)


class TestDeltas:
    def test_score_is_removal_minus_baseline(self):
        report = build_report(
            "drip", BASELINE, FLOOR,
            [("trim", "TRIM screen", metrics(1.4, p95=14.0, slo=0.3))])
        entry = report.component("trim")
        assert entry.score == pytest.approx(0.4)
        assert entry.amplification_delta == entry.score
        assert entry.p95_delta == pytest.approx(4.0)
        assert entry.slo_delta == pytest.approx(0.2)
        assert not entry.harmful

    def test_nan_metric_propagates_to_nan_delta(self):
        report = build_report(
            "drip", metrics(1.0, slo=NAN), FLOOR,
            [("trim", "t", metrics(1.2, slo=NAN))])
        entry = report.component("trim")
        assert math.isnan(entry.slo_delta)
        assert entry.score == pytest.approx(0.2)

    def test_stack_protects_is_floor_minus_baseline(self):
        report = build_report("drip", BASELINE, FLOOR, [])
        assert report.stack_protects() == pytest.approx(1.0)


class TestHarmfulFlag:
    def test_improvement_beyond_tolerance_flags_harmful(self):
        report = build_report(
            "drip", BASELINE, FLOOR,
            [("trim", "t",
              metrics(1.0 - 2 * HARM_TOLERANCE))])
        assert report.component("trim").harmful

    def test_improvement_within_tolerance_does_not_flag(self):
        report = build_report(
            "drip", BASELINE, FLOOR,
            [("trim", "t",
              metrics(1.0 - HARM_TOLERANCE / 2))])
        assert not report.component("trim").harmful

    def test_nan_score_never_flags_harmful(self):
        report = build_report(
            "drip", metrics(NAN), FLOOR, [("trim", "t", metrics(1.2))])
        entry = report.component("trim")
        assert math.isnan(entry.score)
        assert not entry.harmful


class TestRanking:
    def test_descending_score_order(self):
        report = build_report(
            "drip", BASELINE, FLOOR,
            [("trim", "t", metrics(1.1)),
             ("deferral", "d", metrics(1.5)),
             ("quarantine", "q", metrics(1.3))])
        assert [e.component for e in report.components] \
            == ["deferral", "quarantine", "trim"]
        assert [e.rank for e in report.components] == [1, 2, 3]

    def test_score_tie_breaks_on_p95_delta(self):
        report = build_report(
            "drip", BASELINE, FLOOR,
            [("trim", "t", metrics(1.2, p95=12.0)),
             ("deferral", "d", metrics(1.2, p95=18.0))])
        assert [e.component for e in report.components] \
            == ["deferral", "trim"]

    def test_full_tie_breaks_alphabetically(self):
        report = build_report(
            "drip", BASELINE, FLOOR,
            [("trim", "t", metrics(1.0, p95=10.0)),
             ("quarantine", "q", metrics(1.0, p95=10.0)),
             ("deferral", "d", metrics(1.0, p95=10.0))])
        assert [e.component for e in report.components] \
            == ["deferral", "quarantine", "trim"]

    def test_nan_score_ranks_last(self):
        report = build_report(
            "drip", BASELINE, FLOOR,
            [("trim", "t", metrics(NAN)),
             ("deferral", "d", metrics(1.0))])
        assert report.components[-1].component == "trim"

    def test_ranking_is_input_order_independent(self):
        one_offs = [("trim", "t", metrics(1.1)),
                    ("deferral", "d", metrics(1.5)),
                    ("quarantine", "q", metrics(1.3))]
        forward = build_report("drip", BASELINE, FLOOR, one_offs)
        backward = build_report("drip", BASELINE, FLOOR,
                                one_offs[::-1])
        assert [(e.component, e.rank, e.score)
                for e in forward.components] \
            == [(e.component, e.rank, e.score)
                for e in backward.components]

    def test_unknown_component_lookup_raises(self):
        report = build_report("drip", BASELINE, FLOOR, [])
        with pytest.raises(KeyError, match="bogus"):
            report.component("bogus")


class TestSection:
    def build(self):
        return build_report(
            "cluster", BASELINE, FLOOR,
            [("trim", "t", metrics(1.4, p95=14.0, slo=0.3)),
             ("deferral", "d", metrics(1.1, p95=NAN, slo=0.2))])

    def test_section_passes_the_declared_contract(self):
        block = to_section([self.build()])
        assert validate_ablation_section(block) is block

    def test_nan_travels_as_the_json_sentinel(self):
        block = to_section([self.build()])
        rows = block["scenarios"][0]["components"]
        deferral = next(r for r in rows if r["component"] == "deferral")
        assert deferral["p95_delta"] == "nan"
        assert isinstance(deferral["score"], float)

    def test_format_renders_rank_table_and_duel(self):
        from repro.ablate import format_reports
        text = format_reports([self.build()])
        assert "defense ablation: cluster scenario" in text
        assert "removal cost" in text
        assert "rank" in text
