"""Plan-builder properties: leave-one-out coverage, stable digests.

Three contracts:

* **coverage** — for any valid config, every scenario's plan is
  exactly one all-on baseline, one one-off per applicable component
  surviving the ``--components`` filter, and one all-off floor, with
  unique content-addressed digests;
* **cross-process determinism** — cell digests computed in a separate
  interpreter (fresh ``PYTHONHASHSEED``, so any accidental use of the
  salted builtin ``hash`` would change them) are identical, the
  property resume and process fan-out depend on;
* **resume** — a checkpointed grid re-run with ``resume=True``
  rewrites no cell file and reproduces the identical rows.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ablate import (
    COMPONENT_NAMES,
    AblateConfig,
    applicable_components,
    plan_cells,
    quick_config,
    run,
    run_ablate_cell,
    variant_names,
)
from repro.runtime import Cell


def transports():
    return st.one_of(
        st.tuples(st.just("inproc"), st.just(1)),
        st.tuples(st.just("process"), st.integers(1, 3)))


CONFIGS = st.builds(
    lambda scenarios, filt, tr, seed: AblateConfig(
        scenarios=scenarios, components=filt, transport=tr[0],
        replicas=tr[1], seed=seed),
    scenarios=st.sampled_from(
        (("drip",), ("cluster",), ("drip", "cluster"),
         ("cluster", "drip"))),
    filt=st.one_of(
        st.none(),
        st.sets(st.sampled_from(COMPONENT_NAMES), min_size=1)
        .map(lambda s: tuple(sorted(s)))),
    tr=transports(),
    seed=st.integers(0, 2**31 - 1))


class TestCoverage:
    @settings(max_examples=60, deadline=None)
    @given(config=CONFIGS)
    def test_leave_one_out_grid_covers_each_component_once(
            self, config):
        plan = plan_cells(config)
        by_scenario = {}
        for cell in plan:
            p = cell.params_dict
            by_scenario.setdefault(p["scenario"], []).append(
                p["variant"])
        assert sorted(by_scenario) == sorted(config.scenarios)
        for scenario, variants in by_scenario.items():
            applicable = [s.name for s in applicable_components(
                scenario, config.transport, config.replicas,
                config.components)]
            assert variants.count("baseline") == 1
            assert variants.count("floor") == 1
            one_offs = [v for v in variants
                        if v not in ("baseline", "floor")]
            # every applicable component removed exactly once
            assert sorted(one_offs) \
                == sorted(f"no-{name}" for name in applicable)
            assert variants == list(variant_names(config, scenario))

    @settings(max_examples=60, deadline=None)
    @given(config=CONFIGS)
    def test_digests_unique_across_the_plan(self, config):
        plan = plan_cells(config)
        digests = [cell.digest for cell in plan]
        assert len(set(digests)) == len(digests)

    @settings(max_examples=30, deadline=None)
    @given(config=CONFIGS)
    def test_filter_never_changes_surviving_digests(self, config):
        """--components only drops one-off cells; the cells that do
        run keep their unfiltered digests, so checkpoints are shared
        across filtered runs."""
        unfiltered = plan_cells(AblateConfig(
            scenarios=config.scenarios, components=None,
            transport=config.transport, replicas=config.replicas,
            seed=config.seed))
        filtered = {c.digest for c in plan_cells(config)}
        assert filtered <= {c.digest for c in unfiltered}


class TestConfigValidation:
    def test_unknown_scenario_named_in_error(self):
        with pytest.raises(ValueError,
                           match=r"scenarios must name scenarios in "
                                 r"\['drip', 'cluster'\], got 'edge'"):
            AblateConfig(scenarios=("edge",))

    def test_unknown_component_named_in_error(self):
        with pytest.raises(
                ValueError,
                match=r"components must name defense components in "
                      r".*got 'tirm'"):
            AblateConfig(components=("tirm",))

    def test_empty_component_filter_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            AblateConfig(components=())

    def test_replicas_require_process_transport(self):
        with pytest.raises(ValueError, match="process transport"):
            AblateConfig(replicas=3)

    def test_bad_variant_cell_rejected_by_runner(self):
        template = plan_cells(quick_config())[0].params_dict
        bad = Cell.make("defense-ablation",
                        **{**template, "variant": "no-bogus"})
        with pytest.raises(ValueError,
                           match=r"'no-<component>' applicable to "
                                 r"'drip', got 'no-bogus'"):
            run_ablate_cell(bad)


class TestCrossProcessDigests:
    def test_digests_stable_across_interpreters(self):
        """A worker with a different hash salt must address the same
        cells — resumed and fanned-out grids depend on it."""
        local = [c.digest for c in plan_cells(quick_config())]
        script = (
            "from repro.ablate import plan_cells, quick_config;"
            "print([c.digest for c in plan_cells(quick_config())])")
        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        for salt in ("0", "12345"):
            env = dict(os.environ,
                       PYTHONPATH=src, PYTHONHASHSEED=salt)
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            assert eval(out.stdout.strip()) == local, salt


TINY = AblateConfig(scenarios=("drip",), n_base_keys=200,
                    n_ticks=6, rate=40.0, seed=3)


class TestResume:
    def test_resume_reuses_completed_cells(self, tmp_path):
        first = run(TINY, jobs=2, checkpoint_dir=tmp_path,
                    executor="thread")
        before = {p.name: p.stat().st_mtime_ns
                  for p in (tmp_path / "cells").iterdir()}
        assert before  # checkpoints were written
        resumed = run(TINY, jobs=1, checkpoint_dir=tmp_path,
                      resume=True)
        after = {p.name: p.stat().st_mtime_ns
                 for p in (tmp_path / "cells").iterdir()}
        assert after == before  # nothing recomputed or rewritten
        # NaN-safe comparison: to_dict carries the JSON sentinel.
        assert resumed.to_dict() == first.to_dict()
