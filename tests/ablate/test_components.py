"""The defense-component registry: applicability, lookup, filters."""

import pytest

from repro.ablate import (
    COMPONENT_NAMES,
    COMPONENTS,
    SCENARIOS,
    applicable_components,
    component,
)


class TestRegistry:
    def test_names_are_unique_and_ordered(self):
        assert len(set(COMPONENT_NAMES)) == len(COMPONENT_NAMES)
        assert COMPONENT_NAMES == tuple(s.name for s in COMPONENTS)

    def test_expected_components_registered(self):
        assert COMPONENT_NAMES == (
            "trim", "quarantine", "deferral", "slo_weighting",
            "rebalancer", "migration_rescreen", "quorum")

    def test_every_component_names_known_scenarios(self):
        for spec in COMPONENTS:
            assert spec.scenarios
            assert set(spec.scenarios) <= set(SCENARIOS)

    def test_lookup_returns_the_registered_spec(self):
        assert component("trim") is COMPONENTS[0]

    def test_lookup_unknown_name_raises_with_known_list(self):
        with pytest.raises(ValueError,
                           match=r"unknown defense component 'bogus'"):
            component("bogus")
        with pytest.raises(ValueError, match="quarantine"):
            component("bogus")


class TestApplicability:
    def test_drip_components(self):
        names = [s.name for s in applicable_components("drip")]
        assert names == ["trim", "quarantine", "deferral"]

    def test_cluster_inproc_excludes_replication_layer(self):
        names = [s.name for s in applicable_components("cluster")]
        assert names == ["trim", "quarantine", "deferral",
                         "slo_weighting", "rebalancer",
                         "migration_rescreen"]

    def test_quorum_needs_process_transport_and_replicas(self):
        quorum = component("quorum")
        assert not quorum.applicable("cluster")
        assert not quorum.applicable("cluster", transport="process",
                                     replicas=2)
        assert not quorum.applicable("cluster", transport="inproc",
                                     replicas=3)
        assert quorum.applicable("cluster", transport="process",
                                 replicas=3)
        assert "quorum" in [
            s.name for s in applicable_components(
                "cluster", transport="process", replicas=3)]

    def test_requires_tag_reflects_replication_floor(self):
        assert component("trim").requires() == "-"
        assert component("quorum").requires() \
            == "--transport process --replicas>=3"

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError,
                           match=r"unknown scenario 'edge'"):
            applicable_components("edge")

    def test_filter_keeps_registry_order(self):
        names = [s.name for s in applicable_components(
            "cluster", components=("rebalancer", "trim"))]
        assert names == ["trim", "rebalancer"]

    def test_filter_with_unknown_name_raises(self):
        with pytest.raises(ValueError,
                           match=r"unknown defense component 'tirm'"):
            applicable_components("drip", components=("tirm",))

    def test_filter_of_inapplicable_component_yields_nothing(self):
        # quorum exists but is not live in an inproc cluster run;
        # filtering to it must not resurrect it.
        assert applicable_components(
            "cluster", components=("quorum",)) == ()
