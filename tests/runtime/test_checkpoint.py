"""Tests for the content-addressed checkpoint store."""

import json

import numpy as np

from repro.runtime import Cell, CheckpointStore
from repro.runtime.checkpoint import CELL_SCHEMA


def make_cell(**params):
    return Cell.make("test-exp", **params)


class TestCellRoundTrip:
    def test_save_then_load(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        store.save_cell(cell, {"loss": 1.5, "keys": [1, 2, 3]})
        assert store.load_cell(cell) == {"loss": 1.5, "keys": [1, 2, 3]}

    def test_missing_cell_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load_cell(make_cell(n=3)) is None

    def test_cells_are_isolated_by_digest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_cell(make_cell(n=3), {"v": 3})
        store.save_cell(make_cell(n=4), {"v": 4})
        assert store.load_cell(make_cell(n=3)) == {"v": 3}
        assert store.load_cell(make_cell(n=4)) == {"v": 4}
        assert store.load_cell(make_cell(n=5)) is None

    def test_arrays_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        poison = np.array([5, 9, 11], dtype=np.int64)
        losses = np.array([0.5, 1.5], dtype=np.float64)
        store.save_cell(cell, {"ok": True},
                        arrays={"poison": poison, "losses": losses})
        arrays = store.load_arrays(cell)
        assert np.array_equal(arrays["poison"], poison)
        assert np.array_equal(arrays["losses"], losses)

    def test_no_arrays_is_empty_dict(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        store.save_cell(cell, {"ok": True})
        assert store.load_arrays(cell) == {}


class TestDefensiveLoads:
    def test_truncated_json_treated_as_absent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        store.save_cell(cell, {"v": 1})
        store.cell_path(cell).write_text('{"schema": "repro')
        assert store.load_cell(cell) is None

    def test_non_utf8_bytes_treated_as_absent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        store.save_cell(cell, {"v": 1})
        store.cell_path(cell).write_bytes(b"\xff\xfe\x00garbage")
        assert store.load_cell(cell) is None

    def test_wrong_schema_treated_as_absent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        store.cell_path(cell).write_text(json.dumps(
            {"schema": "something-else", "cell": cell.spec(),
             "result": {"v": 1}}))
        assert store.load_cell(cell) is None

    def test_spec_mismatch_treated_as_absent(self, tmp_path):
        """A tampered or colliding file must not be trusted."""
        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        other = make_cell(n=4)
        store.cell_path(cell).write_text(json.dumps(
            {"schema": CELL_SCHEMA, "cell": other.spec(),
             "result": {"v": 4}}))
        assert store.load_cell(cell) is None

    def test_truncated_npz_marks_cell_missing(self, tmp_path):
        """A summary that promises artifacts it cannot deliver is not
        a completed cell — resume must recompute, not trust it."""
        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        store.save_cell(cell, {"v": 1},
                        arrays={"poison": np.array([1], dtype=np.int64)})
        store.arrays_path(cell).write_bytes(b"PK\x03\x04trunc")
        assert store.load_arrays(cell) == {}
        assert store.load_cell(cell) is None
        assert store.load_cell_output(cell) is None

    def test_garbage_npz_marks_cell_missing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        store.save_cell(cell, {"v": 1},
                        arrays={"poison": np.array([1], dtype=np.int64)})
        store.arrays_path(cell).write_bytes(
            bytes(range(256)) * 16)  # not a zip at all
        assert store.load_cell(cell) is None

    def test_deleted_npz_marks_cell_missing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        store.save_cell(cell, {"v": 1},
                        arrays={"poison": np.array([1], dtype=np.int64)})
        store.arrays_path(cell).unlink()
        assert store.load_cell(cell) is None

    def test_npz_missing_promised_array_marks_cell_missing(
            self, tmp_path):
        """A *valid* archive that lost a declared name is still not a
        completed cell — partial artifacts must not be trusted."""
        from repro import io as repro_io

        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        store.save_cell(cell, {"v": 1},
                        arrays={"poison": np.array([1], dtype=np.int64),
                                "ratios": np.array([2.0])})
        repro_io.save_arrays(store.arrays_path(cell),
                             poison=np.array([1], dtype=np.int64))
        assert store.load_cell(cell) is None
        # Restoring the full set of promised arrays heals the cell.
        repro_io.save_arrays(store.arrays_path(cell),
                             poison=np.array([1], dtype=np.int64),
                             ratios=np.array([2.0]))
        assert store.load_cell(cell) == {"v": 1}

    def test_half_written_cell_json_treated_as_absent(self, tmp_path):
        """A torn JSON write (no atomic replace) must read as not
        done, with and without a sibling artifact file."""
        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        store.save_cell(cell, {"v": 1},
                        arrays={"poison": np.array([1], dtype=np.int64)})
        full = store.cell_path(cell).read_text()
        store.cell_path(cell).write_text(full[:len(full) // 2])
        assert store.load_cell(cell) is None
        assert store.load_cell_output(cell) is None
        assert store.completed([cell]) == {}

    def test_cells_without_artifacts_unaffected_by_stray_npz(
            self, tmp_path):
        """An orphaned .npz (crash between array and JSON writes of a
        *different* run) never blocks a cell that promised nothing."""
        store = CheckpointStore(tmp_path)
        cell = make_cell(n=3)
        store.save_cell(cell, {"v": 1})
        store.arrays_path(cell).write_bytes(b"PK\x03\x04trunc")
        assert store.load_cell(cell) == {"v": 1}

    def test_no_temp_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_cell(make_cell(n=3), {"v": 1})
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []


class TestCompleted:
    def test_reports_only_finished_cells(self, tmp_path):
        store = CheckpointStore(tmp_path)
        done_cell = make_cell(n=1)
        store.save_cell(done_cell, {"v": 1})
        cells = [done_cell, make_cell(n=2)]
        done = store.completed(cells)
        assert done == {done_cell: {"v": 1}}


class TestManifest:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write_manifest({"experiment": "fig5", "config": {"seed": 7}})
        manifest = store.read_manifest()
        assert manifest["experiment"] == "fig5"
        assert manifest["config"] == {"seed": 7}
        assert manifest["schema"].startswith("repro.runtime.manifest/")

    def test_absent_manifest_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).read_manifest() is None
