"""Tests for the sweep engine: parity, checkpoints, resume, failures.

Cell runners live at module level so worker processes can unpickle
them by name.
"""

import pytest

from repro.runtime import Cell, CheckpointStore, SweepEngine


def square_cell(cell: Cell) -> dict:
    return {"value": cell.params_dict["x"] ** 2}


def marker_cell(cell: Cell) -> dict:
    """Records each execution on disk, so reuse is observable."""
    from pathlib import Path

    p = cell.params_dict
    marker_dir = Path(p["marker_dir"])
    marker_dir.mkdir(exist_ok=True)
    stamp = marker_dir / f"ran-{p['x']}"
    count = int(stamp.read_text()) + 1 if stamp.exists() else 1
    stamp.write_text(str(count))
    return {"value": p["x"] ** 2}


def failing_cell(cell: Cell) -> dict:
    x = cell.params_dict["x"]
    if x == 13:
        raise RuntimeError("unlucky cell")
    return {"value": x ** 2}


def plan(n, **extra):
    return [Cell.make("engine-test", x=x, **extra) for x in range(n)]


class TestSerialExecution:
    def test_results_align_with_plan_order(self):
        engine = SweepEngine(square_cell, jobs=1)
        results = engine.run(plan(5))
        assert [r["value"] for r in results] == [0, 1, 4, 9, 16]

    def test_empty_plan(self):
        assert SweepEngine(square_cell).run([]) == []

    def test_stats(self):
        engine = SweepEngine(square_cell)
        engine.run(plan(4))
        stats = engine.last_stats
        assert (stats.total, stats.computed, stats.reused) == (4, 4, 0)

    def test_duplicate_cells_computed_once(self):
        cells = plan(3) + plan(3)
        engine = SweepEngine(square_cell)
        results = engine.run(cells)
        assert [r["value"] for r in results] == [0, 1, 4, 0, 1, 4]
        assert engine.last_stats.computed == 3

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepEngine(square_cell, jobs=0)

    def test_resume_requires_store(self):
        with pytest.raises(ValueError):
            SweepEngine(square_cell, resume=True)


class TestParallelExecution:
    def test_matches_serial_results(self):
        cells = plan(12)
        serial = SweepEngine(square_cell, jobs=1).run(cells)
        parallel = SweepEngine(square_cell, jobs=4).run(cells)
        assert parallel == serial

    def test_more_jobs_than_cells(self):
        results = SweepEngine(square_cell, jobs=16).run(plan(3))
        assert [r["value"] for r in results] == [0, 1, 4]

    def test_worker_exception_propagates(self):
        engine = SweepEngine(failing_cell, jobs=2)
        with pytest.raises(RuntimeError, match="unlucky"):
            engine.run(plan(20))


class TestCheckpointing:
    def test_cells_written_as_run_progresses(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cells = plan(4)
        SweepEngine(square_cell, checkpoint=store).run(cells)
        for cell in cells:
            assert store.load_cell(cell) is not None

    def test_resume_skips_completed_cells(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cells = plan(6, marker_dir=str(tmp_path / "markers"))

        first = SweepEngine(marker_cell, checkpoint=store).run(cells)
        resumed = SweepEngine(marker_cell, checkpoint=store,
                              resume=True).run(cells)
        assert resumed == first
        markers = tmp_path / "markers"
        # Every cell executed exactly once across both runs.
        for x in range(6):
            assert (markers / f"ran-{x}").read_text() == "1"
        engine = SweepEngine(marker_cell, checkpoint=store, resume=True)
        engine.run(cells)
        assert (engine.last_stats.reused, engine.last_stats.computed) == (6, 0)

    def test_partial_checkpoints_fill_in_the_rest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cells = plan(4)
        # Simulate an interrupted run: two cells already done.
        store.save_cell(cells[0], {"value": 0})
        store.save_cell(cells[2], {"value": 4})
        engine = SweepEngine(square_cell, checkpoint=store, resume=True)
        results = engine.run(cells)
        assert [r["value"] for r in results] == [0, 1, 4, 9]
        assert engine.last_stats.reused == 2
        assert engine.last_stats.computed == 2

    def test_failure_keeps_finished_checkpoints(self, tmp_path):
        """Fail mid-sweep, then resume past the repaired cell."""
        store = CheckpointStore(tmp_path)
        cells = [Cell.make("engine-test", x=x) for x in (1, 2, 13, 4)]
        engine = SweepEngine(failing_cell, jobs=1, checkpoint=store)
        with pytest.raises(RuntimeError):
            engine.run(cells)
        # Cells before the failure were checkpointed.
        assert store.load_cell(cells[0]) == {"value": 1}
        assert store.load_cell(cells[1]) == {"value": 4}
        # A resumed run with a fixed runner completes without
        # recomputing them (square_cell would give the same values).
        resumed = SweepEngine(square_cell, checkpoint=store,
                              resume=True).run(cells)
        assert [r["value"] for r in resumed] == [1, 4, 169, 16]

    def test_parallel_resume_parity(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cells = plan(10)
        serial = SweepEngine(square_cell).run(cells)
        store.save_cell(cells[3], {"value": 9})
        parallel = SweepEngine(square_cell, jobs=4, checkpoint=store,
                               resume=True).run(cells)
        assert parallel == serial
