"""Tests for the sweep engine: parity, checkpoints, resume, failures,
executor backends, and artifact capture.

Cell runners live at module level so worker processes can unpickle
them by name.
"""

import numpy as np
import pytest

from repro.runtime import Cell, CellOutput, CheckpointStore, SweepEngine


def square_cell(cell: Cell) -> dict:
    return {"value": cell.params_dict["x"] ** 2}


def artifact_cell(cell: Cell) -> CellOutput:
    """Returns a summary plus a derived array artifact."""
    x = cell.params_dict["x"]
    return CellOutput(
        result={"value": x ** 2},
        arrays={"trace": np.arange(x + 1, dtype=np.int64)})


def marker_cell(cell: Cell) -> dict:
    """Records each execution on disk, so reuse is observable."""
    from pathlib import Path

    p = cell.params_dict
    marker_dir = Path(p["marker_dir"])
    marker_dir.mkdir(exist_ok=True)
    stamp = marker_dir / f"ran-{p['x']}"
    count = int(stamp.read_text()) + 1 if stamp.exists() else 1
    stamp.write_text(str(count))
    return {"value": p["x"] ** 2}


def failing_cell(cell: Cell) -> dict:
    x = cell.params_dict["x"]
    if x == 13:
        raise RuntimeError("unlucky cell")
    return {"value": x ** 2}


def plan(n, **extra):
    return [Cell.make("engine-test", x=x, **extra) for x in range(n)]


class TestSerialExecution:
    def test_results_align_with_plan_order(self):
        engine = SweepEngine(square_cell, jobs=1)
        results = engine.run(plan(5))
        assert [r["value"] for r in results] == [0, 1, 4, 9, 16]

    def test_empty_plan(self):
        assert SweepEngine(square_cell).run([]) == []

    def test_stats(self):
        engine = SweepEngine(square_cell)
        engine.run(plan(4))
        stats = engine.last_stats
        assert (stats.total, stats.computed, stats.reused) == (4, 4, 0)

    def test_duplicate_cells_computed_once(self):
        cells = plan(3) + plan(3)
        engine = SweepEngine(square_cell)
        results = engine.run(cells)
        assert [r["value"] for r in results] == [0, 1, 4, 0, 1, 4]
        assert engine.last_stats.computed == 3

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepEngine(square_cell, jobs=0)

    def test_resume_requires_store(self):
        with pytest.raises(ValueError):
            SweepEngine(square_cell, resume=True)


class TestParallelExecution:
    def test_matches_serial_results(self):
        cells = plan(12)
        serial = SweepEngine(square_cell, jobs=1).run(cells)
        parallel = SweepEngine(square_cell, jobs=4).run(cells)
        assert parallel == serial

    def test_more_jobs_than_cells(self):
        results = SweepEngine(square_cell, jobs=16).run(plan(3))
        assert [r["value"] for r in results] == [0, 1, 4]

    def test_worker_exception_propagates(self):
        engine = SweepEngine(failing_cell, jobs=2)
        with pytest.raises(RuntimeError, match="unlucky"):
            engine.run(plan(20))


class TestCheckpointing:
    def test_cells_written_as_run_progresses(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cells = plan(4)
        SweepEngine(square_cell, checkpoint=store).run(cells)
        for cell in cells:
            assert store.load_cell(cell) is not None

    def test_resume_skips_completed_cells(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cells = plan(6, marker_dir=str(tmp_path / "markers"))

        first = SweepEngine(marker_cell, checkpoint=store).run(cells)
        resumed = SweepEngine(marker_cell, checkpoint=store,
                              resume=True).run(cells)
        assert resumed == first
        markers = tmp_path / "markers"
        # Every cell executed exactly once across both runs.
        for x in range(6):
            assert (markers / f"ran-{x}").read_text() == "1"
        engine = SweepEngine(marker_cell, checkpoint=store, resume=True)
        engine.run(cells)
        assert (engine.last_stats.reused, engine.last_stats.computed) == (6, 0)

    def test_partial_checkpoints_fill_in_the_rest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cells = plan(4)
        # Simulate an interrupted run: two cells already done.
        store.save_cell(cells[0], {"value": 0})
        store.save_cell(cells[2], {"value": 4})
        engine = SweepEngine(square_cell, checkpoint=store, resume=True)
        results = engine.run(cells)
        assert [r["value"] for r in results] == [0, 1, 4, 9]
        assert engine.last_stats.reused == 2
        assert engine.last_stats.computed == 2

    def test_failure_keeps_finished_checkpoints(self, tmp_path):
        """Fail mid-sweep, then resume past the repaired cell."""
        store = CheckpointStore(tmp_path)
        cells = [Cell.make("engine-test", x=x) for x in (1, 2, 13, 4)]
        engine = SweepEngine(failing_cell, jobs=1, checkpoint=store)
        with pytest.raises(RuntimeError):
            engine.run(cells)
        # Cells before the failure were checkpointed.
        assert store.load_cell(cells[0]) == {"value": 1}
        assert store.load_cell(cells[1]) == {"value": 4}
        # A resumed run with a fixed runner completes without
        # recomputing them (square_cell would give the same values).
        resumed = SweepEngine(square_cell, checkpoint=store,
                              resume=True).run(cells)
        assert [r["value"] for r in resumed] == [1, 4, 169, 16]

    def test_parallel_resume_parity(self, tmp_path):
        store = CheckpointStore(tmp_path)
        cells = plan(10)
        serial = SweepEngine(square_cell).run(cells)
        store.save_cell(cells[3], {"value": 9})
        parallel = SweepEngine(square_cell, jobs=4, checkpoint=store,
                               resume=True).run(cells)
        assert parallel == serial


class TestThreadExecutor:
    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            SweepEngine(square_cell, executor="fiber")

    def test_matches_process_and_serial_results(self):
        cells = plan(12)
        serial = SweepEngine(square_cell, jobs=1).run(cells)
        process = SweepEngine(square_cell, jobs=4,
                              executor="process").run(cells)
        thread = SweepEngine(square_cell, jobs=4,
                             executor="thread").run(cells)
        assert thread == serial == process

    def test_stats_record_backend(self):
        engine = SweepEngine(square_cell, jobs=4, executor="thread")
        engine.run(plan(8))
        assert engine.last_stats.executor == "thread"
        assert engine.last_stats.jobs == 4

    def test_stats_report_inline_when_no_pool_ran(self):
        """A single-cell plan short-circuits past the pool; the stats
        must say so instead of naming a backend that never existed."""
        engine = SweepEngine(square_cell, jobs=4, executor="thread")
        engine.run(plan(1))
        assert engine.last_stats.executor == "inline"
        assert engine.last_stats.jobs == 1
        serial = SweepEngine(square_cell, jobs=1)
        serial.run(plan(5))
        assert serial.last_stats.executor == "inline"

    def test_checkpointed_resume_across_backends(self, tmp_path):
        """Cells checkpointed by a thread run resume under a process
        run (and vice versa) — the store is backend-agnostic."""
        store = CheckpointStore(tmp_path)
        cells = plan(8)
        first = SweepEngine(square_cell, jobs=2, executor="thread",
                            checkpoint=store).run(cells)
        engine = SweepEngine(square_cell, jobs=2, executor="process",
                             checkpoint=store, resume=True)
        assert engine.run(cells) == first
        assert engine.last_stats.reused == 8

    def test_worker_exception_propagates(self):
        engine = SweepEngine(failing_cell, jobs=2, executor="thread")
        with pytest.raises(RuntimeError, match="unlucky"):
            engine.run(plan(20))


class TestArtifacts:
    def test_run_outputs_carries_arrays_inline(self):
        outputs = SweepEngine(artifact_cell).run_outputs(plan(3))
        assert [o.result["value"] for o in outputs] == [0, 1, 4]
        for x, output in enumerate(outputs):
            assert np.array_equal(output.arrays["trace"],
                                  np.arange(x + 1))

    def test_plain_dict_runners_have_empty_arrays(self):
        outputs = SweepEngine(square_cell).run_outputs(plan(3))
        assert all(o.arrays == {} for o in outputs)

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_arrays_checkpoint_and_cross_pool(self, tmp_path, executor):
        store = CheckpointStore(tmp_path)
        cells = plan(6)
        outputs = SweepEngine(artifact_cell, jobs=3, executor=executor,
                              checkpoint=store).run_outputs(cells)
        for cell, output in zip(cells, outputs):
            stored = store.load_arrays(cell)
            assert np.array_equal(stored["trace"],
                                  output.arrays["trace"])

    def test_resume_re_exposes_arrays(self, tmp_path):
        """A resumed run sees the same CellOutput shape as the run
        that computed the cells — arrays come back from disk."""
        store = CheckpointStore(tmp_path)
        cells = plan(5)
        first = SweepEngine(artifact_cell,
                            checkpoint=store).run_outputs(cells)
        engine = SweepEngine(artifact_cell, checkpoint=store,
                             resume=True)
        resumed = engine.run_outputs(cells)
        assert engine.last_stats.reused == 5
        for a, b in zip(first, resumed):
            assert a.result == b.result
            assert np.array_equal(a.arrays["trace"], b.arrays["trace"])

    def test_duplicate_cells_share_arrays(self):
        cells = plan(3) + plan(3)
        engine = SweepEngine(artifact_cell)
        outputs = engine.run_outputs(cells)
        assert engine.last_stats.computed == 3
        for x in range(3):
            assert outputs[x].arrays is outputs[x + 3].arrays

    def test_corrupt_artifact_recomputed_on_resume(self, tmp_path):
        """The defensive-load contract end to end: a truncated .npz
        makes only that cell recompute; the run still succeeds."""
        store = CheckpointStore(tmp_path)
        cells = plan(6)
        SweepEngine(artifact_cell, checkpoint=store).run(cells)
        store.arrays_path(cells[2]).write_bytes(b"PK\x03\x04trunc")
        engine = SweepEngine(artifact_cell, checkpoint=store,
                             resume=True)
        outputs = engine.run_outputs(cells)
        assert engine.last_stats.reused == 5
        assert engine.last_stats.computed == 1
        assert np.array_equal(outputs[2].arrays["trace"], np.arange(3))
        # The recompute healed the store.
        assert store.load_cell(cells[2]) == {"value": 4}

    def test_half_written_cell_json_recomputed_on_resume(
            self, tmp_path):
        store = CheckpointStore(tmp_path)
        cells = plan(4)
        SweepEngine(artifact_cell, checkpoint=store).run(cells)
        path = store.cell_path(cells[1])
        path.write_text(path.read_text()[:20])
        engine = SweepEngine(artifact_cell, checkpoint=store,
                             resume=True)
        results = engine.run(cells)
        assert [r["value"] for r in results] == [0, 1, 4, 9]
        assert engine.last_stats.computed == 1


class TestProgressReporter:
    def test_tick_per_computed_cell(self):
        events = []
        engine = SweepEngine(square_cell, progress=events.append)
        engine.run(plan(4))
        assert len(events) == 4
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert [e.computed for e in events] == [1, 2, 3, 4]
        assert all(e.total == 4 and e.reused == 0 for e in events)
        assert events[-1].done == events[-1].total
        assert [e.cell.params_dict["x"] for e in events] == [0, 1, 2, 3]

    def test_eta_appears_and_shrinks_to_zero(self):
        events = []
        engine = SweepEngine(square_cell, progress=events.append)
        engine.run(plan(3))
        assert all(e.eta_seconds is not None for e in events)
        assert events[-1].eta_seconds == 0.0
        assert all(e.seconds_elapsed >= 0.0 for e in events)

    def test_resume_emits_one_restore_tick(self, tmp_path):
        store = CheckpointStore(tmp_path)
        SweepEngine(square_cell, checkpoint=store).run(plan(2))
        events = []
        engine = SweepEngine(square_cell, checkpoint=store, resume=True,
                             progress=events.append)
        engine.run(plan(4))
        # One restore tick (cell=None, 2 reused) + 2 computed ticks.
        assert len(events) == 3
        restore = events[0]
        assert restore.cell is None
        assert restore.reused == 2 and restore.done == 2
        assert restore.eta_seconds is None  # nothing computed yet
        assert [e.done for e in events[1:]] == [3, 4]

    def test_parallel_ticks_cover_every_cell(self):
        events = []
        engine = SweepEngine(square_cell, jobs=2, executor="thread",
                             progress=events.append)
        engine.run(plan(6))
        assert len(events) == 6
        assert [e.done for e in events] == [1, 2, 3, 4, 5, 6]
        seen = {e.cell.params_dict["x"] for e in events}
        assert seen == set(range(6))

    def test_resumed_full_hit_run_keeps_eta_none_at_jobs_2(
            self, tmp_path):
        """ISSUE 4 satellite: when every remaining cell of a resumed
        run is a checkpoint hit, nothing was computed this run, so
        the ETA must stay None — never ``inf`` or negative."""
        store = CheckpointStore(tmp_path)
        SweepEngine(square_cell, checkpoint=store).run(plan(4))
        events = []
        engine = SweepEngine(square_cell, jobs=2, executor="thread",
                             checkpoint=store, resume=True,
                             progress=events.append)
        engine.run(plan(4))
        assert engine.last_stats.computed == 0
        assert engine.last_stats.reused == 4
        (restore,) = events  # the single restore tick
        assert restore.done == restore.total == 4
        assert restore.eta_seconds is None

    def test_eta_is_finite_non_negative_or_none_on_partial_resume(
            self, tmp_path):
        store = CheckpointStore(tmp_path)
        SweepEngine(square_cell, checkpoint=store).run(plan(3))
        events = []
        SweepEngine(square_cell, jobs=2, executor="thread",
                    checkpoint=store, resume=True,
                    progress=events.append).run(plan(6))
        assert events[0].eta_seconds is None  # restore tick first
        for event in events[1:]:
            assert event.eta_seconds is not None
            assert event.eta_seconds >= 0.0
            assert event.eta_seconds != float("inf")
        assert events[-1].eta_seconds == 0.0

    def test_duplicates_settle_with_their_source(self):
        events = []
        engine = SweepEngine(square_cell, progress=events.append)
        cells = plan(2) + plan(2)  # each cell duplicated once
        engine.run(cells)
        assert len(events) == 2
        assert [e.done for e in events] == [2, 4]

    def test_no_callback_means_no_overhead_path(self):
        engine = SweepEngine(square_cell)
        assert engine.run(plan(2))  # simply must not fail
