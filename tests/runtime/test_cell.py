"""Unit tests for the sweep cell value object."""

import numpy as np
import pytest

from repro.runtime import Cell, stable_text_hash


class TestCanonicalisation:
    def test_param_order_is_irrelevant(self):
        a = Cell.make("exp", alpha=2.0, n_keys=100)
        b = Cell.make("exp", n_keys=100, alpha=2.0)
        assert a == b
        assert a.digest == b.digest
        # repro: allow[REP002] -- contrasts builtin hash with stable_text_hash on purpose
        assert hash(a) == hash(b)

    def test_numpy_scalars_coerced(self):
        a = Cell.make("exp", n=np.int64(7), x=np.float64(0.5))
        b = Cell.make("exp", n=7, x=0.5)
        assert a == b

    def test_params_dict_round_trip(self):
        cell = Cell.make("exp", n=3, name="uniform", frac=0.25, flag=True)
        assert cell.params_dict == {
            "n": 3, "name": "uniform", "frac": 0.25, "flag": True}

    def test_non_scalar_param_rejected(self):
        with pytest.raises(TypeError):
            Cell.make("exp", grid=[1, 2, 3])

    def test_non_finite_param_rejected(self):
        with pytest.raises(ValueError):
            Cell.make("exp", x=float("nan"))
        with pytest.raises(ValueError):
            Cell.make("exp", x=float("inf"))


class TestDigest:
    def test_differs_across_params(self):
        assert (Cell.make("exp", n=1).digest
                != Cell.make("exp", n=2).digest)

    def test_differs_across_experiments(self):
        assert (Cell.make("exp-a", n=1).digest
                != Cell.make("exp-b", n=1).digest)

    def test_stable_value(self):
        # Pinned: a silent digest change would orphan every existing
        # checkpoint directory.
        cell = Cell.make("regression-sweep", n_keys=100, trial=0)
        assert cell.digest == Cell.make(
            "regression-sweep", trial=0, n_keys=100).digest
        assert len(cell.digest) == 16
        int(cell.digest, 16)  # hex

    def test_matches_guards_spec(self):
        cell = Cell.make("exp", n=1)
        assert cell.matches(cell.spec())
        assert not cell.matches({"experiment": "exp", "params": {"n": 2}})


class TestSeeding:
    def test_rng_is_deterministic(self):
        cell = Cell.make("exp", n=5)
        a = cell.rng(7).integers(0, 1_000_000, size=8)
        b = cell.rng(7).integers(0, 1_000_000, size=8)
        assert np.array_equal(a, b)

    def test_streams_differ_across_cells(self):
        a = Cell.make("exp", n=5).rng(7).integers(0, 1_000_000, size=8)
        b = Cell.make("exp", n=6).rng(7).integers(0, 1_000_000, size=8)
        assert not np.array_equal(a, b)

    def test_seed_root_shifts_streams(self):
        cell = Cell.make("exp", n=5)
        assert cell.seed(1) != cell.seed(2)


class TestStableTextHash:
    def test_known_stable_values(self):
        # CRC-32 is standardised; these must never change.
        assert stable_text_hash("uniform") == stable_text_hash("uniform")
        assert stable_text_hash("uniform") != stable_text_hash("lognormal")

    def test_non_negative(self):
        for text in ("uniform", "lognormal", "normal", ""):
            assert stable_text_hash(text) >= 0
