"""Stateful (model-based) hypothesis tests.

Each machine drives a structure through random operation sequences
while checking it against a trivially-correct Python model — the
strongest form of invariant testing for stateful substrates.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.data import Domain, KeySet
from repro.index import BTree, DynamicLearnedIndex

_KEYS = st.integers(min_value=0, max_value=2_000)


class BTreeMachine(RuleBasedStateMachine):
    """B-Tree vs a Python set under random inserts and searches."""

    def __init__(self):
        super().__init__()
        self.tree = BTree(min_degree=3)
        self.model: set[int] = set()

    @rule(key=_KEYS)
    def insert(self, key):
        if key in self.model:
            try:
                self.tree.insert(key)
                raise AssertionError("duplicate insert must fail")
            except ValueError:
                pass
        else:
            self.tree.insert(key)
            self.model.add(key)

    @rule(key=_KEYS)
    def search(self, key):
        assert (key in self.tree) == (key in self.model)

    @rule(a=_KEYS, b=_KEYS)
    def range_scan(self, a, b):
        lo, hi = min(a, b), max(a, b)
        expected = sorted(k for k in self.model if lo <= k <= hi)
        assert self.tree.range_scan(lo, hi) == expected

    @invariant()
    def structural_invariants(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.model)

    @invariant()
    def sorted_iteration(self):
        assert list(self.tree.items()) == sorted(self.model)


class DynamicIndexMachine(RuleBasedStateMachine):
    """Dynamic learned index vs a Python set, across retrain cycles."""

    def __init__(self):
        super().__init__()
        base = np.arange(0, 400, 4, dtype=np.int64)  # 100 seed keys
        self.index = DynamicLearnedIndex(
            KeySet(base, Domain(0, 2_000)), n_models=5,
            retrain_threshold=0.08)
        self.model = set(base.tolist())

    @rule(key=_KEYS)
    def insert(self, key):
        if key in self.model:
            try:
                self.index.insert(key)
                raise AssertionError("duplicate insert must fail")
            except ValueError:
                pass
        else:
            self.index.insert(key)
            self.model.add(key)

    @rule(key=_KEYS)
    def lookup(self, key):
        assert self.index.lookup(key).found == (key in self.model)

    @rule()
    def flush(self):
        self.index.flush()
        assert self.index.delta_size == 0

    @invariant()
    def count_matches(self):
        assert self.index.n_keys == len(self.model)


TestBTreeStateful = BTreeMachine.TestCase
TestBTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)

TestDynamicIndexStateful = DynamicIndexMachine.TestCase
TestDynamicIndexStateful.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None)
