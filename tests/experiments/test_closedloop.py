"""The closed-loop grid end to end: engine, CLI, artifacts, and the
adaptive-vs-oblivious acceptance regression (ISSUE 4)."""

import json
import math

import numpy as np
import pytest

from repro.experiments import closedloop_serving
from repro.experiments.__main__ import main
from repro.runtime import CheckpointStore

TINY = closedloop_serving.ClosedLoopConfig(
    arrivals=("poisson",),
    backends=("rmi",),
    adversaries=("oblivious", "escalate"),
    defenses=("fixed", "tuned"),
    n_base_keys=300,
    n_ticks=8,
    rate=60.0,
    poison_percentage=10.0)

LOOP_ARRAYS = [
    "tick_amplification", "tick_error_bound", "tick_injected",
    "tick_keep_fraction", "tick_mean_probes", "tick_n_keys",
    "tick_p50", "tick_p95", "tick_p99", "tick_rebuild_threshold",
    "tick_retrains"]


class TestPlan:
    def test_one_cell_per_grid_point(self):
        cells = closedloop_serving.plan_cells(
            closedloop_serving.quick_config())
        assert len(cells) == 1 * 2 * 4 * 2
        assert len({c.digest for c in cells}) == len(cells)

    def test_cells_carry_scalars_only(self):
        for cell in closedloop_serving.plan_cells(TINY):
            for value in cell.params_dict.values():
                assert isinstance(value, (int, float, str, bool))

    def test_full_config_covers_everything(self):
        config = closedloop_serving.full_config()
        assert len(closedloop_serving.plan_cells(config)) \
            == 3 * 4 * 4 * 2


class TestRun:
    @pytest.fixture(scope="class")
    def result(self):
        return closedloop_serving.run(TINY)

    def test_rows_align_with_plan(self, result):
        assert len(result.rows) == 4
        assert [(r.adversary, r.defense) for r in result.rows] == [
            ("oblivious", "fixed"), ("oblivious", "tuned"),
            ("escalate", "fixed"), ("escalate", "tuned")]

    def test_jobs_and_executor_parity(self, result):
        for jobs, executor in ((2, "thread"), (2, "process")):
            again = closedloop_serving.run(TINY, jobs=jobs,
                                           executor=executor)
            assert again.to_dict() == result.to_dict(), (jobs,
                                                         executor)

    def test_every_cell_spent_the_whole_budget(self, result):
        for row in result.rows:
            assert row.injected_poison == 30  # 10% of 300

    def test_format_includes_the_duel_summary(self, result):
        out = result.format()
        assert "closed loop: poisson arrivals" in out
        assert "duel: adaptive gap and tuner recovery" in out
        assert "escalate" in out

    def test_row_selector(self, result):
        row = result.row(adversary="escalate", defense="tuned")
        assert row.backend == "rmi"
        with pytest.raises(KeyError, match="expected 1"):
            result.row(adversary="escalate")

    def test_resume_reuses_cells_with_loop_series(self, result,
                                                  tmp_path):
        first = closedloop_serving.run(TINY, checkpoint_dir=tmp_path)
        again = closedloop_serving.run(TINY, checkpoint_dir=tmp_path,
                                       resume=True)
        assert again.to_dict() == first.to_dict() == result.to_dict()
        store = CheckpointStore(tmp_path)
        plan = closedloop_serving.plan_cells(TINY)
        done = store.completed_outputs(plan)
        assert len(done) == len(plan)
        for _, arrays in done.values():
            assert sorted(arrays) == LOOP_ARRAYS
            assert arrays["tick_injected"].sum() == 30


class TestAcceptance:
    """The committed closed-loop demonstration on the quick grid.

    Pinned on the deterministic calibrated scenario: the latency-
    escalation adversary must measurably beat the oblivious drip on
    both learned backends, and the auto-tuner must recover at least
    half of that gap; tuning must not tax the oblivious baseline.
    """

    @pytest.fixture(scope="class")
    def quick(self):
        return closedloop_serving.run(
            closedloop_serving.quick_config())

    @pytest.mark.parametrize("backend", ("rmi", "dynamic"))
    def test_adaptive_beats_oblivious(self, quick, backend):
        oblivious = quick.row(backend=backend, adversary="oblivious",
                              defense="fixed")
        escalate = quick.row(backend=backend, adversary="escalate",
                             defense="fixed")
        gap = escalate.amplification - oblivious.amplification
        assert gap > 0.05, (
            f"{backend}: escalate {escalate.amplification:.3f} vs "
            f"oblivious {oblivious.amplification:.3f}")

    @pytest.mark.parametrize("backend", ("rmi", "dynamic"))
    def test_tuner_recovers_at_least_half_the_gap(self, quick,
                                                  backend):
        oblivious = quick.row(backend=backend, adversary="oblivious",
                              defense="fixed")
        fixed = quick.row(backend=backend, adversary="escalate",
                          defense="fixed")
        tuned = quick.row(backend=backend, adversary="escalate",
                          defense="tuned")
        gap = fixed.amplification - oblivious.amplification
        recovered = fixed.amplification - tuned.amplification
        assert recovered >= 0.5 * gap, (
            f"{backend}: gap {gap:.3f}, recovered {recovered:.3f}")

    @pytest.mark.parametrize("backend", ("rmi", "dynamic"))
    def test_tuning_does_not_tax_the_oblivious_baseline(self, quick,
                                                        backend):
        fixed = quick.row(backend=backend, adversary="oblivious",
                          defense="fixed")
        tuned = quick.row(backend=backend, adversary="oblivious",
                          defense="tuned")
        assert abs(tuned.amplification - fixed.amplification) < 0.02

    def test_deferral_is_visible_in_the_tuned_cell(self, quick):
        """The recovery mechanism on record: the tuned escalate cell
        ends with a raised rebuild threshold (retrain deferral), not
        a tightened TRIM screen (Section VI: TRIM cannot cheaply
        separate CDF poison)."""
        tuned = quick.row(backend="rmi", adversary="escalate",
                          defense="tuned")
        fixed = quick.row(backend="rmi", adversary="escalate",
                          defense="fixed")
        assert tuned.final_rebuild_threshold \
            > fixed.final_rebuild_threshold
        assert tuned.retrains < fixed.retrains \
            or tuned.amplification < fixed.amplification


class TestClosedLoopCli:
    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory, class_tiny_config):
        out = tmp_path_factory.mktemp("closedloop-out")
        assert main(["closedloop", "--quick", "--jobs", "2",
                     "--executor", "thread", "--out", str(out)]) == 0
        return out

    @pytest.fixture(scope="class")
    def class_tiny_config(self):
        original = closedloop_serving.quick_config
        closedloop_serving.quick_config = lambda: TINY
        yield TINY
        closedloop_serving.quick_config = original

    def test_result_schema(self, out_dir, capsys):
        capsys.readouterr()
        payload = json.loads(
            (out_dir / "closedloop" / "result.json").read_text())
        assert payload["schema"] == "repro.experiments.result/v2"
        assert payload["target"] == "closedloop"
        assert payload["executor"] == "thread"
        cells = payload["result"]["cells"]
        assert len(cells) == 4
        for cell in cells:
            assert cell["injected_poison"] == 30
            amplification = float(cell["amplification"])
            assert math.isfinite(amplification)

    def test_artifact_manifest_round_trips(self, out_dir):
        from repro import io

        payload = json.loads(
            (out_dir / "closedloop" / "result.json").read_text())
        manifest = payload["artifacts"]
        assert len(manifest) == 4
        for entry in manifest:
            arrays = io.load_arrays(
                out_dir / "closedloop" / entry["file"])
            assert sorted(arrays) == entry["arrays"] == LOOP_ARRAYS
            assert arrays["tick_p95"].dtype == np.float64

    def test_resume_rewrites_nothing_and_matches(self, out_dir,
                                                 class_tiny_config,
                                                 capsys):
        cells_dir = out_dir / "closedloop" / "cells"
        before = {p.name: p.stat().st_mtime_ns
                  for p in cells_dir.iterdir()}
        assert main(["closedloop", "--jobs", "2", "--out",
                     str(out_dir), "--resume"]) == 0
        capsys.readouterr()
        after = {p.name: p.stat().st_mtime_ns
                 for p in cells_dir.iterdir()}
        assert after == before
