"""Tests for the ablation experiments (A1-A5)."""

import pytest

from repro.experiments import ablations
from repro.runtime import CheckpointStore


class TestEngineParity:
    """The ported A-series ablations are invisible to parallelism.

    Timings (A1) are excluded: wall-clock is the one legitimately
    non-deterministic output.
    """

    def test_a1_verdicts_stable_across_jobs(self):
        kwargs = dict(key_counts=(40, 80), density=0.1)
        serial = ablations.run_bruteforce_equivalence(**kwargs)
        threaded = ablations.run_bruteforce_equivalence(
            **kwargs, jobs=2, executor="thread")
        for a, b in zip(serial, threaded):
            assert (a.n_keys, a.domain_size, a.same_key) == (
                b.n_keys, b.domain_size, b.same_key)

    def test_a2_jobs_and_executor_parity(self):
        kwargs = dict(n_keys=300, percentages=(10.0, 20.0))
        serial = ablations.run_trim_defense(**kwargs)
        for executor in ("process", "thread"):
            parallel = ablations.run_trim_defense(
                **kwargs, jobs=2, executor=executor)
            assert parallel == serial

    def test_a2_checkpoint_persists_poison_artifacts(self, tmp_path):
        kwargs = dict(n_keys=300, percentages=(10.0, 20.0))
        first = ablations.run_trim_defense(
            **kwargs, checkpoint_dir=tmp_path)
        resumed = ablations.run_trim_defense(
            **kwargs, checkpoint_dir=tmp_path, resume=True, jobs=2)
        assert resumed == first
        store = CheckpointStore(tmp_path)
        npz_files = list(store.cells_dir.glob("*.npz"))
        assert len(npz_files) == 2  # one poison set per percentage

    def test_a3_single_cell_resume(self, tmp_path):
        kwargs = dict(n_keys=2000, model_size=200)
        first = ablations.run_lookup_cost(
            **kwargs, checkpoint_dir=tmp_path)
        resumed = ablations.run_lookup_cost(
            **kwargs, checkpoint_dir=tmp_path, resume=True)
        assert resumed == first

    def test_a4_jobs_parity(self):
        kwargs = dict(n_keys=1000, model_size=100, alphas=(1.0, 3.0))
        serial = ablations.run_alpha_sweep(**kwargs)
        parallel = ablations.run_alpha_sweep(**kwargs, jobs=2)
        assert parallel == serial

    def test_a5_jobs_parity(self):
        kwargs = dict(n_keys=1000, model_size=100)
        serial = ablations.run_allocation_ablation(**kwargs)
        parallel = ablations.run_allocation_ablation(
            **kwargs, jobs=2, executor="thread")
        assert parallel == serial


class TestA1BruteForce:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_bruteforce_equivalence(
            key_counts=(40, 80), density=0.1)

    def test_always_matches(self, rows):
        assert all(r.same_key for r in rows)

    def test_fast_is_faster(self, rows):
        # The asymptotic gap shows even at toy sizes.
        assert rows[-1].speedup > 1.0

    def test_format(self, rows):
        out = ablations.format_bruteforce(rows)
        assert "brute force" in out


class TestA2Trim:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_trim_defense(
            n_keys=300, percentages=(10.0, 20.0))

    def test_both_variants_present(self, rows):
        variants = {r.variant for r in rows}
        assert variants == {"classic", "rank-aware"}

    def test_attack_worked_before_defense(self, rows):
        assert all(r.attack_ratio > 1.5 for r in rows)

    def test_metrics_in_range(self, rows):
        for r in rows:
            assert 0.0 <= r.recall <= 1.0
            assert 0.0 <= r.precision <= 1.0
            assert r.residual_ratio >= 0.0

    def test_format(self, rows):
        out = ablations.format_trim(rows)
        assert "TRIM" in out


class TestA3LookupCost:
    @pytest.fixture(scope="class")
    def reports(self):
        return ablations.run_lookup_cost(n_keys=4000, model_size=200,
                                         poisoning_percentage=10.0)

    def test_three_structures(self, reports):
        assert len(reports) == 3

    def test_poisoning_hurts(self, reports):
        by_label = {r.structure: r for r in reports}
        assert (by_label["rmi (poisoned)"].mean_cost
                > by_label["rmi (clean)"].mean_cost)

    def test_format(self, reports):
        out = ablations.format_lookup_cost(reports)
        assert "probes per lookup" in out


class TestA4Alpha:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_alpha_sweep(
            n_keys=2000, model_size=200,
            alphas=(1.0, 3.0))

    def test_alpha_one_no_exchanges(self, rows):
        assert rows[0].alpha == 1.0
        assert rows[0].exchanges == 0

    def test_slack_never_hurts(self, rows):
        assert rows[-1].rmi_ratio >= rows[0].rmi_ratio * 0.95

    def test_format(self, rows):
        out = ablations.format_alpha(rows)
        assert "alpha" in out


class TestA5Allocation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_allocation_ablation(
            n_keys=2000, model_size=200)

    def test_two_distributions(self, rows):
        assert {r.distribution for r in rows} == {"uniform", "lognormal"}

    def test_greedy_at_least_uniform(self, rows):
        for r in rows:
            assert r.greedy_ratio >= r.uniform_ratio - 1e-9

    def test_format(self, rows):
        out = ablations.format_allocation(rows)
        assert "volume allocation" in out


class TestA6Deletion:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_deletion_ablation(
            n_keys=300, percentages=(10.0, 20.0))

    def test_both_adversaries_do_damage(self, rows):
        for r in rows:
            assert r.insertion_ratio > 1.0
            assert r.deletion_ratio > 1.0

    def test_damage_grows_with_budget(self, rows):
        assert rows[-1].deletion_ratio > rows[0].deletion_ratio

    def test_format(self, rows):
        out = ablations.format_deletion(rows)
        assert "deletion" in out


class TestA7Polynomial:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_polynomial_ablation(
            n_keys=400, degrees=(1, 3))

    def test_capacity_absorbs_loss(self, rows):
        assert rows[-1].poisoned_ratio < rows[0].poisoned_ratio

    def test_costs_reported(self, rows):
        assert rows[-1].n_parameters > rows[0].n_parameters

    def test_format(self, rows):
        out = ablations.format_polynomial(rows)
        assert "polynomial" in out


class TestA8Blackbox:
    @pytest.fixture(scope="class")
    def report(self):
        return ablations.run_blackbox_ablation(
            n_keys=1000, n_models=10)

    def test_full_recovery(self, report):
        assert report.models_recovered == report.n_models
        assert report.max_slope_error < 1e-9

    def test_attack_parity(self, report):
        assert report.blackbox_ratio == pytest.approx(
            report.whitebox_ratio)

    def test_format(self, report):
        out = ablations.format_blackbox(report)
        assert "black-box" in out


class TestA9Updates:
    @pytest.fixture(scope="class")
    def report(self):
        return ablations.run_update_ablation(
            n_keys=1000, n_models=10)

    def test_update_channel_matches_static(self, report):
        assert report.update_ratio == pytest.approx(
            report.static_ratio)

    def test_retrain_happened(self, report):
        assert report.retrains_triggered >= 1

    def test_lookup_cost_rose(self, report):
        assert report.poisoned_lookup_cost > report.clean_lookup_cost

    def test_format(self, report):
        out = ablations.format_update(report)
        assert "update channel" in out


class TestA10Ridge:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_ridge_ablation(
            n_keys=400, lam_fractions=(0.0, 0.1))

    def test_unregularised_baseline_hurts_most(self, rows):
        assert rows[0].poisoned_ratio > rows[1].poisoned_ratio

    def test_shrinkage_costs_clean_accuracy(self, rows):
        assert rows[1].clean_mse > rows[0].clean_mse

    def test_format(self, rows):
        out = ablations.format_ridge(rows)
        assert "ridge" in out


class TestA11Adversaries:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.run_adversary_comparison(
            n_keys=300, percentages=(10.0, 20.0))

    def test_all_adversaries_effective(self, rows):
        for r in rows:
            assert r.insertion_ratio > 1.0
            assert r.deletion_ratio > 1.0
            assert r.modification_ratio > 1.0

    def test_modification_competitive(self, rows):
        for r in rows:
            assert r.modification_ratio >= 0.8 * r.insertion_ratio

    def test_format(self, rows):
        out = ablations.format_adversaries(rows)
        assert "modify" in out


class TestEngineBackedA7toA10:
    """The single-shot ablations now ride the sweep engine too:
    plan builders, --out checkpointing, resume reuse, jobs parity."""

    def test_plan_builders_cover_the_grids(self):
        assert len(ablations.plan_polynomial_cells(degrees=(1, 3))) == 2
        assert len(ablations.plan_blackbox_cells()) == 1
        assert len(ablations.plan_update_cells()) == 1
        assert len(ablations.plan_ridge_cells(
            lam_fractions=(0.0, 0.1))) == 2

    def test_polynomial_checkpoint_resume(self, tmp_path):
        kwargs = dict(n_keys=300, degrees=(1, 2))
        first = ablations.run_polynomial_ablation(
            checkpoint_dir=tmp_path, **kwargs)
        cells = list((tmp_path / "cells").glob("a7-polynomial-*.json"))
        assert len(cells) == 2
        stamps = {p.name: p.stat().st_mtime_ns for p in cells}
        resumed = ablations.run_polynomial_ablation(
            checkpoint_dir=tmp_path, resume=True, **kwargs)
        assert resumed == first
        after = {p.name: p.stat().st_mtime_ns
                 for p in (tmp_path / "cells").glob(
                     "a7-polynomial-*.json")}
        assert after == stamps  # nothing recomputed

    def test_ridge_jobs_parity(self):
        kwargs = dict(n_keys=300, lam_fractions=(0.0, 0.1))
        serial = ablations.run_ridge_ablation(**kwargs)
        threaded = ablations.run_ridge_ablation(
            jobs=2, executor="thread", **kwargs)
        assert serial == threaded

    def test_update_checkpoint_resume(self, tmp_path):
        kwargs = dict(n_keys=500, n_models=5)
        first = ablations.run_update_ablation(
            checkpoint_dir=tmp_path, **kwargs)
        resumed = ablations.run_update_ablation(
            checkpoint_dir=tmp_path, resume=True, **kwargs)
        assert resumed == first

    def test_blackbox_checkpoint_resume(self, tmp_path):
        kwargs = dict(n_keys=500, n_models=5)
        first = ablations.run_blackbox_ablation(
            checkpoint_dir=tmp_path, **kwargs)
        resumed = ablations.run_blackbox_ablation(
            checkpoint_dir=tmp_path, resume=True, **kwargs)
        assert resumed == first
