"""The workload serving grid end to end: engine, CLI, artifacts."""

import json

import numpy as np
import pytest

from repro.experiments import workload_serving
from repro.experiments.__main__ import main
from repro.runtime import CheckpointStore

TINY = workload_serving.WorkloadConfig(
    query_mixes=("uniform",),
    poison_schedules=("drip",),
    backends=("binary", "rmi"),
    n_base_keys=300,
    n_ops=400,
    tick_ops=100)


class TestPlan:
    def test_one_cell_per_grid_point(self):
        cells = workload_serving.plan_cells(
            workload_serving.quick_config())
        assert len(cells) == 2 * 2 * 3  # mixes x schedules x backends
        assert len({c.digest for c in cells}) == len(cells)

    def test_cells_carry_scalars_only(self):
        for cell in workload_serving.plan_cells(TINY):
            for value in cell.params_dict.values():
                assert isinstance(value, (int, float, str, bool))

    def test_full_config_covers_everything(self):
        config = workload_serving.full_config()
        assert len(workload_serving.plan_cells(config)) == 3 * 3 * 5


class TestRun:
    @pytest.fixture(scope="class")
    def result(self):
        return workload_serving.run(TINY)

    def test_rows_align_with_plan(self, result):
        assert len(result.rows) == 2
        assert [r.backend for r in result.rows] == ["binary", "rmi"]

    def test_jobs_and_executor_parity(self, result):
        for jobs, executor in ((2, "thread"), (2, "process")):
            again = workload_serving.run(TINY, jobs=jobs,
                                         executor=executor)
            assert again.to_dict() == result.to_dict(), (jobs, executor)

    def test_format_mentions_the_grid(self, result):
        out = result.format()
        assert "uniform queries, drip poison" in out
        assert "binary" in out and "rmi" in out

    def test_resume_reuses_cells(self, result, tmp_path):
        first = workload_serving.run(TINY, checkpoint_dir=tmp_path)
        engine_run = workload_serving.run(TINY, checkpoint_dir=tmp_path,
                                          resume=True)
        assert engine_run.to_dict() == first.to_dict() == result.to_dict()
        store = CheckpointStore(tmp_path)
        plan = workload_serving.plan_cells(TINY)
        done = store.completed_outputs(plan)
        assert len(done) == len(plan)
        # Every checkpointed cell carries its time series.
        for _, arrays in done.values():
            assert sorted(arrays) == [
                "tick_amplification", "tick_error_bound",
                "tick_mean_probes", "tick_n_keys", "tick_p50",
                "tick_p95", "tick_p99", "tick_retrains"]
            assert arrays["tick_p50"].size == 4  # 400 ops / 100

    def test_progress_callback_ticks(self):
        events = []
        workload_serving.run(TINY, progress=events.append)
        assert len(events) == 2
        assert events[-1].done == events[-1].total == 2


class TestSpecRoundTrip:
    def test_cell_params_name_a_canonical_spec(self):
        (cell,) = workload_serving.plan_cells(
            workload_serving.WorkloadConfig(
                query_mixes=("zipfian",), poison_schedules=("burst",),
                backends=("dynamic",)))
        spec = workload_serving.spec_for(cell.params_dict)
        assert spec.query_mix == "zipfian"
        assert spec.poison_schedule == "burst"
        assert spec.digest  # canonical + hashable


class TestWorkloadCli:
    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory, class_tiny_config):
        out = tmp_path_factory.mktemp("workload-out")
        assert main(["workload", "--quick", "--jobs", "2",
                     "--executor", "thread", "--out", str(out)]) == 0
        return out

    @pytest.fixture(scope="class")
    def class_tiny_config(self):
        original = workload_serving.quick_config
        workload_serving.quick_config = lambda: TINY
        yield TINY
        workload_serving.quick_config = original

    def test_result_schema(self, out_dir, capsys):
        capsys.readouterr()
        payload = json.loads(
            (out_dir / "workload" / "result.json").read_text())
        assert payload["schema"] == "repro.experiments.result/v2"
        assert payload["target"] == "workload"
        assert payload["executor"] == "thread"
        cells = payload["result"]["cells"]
        assert len(cells) == 2
        for cell in cells:
            assert cell["p50"] <= cell["p95"] <= cell["p99"]

    def test_bench_workload_emitted(self, out_dir):
        bench = json.loads(
            (out_dir / "workload" / "BENCH_workload.json").read_text())
        assert bench["schema"] == "repro.bench.workload/v1"
        serving = bench["serving"]
        assert serving["cells"] == 2
        assert serving["wall_seconds"] > 0
        assert set(serving["backends"]) == {"binary", "rmi"}

    def test_artifact_manifest_round_trips(self, out_dir):
        from repro import io

        payload = json.loads(
            (out_dir / "workload" / "result.json").read_text())
        manifest = payload["artifacts"]
        assert len(manifest) == 2
        for entry in manifest:
            arrays = io.load_arrays(out_dir / "workload" / entry["file"])
            assert sorted(arrays) == entry["arrays"]
            assert arrays["tick_p99"].dtype == np.float64

    def test_resume_rewrites_nothing_and_matches(self, out_dir,
                                                 class_tiny_config,
                                                 capsys):
        cells_dir = out_dir / "workload" / "cells"
        before = {p.name: p.stat().st_mtime_ns
                  for p in cells_dir.iterdir()}
        assert main(["workload", "--jobs", "2", "--out", str(out_dir),
                     "--resume"]) == 0
        capsys.readouterr()
        after = {p.name: p.stat().st_mtime_ns
                 for p in cells_dir.iterdir()}
        assert after == before

    def test_quick_conflicts_with_full(self):
        with pytest.raises(SystemExit):
            main(["workload", "--quick", "--profile", "full"])
