"""The cluster grid end to end: engine, CLI, artifacts, and the
concentrated-vs-uniform placement acceptance regression (ISSUE 5)."""

import json
import math

import numpy as np
import pytest

from repro.experiments import cluster_serving
from repro.experiments.__main__ import main
from repro.runtime import CheckpointStore

TINY = cluster_serving.ClusterConfig(
    tenant_layouts=("skewed",),
    shard_counts=(4,),
    backends=("rmi",),
    adversaries=("uniform", "concentrated"),
    defenses=("static", "managed"),
    n_base_keys=400,
    n_ops=1_600,
    tick_ops=200)

CLUSTER_ARRAYS = [
    "shard_loads", "shard_n_keys", "shard_p95",
    "shard_split_points",
    "tenant_amplification", "tenant_p95",
    "tick_degraded", "tick_error_bound", "tick_flagged",
    "tick_imbalance", "tick_injected", "tick_latency_ms",
    "tick_mean_probes", "tick_migrated", "tick_n_keys",
    "tick_n_shards", "tick_p50", "tick_p95", "tick_p99",
    "tick_retrains"]


class TestPlan:
    def test_one_cell_per_grid_point(self):
        cells = cluster_serving.plan_cells(
            cluster_serving.quick_config())
        assert len(cells) == 1 * 1 * 2 * 2 * 2
        assert len({c.digest for c in cells}) == len(cells)

    def test_cells_carry_scalars_only(self):
        for cell in cluster_serving.plan_cells(TINY):
            for value in cell.params_dict.values():
                assert isinstance(value, (int, float, str, bool))

    def test_full_config_covers_everything(self):
        config = cluster_serving.full_config()
        assert len(cluster_serving.plan_cells(config)) \
            == 2 * 3 * 3 * 3 * 2


class TestRun:
    @pytest.fixture(scope="class")
    def result(self):
        return cluster_serving.run(TINY)

    def test_rows_align_with_plan(self, result):
        assert len(result.rows) == 4
        assert [(r.adversary, r.defense) for r in result.rows] == [
            ("uniform", "static"), ("uniform", "managed"),
            ("concentrated", "static"), ("concentrated", "managed")]

    def test_jobs_and_executor_parity(self, result):
        for jobs, executor in ((2, "thread"), (2, "process")):
            again = cluster_serving.run(TINY, jobs=jobs,
                                        executor=executor)
            assert again.to_dict() == result.to_dict(), (jobs,
                                                         executor)

    def test_format_includes_the_duel_summary(self, result):
        out = result.format()
        assert "cluster: skewed tenants, 4 shards" in out
        assert "duel: placement gap" in out
        assert "concentrated" in out

    def test_row_selector(self, result):
        row = result.row(adversary="concentrated", defense="managed")
        assert row.backend == "rmi"
        with pytest.raises(KeyError, match="expected 1"):
            result.row(adversary="concentrated")

    def test_resume_reuses_cells_with_all_series(self, result,
                                                 tmp_path):
        first = cluster_serving.run(TINY, checkpoint_dir=tmp_path)
        again = cluster_serving.run(TINY, checkpoint_dir=tmp_path,
                                    resume=True)
        assert again.to_dict() == first.to_dict() == result.to_dict()
        store = CheckpointStore(tmp_path)
        plan = cluster_serving.plan_cells(TINY)
        done = store.completed_outputs(plan)
        assert len(done) == len(plan)
        for _, arrays in done.values():
            assert sorted(arrays) == CLUSTER_ARRAYS
            assert arrays["shard_loads"].ndim == 2
            assert arrays["tenant_p95"].shape[1] == TINY.n_tenants


class TestAcceptance:
    """The committed cluster demonstration on the quick grid.

    Pinned on the deterministic calibrated scenario: the concentrated
    (cluster-aware, Algorithm 2 on the victim's sub-CDF) placement
    must measurably out-damage the uniform spread on the victim
    tenant at equal budget and pacing on both learned backends, and
    cluster management (rebalancing + SLO-weighted per-shard tuning)
    must recover at least half of that gap without taxing the
    uniform baseline.
    """

    GAP_MARGIN = 0.2

    @pytest.fixture(scope="class")
    def quick(self):
        return cluster_serving.run(cluster_serving.quick_config())

    def _rows(self, quick, backend):
        uniform = quick.row(backend=backend, adversary="uniform",
                            defense="static")
        static = quick.row(backend=backend, adversary="concentrated",
                           defense="static")
        managed = quick.row(backend=backend,
                            adversary="concentrated",
                            defense="managed")
        return uniform, static, managed

    @pytest.mark.parametrize("backend", ("rmi", "dynamic"))
    def test_concentrated_beats_uniform_on_victim_amplification(
            self, quick, backend):
        uniform, static, _ = self._rows(quick, backend)
        gap = (static.victim_amplification
               - uniform.victim_amplification)
        assert gap > self.GAP_MARGIN, (
            f"{backend}: concentrated "
            f"{static.victim_amplification:.3f} vs uniform "
            f"{uniform.victim_amplification:.3f}")

    @pytest.mark.parametrize("backend", ("rmi", "dynamic"))
    def test_concentrated_beats_uniform_on_victim_p95(self, quick,
                                                      backend):
        uniform, static, _ = self._rows(quick, backend)
        assert static.victim_p95 >= uniform.victim_p95 + 0.5, (
            f"{backend}: concentrated p95 {static.victim_p95} vs "
            f"uniform {uniform.victim_p95}")

    @pytest.mark.parametrize("backend", ("rmi", "dynamic"))
    def test_management_recovers_at_least_half_the_gap(self, quick,
                                                       backend):
        uniform, static, managed = self._rows(quick, backend)
        gap = (static.victim_amplification
               - uniform.victim_amplification)
        recovered = (static.victim_amplification
                     - managed.victim_amplification)
        assert recovered >= 0.5 * gap, (
            f"{backend}: gap {gap:.3f}, recovered {recovered:.3f}")

    @pytest.mark.parametrize("backend", ("rmi", "dynamic"))
    def test_management_does_not_tax_the_uniform_baseline(self, quick,
                                                          backend):
        fixed = quick.row(backend=backend, adversary="uniform",
                          defense="static")
        managed = quick.row(backend=backend, adversary="uniform",
                            defense="managed")
        assert abs(managed.victim_amplification
                   - fixed.victim_amplification) < 0.05

    @pytest.mark.parametrize("backend", ("rmi", "dynamic"))
    def test_management_clears_the_victims_slo(self, quick, backend):
        """The SLO story on record: the concentrated attack pushes
        the victim into violation; the managed cluster serves the
        same attack inside budget."""
        _, static, managed = self._rows(quick, backend)
        assert static.victim_slo_violations > 0.0
        assert managed.victim_slo_violations == 0.0

    def test_equal_budget_duel(self, quick):
        """Placement is the only attacker difference: the uniform arm
        spends the full budget, the concentrated arm at most that
        (Algorithm 2's 20% cap can clamp it — strictly conservative)."""
        for backend in ("rmi", "dynamic"):
            uniform, static, _ = self._rows(quick, backend)
            assert uniform.injected_poison >= static.injected_poison
            assert static.injected_poison > 0


class TestClusterCli:
    @pytest.fixture(scope="class")
    def class_tiny_config(self):
        original = cluster_serving.quick_config
        cluster_serving.quick_config = lambda: TINY
        yield TINY
        cluster_serving.quick_config = original

    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory, class_tiny_config):
        out = tmp_path_factory.mktemp("cluster-out")
        assert main(["cluster", "--quick", "--jobs", "2",
                     "--executor", "thread", "--out", str(out)]) == 0
        return out

    def test_result_schema(self, out_dir, capsys):
        capsys.readouterr()
        payload = json.loads(
            (out_dir / "cluster" / "result.json").read_text())
        assert payload["schema"] == "repro.experiments.result/v2"
        assert payload["target"] == "cluster"
        assert payload["executor"] == "thread"
        assert payload["result"]["victim_tenant"] == 0
        cells = payload["result"]["cells"]
        assert len(cells) == 4
        for cell in cells:
            assert cell["injected_poison"] > 0
            assert math.isfinite(float(cell["victim_amplification"]))

    def test_artifact_manifest_round_trips(self, out_dir):
        from repro import io

        payload = json.loads(
            (out_dir / "cluster" / "result.json").read_text())
        manifest = payload["artifacts"]
        assert len(manifest) == 4
        for entry in manifest:
            arrays = io.load_arrays(
                out_dir / "cluster" / entry["file"])
            assert sorted(arrays) == entry["arrays"] == CLUSTER_ARRAYS
            assert arrays["shard_p95"].dtype == np.float64
            assert arrays["shard_p95"].ndim == 2

    def test_resume_rewrites_nothing_and_matches(self, out_dir,
                                                 class_tiny_config,
                                                 capsys):
        cells_dir = out_dir / "cluster" / "cells"
        before = {p.name: p.stat().st_mtime_ns
                  for p in cells_dir.iterdir()}
        assert main(["cluster", "--jobs", "2", "--out",
                     str(out_dir), "--resume"]) == 0
        capsys.readouterr()
        after = {p.name: p.stat().st_mtime_ns
                 for p in cells_dir.iterdir()}
        assert after == before


MICRO = cluster_serving.ClusterConfig(
    tenant_layouts=("skewed",),
    shard_counts=(2,),
    backends=("rmi",),
    adversaries=("concentrated",),
    defenses=("static",),
    n_base_keys=400,
    n_ops=800,
    tick_ops=200)


class TestProcessTransportCells:
    def test_process_cells_match_inproc(self):
        """Grid parity: with injection off, running the cell grid over
        worker processes reproduces the in-process rows exactly."""
        from dataclasses import replace

        inproc = cluster_serving.run(MICRO)
        process = cluster_serving.run(
            replace(MICRO, transport="process", replicas=2))
        assert process.to_dict()["cells"] == inproc.to_dict()["cells"]
        assert process.to_dict()["transport"] == "process"
        assert process.to_dict()["replicas"] == 2


class TestReplicationDuel:
    """ISSUE 7 acceptance: with a poisoned replica injected, the
    divergence detector flags the correct replica and quorum reads
    keep the victim tenant's p95 inside the SLO band — while the
    naive primary-read arm (no detector) serves the poisoned model
    and violates it."""

    @pytest.fixture(scope="class")
    def duel(self):
        return cluster_serving.run_poisoned_replica_scenario()

    def test_detector_flags_exactly_the_poisoned_replica(self, duel):
        assert duel.quorum.flagged == ((duel.victim_shard, 0),)
        assert duel.primary.flagged == ()

    def test_quorum_holds_the_slo(self, duel):
        assert duel.quorum.victim_p95 <= duel.slo_p95
        assert duel.quorum.victim_slo_violations == 0.0

    def test_primary_arm_pays_for_trusting_one_replica(self, duel):
        assert duel.primary.victim_p95 > duel.quorum.victim_p95
        assert duel.primary.victim_slo_violations > 0.0
        assert (duel.primary.victim_amplification
                > duel.quorum.victim_amplification)

    def test_quarantine_is_recorded_as_degradation(self, duel):
        assert duel.quorum.degraded_ticks > 0
        assert duel.primary.degraded_ticks == 0  # nothing detected

    def test_report_round_trips_and_renders(self, duel):
        payload = json.loads(json.dumps(duel.to_dict()))
        assert payload["quorum"]["flagged"] == [
            [duel.victim_shard, 0]]
        assert payload["poison_budget"] > 0
        text = duel.format()
        assert "quorum + detector" in text
        assert f"s{duel.victim_shard}r0" in text

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            cluster_serving.run_poisoned_replica_scenario(
                backend="btree")


class TestTransportCliValidation:
    def test_replicas_require_process_transport(self, capsys):
        with pytest.raises(SystemExit):
            main(["cluster", "--replicas", "2"])
        assert "--transport process" in capsys.readouterr().err

    def test_replicas_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["cluster", "--transport", "process",
                  "--replicas", "0"])
        assert "--replicas" in capsys.readouterr().err
