"""Smoke + semantics tests for the per-figure experiment modules."""

import numpy as np
import pytest

from repro.experiments import (
    fig2_compound_effect,
    fig3_loss_landscape,
    fig4_greedy_showcase,
    fig6_rmi_synthetic,
    fig7_rmi_realworld,
    run_sweep,
)
from repro.experiments.regression_sweep import SweepConfig


class TestFig2:
    def test_runs_and_poisons(self):
        result = fig2_compound_effect.run()
        assert result.attack.loss_after > result.attack.loss_before
        assert result.keyset.n == 10

    def test_format_mentions_poison(self):
        out = fig2_compound_effect.run().format()
        assert "POISON" in out
        assert "MSE" in out

    def test_residual_arrays_align(self):
        result = fig2_compound_effect.run()
        assert result.residuals_before.size == 10
        assert result.residuals_after.size == 11


class TestFig3:
    def test_structural_claims_hold(self):
        result = fig3_loss_landscape.run()
        assert result.all_gaps_convex
        assert result.argmax_is_endpoint

    def test_landscape_covers_interior(self):
        result = fig3_loss_landscape.run()
        ks = result.keyset
        interior = int(ks.keys[-1] - ks.keys[0] + 1) - ks.n
        assert result.candidates.size == interior

    def test_format_reports_verdicts(self):
        out = fig3_loss_landscape.run().format()
        assert "every gap convex: True" in out


class TestFig4:
    def test_paper_shape(self):
        result = fig4_greedy_showcase.run()
        assert result.greedy.n_injected == 10
        # The paper reports 7.4x on its draw; any healthy run of this
        # setup lands well above 2x.
        assert result.greedy.ratio_loss > 2.0

    def test_clustering_statistic(self):
        result = fig4_greedy_showcase.run()
        assert 0.0 <= result.poison_span_fraction < 0.5

    def test_format_contains_trajectory(self):
        out = fig4_greedy_showcase.run().format()
        assert "ratio so far" in out


class TestSweep:
    @pytest.fixture(scope="class")
    def small_sweep(self):
        config = SweepConfig(
            distribution="uniform",
            key_counts=(100,),
            densities=(0.1, 0.8),
            poisoning_percentages=(5.0, 14.0),
            n_trials=5)
        return run_sweep(config)

    def test_cell_grid_shape(self, small_sweep):
        assert len(small_sweep.cells) == 2

    def test_ratio_grows_with_percentage(self, small_sweep):
        for cell in small_sweep.cells:
            if cell.density > 0.5:
                continue  # saturation regime, monotonicity not promised
            assert (cell.summaries[14.0].median
                    > cell.summaries[5.0].median)

    def test_ratios_at_least_one(self, small_sweep):
        for cell in small_sweep.cells:
            for summary in cell.summaries.values():
                assert summary.minimum >= 1.0 - 1e-9

    def test_format_contains_all_cells(self, small_sweep):
        out = small_sweep.format()
        assert out.count("Keys: 100") == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SweepConfig(distribution="zipf", key_counts=(10,),
                        densities=(0.5,), poisoning_percentages=(5.0,))
        with pytest.raises(ValueError):
            SweepConfig(distribution="uniform", key_counts=(10,),
                        densities=(1.5,), poisoning_percentages=(5.0,))

    def test_normal_distribution_runs(self):
        config = SweepConfig(
            distribution="normal",
            key_counts=(100,),
            densities=(0.4,),
            poisoning_percentages=(10.0,),
            n_trials=3)
        result = run_sweep(config)
        assert result.cells[0].summaries[10.0].median >= 1.0


class TestFig6:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        config = fig6_rmi_synthetic.Fig6Config(
            n_keys=2000,
            model_sizes=(100, 500),
            domain_multipliers=(100,),
            distributions=("uniform", "lognormal"),
            poisoning_percentages=(5.0, 10.0),
            alphas=(3.0,),
            max_exchanges_per_model=1)
        return fig6_rmi_synthetic.run(config)

    def test_cell_count(self, tiny_result):
        # 2 distributions x 1 domain x 2 sizes x 2 pcts x 1 alpha
        assert len(tiny_result.cells) == 8

    def test_more_poison_more_damage(self, tiny_result):
        for dist in ("uniform", "lognormal"):
            for size in (100, 500):
                cells = {c.poisoning_percentage: c
                         for c in tiny_result.cells
                         if c.distribution == dist
                         and c.model_size == size}
                assert cells[10.0].rmi_ratio >= cells[5.0].rmi_ratio * 0.9

    def test_larger_models_larger_ratio_uniform(self, tiny_result):
        """Fig. 6 row trend at fixed 10% poisoning."""
        uniform = {c.model_size: c for c in tiny_result.cells
                   if c.distribution == "uniform"
                   and c.poisoning_percentage == 10.0}
        assert uniform[500].rmi_ratio > uniform[100].rmi_ratio

    def test_format_has_block_per_group(self, tiny_result):
        out = tiny_result.format()
        assert out.count("Model Size: 100") == 2  # one per distribution


class TestFig7:
    @pytest.fixture(scope="class")
    def salary_result(self):
        config = fig7_rmi_realworld.Fig7Config(
            osm_keys=0,
            model_sizes=(100,),
            poisoning_percentages=(5.0, 20.0),
            include_osm=False)
        return fig7_rmi_realworld.run(config)

    def test_salary_cells(self, salary_result):
        assert len(salary_result.cells) == 2
        assert all(c.dataset == "miami-salaries"
                   for c in salary_result.cells)
        assert all(c.n_keys == 5300 for c in salary_result.cells)

    def test_percentage_trend(self, salary_result):
        by_pct = {c.poisoning_percentage: c for c in salary_result.cells}
        assert by_pct[20.0].rmi_ratio > by_pct[5.0].rmi_ratio

    def test_paper_band(self, salary_result):
        """Paper reports RMI ratios 4x-24x over these configs."""
        ratio = max(c.rmi_ratio for c in salary_result.cells)
        assert 1.5 < ratio < 200.0

    def test_format_contains_dataset(self, salary_result):
        assert "miami-salaries" in salary_result.format()


class TestFig7Profiles:
    def test_profile_matches_dataset(self, rng):
        import numpy as np
        from repro.data import miami_salaries
        from repro.experiments.fig7_rmi_realworld import profile_dataset
        salaries = miami_salaries(rng, n=800)
        profile = profile_dataset("miami-salaries", salaries)
        assert profile.n_keys == 800
        assert profile.density == pytest.approx(salaries.density)
        p10, p25, p50, p75, p90 = profile.percentile_keys
        assert p10 < p25 < p50 < p75 < p90
        assert p50 == int(np.percentile(salaries.keys, 50))

    def test_profiles_render_in_format(self):
        from repro.experiments import fig7_rmi_realworld as f7
        config = f7.Fig7Config(osm_keys=0, model_sizes=(100,),
                               poisoning_percentages=(5.0,),
                               include_osm=False)
        result = f7.run(config)
        out = result.format()
        assert "CDF profiles" in out
        assert "p50" in out
