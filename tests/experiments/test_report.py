"""Unit tests for the plain-text reporting helpers."""

from repro.core import summarize
from repro.experiments import ascii_boxplot, format_ratio, render_table, section


class TestSection:
    def test_contains_title(self):
        out = section("Hello")
        assert "Hello" in out
        assert out.count("=") >= 2


class TestFormatRatio:
    def test_small_values_one_decimal(self):
        assert format_ratio(7.43) == "7.4x"

    def test_large_values_no_decimals(self):
        assert format_ratio(312.7) == "313x"

    def test_infinity(self):
        assert format_ratio(float("inf")) == "inf"

    def test_nan(self):
        assert format_ratio(float("nan")) == "nan"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bee"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        # All rows align the second column at the same offset.
        offsets = {line.index(c) for line, c in
                   zip(lines[2:], ["2", "4"])}
        assert len(offsets) == 1

    def test_header_separator(self):
        out = render_table(["x"], [[1]])
        assert "-" in out.splitlines()[1]

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert out.splitlines()[0].strip() == "col"


class TestAsciiBoxplot:
    def test_markers_present(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        plot = ascii_boxplot(s, 0.0, 6.0, width=30)
        assert len(plot) == 30
        assert "M" in plot
        assert "[" in plot and "]" in plot

    def test_degenerate_range(self):
        s = summarize([2.0, 2.0])
        plot = ascii_boxplot(s, 2.0, 2.0, width=10)
        assert len(plot) == 10

    def test_median_between_quartiles(self):
        s = summarize([1.0, 2.0, 3.0, 8.0, 20.0])
        plot = ascii_boxplot(s, 0.0, 21.0, width=40)
        assert plot.index("[") <= plot.index("M") <= plot.index("]")
