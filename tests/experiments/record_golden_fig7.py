"""Record the fig7 golden grid from a plain serial reference loop.

Run once (and only re-run deliberately, when the attack or dataset
code intentionally changes)::

    PYTHONPATH=src python tests/experiments/record_golden_fig7.py

The loop below is the pre-runtime serial shape — direct nested
iteration calling :func:`poison_rmi`, no ``SweepEngine``, no
checkpointing — with fig7's CRC-32 per-dataset seeding applied.  The
determinism tests assert the engine-backed port reproduces this file
at every jobs/executor combination, which pins three things at once:
the seeding scheme, the cell decomposition, and the plan-order
aggregation.

The grid is a scaled-down fig7 (small keysets, two model sizes) so the
pyramid stays fast; the quick/full profiles share every code path
with it.
"""

import dataclasses
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.metrics import summarize
from repro.core.rmi_attack import poison_rmi
from repro.core.threat_model import RMIAttackerCapability
from repro.data.realworld import miami_salaries, osm_school_latitudes
from repro.io import json_float
from repro.runtime import stable_seed_words

GOLDEN_PATH = Path(__file__).parent / "golden_fig7_grid.json"

#: Mirrors GOLDEN_CONFIG in test_determinism.py (asserted to match).
CONFIG = {
    "salary_keys": 700,
    "osm_keys": 1000,
    "model_sizes": [50, 100],
    "poisoning_percentages": [5.0, 15.0],
    "alpha": 3.0,
    "max_exchanges_per_model": 1,
    "seed": 31,
}


def reference_keyset(dataset: str, n_keys: int, seed: int):
    """Fig7's per-dataset stream, spelled out independently."""
    rng = np.random.default_rng(stable_seed_words(seed, n_keys, dataset))
    if dataset == "miami-salaries":
        return miami_salaries(rng, n=n_keys)
    return osm_school_latitudes(rng, n=n_keys)


def main() -> int:
    cells = []
    datasets = [("miami-salaries", CONFIG["salary_keys"]),
                ("osm-latitudes", CONFIG["osm_keys"])]
    for dataset, n_keys in datasets:
        for model_size in CONFIG["model_sizes"]:
            keyset = reference_keyset(dataset, n_keys, CONFIG["seed"])
            n_models = max(n_keys // model_size, 1)
            for pct in CONFIG["poisoning_percentages"]:
                capability = RMIAttackerCapability(
                    poisoning_percentage=pct, alpha=CONFIG["alpha"])
                result = poison_rmi(
                    keyset, n_models, capability,
                    max_exchanges=(CONFIG["max_exchanges_per_model"]
                                   * n_models))
                ratios = result.per_model_ratios
                finite = ratios[np.isfinite(ratios)]
                cells.append({
                    "dataset": dataset,
                    "n_keys": n_keys,
                    "model_size": model_size,
                    "n_models": n_models,
                    "poisoning_percentage": pct,
                    "n_poison_keys": int(result.poison_keys.size),
                    "per_model": dataclasses.asdict(summarize(finite)),
                    "rmi_ratio": json_float(result.rmi_ratio_loss),
                })
    GOLDEN_PATH.write_text(json.dumps(
        {"config": CONFIG, "cells": cells}, indent=2, sort_keys=True)
        + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(cells)} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
