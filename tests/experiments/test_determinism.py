"""Determinism regressions for the engine-backed sweeps.

Two guarantees are pinned here:

1. **Parallelism is invisible** — the same config and seed produce
   identical aggregated results at ``jobs=1`` and ``jobs=4``, with and
   without checkpoint/resume.
2. **The engine reproduces the legacy serial path** — a golden grid
   recorded from the pre-runtime ``run_sweep`` loop (same machine,
   same numpy) is matched value for value.  The golden file lives in
   ``tests/experiments/golden_fig5_grid.json``; tolerances are tight
   relative bounds rather than bit-equality only to survive BLAS/
   platform variation on other hosts.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.experiments import fig6_rmi_synthetic
from repro.experiments.regression_sweep import SweepConfig, run_sweep

GOLDEN_PATH = Path(__file__).parent / "golden_fig5_grid.json"

SMALL_CONFIG = SweepConfig(
    distribution="uniform",
    key_counts=(60, 120),
    densities=(0.15, 0.6),
    poisoning_percentages=(4.0, 9.0, 13.0),
    n_trials=4,
    seed=7)


def summaries_of(result):
    return [
        {f"{pct:g}": dataclasses.asdict(cell.summaries[pct])
         for pct in result.config.poisoning_percentages}
        for cell in result.cells
    ]


class TestJobsParity:
    def test_jobs_1_and_4_identical(self):
        serial = run_sweep(SMALL_CONFIG, jobs=1)
        parallel = run_sweep(SMALL_CONFIG, jobs=4)
        assert summaries_of(serial) == summaries_of(parallel)

    def test_checkpointed_resume_identical(self, tmp_path):
        serial = run_sweep(SMALL_CONFIG, jobs=1)
        first = run_sweep(SMALL_CONFIG, jobs=4, checkpoint_dir=tmp_path)
        resumed = run_sweep(SMALL_CONFIG, jobs=2, checkpoint_dir=tmp_path,
                            resume=True)
        assert summaries_of(first) == summaries_of(serial)
        assert summaries_of(resumed) == summaries_of(serial)

    def test_fig6_jobs_parity(self):
        config = fig6_rmi_synthetic.Fig6Config(
            n_keys=1000,
            model_sizes=(100,),
            domain_multipliers=(100,),
            distributions=("uniform",),
            poisoning_percentages=(5.0, 10.0),
            alphas=(3.0,),
            max_exchanges_per_model=1)
        serial = fig6_rmi_synthetic.run(config, jobs=1)
        parallel = fig6_rmi_synthetic.run(config, jobs=3)
        assert serial.cells == parallel.cells


class TestGoldenGrid:
    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_config_matches_recorded_grid(self, golden):
        g = golden["config"]
        assert g["distribution"] == SMALL_CONFIG.distribution
        assert tuple(g["key_counts"]) == SMALL_CONFIG.key_counts
        assert tuple(g["densities"]) == SMALL_CONFIG.densities
        assert (tuple(g["poisoning_percentages"])
                == SMALL_CONFIG.poisoning_percentages)
        assert g["n_trials"] == SMALL_CONFIG.n_trials
        assert g["seed"] == SMALL_CONFIG.seed

    def test_engine_reproduces_legacy_serial_output(self, golden):
        result = run_sweep(SMALL_CONFIG, jobs=1)
        assert len(result.cells) == len(golden["cells"])
        for got, want in zip(result.cells, golden["cells"]):
            assert got.n_keys == want["n_keys"]
            assert got.density == want["density"]
            assert got.domain_size == want["domain_size"]
            for pct in SMALL_CONFIG.poisoning_percentages:
                got_summary = dataclasses.asdict(got.summaries[pct])
                want_summary = want["summaries"][f"{pct:g}"]
                assert got_summary.keys() == want_summary.keys()
                for field, want_value in want_summary.items():
                    assert got_summary[field] == pytest.approx(
                        want_value, rel=1e-9), (
                        f"{field} drifted in cell n={got.n_keys} "
                        f"density={got.density} pct={pct}")

    def test_parallel_also_reproduces_golden(self, golden):
        result = run_sweep(SMALL_CONFIG, jobs=4)
        for got, want in zip(result.cells, golden["cells"]):
            for pct in SMALL_CONFIG.poisoning_percentages:
                got_summary = dataclasses.asdict(got.summaries[pct])
                for field, want_value in (
                        want["summaries"][f"{pct:g}"].items()):
                    assert got_summary[field] == pytest.approx(
                        want_value, rel=1e-9)
