"""Determinism regressions for the engine-backed sweeps.

Three guarantees are pinned here:

1. **Parallelism is invisible** — the same config and seed produce
   identical aggregated results at ``jobs=1`` and ``jobs=4``, for both
   the process and the thread executor, with and without
   checkpoint/resume.
2. **The engine reproduces the serial reference path** — golden grids
   recorded from plain serial loops (same machine, same numpy) are
   matched value for value.  The golden files live in
   ``tests/experiments/golden_fig5_grid.json`` and
   ``golden_fig7_grid.json`` (recorder:
   ``record_golden_fig7.py``); tolerances are tight relative bounds
   rather than bit-equality only to survive BLAS/platform variation
   on other hosts.
3. **Seeding is process-stable** — fig7's per-dataset streams derive
   from CRC-32 of the dataset name (never the salted builtin
   ``hash``), pinned by checksums of the generated keysets and of the
   cell digests.
"""

import dataclasses
import json
import zlib
from pathlib import Path

import pytest

from repro.experiments import fig6_rmi_synthetic, fig7_rmi_realworld
from repro.experiments.regression_sweep import SweepConfig, run_sweep

GOLDEN_PATH = Path(__file__).parent / "golden_fig5_grid.json"
GOLDEN_FIG7_PATH = Path(__file__).parent / "golden_fig7_grid.json"

SMALL_CONFIG = SweepConfig(
    distribution="uniform",
    key_counts=(60, 120),
    densities=(0.15, 0.6),
    poisoning_percentages=(4.0, 9.0, 13.0),
    n_trials=4,
    seed=7)


def summaries_of(result):
    return [
        {f"{pct:g}": dataclasses.asdict(cell.summaries[pct])
         for pct in result.config.poisoning_percentages}
        for cell in result.cells
    ]


class TestJobsParity:
    def test_jobs_1_and_4_identical(self):
        serial = run_sweep(SMALL_CONFIG, jobs=1)
        parallel = run_sweep(SMALL_CONFIG, jobs=4)
        assert summaries_of(serial) == summaries_of(parallel)

    def test_checkpointed_resume_identical(self, tmp_path):
        serial = run_sweep(SMALL_CONFIG, jobs=1)
        first = run_sweep(SMALL_CONFIG, jobs=4, checkpoint_dir=tmp_path)
        resumed = run_sweep(SMALL_CONFIG, jobs=2, checkpoint_dir=tmp_path,
                            resume=True)
        assert summaries_of(first) == summaries_of(serial)
        assert summaries_of(resumed) == summaries_of(serial)

    def test_fig6_jobs_parity(self):
        config = fig6_rmi_synthetic.Fig6Config(
            n_keys=1000,
            model_sizes=(100,),
            domain_multipliers=(100,),
            distributions=("uniform",),
            poisoning_percentages=(5.0, 10.0),
            alphas=(3.0,),
            max_exchanges_per_model=1)
        serial = fig6_rmi_synthetic.run(config, jobs=1)
        parallel = fig6_rmi_synthetic.run(config, jobs=3)
        assert serial.cells == parallel.cells


class TestGoldenGrid:
    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_config_matches_recorded_grid(self, golden):
        g = golden["config"]
        assert g["distribution"] == SMALL_CONFIG.distribution
        assert tuple(g["key_counts"]) == SMALL_CONFIG.key_counts
        assert tuple(g["densities"]) == SMALL_CONFIG.densities
        assert (tuple(g["poisoning_percentages"])
                == SMALL_CONFIG.poisoning_percentages)
        assert g["n_trials"] == SMALL_CONFIG.n_trials
        assert g["seed"] == SMALL_CONFIG.seed

    def test_engine_reproduces_legacy_serial_output(self, golden):
        result = run_sweep(SMALL_CONFIG, jobs=1)
        assert len(result.cells) == len(golden["cells"])
        for got, want in zip(result.cells, golden["cells"]):
            assert got.n_keys == want["n_keys"]
            assert got.density == want["density"]
            assert got.domain_size == want["domain_size"]
            for pct in SMALL_CONFIG.poisoning_percentages:
                got_summary = dataclasses.asdict(got.summaries[pct])
                want_summary = want["summaries"][f"{pct:g}"]
                assert got_summary.keys() == want_summary.keys()
                for field, want_value in want_summary.items():
                    assert got_summary[field] == pytest.approx(
                        want_value, rel=1e-9), (
                        f"{field} drifted in cell n={got.n_keys} "
                        f"density={got.density} pct={pct}")

    def test_parallel_also_reproduces_golden(self, golden):
        result = run_sweep(SMALL_CONFIG, jobs=4)
        for got, want in zip(result.cells, golden["cells"]):
            for pct in SMALL_CONFIG.poisoning_percentages:
                got_summary = dataclasses.asdict(got.summaries[pct])
                for field, want_value in (
                        want["summaries"][f"{pct:g}"].items()):
                    assert got_summary[field] == pytest.approx(
                        want_value, rel=1e-9)


# Mirrors CONFIG in record_golden_fig7.py (asserted below).
FIG7_GOLDEN_CONFIG = fig7_rmi_realworld.Fig7Config(
    osm_keys=1000,
    salary_keys=700,
    model_sizes=(50, 100),
    poisoning_percentages=(5.0, 15.0),
    alpha=3.0,
    max_exchanges_per_model=1,
    seed=31)


def fig7_cell_dicts(result):
    """A fig7 run as plain comparable dicts (golden-file shape)."""
    return [
        {
            "dataset": cell.dataset,
            "n_keys": cell.n_keys,
            "model_size": cell.model_size,
            "n_models": cell.n_models,
            "poisoning_percentage": cell.poisoning_percentage,
            "per_model": dataclasses.asdict(cell.per_model),
            "rmi_ratio": cell.rmi_ratio,
        }
        for cell in result.cells
    ]


class TestFig7GoldenGrid:
    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_FIG7_PATH.read_text())

    @pytest.fixture(scope="class")
    def serial(self):
        return fig7_rmi_realworld.run(FIG7_GOLDEN_CONFIG, jobs=1)

    def test_config_matches_recorded_grid(self, golden):
        g = golden["config"]
        c = FIG7_GOLDEN_CONFIG
        assert g["salary_keys"] == c.salary_keys
        assert g["osm_keys"] == c.osm_keys
        assert tuple(g["model_sizes"]) == c.model_sizes
        assert (tuple(g["poisoning_percentages"])
                == c.poisoning_percentages)
        assert g["alpha"] == c.alpha
        assert (g["max_exchanges_per_model"]
                == c.max_exchanges_per_model)
        assert g["seed"] == c.seed

    def assert_matches_golden(self, result, golden):
        got_cells = fig7_cell_dicts(result)
        assert len(got_cells) == len(golden["cells"])
        for got, want in zip(got_cells, golden["cells"]):
            for key in ("dataset", "n_keys", "model_size", "n_models",
                        "poisoning_percentage"):
                assert got[key] == want[key]
            assert got["rmi_ratio"] == pytest.approx(
                want["rmi_ratio"], rel=1e-9)
            assert got["per_model"].keys() == want["per_model"].keys()
            for field, want_value in want["per_model"].items():
                assert got[
                    "per_model"][field] == pytest.approx(
                    want_value, rel=1e-9), (
                    f"{field} drifted in cell {got['dataset']} "
                    f"size={got['model_size']} "
                    f"pct={got['poisoning_percentage']}")

    def test_serial_reproduces_reference_loop(self, serial, golden):
        self.assert_matches_golden(serial, golden)

    def test_jobs4_process_bit_identical_to_serial(self, serial,
                                                   golden):
        parallel = fig7_rmi_realworld.run(FIG7_GOLDEN_CONFIG, jobs=4,
                                          executor="process")
        assert parallel.cells == serial.cells  # bit-identical
        self.assert_matches_golden(parallel, golden)

    def test_jobs4_thread_bit_identical_to_serial(self, serial, golden):
        threaded = fig7_rmi_realworld.run(FIG7_GOLDEN_CONFIG, jobs=4,
                                          executor="thread")
        assert threaded.cells == serial.cells  # bit-identical
        self.assert_matches_golden(threaded, golden)

    def test_checkpointed_resume_with_artifacts(self, serial, tmp_path):
        """Resume reloads fig7 cells *and their .npz artifacts* and
        still aggregates bit-identically, for both executors."""
        first = fig7_rmi_realworld.run(
            FIG7_GOLDEN_CONFIG, jobs=2, checkpoint_dir=tmp_path,
            executor="thread")
        assert first.cells == serial.cells
        for executor in ("process", "thread"):
            resumed = fig7_rmi_realworld.run(
                FIG7_GOLDEN_CONFIG, jobs=3, checkpoint_dir=tmp_path,
                resume=True, executor=executor)
            assert resumed.cells == serial.cells
        # Every cell persisted its poison set + ratio vector.
        from repro.runtime import CheckpointStore
        store = CheckpointStore(tmp_path)
        for cell in fig7_rmi_realworld.plan_cells(FIG7_GOLDEN_CONFIG):
            arrays = store.load_arrays(cell)
            assert set(arrays) == {"poison_keys", "per_model_ratios"}


class TestFig7SeedingRegression:
    """Fig7's streams must be stable across interpreters (CRC-32).

    The checksums pin the exact keysets the fig7 cells draw; a change
    to the seed derivation (e.g. a reintroduced salted ``hash``) or an
    accidental reordering of dataset generation breaks them loudly.
    Recorded with numpy's stability-guaranteed Generator streams.
    """

    def checksum(self, dataset, n_keys, seed=31):
        keyset = fig7_rmi_realworld._make_keyset(dataset, n_keys, seed)
        return zlib.crc32(keyset.keys.tobytes())

    def test_miami_stream_pinned(self):
        assert self.checksum("miami-salaries", 700) == 2155469089

    def test_osm_stream_pinned(self):
        assert self.checksum("osm-latitudes", 1000) == 2630694741

    def test_streams_independent_of_generation_order(self):
        """Unlike the legacy path, the OSM draw no longer depends on
        the salary draw having happened first."""
        osm_alone = self.checksum("osm-latitudes", 1000)
        self.checksum("miami-salaries", 700)
        assert self.checksum("osm-latitudes", 1000) == osm_alone

    def test_cell_digest_pinned(self):
        """Content-addressing regression: checkpoint file names (and
        so resume compatibility) depend on this digest."""
        (first, *_) = fig7_rmi_realworld.plan_cells(FIG7_GOLDEN_CONFIG)
        assert first.experiment == "fig7-rmi"
        assert first.digest == "948cb67b2d9e65d8"
