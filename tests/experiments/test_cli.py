"""Tests for the ``python -m repro.experiments`` entry point."""

import json

import numpy as np
import pytest

from repro.experiments.__main__ import RESULT_SCHEMA, _TARGETS, main


class TestTargetRegistry:
    def test_every_figure_present(self):
        for name in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                     "fig8", "workload"):
            assert name in _TARGETS

    def test_every_ablation_present(self):
        expected = {"a1-bruteforce", "a2-trim", "a3-cost", "a4-alpha",
                    "a5-allocation", "a6-deletion", "a7-polynomial",
                    "a8-blackbox", "a9-updates", "a10-ridge",
                    "a11-adversaries"}
        assert expected <= set(_TARGETS)


class TestMain:
    def test_runs_cheap_target(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "compound effect" in out

    def test_runs_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "convex" in capsys.readouterr().out

    def test_profile_flag_accepted(self, capsys):
        assert main(["fig4", "--profile", "quick"]) == 0
        assert "greedy" in capsys.readouterr().out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--profile", "huge"])

    def test_invalid_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--jobs", "0"])

    def test_resume_requires_out(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--resume"])

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--executor", "fiber"])


def _validate_summary_schema(payload: dict) -> None:
    """The contract external plotting tools rely on (result/v2)."""
    assert payload["schema"] == RESULT_SCHEMA
    assert isinstance(payload["target"], str)
    assert payload["profile"] in ("quick", "full")
    assert isinstance(payload["jobs"], int) and payload["jobs"] >= 1
    assert payload["executor"] in ("process", "thread")
    assert isinstance(payload["result"], dict)
    assert isinstance(payload["artifacts"], list)
    for entry in payload["artifacts"]:
        assert set(entry) == {"file", "arrays"}
        assert entry["file"].endswith(".npz")
        assert all(isinstance(name, str) for name in entry["arrays"])


class TestCliSmoke:
    """End-to-end: fig5 quick through the parallel runtime."""

    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("cli-out")
        assert main(["fig5", "--profile", "quick", "--jobs", "2",
                     "--out", str(out)]) == 0
        return out

    def test_prints_paper_tables(self, out_dir, capsys):
        # Output was printed during the fixture run of main(); re-run a
        # cheap serial equivalent to assert on stdout shape instead.
        assert main(["fig5", "--profile", "quick", "--jobs", "2",
                     "--out", str(out_dir), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "[uniform] Keys: 100" in out
        assert "poison%" in out

    def test_result_json_schema(self, out_dir):
        payload = json.loads((out_dir / "fig5" / "result.json").read_text())
        _validate_summary_schema(payload)
        assert payload["target"] == "fig5"
        result = payload["result"]
        assert result["distribution"] == "uniform"
        assert len(result["cells"]) == 6  # 2 key counts x 3 densities
        for cell in result["cells"]:
            assert set(cell) == {"n_keys", "density", "domain_size",
                                 "summaries"}
            for summary in cell["summaries"].values():
                assert set(summary) == {"minimum", "q1", "median", "q3",
                                        "maximum", "mean", "count"}
                assert summary["count"] == result["n_trials"]
                assert summary["minimum"] <= summary["median"]
                assert summary["median"] <= summary["maximum"]

    def test_checkpoints_and_manifest_emitted(self, out_dir):
        cells_dir = out_dir / "fig5" / "cells"
        # 2 key counts x 3 densities x 20 trials
        assert len(list(cells_dir.glob("*.json"))) == 120
        manifest = json.loads(
            (out_dir / "fig5" / "manifest.json").read_text())
        assert manifest["experiment"] == "regression-sweep/uniform"

    def test_resume_reuses_cells(self, out_dir, capsys):
        """A second invocation with --resume recomputes nothing and
        reproduces the identical table."""
        assert main(["fig5", "--profile", "quick", "--jobs", "2",
                     "--out", str(out_dir)]) == 0
        fresh = capsys.readouterr().out
        before = {p.name: p.stat().st_mtime_ns
                  for p in (out_dir / "fig5" / "cells").glob("*.json")}
        assert main(["fig5", "--profile", "quick", "--jobs", "2",
                     "--out", str(out_dir), "--resume"]) == 0
        resumed = capsys.readouterr().out
        after = {p.name: p.stat().st_mtime_ns
                 for p in (out_dir / "fig5" / "cells").glob("*.json")}
        assert resumed == fresh
        assert after == before  # no cell file rewritten

    def test_ablation_target_with_out(self, tmp_path, capsys):
        assert main(["a6-deletion", "--jobs", "2",
                     "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        payload = json.loads(
            (tmp_path / "a6-deletion" / "result.json").read_text())
        _validate_summary_schema(payload)
        assert len(payload["result"]["rows"]) == 3

    def test_engine_backed_a7_emits_payload(self, tmp_path, capsys):
        """a7-a10 joined the engine-backed targets (ROADMAP leftover):
        --out must produce a result.json like any sweep target."""
        assert main(["a7-polynomial", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        payload = json.loads(
            (tmp_path / "a7-polynomial" / "result.json").read_text())
        _validate_summary_schema(payload)
        assert len(payload["result"]["rows"]) == 4  # default degrees
        cells = tmp_path / "a7-polynomial" / "cells"
        assert len(list(cells.glob("*.json"))) == 4

    def test_thread_executor_matches_process(self, out_dir, tmp_path,
                                             capsys):
        """fig5 quick through threads reproduces the process-pool
        result summary value for value."""
        assert main(["fig5", "--profile", "quick", "--jobs", "2",
                     "--executor", "thread",
                     "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        thread = json.loads(
            (tmp_path / "fig5" / "result.json").read_text())
        process = json.loads(
            (out_dir / "fig5" / "result.json").read_text())
        _validate_summary_schema(thread)
        assert thread["executor"] == "thread"
        assert thread["result"] == process["result"]


class TestFig7Cli:
    """fig7 end to end through the CLI, on a tiny grid.

    The quick profile (30k OSM keys) is CI-smoke material; here the
    config is shrunk so the full artifact story — capture, manifest,
    resume, round-trip — runs inside the tier-1 budget.
    """

    TINY = dict(osm_keys=400, salary_keys=300, model_sizes=(50,),
                poisoning_percentages=(5.0, 10.0),
                max_exchanges_per_model=1)

    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory):
        from repro.experiments import fig7_rmi_realworld

        config = fig7_rmi_realworld.Fig7Config(**self.TINY)
        original = fig7_rmi_realworld.quick_config
        fig7_rmi_realworld.quick_config = lambda: config
        try:
            out = tmp_path_factory.mktemp("fig7-out")
            assert main(["fig7", "--jobs", "2", "--executor", "thread",
                         "--out", str(out)]) == 0
            assert main(["fig7", "--jobs", "2", "--out", str(out),
                         "--resume"]) == 0
            yield out
        finally:
            fig7_rmi_realworld.quick_config = original

    def test_result_schema_and_cells(self, out_dir):
        payload = json.loads(
            (out_dir / "fig7" / "result.json").read_text())
        _validate_summary_schema(payload)
        assert payload["target"] == "fig7"
        cells = payload["result"]["cells"]
        assert len(cells) == 4  # 2 datasets x 1 size x 2 pcts
        assert {c["dataset"] for c in cells} == {"miami-salaries",
                                                 "osm-latitudes"}
        assert len(payload["result"]["profiles"]) == 2

    def test_artifact_manifest_round_trips(self, out_dir):
        """Every manifest entry loads via io.load_arrays and carries
        the promised arrays — the acceptance criterion."""
        from repro import io

        payload = json.loads(
            (out_dir / "fig7" / "result.json").read_text())
        manifest = payload["artifacts"]
        assert len(manifest) == 4  # one .npz per cell
        for entry in manifest:
            arrays = io.load_arrays(out_dir / "fig7" / entry["file"])
            assert sorted(arrays) == entry["arrays"]
            assert entry["arrays"] == ["per_model_ratios",
                                       "poison_keys"]
            assert arrays["poison_keys"].dtype == np.int64
            assert arrays["poison_keys"].size > 0

    def test_manifest_scoped_to_current_run(self, out_dir, capsys):
        """A different grid sharing the checkpoint dir must not leak
        its (content-addressed, intentionally retained) artifacts
        into this run's manifest."""
        from repro.experiments import fig7_rmi_realworld

        other = fig7_rmi_realworld.Fig7Config(
            **{**self.TINY, "osm_keys": 500})
        original = fig7_rmi_realworld.quick_config
        fig7_rmi_realworld.quick_config = lambda: other
        try:
            assert main(["fig7", "--jobs", "2",
                         "--out", str(out_dir)]) == 0
        finally:
            fig7_rmi_realworld.quick_config = original
        capsys.readouterr()
        payload = json.loads(
            (out_dir / "fig7" / "result.json").read_text())
        # Both grids' cells live on disk, but only the second grid's
        # 4 cells are indexed.
        on_disk = len(list((out_dir / "fig7" / "cells").glob("*.npz")))
        assert on_disk > 4
        assert len(payload["artifacts"]) == 4
        plan = fig7_rmi_realworld.plan_cells(other)
        expected = {f"cells/{c.experiment}-{c.digest}.npz"
                    for c in plan}
        assert {e["file"] for e in payload["artifacts"]} == expected

    def test_resume_rewrote_nothing(self, out_dir, capsys):
        before = {p.name: p.stat().st_mtime_ns
                  for p in (out_dir / "fig7" / "cells").iterdir()}
        assert main(["fig7", "--jobs", "2", "--out", str(out_dir),
                     "--resume"]) == 0
        capsys.readouterr()
        after = {p.name: p.stat().st_mtime_ns
                 for p in (out_dir / "fig7" / "cells").iterdir()}
        assert after == before
