"""Tests for the ``python -m repro.experiments`` entry point."""

import pytest

from repro.experiments.__main__ import _TARGETS, main


class TestTargetRegistry:
    def test_every_figure_present(self):
        for name in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                     "fig8"):
            assert name in _TARGETS

    def test_every_ablation_present(self):
        expected = {"a1-bruteforce", "a2-trim", "a3-cost", "a4-alpha",
                    "a5-allocation", "a6-deletion", "a7-polynomial",
                    "a8-blackbox", "a9-updates", "a10-ridge",
                    "a11-adversaries"}
        assert expected <= set(_TARGETS)


class TestMain:
    def test_runs_cheap_target(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "compound effect" in out

    def test_runs_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "convex" in capsys.readouterr().out

    def test_profile_flag_accepted(self, capsys):
        assert main(["fig4", "--profile", "quick"]) == 0
        assert "greedy" in capsys.readouterr().out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--profile", "huge"])
