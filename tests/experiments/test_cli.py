"""Tests for the ``python -m repro.experiments`` entry point."""

import json

import pytest

from repro.experiments.__main__ import RESULT_SCHEMA, _TARGETS, main


class TestTargetRegistry:
    def test_every_figure_present(self):
        for name in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                     "fig8"):
            assert name in _TARGETS

    def test_every_ablation_present(self):
        expected = {"a1-bruteforce", "a2-trim", "a3-cost", "a4-alpha",
                    "a5-allocation", "a6-deletion", "a7-polynomial",
                    "a8-blackbox", "a9-updates", "a10-ridge",
                    "a11-adversaries"}
        assert expected <= set(_TARGETS)


class TestMain:
    def test_runs_cheap_target(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "compound effect" in out

    def test_runs_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "convex" in capsys.readouterr().out

    def test_profile_flag_accepted(self, capsys):
        assert main(["fig4", "--profile", "quick"]) == 0
        assert "greedy" in capsys.readouterr().out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--profile", "huge"])

    def test_invalid_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--jobs", "0"])

    def test_resume_requires_out(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--resume"])


def _validate_summary_schema(payload: dict) -> None:
    """The contract external plotting tools rely on."""
    assert payload["schema"] == RESULT_SCHEMA
    assert isinstance(payload["target"], str)
    assert payload["profile"] in ("quick", "full")
    assert isinstance(payload["jobs"], int) and payload["jobs"] >= 1
    assert isinstance(payload["result"], dict)


class TestCliSmoke:
    """End-to-end: fig5 quick through the parallel runtime."""

    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("cli-out")
        assert main(["fig5", "--profile", "quick", "--jobs", "2",
                     "--out", str(out)]) == 0
        return out

    def test_prints_paper_tables(self, out_dir, capsys):
        # Output was printed during the fixture run of main(); re-run a
        # cheap serial equivalent to assert on stdout shape instead.
        assert main(["fig5", "--profile", "quick", "--jobs", "2",
                     "--out", str(out_dir), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "[uniform] Keys: 100" in out
        assert "poison%" in out

    def test_result_json_schema(self, out_dir):
        payload = json.loads((out_dir / "fig5" / "result.json").read_text())
        _validate_summary_schema(payload)
        assert payload["target"] == "fig5"
        result = payload["result"]
        assert result["distribution"] == "uniform"
        assert len(result["cells"]) == 6  # 2 key counts x 3 densities
        for cell in result["cells"]:
            assert set(cell) == {"n_keys", "density", "domain_size",
                                 "summaries"}
            for summary in cell["summaries"].values():
                assert set(summary) == {"minimum", "q1", "median", "q3",
                                        "maximum", "mean", "count"}
                assert summary["count"] == result["n_trials"]
                assert summary["minimum"] <= summary["median"]
                assert summary["median"] <= summary["maximum"]

    def test_checkpoints_and_manifest_emitted(self, out_dir):
        cells_dir = out_dir / "fig5" / "cells"
        # 2 key counts x 3 densities x 20 trials
        assert len(list(cells_dir.glob("*.json"))) == 120
        manifest = json.loads(
            (out_dir / "fig5" / "manifest.json").read_text())
        assert manifest["experiment"] == "regression-sweep/uniform"

    def test_resume_reuses_cells(self, out_dir, capsys):
        """A second invocation with --resume recomputes nothing and
        reproduces the identical table."""
        assert main(["fig5", "--profile", "quick", "--jobs", "2",
                     "--out", str(out_dir)]) == 0
        fresh = capsys.readouterr().out
        before = {p.name: p.stat().st_mtime_ns
                  for p in (out_dir / "fig5" / "cells").glob("*.json")}
        assert main(["fig5", "--profile", "quick", "--jobs", "2",
                     "--out", str(out_dir), "--resume"]) == 0
        resumed = capsys.readouterr().out
        after = {p.name: p.stat().st_mtime_ns
                 for p in (out_dir / "fig5" / "cells").glob("*.json")}
        assert resumed == fresh
        assert after == before  # no cell file rewritten

    def test_ablation_target_with_out(self, tmp_path, capsys):
        assert main(["a6-deletion", "--jobs", "2",
                     "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        payload = json.loads(
            (tmp_path / "a6-deletion" / "result.json").read_text())
        _validate_summary_schema(payload)
        assert len(payload["result"]["rows"]) == 3
