"""The ablate target end to end: acceptance pins, parity, CLI.

The committed acceptance criteria of the subsystem:

* every applicable component of every scenario gets an importance
  score (a measured one-off cell, a rank, a harmful flag);
* the all-on baseline strictly beats the all-off floor on victim
  amplification in both scenarios — the stack protects;
* on the closed-loop drip scenario, rebuild-threshold **deferral
  outranks the TRIM screen** — the paper's Section VI point that
  screening cannot cheaply separate CDF-shaped poison, while
  not-retraining-on-the-burst can;
* all of it bit-identical at ``--jobs 1`` vs ``--jobs 2`` and
  thread vs process executors.
"""

import json
import math

import pytest

from repro import ablate
from repro.contracts import validate_result
from repro.experiments.__main__ import main


@pytest.fixture(scope="module")
def serial():
    return ablate.run(ablate.quick_config(), jobs=1)


@pytest.fixture(scope="module")
def reports(serial):
    return {r.scenario: r for r in serial.reports()}


class TestAcceptance:
    def test_grid_shape(self, serial):
        assert len(serial.rows) == 13  # 5 drip + 8 cluster
        assert [r.variant for r in serial.rows
                if r.scenario == "drip"] \
            == ["baseline", "no-trim", "no-quarantine",
                "no-deferral", "floor"]

    def test_every_applicable_component_scored(self, reports):
        for scenario, report in reports.items():
            expected = [s.name for s in
                        ablate.applicable_components(scenario)]
            scored = [e.component for e in report.components]
            assert sorted(scored) == sorted(expected)
            for entry in report.components:
                assert not math.isnan(entry.score)
                assert entry.rank >= 1

    def test_baseline_beats_floor_on_amplification(self, reports):
        for report in reports.values():
            assert report.baseline.amplification \
                < report.floor.amplification
            assert report.stack_protects() > 0

    def test_deferral_outranks_trim_on_the_drip_scenario(
            self, reports):
        drip = reports["drip"]
        assert drip.component("deferral").rank \
            < drip.component("trim").rank
        assert drip.component("deferral").score > 0

    def test_ranks_are_a_permutation(self, reports):
        for report in reports.values():
            assert sorted(e.rank for e in report.components) \
                == list(range(1, len(report.components) + 1))

    def test_no_defense_flagged_harmful_on_the_quick_grid(
            self, reports):
        for report in reports.values():
            assert not any(e.harmful for e in report.components)

    def test_format_renders_grid_and_importance(self, serial):
        text = serial.format()
        assert "ablation grid: drip scenario" in text
        assert "ablation grid: cluster scenario" in text
        assert "defense ablation: drip scenario" in text
        assert "removal cost" in text


class TestParity:
    def test_jobs2_thread_bit_identical_to_serial(self, serial):
        # to_dict comparison (not rows): the drip rows carry NaN SLO
        # fields, and NaN != NaN, while the JSON payload uses the
        # "nan" sentinel — byte-for-byte comparable.
        threaded = ablate.run(ablate.quick_config(), jobs=2,
                              executor="thread")
        assert threaded.to_dict() == serial.to_dict()

    def test_jobs2_process_bit_identical_to_serial(self, serial):
        parallel = ablate.run(ablate.quick_config(), jobs=2,
                              executor="process")
        assert parallel.to_dict() == serial.to_dict()


class TestCli:
    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("ablate-out")
        assert main(["ablate", "--quick", "--jobs", "2",
                     "--executor", "thread",
                     "--out", str(out)]) == 0
        return out

    def test_result_document_validates(self, out_dir, serial):
        payload = json.loads(
            (out_dir / "ablate" / "result.json").read_text())
        validate_result(payload)
        assert payload["target"] == "ablate"
        assert payload["result"] == serial.to_dict()

    def test_manifest_covers_every_cell(self, out_dir):
        from repro import io

        payload = json.loads(
            (out_dir / "ablate" / "result.json").read_text())
        assert len(payload["artifacts"]) == 13
        for entry in payload["artifacts"]:
            arrays = io.load_arrays(out_dir / "ablate" / entry["file"])
            assert sorted(arrays) == entry["arrays"]

    def test_resume_rewrites_nothing(self, out_dir, capsys):
        before = {p.name: p.stat().st_mtime_ns
                  for p in (out_dir / "ablate" / "cells").iterdir()}
        assert main(["ablate", "--quick", "--jobs", "2",
                     "--out", str(out_dir), "--resume"]) == 0
        capsys.readouterr()
        after = {p.name: p.stat().st_mtime_ns
                 for p in (out_dir / "ablate" / "cells").iterdir()}
        assert after == before

    def test_report_renders_importance_gallery(self, out_dir, capsys):
        assert main(["report", "--out", str(out_dir)]) == 0
        capsys.readouterr()
        figures = out_dir / "ablate" / "figures"
        assert (figures / "ablation-drip.importance.svg").exists()
        assert (figures / "ablation-cluster.importance.svg").exists()
        index = (figures / "GALLERY.md").read_text()
        assert "ablation-drip.importance.svg" in index

    def test_components_filter_restricts_the_axes(self, tmp_path,
                                                  capsys):
        assert main(["ablate", "--components", "deferral",
                     "--jobs", "2", "--executor", "thread",
                     "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        payload = json.loads(
            (tmp_path / "ablate" / "result.json").read_text())
        result = payload["result"]
        assert result["components"] == ["deferral"]
        assert len(result["cells"]) == 6  # 3 per scenario
        for block in result["ablation"]["scenarios"]:
            assert [row["component"]
                    for row in block["components"]] == ["deferral"]

    def test_list_components_prints_the_registry(self, capsys):
        assert main(["ablate", "--list-components"]) == 0
        out = capsys.readouterr().out
        assert "ablatable defense components" in out
        for name in ablate.COMPONENT_NAMES:
            assert name in out
        assert "--transport process --replicas>=3" in out

    def test_unknown_component_names_field_and_value(self, capsys):
        with pytest.raises(SystemExit):
            main(["ablate", "--components", "deferral,bogus"])
        err = capsys.readouterr().err
        assert "--components must name defense components in" in err
        assert "'bogus'" in err
        assert "deferral" in err  # the known list is spelled out

    def test_components_rejected_for_other_targets(self, capsys):
        with pytest.raises(SystemExit):
            main(["cluster", "--components", "trim"])
        err = capsys.readouterr().err
        assert "--components only applies to the ablate target" in err

    def test_list_components_rejected_for_other_targets(self, capsys):
        with pytest.raises(SystemExit):
            main(["closedloop", "--list-components"])
        err = capsys.readouterr().err
        assert "--list-components only applies to the ablate" in err

    def test_empty_components_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["ablate", "--components", " , "])
        err = capsys.readouterr().err
        assert "at least one" in err
