"""Unit tests for the storage accounting module."""

import pytest

from repro.data import Domain, uniform_keyset
from repro.index import BTree, RecursiveModelIndex
from repro.index.storage import (
    btree_storage,
    polynomial_stage_storage,
    rmi_storage,
)


@pytest.fixture
def keyset(rng):
    return uniform_keyset(10_000, Domain(0, 199_999), rng)


class TestRmiStorage:
    def test_scales_with_model_count(self, keyset):
        small = rmi_storage(RecursiveModelIndex.build_equal_size(
            keyset, 10))
        large = rmi_storage(RecursiveModelIndex.build_equal_size(
            keyset, 100))
        assert large.total_bytes == 10 * small.total_bytes

    def test_two_float_two_int_per_model(self, keyset):
        report = rmi_storage(RecursiveModelIndex.build_equal_size(
            keyset, 100))
        assert report.model_bytes == 100 * (2 * 8 + 2 * 8)

    def test_row_renders(self, keyset):
        report = rmi_storage(RecursiveModelIndex.build_equal_size(
            keyset, 10))
        assert "total=" in report.row()


class TestBtreeStorage:
    def test_counts_all_keys(self, keyset):
        tree = BTree.bulk_load(keyset.keys, min_degree=16)
        report = btree_storage(tree)
        assert report.model_bytes == keyset.n * 8
        assert report.auxiliary_bytes > 0

    def test_learned_index_much_smaller(self, keyset):
        """The paper's memory argument: RMI params << B-Tree nodes."""
        tree = BTree.bulk_load(keyset.keys, min_degree=16)
        rmi = RecursiveModelIndex.build_equal_size(keyset, 100)
        assert rmi_storage(rmi).total_bytes \
            < 0.1 * btree_storage(tree).total_bytes


class TestPolynomialStorage:
    def test_grows_with_degree(self):
        linearish = polynomial_stage_storage(100, 1)
        cubic = polynomial_stage_storage(100, 3)
        assert cubic.total_bytes > linearish.total_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            polynomial_stage_storage(0, 1)
        with pytest.raises(ValueError):
            polynomial_stage_storage(10, 0)

    def test_sec6_tradeoff_quantified(self):
        """Hardening with degree 3 costs ~1.6x the stage storage."""
        linear = polynomial_stage_storage(1000, 1)
        cubic = polynomial_stage_storage(1000, 3)
        assert 1.2 < cubic.total_bytes / linear.total_bytes < 2.0
