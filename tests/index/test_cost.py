"""Unit tests for the lookup-cost comparison harness."""

import pytest

from repro.core import greedy_poison
from repro.data import Domain, uniform_keyset
from repro.index import (
    BTree,
    LinearLearnedIndex,
    RecursiveModelIndex,
    btree_cost,
    compare_costs,
    linear_index_cost,
    rmi_cost,
)


@pytest.fixture
def keyset(rng):
    return uniform_keyset(2000, Domain(0, 39_999), rng)


class TestIndividualCosts:
    def test_rmi_cost_report(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 20)
        report = rmi_cost(rmi, keyset.keys[:100])
        assert report.structure == "rmi"
        assert report.mean_cost >= 1.0
        assert report.max_cost >= report.mean_cost
        assert report.n_queries == 100

    def test_btree_cost_report(self, keyset):
        tree = BTree.bulk_load(keyset.keys)
        report = btree_cost(tree, keyset.keys[:100])
        assert report.mean_cost >= 1.0

    def test_linear_index_cost_report(self, keyset):
        index = LinearLearnedIndex(keyset)
        report = linear_index_cost(index, keyset.keys[:100])
        assert report.mean_cost >= 1.0

    def test_row_renders(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 20)
        row = rmi_cost(rmi, keyset.keys[:10]).row()
        assert "mean=" in row and "max=" in row


class TestCompareCosts:
    def test_three_reports(self, keyset):
        reports = compare_costs(keyset.keys, keyset.keys, 20,
                                n_queries=200)
        labels = [r.structure for r in reports]
        assert labels == ["rmi (clean)", "rmi (poisoned)",
                          "btree (clean)"]

    def test_clean_rmi_beats_btree_on_uniform(self, keyset):
        """The learned-index promise that poisoning erodes."""
        reports = compare_costs(keyset.keys, keyset.keys, 20,
                                n_queries=300)
        by_label = {r.structure: r for r in reports}
        assert (by_label["rmi (clean)"].mean_cost
                < by_label["btree (clean)"].mean_cost)

    def test_poisoned_rmi_costlier_than_clean(self, keyset):
        attack = greedy_poison(keyset, 200)
        poisoned = keyset.insert(attack.poison_keys)
        reports = compare_costs(keyset.keys, poisoned.keys, 10,
                                n_queries=300)
        by_label = {r.structure: r for r in reports}
        assert (by_label["rmi (poisoned)"].mean_cost
                > by_label["rmi (clean)"].mean_cost)
