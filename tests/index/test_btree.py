"""Unit + property tests for the B-Tree baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import BTree


class TestConstruction:
    def test_min_degree_validated(self):
        with pytest.raises(ValueError):
            BTree(1)

    def test_empty_tree(self):
        tree = BTree(4)
        assert len(tree) == 0
        assert tree.height == 1
        assert 5 not in tree


class TestInsertion:
    def test_sequential_inserts(self):
        tree = BTree(2)
        for value in range(100):
            tree.insert(value)
        tree.check_invariants()
        assert len(tree) == 100
        assert list(tree.items()) == list(range(100))

    def test_reverse_inserts(self):
        tree = BTree(3)
        for value in reversed(range(64)):
            tree.insert(value)
        tree.check_invariants()
        assert list(tree.items()) == list(range(64))

    def test_duplicate_rejected(self):
        tree = BTree(4)
        tree.insert(7)
        with pytest.raises(ValueError):
            tree.insert(7)
        assert len(tree) == 1

    def test_duplicate_rejected_deep(self):
        tree = BTree(2)
        for value in range(50):
            tree.insert(value)
        with pytest.raises(ValueError):
            tree.insert(25)
        assert len(tree) == 50

    def test_random_inserts_maintain_invariants(self, rng):
        tree = BTree(3)
        values = rng.permutation(500)
        for value in values:
            tree.insert(int(value))
        tree.check_invariants()
        assert list(tree.items()) == sorted(values.tolist())


class TestBulkLoad:
    def test_round_trip(self):
        keys = np.arange(0, 1000, 3)
        tree = BTree.bulk_load(keys, min_degree=8)
        tree.check_invariants()
        assert len(tree) == keys.size
        assert list(tree.items()) == keys.tolist()

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            BTree.bulk_load(np.array([3, 1, 2]))

    def test_small_inputs(self):
        for n in (1, 2, 3, 7, 15, 16, 17):
            tree = BTree.bulk_load(np.arange(n), min_degree=4)
            tree.check_invariants()
            assert list(tree.items()) == list(range(n))

    def test_empty_input(self):
        tree = BTree.bulk_load(np.array([], dtype=np.int64))
        assert len(tree) == 0

    def test_height_logarithmic(self):
        tree = BTree.bulk_load(np.arange(100_000), min_degree=16)
        # ~log_16(1e5) levels; generous upper bound.
        assert tree.height <= 5

    def test_insert_after_bulk_load(self):
        tree = BTree.bulk_load(np.arange(0, 100, 2), min_degree=4)
        tree.insert(51)
        tree.check_invariants()
        assert 51 in tree
        assert len(tree) == 51


class TestSearch:
    def test_found_and_cost(self):
        tree = BTree.bulk_load(np.arange(1000), min_degree=8)
        result = tree.search(123)
        assert result.found
        assert result.node_visits <= tree.height
        assert result.comparisons >= 1

    def test_absent(self):
        tree = BTree.bulk_load(np.arange(0, 1000, 2), min_degree=8)
        result = tree.search(501)
        assert not result.found

    def test_contains_dunder(self):
        tree = BTree.bulk_load(np.array([1, 5, 9]))
        assert 5 in tree
        assert 6 not in tree


@given(st.lists(st.integers(min_value=-10_000, max_value=10_000),
                min_size=1, max_size=400, unique=True),
       st.integers(min_value=2, max_value=8))
@settings(max_examples=40, deadline=None)
def test_btree_equals_sorted_set_semantics(values, degree):
    """Property: after random inserts, contents equal the sorted set."""
    tree = BTree(degree)
    for value in values:
        tree.insert(value)
    tree.check_invariants()
    assert list(tree.items()) == sorted(values)
    for probe in values[:20]:
        assert probe in tree
    universe = set(values)
    for probe in range(-5, 6):
        assert (probe in tree) == (probe in universe)


@given(st.integers(min_value=1, max_value=2_000),
       st.integers(min_value=2, max_value=16))
@settings(max_examples=30, deadline=None)
def test_bulk_load_equals_incremental(n, degree):
    """Property: bulk load and repeated insert hold the same keys."""
    keys = np.arange(0, 3 * n, 3)
    bulk = BTree.bulk_load(keys, min_degree=degree)
    bulk.check_invariants()
    assert list(bulk.items()) == keys.tolist()
