"""Unit tests for the single-model learned index."""

import numpy as np
import pytest

from repro.core import greedy_poison
from repro.data import Domain, uniform_keyset
from repro.index import LinearLearnedIndex


@pytest.fixture
def index(medium_keyset):
    return LinearLearnedIndex(medium_keyset)


class TestLookup:
    def test_all_stored_keys_found(self, medium_keyset, index):
        for key in medium_keyset.keys[::13]:
            result = index.lookup(int(key))
            assert result.found
            assert index.store.key_at(result.position) == key

    def test_absent_key_not_found(self, medium_keyset, index):
        stored = set(medium_keyset.keys.tolist())
        probe = next(x for x in range(10_000) if x not in stored)
        assert not index.lookup(probe).found

    def test_accepts_raw_array(self):
        index = LinearLearnedIndex(np.arange(0, 100, 2))
        assert index.lookup(42).found

    def test_prediction_clamped(self, index, medium_keyset):
        n = len(index.store)
        assert 0 <= index.predict_position(0) < n
        assert 0 <= index.predict_position(10**9) < n


class TestModelQuality:
    def test_mse_matches_core_regression(self, medium_keyset):
        """Index MSE (0-based positions) == core MSE (1-based ranks)."""
        from repro.core import fit_cdf_regression
        index = LinearLearnedIndex(medium_keyset)
        core = fit_cdf_regression(medium_keyset)
        # Shifting the response by 1 only changes the intercept.
        assert index.mse == pytest.approx(core.mse, rel=1e-9)
        assert index.model.slope == pytest.approx(core.model.slope,
                                                  rel=1e-9)

    def test_near_linear_cdf_cheap_lookups(self, rng):
        ks = uniform_keyset(1000, Domain(0, 9_999), rng)
        index = LinearLearnedIndex(ks)
        assert index.lookup_cost(ks.keys[::11]) < 15.0

    def test_poisoning_increases_cost(self, rng):
        """The attack's end goal: more probes per lookup."""
        ks = uniform_keyset(500, Domain(0, 9_999), rng)
        attack = greedy_poison(ks, 75)
        poisoned = ks.insert(attack.poison_keys)
        clean_cost = LinearLearnedIndex(ks).lookup_cost(ks.keys)
        dirty_cost = LinearLearnedIndex(poisoned).lookup_cost(ks.keys)
        assert dirty_cost > clean_cost

    def test_empty_queries_rejected(self, index):
        with pytest.raises(ValueError):
            index.lookup_cost(np.array([]))
