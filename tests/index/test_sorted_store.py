"""Unit tests for the sorted record store and last-mile searches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import SortedStore


@pytest.fixture
def store():
    return SortedStore(np.array([10, 20, 30, 40, 50, 60, 70, 80]))


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SortedStore(np.array([], dtype=np.int64))

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            SortedStore(np.array([3, 1, 2]))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            SortedStore(np.array([1, 2, 2, 3]))

    def test_len_and_key_at(self, store):
        assert len(store) == 8
        assert store.key_at(0) == 10
        assert store.key_at(7) == 80

    def test_keys_readonly(self, store):
        with pytest.raises(ValueError):
            store.keys[0] = 5


class TestWindowSearch:
    def test_finds_with_exact_prediction(self, store):
        result = store.search_window(30, predicted=2, max_error=0)
        assert result.found
        assert result.position == 2
        assert result.probes == 1

    def test_finds_within_window(self, store):
        result = store.search_window(70, predicted=3, max_error=4)
        assert result.found
        assert result.position == 6

    def test_miss_outside_window(self, store):
        result = store.search_window(80, predicted=0, max_error=2)
        assert not result.found
        assert result.position == -1

    def test_absent_key_reports_not_found(self, store):
        result = store.search_window(35, predicted=2, max_error=8)
        assert not result.found

    def test_window_clamped_to_array(self, store):
        result = store.search_window(10, predicted=0, max_error=100)
        assert result.found
        assert result.position == 0

    def test_probe_count_logarithmic(self, store):
        result = store.search_window(50, predicted=4, max_error=4)
        # window of 9 cells -> at most ceil(log2(9)) + 1 = 5 probes
        assert result.probes <= 5


class TestExponentialSearch:
    def test_exact_prediction_one_probe(self, store):
        result = store.search_exponential(40, predicted=3)
        assert result.found
        assert result.position == 3
        assert result.probes == 1

    def test_gallops_right(self, store):
        result = store.search_exponential(80, predicted=0)
        assert result.found
        assert result.position == 7

    def test_gallops_left(self, store):
        result = store.search_exponential(10, predicted=7)
        assert result.found
        assert result.position == 0

    def test_absent_key(self, store):
        result = store.search_exponential(45, predicted=3)
        assert not result.found

    def test_prediction_out_of_bounds_is_clamped(self, store):
        result = store.search_exponential(80, predicted=1_000_000)
        assert result.found
        assert result.position == 7

    def test_cost_grows_with_error(self, rng):
        keys = np.arange(0, 100_000, 7)
        store = SortedStore(keys)
        target = int(keys[keys.size // 2])
        exact = store.search_exponential(target, keys.size // 2)
        far = store.search_exponential(target, 0)
        assert exact.probes < far.probes


@given(st.lists(st.integers(min_value=0, max_value=100_000), min_size=1,
                max_size=300, unique=True),
       st.integers(min_value=0, max_value=100_000),
       st.integers(min_value=0, max_value=400))
@settings(max_examples=60, deadline=None)
def test_exponential_search_total_correctness(raw, query, predicted):
    """Property: finds stored keys, rejects absent ones, any guess."""
    keys = np.array(sorted(raw), dtype=np.int64)
    store = SortedStore(keys)
    result = store.search_exponential(query, predicted % keys.size)
    if query in set(raw):
        assert result.found
        assert keys[result.position] == query
    else:
        assert not result.found


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                max_size=200, unique=True),
       st.data())
@settings(max_examples=60, deadline=None)
def test_window_search_finds_key_when_window_covers_truth(raw, data):
    """Property: window search succeeds whenever |pred - true| <= e."""
    keys = np.array(sorted(raw), dtype=np.int64)
    store = SortedStore(keys)
    true_pos = data.draw(st.integers(min_value=0,
                                     max_value=keys.size - 1))
    error = data.draw(st.integers(min_value=0, max_value=keys.size))
    predicted = data.draw(st.integers(
        min_value=max(0, true_pos - error),
        max_value=min(keys.size - 1, true_pos + error)))
    result = store.search_window(int(keys[true_pos]), predicted, error)
    assert result.found
    assert result.position == true_pos
