"""Unit tests for the two-stage recursive model index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RMIAttackerCapability, poison_rmi
from repro.data import Domain, KeySet, lognormal_keyset, uniform_keyset
from repro.index import (
    PiecewiseLinearRoot,
    RecursiveModelIndex,
)


@pytest.fixture
def keyset(rng):
    return uniform_keyset(2000, Domain(0, 39_999), rng)


class TestBuildEqualSize:
    def test_model_count(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 20)
        assert rmi.n_models == 20

    def test_every_stored_key_found(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 20)
        for key in keyset.keys[::37]:
            result = rmi.lookup(int(key))
            assert result.found
            assert rmi.store.key_at(result.position) == key

    def test_absent_keys_not_found(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 20)
        stored = set(keyset.keys.tolist())
        rng = np.random.default_rng(0)
        for probe in rng.integers(0, 40_000, size=100):
            if int(probe) not in stored:
                assert not rmi.lookup(int(probe)).found

    def test_routing_respects_partitions(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 10)
        parts = keyset.partition(10)
        for j, part in enumerate(parts):
            mid = int(part.keys[part.n // 2])
            assert rmi.lookup(mid).model_index == j

    def test_second_stage_mse_nonnegative(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 20)
        assert np.all(rmi.second_stage_mse() >= 0.0)

    def test_invalid_model_count(self, keyset):
        with pytest.raises(ValueError):
            RecursiveModelIndex.build_equal_size(keyset, 0)
        with pytest.raises(ValueError):
            RecursiveModelIndex.build_equal_size(keyset, keyset.n + 1)

    def test_single_model(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 1)
        for key in keyset.keys[::101]:
            assert rmi.lookup(int(key)).found

    def test_accepts_raw_array(self):
        rmi = RecursiveModelIndex.build_equal_size(
            np.arange(0, 1000, 5), 4)
        assert rmi.lookup(250).found


class TestBuildWithRoot:
    def test_piecewise_root_lookups(self, keyset):
        rmi = RecursiveModelIndex.build_with_root(
            keyset, 20, PiecewiseLinearRoot(32))
        for key in keyset.keys[::53]:
            assert rmi.lookup(int(key)).found

    def test_lognormal_keys(self, rng):
        ks = lognormal_keyset(2000, Domain.of_size(200_000), rng)
        rmi = RecursiveModelIndex.build_with_root(
            ks, 25, PiecewiseLinearRoot(64))
        for key in ks.keys[::41]:
            assert rmi.lookup(int(key)).found

    def test_empty_experts_tolerated(self, rng):
        """A root that routes nothing to some experts must still work."""
        ks = lognormal_keyset(500, Domain.of_size(100_000), rng)
        rmi = RecursiveModelIndex.build_with_root(
            ks, 50, PiecewiseLinearRoot(8))
        assert rmi.n_models == 50
        for key in ks.keys[::29]:
            assert rmi.lookup(int(key)).found


class TestErrorWindows:
    def test_windows_cover_training_errors(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 10)
        positions = np.arange(keyset.n, dtype=np.float64)
        parts = np.array_split(np.arange(keyset.n), 10)
        for model, piece in zip(rmi.models, parts):
            keys = keyset.keys[piece].astype(np.float64)
            errors = positions[piece] - model.predict(keys)
            assert errors.min() >= model.err_lo - 1e-9
            assert errors.max() <= model.err_hi + 1e-9

    def test_max_search_window(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 10)
        assert rmi.max_search_window() == max(
            m.window for m in rmi.models)

    def test_poisoning_widens_windows(self, keyset):
        """End-to-end: the attack inflates the last-mile windows."""
        capability = RMIAttackerCapability(poisoning_percentage=10.0,
                                           alpha=3.0)
        attack = poison_rmi(keyset, 20, capability, max_exchanges=20)
        poisoned = keyset.insert(attack.poison_keys)
        clean_rmi = RecursiveModelIndex.build_equal_size(keyset, 20)
        dirty_rmi = RecursiveModelIndex.build_equal_size(poisoned, 20)
        assert (dirty_rmi.max_search_window()
                > clean_rmi.max_search_window())

    def test_poisoning_raises_lookup_cost(self, keyset):
        capability = RMIAttackerCapability(poisoning_percentage=10.0,
                                           alpha=3.0)
        attack = poison_rmi(keyset, 20, capability, max_exchanges=20)
        poisoned = keyset.insert(attack.poison_keys)
        clean_rmi = RecursiveModelIndex.build_equal_size(keyset, 20)
        dirty_rmi = RecursiveModelIndex.build_equal_size(poisoned, 20)
        queries = keyset.keys[::17]
        assert (dirty_rmi.lookup_cost(queries)
                > clean_rmi.lookup_cost(queries))


class TestLookupCost:
    def test_empty_queries_rejected(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 10)
        with pytest.raises(ValueError):
            rmi.lookup_cost(np.array([]))

    def test_cost_positive(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 10)
        assert rmi.lookup_cost(keyset.keys[:50]) >= 1.0


@given(st.lists(st.integers(min_value=0, max_value=50_000), min_size=10,
                max_size=300, unique=True),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=40, deadline=None)
def test_rmi_total_lookup_correctness(raw, n_models):
    """Property: every stored key is always found, any shape."""
    ks = KeySet(raw)
    n_models = min(n_models, ks.n)
    rmi = RecursiveModelIndex.build_equal_size(ks, n_models)
    step = max(1, ks.n // 23)
    for key in ks.keys[::step]:
        result = rmi.lookup(int(key))
        assert result.found
        assert rmi.store.key_at(result.position) == key
