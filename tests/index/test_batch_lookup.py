"""Scalar/batch equivalence for the vectorized lookup hot path.

The batched APIs exist to remove interpreter overhead, never to change
a measured cost: `windowed_search_batch` must reproduce the scalar
`search_window` bit for bit (same midpoints, same early exit, same
probe count), and every index's `lookup_batch` must agree with its
scalar `lookup` element for element.
"""

import numpy as np
import pytest

from repro.data.keyset import Domain
from repro.data.synthetic import lognormal_keyset, uniform_keyset
from repro.index import (
    BTree,
    DynamicLearnedIndex,
    LinearLearnedIndex,
    RecursiveModelIndex,
    SortedStore,
    windowed_search_batch,
)


@pytest.fixture(scope="module")
def keyset():
    rng = np.random.default_rng(71)
    return uniform_keyset(2_000, Domain.of_size(40_000), rng)


@pytest.fixture(scope="module")
def queries(keyset):
    """Stored keys, absent keys, and out-of-range extremes."""
    rng = np.random.default_rng(72)
    stored = rng.choice(keyset.keys, size=300, replace=False)
    absent = np.setdiff1d(
        rng.integers(0, 40_000, size=400), keyset.keys)[:300]
    edges = np.asarray([0, 39_999, int(keyset.keys[0]),
                        int(keyset.keys[-1])])
    return np.concatenate([stored, absent, edges])


class TestWindowedSearchBatch:
    def test_matches_scalar_search_window(self, keyset, queries):
        store = SortedStore(keyset.keys)
        rng = np.random.default_rng(73)
        predicted = rng.integers(0, len(store), size=queries.size)
        errors = rng.integers(0, 400, size=queries.size)
        batch = store.search_window_batch(queries, predicted, errors)
        for i, (q, p, e) in enumerate(zip(queries, predicted, errors)):
            scalar = store.search_window(int(q), int(p), int(e))
            assert batch.positions[i] == scalar.position
            assert batch.probes[i] == scalar.probes
            assert batch.found[i] == scalar.found

    def test_scalar_max_error_broadcasts(self, keyset, queries):
        store = SortedStore(keyset.keys)
        predicted = np.full(queries.shape, len(store) // 2)
        batch = store.search_window_batch(queries, predicted, 50)
        for i, q in enumerate(queries):
            scalar = store.search_window(int(q), len(store) // 2, 50)
            assert batch.probes[i] == scalar.probes

    def test_empty_window_reports_nothing(self):
        keys = np.arange(0, 100, 2, dtype=np.int64)
        out = windowed_search_batch(keys, np.asarray([10, 11]),
                                    np.asarray([5, 8]),
                                    np.asarray([4, 2]))  # lo > hi
        assert (out.positions == -1).all()
        assert (out.probes == 0).all()

    def test_empty_batch(self):
        keys = np.arange(10, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        out = windowed_search_batch(keys, empty, empty, empty)
        assert len(out) == 0


class TestRMIBatch:
    @pytest.fixture(scope="class", params=["uniform", "lognormal"])
    def rmi(self, request, keyset):
        if request.param == "lognormal":
            rng = np.random.default_rng(74)
            keyset = lognormal_keyset(2_000, Domain.of_size(200_000), rng)
        return RecursiveModelIndex.build_equal_size(keyset, 40)

    def test_matches_scalar_lookup(self, rmi, queries):
        batch = rmi.lookup_batch(queries)
        for i, q in enumerate(queries):
            scalar = rmi.lookup(int(q))
            assert batch.found[i] == scalar.found
            assert batch.positions[i] == scalar.position
            assert batch.probes[i] == scalar.probes
            assert batch.model_index[i] == scalar.model_index

    def test_all_stored_keys_found(self, rmi):
        batch = rmi.lookup_batch(rmi.store.keys)
        assert batch.found.all()
        assert np.array_equal(batch.positions,
                              np.arange(len(rmi.store)))

    def test_lookup_cost_unchanged(self, rmi, queries):
        scalar_mean = float(np.mean(
            [rmi.lookup(int(q)).probes for q in queries]))
        assert rmi.lookup_cost(queries) == scalar_mean


class TestLinearBatch:
    @pytest.fixture(scope="class")
    def index(self, keyset):
        return LinearLearnedIndex(keyset)

    def test_positions_match_scalar(self, index, queries):
        batch = index.lookup_batch(queries)
        for i, q in enumerate(queries):
            scalar = index.lookup(int(q))
            assert batch.found[i] == scalar.found
            if scalar.found:
                assert batch.positions[i] == scalar.position

    def test_error_bound_covers_every_stored_key(self, index):
        batch = index.lookup_batch(index.store.keys)
        assert batch.found.all()
        assert batch.probes.max() <= int(
            np.ceil(np.log2(2 * index.max_error + 2))) + 1

    def test_max_error_positive(self, index):
        assert index.max_error >= 1


class TestDynamicBatch:
    @pytest.fixture(scope="class")
    def loaded(self, keyset):
        index = DynamicLearnedIndex(keyset, n_models=40,
                                    retrain_threshold=0.5)
        rng = np.random.default_rng(75)
        fresh = np.setdiff1d(
            rng.integers(0, 40_000, size=500), keyset.keys)[:150]
        index.insert_batch(fresh)
        assert index.delta_size > 0  # the delta path must be exercised
        return index, fresh

    def test_matches_scalar_lookup(self, loaded, queries):
        index, _ = loaded
        batch = index.lookup_batch(queries)
        for i, q in enumerate(queries):
            scalar = index.lookup(int(q))
            assert batch.found[i] == scalar.found
            assert batch.positions[i] == scalar.position
            assert batch.probes[i] == scalar.probes
            assert batch.model_index[i] == scalar.model_index

    def test_delta_keys_found(self, loaded):
        index, fresh = loaded
        batch = index.lookup_batch(fresh)
        assert batch.found.all()
        # Delta positions sit past the base array.
        assert (batch.positions >= index.rmi.store.keys.size).all()

    def test_lookup_cost_matches_scalar_mean(self, loaded, queries):
        index, _ = loaded
        scalar_mean = float(np.mean(
            [index.lookup(int(q)).probes for q in queries]))
        assert index.lookup_cost(queries) == scalar_mean


class TestBTreeBatch:
    def test_matches_scalar_search(self, keyset, queries):
        tree = BTree.bulk_load(keyset.keys)
        found, comparisons, visits = tree.search_batch(queries)
        for i, q in enumerate(queries):
            scalar = tree.search(int(q))
            assert found[i] == scalar.found
            assert comparisons[i] == scalar.comparisons
            assert visits[i] == scalar.node_visits
