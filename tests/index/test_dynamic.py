"""Unit tests for the dynamic (updatable) learned index."""

import numpy as np
import pytest

from repro.data import Domain, uniform_keyset
from repro.index import DynamicLearnedIndex


@pytest.fixture
def index(rng):
    keyset = uniform_keyset(1000, Domain(0, 19_999), rng)
    return DynamicLearnedIndex(keyset, n_models=10,
                               retrain_threshold=0.05), keyset


class TestConstruction:
    def test_threshold_validated(self, rng):
        keyset = uniform_keyset(100, Domain(0, 999), rng)
        with pytest.raises(ValueError):
            DynamicLearnedIndex(keyset, 5, retrain_threshold=0.0)
        with pytest.raises(ValueError):
            DynamicLearnedIndex(keyset, 5, retrain_threshold=1.5)

    def test_initial_state(self, index):
        dyn, keyset = index
        assert dyn.n_keys == keyset.n
        assert dyn.delta_size == 0
        assert dyn.retrain_count == 0


class TestInsertAndLookup:
    def test_inserted_key_immediately_findable(self, index):
        dyn, keyset = index
        probe = next(x for x in range(20_000)
                     if not dyn.contains(x))
        dyn.insert(probe)
        result = dyn.lookup(probe)
        assert result.found

    def test_base_keys_still_findable_after_inserts(self, index, rng):
        dyn, keyset = index
        fresh = [x for x in rng.integers(0, 20_000, size=200).tolist()
                 if not dyn.contains(x)][:30]
        for key in fresh:
            dyn.insert(key)
        for key in keyset.keys[::53]:
            assert dyn.lookup(int(key)).found

    def test_duplicate_rejected(self, index):
        dyn, keyset = index
        with pytest.raises(ValueError):
            dyn.insert(int(keyset.keys[0]))

    def test_duplicate_of_buffered_key_rejected(self, index):
        dyn, _ = index
        probe = next(x for x in range(20_000) if not dyn.contains(x))
        dyn.insert(probe)
        with pytest.raises(ValueError):
            dyn.insert(probe)

    def test_absent_key_not_found(self, index):
        dyn, _ = index
        probe = next(x for x in range(20_000) if not dyn.contains(x))
        assert not dyn.lookup(probe).found

    def test_n_keys_tracks_inserts(self, index):
        dyn, keyset = index
        before = dyn.n_keys
        probe = next(x for x in range(20_000) if not dyn.contains(x))
        dyn.insert(probe)
        assert dyn.n_keys == before + 1


class TestRetraining:
    def test_threshold_triggers_retrain(self, index):
        dyn, _ = index
        # threshold 5% of 1000 -> 50 buffered keys trip a retrain.
        fresh = iter(x for x in range(20_000) if not dyn.contains(x))
        retrained = False
        for _ in range(50):
            retrained = dyn.insert(next(fresh)) or retrained
        assert retrained
        assert dyn.retrain_count == 1
        assert dyn.delta_size < 50

    def test_retrain_absorbs_delta_into_base(self, index):
        dyn, _ = index
        fresh = [x for x in range(20_000) if not dyn.contains(x)][:50]
        dyn.insert_batch(np.asarray(fresh))
        assert dyn.delta_size == 0
        for key in fresh[::7]:
            assert dyn.lookup(key).found

    def test_flush_forces_retrain(self, index):
        dyn, _ = index
        probe = next(x for x in range(20_000) if not dyn.contains(x))
        dyn.insert(probe)
        dyn.flush()
        assert dyn.delta_size == 0
        assert dyn.retrain_count == 1

    def test_flush_noop_on_empty_buffer(self, index):
        dyn, _ = index
        dyn.flush()
        assert dyn.retrain_count == 0

    def test_delta_lookups_cost_extra(self, index):
        """Buffered keys pay the delta binary search."""
        dyn, keyset = index
        fresh = [x for x in range(20_000) if not dyn.contains(x)][:30]
        for key in fresh:
            dyn.insert(key)
        base_cost = dyn.lookup_cost(keyset.keys[:100])
        delta_cost = dyn.lookup_cost(np.asarray(fresh))
        assert delta_cost > base_cost
