"""Range-scan tests across all three structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RMIAttackerCapability, poison_rmi
from repro.data import Domain, KeySet, uniform_keyset
from repro.index import BTree, RecursiveModelIndex, SortedStore


@pytest.fixture
def keyset(rng):
    return uniform_keyset(1000, Domain(0, 19_999), rng)


class TestSortedStoreRange:
    def test_inclusive_bounds(self):
        store = SortedStore(np.arange(0, 100, 10))
        result = store.range_scan(10, 30)
        assert store.keys[result.start:result.stop].tolist() == [10, 20, 30]

    def test_empty_range(self):
        store = SortedStore(np.arange(0, 100, 10))
        result = store.range_scan(41, 49)
        assert result.count == 0

    def test_full_range(self):
        store = SortedStore(np.arange(0, 100, 10))
        result = store.range_scan(-5, 1000)
        assert result.count == 10


class TestRmiRange:
    def test_matches_ground_truth(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 20)
        lo, hi = 4000, 8000
        got, probes = rmi.range_scan(lo, hi)
        truth = keyset.keys[(keyset.keys >= lo) & (keyset.keys <= hi)]
        assert got.tolist() == truth.tolist()
        assert probes >= 0

    def test_endpoints_are_stored_keys(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 20)
        lo = int(keyset.keys[100])
        hi = int(keyset.keys[200])
        got, _ = rmi.range_scan(lo, hi)
        assert got[0] == lo
        assert got[-1] == hi
        assert got.size == 101

    def test_inverted_range_empty(self, keyset):
        rmi = RecursiveModelIndex.build_equal_size(keyset, 20)
        got, probes = rmi.range_scan(500, 400)
        assert got.size == 0
        assert probes == 0

    def test_poisoning_inflates_scan_cost(self, keyset):
        """The left-endpoint location pays the widened window."""
        capability = RMIAttackerCapability(poisoning_percentage=15.0,
                                           alpha=3.0)
        attack = poison_rmi(keyset, 20, capability, max_exchanges=20)
        poisoned = keyset.insert(attack.poison_keys)
        clean = RecursiveModelIndex.build_equal_size(keyset, 20)
        dirty = RecursiveModelIndex.build_equal_size(poisoned, 20)
        spans = [(int(k), int(k) + 500) for k in keyset.keys[::37]]
        clean_cost = float(np.mean(
            [clean.range_scan(lo, hi)[1] for lo, hi in spans]))
        dirty_cost = float(np.mean(
            [dirty.range_scan(lo, hi)[1] for lo, hi in spans]))
        assert dirty_cost > clean_cost


class TestBtreeRange:
    def test_matches_ground_truth(self, keyset):
        tree = BTree.bulk_load(keyset.keys, min_degree=8)
        lo, hi = 4000, 8000
        truth = keyset.keys[(keyset.keys >= lo) & (keyset.keys <= hi)]
        assert tree.range_scan(lo, hi) == truth.tolist()

    def test_empty_and_inverted(self, keyset):
        tree = BTree.bulk_load(keyset.keys)
        assert tree.range_scan(3, 2) == []

    def test_single_key_range(self, keyset):
        tree = BTree.bulk_load(keyset.keys)
        key = int(keyset.keys[500])
        assert tree.range_scan(key, key) == [key]


@given(st.lists(st.integers(min_value=0, max_value=5_000), min_size=5,
                max_size=200, unique=True),
       st.integers(min_value=0, max_value=5_000),
       st.integers(min_value=0, max_value=5_000))
@settings(max_examples=50, deadline=None)
def test_all_structures_agree_on_ranges(raw, a, b):
    """Property: RMI, B-Tree and plain filtering return identical
    ranges for arbitrary bounds."""
    lo, hi = min(a, b), max(a, b)
    ks = KeySet(raw)
    truth = [k for k in sorted(raw) if lo <= k <= hi]
    rmi = RecursiveModelIndex.build_equal_size(ks, min(5, ks.n))
    tree = BTree.bulk_load(ks.keys, min_degree=3)
    got_rmi, _ = rmi.range_scan(lo, hi)
    assert got_rmi.tolist() == truth
    assert tree.range_scan(lo, hi) == truth
