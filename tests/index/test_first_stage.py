"""Unit tests for the RMI first-stage (root) models."""

import numpy as np
import pytest

from repro.data import Domain, lognormal_keyset, uniform_keyset
from repro.index import LinearRoot, MLPRoot, PiecewiseLinearRoot
from repro.index.rmi import BoundaryRoot


@pytest.fixture
def cdf(rng):
    ks = uniform_keyset(1000, Domain(0, 99_999), rng)
    return ks.keys, np.arange(ks.n, dtype=np.float64)


class TestLinearRoot:
    def test_exact_on_linear_cdf(self):
        keys = np.arange(0, 1000, 10)
        positions = np.arange(keys.size, dtype=np.float64)
        root = LinearRoot().fit(keys, positions)
        pred = root.predict_position(keys)
        assert np.allclose(pred, positions, atol=1e-8)

    def test_route_clamped(self, cdf):
        keys, positions = cdf
        root = LinearRoot().fit(keys, positions)
        routes = root.route(np.array([-10**9, 10**9]), keys.size, 10)
        assert routes.tolist() == [0, 9]

    def test_constant_keys_degenerate(self):
        keys = np.array([5.0, 5.0, 5.0])
        root = LinearRoot().fit(keys, np.array([0.0, 1.0, 2.0]))
        assert root.predict_position(np.array([5.0]))[0] == pytest.approx(1.0)


class TestPiecewiseLinearRoot:
    def test_interpolates_knots_exactly(self, cdf):
        keys, positions = cdf
        root = PiecewiseLinearRoot(16).fit(keys, positions)
        pred = root.predict_position(keys[::100])
        assert np.allclose(pred, positions[::100], atol=keys.size / 16)

    def test_more_segments_more_accuracy(self, rng):
        ks = lognormal_keyset(2000, Domain.of_size(200_000), rng)
        positions = np.arange(ks.n, dtype=np.float64)
        coarse = PiecewiseLinearRoot(4).fit(ks.keys, positions)
        fine = PiecewiseLinearRoot(128).fit(ks.keys, positions)
        coarse_err = np.abs(
            coarse.predict_position(ks.keys) - positions).mean()
        fine_err = np.abs(
            fine.predict_position(ks.keys) - positions).mean()
        assert fine_err < coarse_err

    def test_segment_count_validated(self):
        with pytest.raises(ValueError):
            PiecewiseLinearRoot(0)

    def test_routing_mostly_correct(self, cdf):
        keys, positions = cdf
        root = PiecewiseLinearRoot(64).fit(keys, positions)
        routes = root.route(keys, keys.size, 20)
        truth = np.minimum(
            (positions * 20 / keys.size).astype(np.int64), 19)
        agreement = np.mean(routes == truth)
        assert agreement > 0.95


class TestMLPRoot:
    def test_learns_uniform_cdf(self, cdf):
        keys, positions = cdf
        root = MLPRoot(hidden=16, epochs=80, seed=1).fit(keys, positions)
        pred = root.predict_position(keys)
        rel_err = np.abs(pred - positions).mean() / keys.size
        assert rel_err < 0.05  # within 5% of the key count on average

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MLPRoot().predict_position(np.array([1.0]))

    def test_deterministic_given_seed(self, cdf):
        keys, positions = cdf
        a = MLPRoot(hidden=8, epochs=10, seed=3).fit(keys, positions)
        b = MLPRoot(hidden=8, epochs=10, seed=3).fit(keys, positions)
        assert np.allclose(a.predict_position(keys),
                           b.predict_position(keys))

    def test_hidden_units_validated(self):
        with pytest.raises(ValueError):
            MLPRoot(hidden=0)

    def test_scalar_input(self, cdf):
        keys, positions = cdf
        root = MLPRoot(hidden=8, epochs=10).fit(keys, positions)
        out = root.predict_position(np.array([keys[5]]))
        assert out.shape == (1,)


class TestBoundaryRoot:
    def test_routes_by_boundary(self):
        root = BoundaryRoot().fit_boundaries(
            np.array([0, 100, 200]), np.array([0.0, 10.0, 20.0]), 30)
        routes = root.route(np.array([5, 100, 150, 250]), 30, 3)
        assert routes.tolist() == [0, 1, 1, 2]

    def test_keys_below_first_boundary_clamp_to_zero(self):
        root = BoundaryRoot().fit_boundaries(
            np.array([10, 20]), np.array([0.0, 5.0]), 10)
        assert root.route(np.array([0]), 10, 2).tolist() == [0]

    def test_fit_is_disabled(self):
        with pytest.raises(NotImplementedError):
            BoundaryRoot().fit(np.array([1]), np.array([0.0]))
