"""Unit tests for repro.data.keyset (Domain and KeySet)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Domain, KeySet
from repro.data.keyset import as_keyset


class TestDomain:
    def test_size_inclusive(self):
        assert Domain(0, 9).size == 10

    def test_single_value_domain(self):
        assert Domain(5, 5).size == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Domain(10, 9)

    def test_rejects_negative_keys(self):
        with pytest.raises(ValueError):
            Domain(-1, 10)

    def test_contains(self):
        domain = Domain(10, 20)
        assert 10 in domain
        assert 20 in domain
        assert 9 not in domain
        assert 21 not in domain

    def test_contains_all_vectorised(self):
        domain = Domain(0, 100)
        assert domain.contains_all(np.array([0, 50, 100]))
        assert not domain.contains_all(np.array([0, 101]))

    def test_contains_all_empty(self):
        assert Domain(0, 10).contains_all(np.array([], dtype=np.int64))

    def test_of_size(self):
        domain = Domain.of_size(100, lo=5)
        assert domain.lo == 5
        assert domain.hi == 104
        assert domain.size == 100

    def test_of_size_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Domain.of_size(0)


class TestKeySetConstruction:
    def test_sorts_and_deduplicates(self):
        ks = KeySet([5, 1, 3, 1, 5])
        assert ks.keys.tolist() == [1, 3, 5]

    def test_default_domain_is_key_range(self):
        ks = KeySet([10, 30, 20])
        assert ks.domain == Domain(10, 30)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KeySet([])

    def test_rejects_out_of_domain(self):
        with pytest.raises(ValueError):
            KeySet([1, 100], Domain(0, 50))

    def test_keys_are_readonly(self):
        ks = KeySet([1, 2, 3])
        with pytest.raises(ValueError):
            ks.keys[0] = 99

    def test_accepts_numpy_array(self):
        ks = KeySet(np.array([4, 2, 8]))
        assert ks.keys.tolist() == [2, 4, 8]


class TestKeySetProperties:
    def test_n_m_density(self):
        ks = KeySet([0, 1, 2, 3], Domain(0, 9))
        assert ks.n == 4
        assert ks.m == 10
        assert ks.density == pytest.approx(0.4)

    def test_ranks_are_one_based(self):
        ks = KeySet([10, 20, 30])
        assert ks.ranks.tolist() == [1, 2, 3]

    def test_len_and_iter(self):
        ks = KeySet([3, 1, 2])
        assert len(ks) == 3
        assert list(ks) == [1, 2, 3]

    def test_contains(self):
        ks = KeySet([2, 4, 6])
        assert 4 in ks
        assert 5 not in ks

    def test_contains_boundaries(self):
        ks = KeySet([2, 4, 6])
        assert 2 in ks and 6 in ks
        assert 1 not in ks and 7 not in ks

    def test_equality(self):
        a = KeySet([1, 2], Domain(0, 5))
        b = KeySet([2, 1], Domain(0, 5))
        c = KeySet([1, 2], Domain(0, 6))
        assert a == b
        assert a != c

    def test_repr_mentions_size(self):
        assert "n=3" in repr(KeySet([1, 2, 3]))


class TestRankQueries:
    def test_rank_of_stored_key(self):
        ks = KeySet([10, 20, 30])
        assert ks.rank_of(10) == 1
        assert ks.rank_of(20) == 2
        assert ks.rank_of(30) == 3

    def test_rank_of_absent_key_is_insertion_rank(self):
        ks = KeySet([10, 20, 30])
        assert ks.rank_of(5) == 1
        assert ks.rank_of(15) == 2
        assert ks.rank_of(35) == 4

    def test_insertion_ranks_vectorised(self):
        ks = KeySet([10, 20, 30])
        got = ks.insertion_ranks(np.array([5, 15, 25, 35]))
        assert got.tolist() == [1, 2, 3, 4]


class TestInsert:
    def test_insert_shifts_ranks(self):
        ks = KeySet([10, 20, 30])
        out = ks.insert([15])
        assert out.keys.tolist() == [10, 15, 20, 30]
        assert out.rank_of(20) == 3  # compound effect: bumped by one

    def test_insert_is_pure(self):
        ks = KeySet([10, 20])
        ks.insert([15])
        assert ks.keys.tolist() == [10, 20]

    def test_insert_empty_returns_self(self):
        ks = KeySet([1, 2])
        assert ks.insert([]) is ks

    def test_insert_duplicate_rejected(self):
        ks = KeySet([10, 20])
        with pytest.raises(ValueError):
            ks.insert([20])

    def test_insert_out_of_domain_rejected(self):
        ks = KeySet([10, 20], Domain(0, 25))
        with pytest.raises(ValueError):
            ks.insert([30])

    def test_insert_multiple(self):
        ks = KeySet([10, 40], Domain(0, 50))
        out = ks.insert([20, 30])
        assert out.keys.tolist() == [10, 20, 30, 40]


class TestRemoveRestrictPartition:
    def test_remove(self):
        ks = KeySet([1, 2, 3, 4])
        assert ks.remove([2, 4]).keys.tolist() == [1, 3]

    def test_remove_keeps_domain(self):
        ks = KeySet([1, 2, 3], Domain(0, 10))
        assert ks.remove([2]).domain == Domain(0, 10)

    def test_restrict(self):
        ks = KeySet([1, 5, 9, 14])
        assert ks.restrict(4, 10).keys.tolist() == [5, 9]

    def test_restrict_inclusive_bounds(self):
        ks = KeySet([1, 5, 9])
        assert ks.restrict(5, 9).keys.tolist() == [5, 9]

    def test_partition_equal_sizes(self):
        ks = KeySet(list(range(100)))
        parts = ks.partition(4)
        assert [p.n for p in parts] == [25, 25, 25, 25]
        recombined = np.concatenate([p.keys for p in parts])
        assert recombined.tolist() == list(range(100))

    def test_partition_remainder_spreads_left(self):
        ks = KeySet(list(range(10)))
        parts = ks.partition(3)
        assert [p.n for p in parts] == [4, 3, 3]

    def test_partition_keeps_parent_domain(self):
        ks = KeySet([1, 2, 3, 4], Domain(0, 100))
        for part in ks.partition(2):
            assert part.domain == Domain(0, 100)

    def test_partition_bounds_checked(self):
        ks = KeySet([1, 2, 3])
        with pytest.raises(ValueError):
            ks.partition(0)
        with pytest.raises(ValueError):
            ks.partition(4)


class TestAsKeyset:
    def test_passthrough(self):
        ks = KeySet([1, 2])
        assert as_keyset(ks) is ks

    def test_coerces_list(self):
        ks = as_keyset([3, 1])
        assert isinstance(ks, KeySet)
        assert ks.keys.tolist() == [1, 3]


@given(st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_keyset_invariants_hold_for_any_input(raw):
    """Property: sorted, unique, 1-based contiguous ranks."""
    ks = KeySet(raw)
    assert np.all(np.diff(ks.keys) > 0)
    assert ks.ranks[0] == 1
    assert ks.ranks[-1] == ks.n
    assert ks.n == len(set(raw))


@given(st.lists(st.integers(min_value=0, max_value=5_000), min_size=2,
                max_size=100, unique=True),
       st.integers(min_value=0, max_value=5_000))
@settings(max_examples=60, deadline=None)
def test_insert_bumps_exactly_larger_keys(raw, new_key):
    """Property: inserting k bumps ranks of keys > k by exactly one."""
    ks = KeySet(raw, Domain(0, 5_000))
    if new_key in ks:
        return
    out = ks.insert([new_key])
    for key in ks.keys:
        before = ks.rank_of(int(key))
        after = out.rank_of(int(key))
        assert after - before == (1 if key > new_key else 0)
