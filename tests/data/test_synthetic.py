"""Unit tests for the synthetic keyset generators."""

import numpy as np
import pytest

from repro.data import Domain, KeySet
from repro.data.synthetic import (
    keyset_from_sampler,
    lognormal_keyset,
    normal_keyset,
    uniform_keyset,
)


class TestUniform:
    def test_exact_count_and_range(self, rng):
        ks = uniform_keyset(100, Domain(0, 999), rng)
        assert ks.n == 100
        assert ks.keys.min() >= 0
        assert ks.keys.max() <= 999

    def test_dense_request_uses_exact_sampling(self, rng):
        ks = uniform_keyset(90, Domain(0, 99), rng)
        assert ks.n == 90
        assert ks.density == pytest.approx(0.9)

    def test_full_density(self, rng):
        ks = uniform_keyset(10, Domain(0, 9), rng)
        assert ks.keys.tolist() == list(range(10))

    def test_rejects_overfull(self, rng):
        with pytest.raises(ValueError):
            uniform_keyset(11, Domain(0, 9), rng)

    def test_deterministic_given_seed(self):
        a = uniform_keyset(50, Domain(0, 500), np.random.default_rng(1))
        b = uniform_keyset(50, Domain(0, 500), np.random.default_rng(1))
        assert a == b

    def test_roughly_uniform_spread(self, rng):
        ks = uniform_keyset(5000, Domain(0, 99_999), rng)
        # Mean of Uniform[0, 1e5) is ~5e4; allow generous tolerance.
        assert abs(ks.keys.mean() - 50_000) < 3_000


class TestLognormal:
    def test_exact_count(self, rng):
        ks = lognormal_keyset(500, Domain(0, 49_999), rng)
        assert ks.n == 500

    def test_right_skew(self, rng):
        """Log-normal keys concentrate near the low end of the domain."""
        ks = lognormal_keyset(2000, Domain(0, 199_999), rng)
        assert np.median(ks.keys) < ks.keys.mean()
        assert np.median(ks.keys) < 0.2 * ks.domain.hi

    def test_custom_mu_sigma(self, rng):
        narrow = lognormal_keyset(200, Domain(0, 9_999), rng, sigma=0.5)
        assert narrow.n == 200


class TestNormal:
    def test_exact_count(self, rng):
        ks = normal_keyset(300, Domain(0, 2_999), rng)
        assert ks.n == 300

    def test_centered_on_domain_middle(self, rng):
        ks = normal_keyset(3000, Domain(0, 29_999), rng)
        mid = 15_000
        assert abs(ks.keys.astype(float).mean() - mid) < 0.1 * mid

    def test_single_value_domain(self, rng):
        ks = normal_keyset(1, Domain(7, 7), rng)
        assert ks.keys.tolist() == [7]


class TestSamplerHarness:
    def test_rejects_nonpositive_count(self, rng):
        with pytest.raises(ValueError):
            keyset_from_sampler(0, Domain(0, 9), lambda s: np.zeros(s), rng)

    def test_rejects_impossible_density(self, rng):
        with pytest.raises(ValueError):
            keyset_from_sampler(20, Domain(0, 9),
                                lambda s: np.arange(s), rng)

    def test_degenerate_sampler_raises(self, rng):
        with pytest.raises(RuntimeError):
            keyset_from_sampler(
                5, Domain(0, 100),
                lambda s: np.full(s, 42, dtype=np.int64), rng)

    def test_out_of_range_draws_are_discarded(self, rng):
        def sampler(size):
            return rng.integers(-50, 150, size=size)
        ks = keyset_from_sampler(30, Domain(0, 99), sampler, rng)
        assert isinstance(ks, KeySet)
        assert ks.keys.min() >= 0
        assert ks.keys.max() <= 99
