"""Unit tests for the simulated real-world datasets (Sec. V-C stand-ins)."""

import numpy as np
import pytest

from repro.data import (
    OSM_DOMAIN,
    OSM_N,
    SALARY_DOMAIN,
    SALARY_N,
    miami_salaries,
    osm_school_latitudes,
)


class TestMiamiSalaries:
    def test_published_statistics(self, rng):
        ks = miami_salaries(rng)
        assert ks.n == SALARY_N == 5_300
        assert ks.domain == SALARY_DOMAIN
        assert ks.m == 167_302  # inclusive [22733, 190034]
        # The paper quotes 3.71% density, but its own n and m give
        # 5300 / 167301 = 3.17%; we pin the arithmetic truth.
        assert ks.density == pytest.approx(5_300 / 167_302, rel=1e-9)

    def test_right_skewed_like_salaries(self, rng):
        ks = miami_salaries(rng)
        median = float(np.median(ks.keys))
        mean = float(ks.keys.mean())
        assert median < mean  # long right tail

    def test_body_in_plausible_band(self, rng):
        ks = miami_salaries(rng)
        q25, q75 = np.percentile(ks.keys, [25, 75])
        assert 35_000 < q25 < 80_000
        assert 60_000 < q75 < 130_000

    def test_scaled_down_variant(self, rng):
        ks = miami_salaries(rng, n=500)
        assert ks.n == 500
        assert ks.domain == SALARY_DOMAIN

    def test_deterministic_given_seed(self):
        a = miami_salaries(np.random.default_rng(9), n=400)
        b = miami_salaries(np.random.default_rng(9), n=400)
        assert a == b


class TestOsmLatitudes:
    def test_scaled_statistics(self, rng):
        ks = osm_school_latitudes(rng, n=20_000)
        assert ks.n == 20_000
        assert ks.domain == OSM_DOMAIN
        assert ks.keys.min() >= 0
        assert ks.keys.max() <= 1_199_999

    def test_published_cardinality_constant(self):
        assert OSM_N == 302_973
        assert OSM_DOMAIN.size == 1_200_000

    def test_banded_structure(self, rng):
        """Latitude bumps produce distinctly non-uniform mass."""
        ks = osm_school_latitudes(rng, n=30_000)
        counts, _ = np.histogram(ks.keys, bins=16,
                                 range=(0, OSM_DOMAIN.size))
        # Strong imbalance between the fullest and emptiest band.
        assert counts.max() > 4 * max(counts.min(), 1)

    def test_northern_hemisphere_heavier(self, rng):
        """Most schools sit above the equator (key > 30 deg * 15000)."""
        ks = osm_school_latitudes(rng, n=30_000)
        equator_key = 30.0 * 15_000
        north = np.sum(ks.keys > equator_key)
        assert north > 0.6 * ks.n
