"""Density-based anomaly scoring for poisoned keysets.

Section VI observes that the attack "populates relatively dense areas
of the key space".  A natural counter-heuristic is therefore to flag
keys sitting in anomalously dense neighbourhoods.  This module
implements that detector so its (in)effectiveness can be measured:
because the attack targets regions that are *already* dense with
legitimate keys, the detector's flags hit legitimate neighbours nearly
as often as poisoning keys — which the defense benchmarks quantify
with precision/recall.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DetectionReport", "density_anomaly_scores", "flag_densest_keys",
           "score_detection"]


def density_anomaly_scores(keys: np.ndarray, window: int = 8) -> np.ndarray:
    """Local-density score per key (higher = denser neighbourhood).

    The score of a key is the reciprocal of the average gap to its
    ``window`` nearest sorted neighbours on each side, normalised by
    the global average gap.  A key whose neighbourhood is ten times
    denser than the dataset average scores ~10.
    """
    arr = np.sort(np.asarray(keys, dtype=np.float64))
    n = arr.size
    if n < 2:
        return np.ones(n)
    if window < 1:
        raise ValueError(f"window must be positive: {window}")
    span = arr[-1] - arr[0]
    if span == 0:
        return np.ones(n)
    global_gap = span / (n - 1)

    # Average distance to the w-th neighbour on each side, clamped at
    # the array edges.
    idx = np.arange(n)
    left = np.maximum(idx - window, 0)
    right = np.minimum(idx + window, n - 1)
    width = arr[right] - arr[left]
    neighbours = (right - left).astype(np.float64)
    local_gap = np.where(neighbours > 0, width / neighbours, global_gap)
    local_gap = np.maximum(local_gap, 1e-12)
    return global_gap / local_gap


def flag_densest_keys(keys: np.ndarray, n_flags: int,
                      window: int = 8) -> np.ndarray:
    """The ``n_flags`` keys with the highest density anomaly scores."""
    arr = np.sort(np.asarray(keys, dtype=np.int64))
    if not 0 <= n_flags <= arr.size:
        raise ValueError(f"n_flags {n_flags} out of range for {arr.size}")
    if n_flags == 0:
        return arr[:0]
    scores = density_anomaly_scores(arr, window)
    picked = np.argpartition(scores, -n_flags)[-n_flags:]
    return np.sort(arr[picked])


@dataclass(frozen=True)
class DetectionReport:
    """Precision/recall of a defense's flags vs ground-truth poison."""

    n_flagged: int
    n_poison: int
    true_positives: int

    @property
    def precision(self) -> float:
        if self.n_flagged == 0:
            return 1.0
        return self.true_positives / self.n_flagged

    @property
    def recall(self) -> float:
        if self.n_poison == 0:
            return 1.0
        return self.true_positives / self.n_poison

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2 * p * r / (p + r)


def score_detection(flagged: np.ndarray,
                    poison_keys: np.ndarray) -> DetectionReport:
    """Score a set of flagged keys against the true poisoning set."""
    flagged = np.asarray(flagged, dtype=np.int64)
    poison = np.asarray(poison_keys, dtype=np.int64)
    tp = int(np.isin(flagged, poison).sum())
    return DetectionReport(n_flagged=int(flagged.size),
                           n_poison=int(poison.size),
                           true_positives=tp)
