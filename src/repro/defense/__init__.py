"""Defense substrate: the mitigations Section VI discusses."""

from .density import (
    DetectionReport,
    density_anomaly_scores,
    flag_densest_keys,
    score_detection,
)
from .sanitize import (
    SanitizeReport,
    filter_out_of_range,
    filter_quantile_outliers,
)
from .trim import TrimResult, trim_cdf, trim_regression

__all__ = [
    "TrimResult",
    "trim_regression",
    "trim_cdf",
    "SanitizeReport",
    "filter_out_of_range",
    "filter_quantile_outliers",
    "DetectionReport",
    "density_anomaly_scores",
    "flag_densest_keys",
    "score_detection",
]
