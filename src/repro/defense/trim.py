"""TRIM (Jagielski et al., S&P'18) adapted to CDF regressions.

TRIM defends linear regression against poisoning by alternating two
steps: fit on a working subset of the expected clean size ``n``, then
re-select the ``n`` points with the smallest residuals.  On classic
regression poisoning it provably converges to a low-loss subset.

Section VI of the paper argues TRIM struggles against CDF poisoning
for two reasons we make testable here:

1. **ranks are relational** — removing a point changes the rank (the
   Y-value) of every larger key, so the defense must re-rank its
   working subset at every iteration (the :func:`trim_cdf` variant;
   the classic :func:`trim_regression` keeps Y fixed and is subtly
   wrong in this setting);
2. **poisoning keys hide in dense regions** — residual-based selection
   cannot separate them from their legitimate neighbours without also
   dropping legitimate keys.

Both variants report which keys they kept so experiments can score
precision/recall against the ground-truth poisoning set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cdf_regression import fit_cdf_regression

__all__ = ["TrimResult", "trim_regression", "trim_cdf"]

_MAX_ITERATIONS = 400


@dataclass(frozen=True)
class TrimResult:
    """Outcome of a TRIM run.

    Attributes
    ----------
    kept_keys:
        The keys the defense believes are legitimate (sorted).
    removed_keys:
        The keys it flagged as poisoning (sorted).
    iterations:
        Alternating-minimisation rounds until the kept set stabilised.
    converged:
        False when the iteration cap was hit first.
    final_loss:
        MSE of the regression on the kept subset (re-ranked for the
        CDF variant).
    """

    kept_keys: np.ndarray
    removed_keys: np.ndarray
    iterations: int
    converged: bool
    final_loss: float

    def recall_against(self, poison_keys: np.ndarray) -> float:
        """Fraction of true poisoning keys that were removed."""
        poison = np.asarray(poison_keys)
        if poison.size == 0:
            return 1.0
        hit = np.isin(poison, self.removed_keys).sum()
        return float(hit) / poison.size

    def precision_against(self, poison_keys: np.ndarray) -> float:
        """Fraction of removed keys that are truly poisoning."""
        if self.removed_keys.size == 0:
            return 1.0
        hit = np.isin(self.removed_keys, np.asarray(poison_keys)).sum()
        return float(hit) / self.removed_keys.size


def _fit_line(x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
    mx, my = x.mean(), y.mean()
    dx = x - mx
    var = float(dx @ dx)
    if var == 0.0:
        return 0.0, float(my)
    slope = float(dx @ (y - my)) / var
    return slope, float(my - slope * mx)


def trim_regression(keys: np.ndarray, responses: np.ndarray, n_keep: int,
                    seed: int = 0) -> TrimResult:
    """Classic TRIM on fixed (x, y) pairs.

    This is the original algorithm: responses never change, only the
    selected subset does.  Applied to a poisoned CDF it evaluates
    residuals against *stale* ranks, the first failure mode Sec. VI
    points out.
    """
    keys = np.asarray(keys, dtype=np.float64)
    responses = np.asarray(responses, dtype=np.float64)
    if keys.size != responses.size:
        raise ValueError("keys and responses must align")
    if not 1 <= n_keep <= keys.size:
        raise ValueError(f"n_keep {n_keep} out of range for {keys.size}")

    rng = np.random.default_rng(seed)
    kept = np.sort(rng.choice(keys.size, size=n_keep, replace=False))
    for iteration in range(1, _MAX_ITERATIONS + 1):
        slope, intercept = _fit_line(keys[kept], responses[kept])
        residuals = np.abs(slope * keys + intercept - responses)
        new_kept = np.sort(np.argpartition(residuals, n_keep - 1)[:n_keep])
        if np.array_equal(new_kept, kept):
            break
        kept = new_kept
    converged = iteration < _MAX_ITERATIONS
    mask = np.zeros(keys.size, dtype=bool)
    mask[kept] = True
    final = fit_cdf_regression(keys[mask], responses[mask]).mse
    return TrimResult(
        kept_keys=np.sort(keys[mask]).astype(np.int64),
        removed_keys=np.sort(keys[~mask]).astype(np.int64),
        iterations=iteration,
        converged=converged,
        final_loss=final)


def trim_cdf(poisoned_keys: np.ndarray, n_keep: int,
             seed: int = 0) -> TrimResult:
    """Rank-aware TRIM for CDF regressions.

    At each round the working subset is *re-ranked* (its members get
    ranks ``1..n_keep``) before fitting, and every candidate key is
    scored by the residual against the rank it **would** have inside
    the current subset.  This is the iterative re-calibration Sec. VI
    describes as necessary — and expensive — for the CDF setting.
    """
    keys = np.sort(np.asarray(poisoned_keys, dtype=np.int64))
    total = keys.size
    if not 1 <= n_keep <= total:
        raise ValueError(f"n_keep {n_keep} out of range for {total}")

    rng = np.random.default_rng(seed)
    kept_mask = np.zeros(total, dtype=bool)
    kept_mask[rng.choice(total, size=n_keep, replace=False)] = True

    iteration = 0
    for iteration in range(1, _MAX_ITERATIONS + 1):
        subset = keys[kept_mask].astype(np.float64)
        ranks = np.arange(1, n_keep + 1, dtype=np.float64)
        slope, intercept = _fit_line(subset, ranks)
        # Hypothetical rank of *every* key inside the current subset.
        hypothetical = np.searchsorted(subset, keys, side="left") + 1
        residuals = np.abs(slope * keys + intercept - hypothetical)
        new_mask = np.zeros(total, dtype=bool)
        new_mask[np.argpartition(residuals, n_keep - 1)[:n_keep]] = True
        if np.array_equal(new_mask, kept_mask):
            break
        kept_mask = new_mask
    converged = iteration < _MAX_ITERATIONS

    kept = keys[kept_mask]
    final = fit_cdf_regression(
        kept.astype(np.float64),
        np.arange(1, kept.size + 1, dtype=np.float64)).mse
    return TrimResult(
        kept_keys=kept,
        removed_keys=keys[~kept_mask],
        iterations=iteration,
        converged=converged,
        final_loss=final)
