"""Input sanitizers the attack is designed to evade.

Section IV-C motivates the in-range restriction of the attack: keys
outside the legitimate range, and extreme outliers, "can be detected
and eliminated by known mitigations".  These are those mitigations.
Tests verify both that they *do* catch naive out-of-range poisoning
and that they catch *none* of the paper's in-range poisoning keys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.keyset import Domain

__all__ = ["SanitizeReport", "filter_out_of_range", "filter_quantile_outliers"]


@dataclass(frozen=True)
class SanitizeReport:
    """Keys that survived sanitisation and keys that were dropped."""

    kept: np.ndarray
    dropped: np.ndarray

    @property
    def n_dropped(self) -> int:
        return int(self.dropped.size)


def filter_out_of_range(keys: np.ndarray, trusted: Domain) -> SanitizeReport:
    """Drop keys outside a trusted domain (e.g. the key schema range)."""
    arr = np.asarray(keys, dtype=np.int64)
    mask = (arr >= trusted.lo) & (arr <= trusted.hi)
    return SanitizeReport(kept=np.sort(arr[mask]),
                          dropped=np.sort(arr[~mask]))


def filter_quantile_outliers(keys: np.ndarray,
                             tail_fraction: float = 0.01) -> SanitizeReport:
    """Drop the extreme ``tail_fraction`` of keys at each end.

    A blunt robust-statistics mitigation; the paper's attack clusters
    its insertions inside *dense interior* regions precisely so that
    tail trimming removes legitimate keys instead of poisoning keys.
    """
    if not 0.0 <= tail_fraction < 0.5:
        raise ValueError(
            f"tail fraction must be in [0, 0.5), got {tail_fraction}")
    arr = np.sort(np.asarray(keys, dtype=np.int64))
    if tail_fraction == 0.0 or arr.size < 3:
        return SanitizeReport(kept=arr, dropped=arr[:0])
    lo = np.quantile(arr, tail_fraction)
    hi = np.quantile(arr, 1.0 - tail_fraction)
    mask = (arr >= lo) & (arr <= hi)
    return SanitizeReport(kept=arr[mask], dropped=arr[~mask])
