"""repro — poisoning attacks on learned index structures.

A from-scratch Python reproduction of Kornaropoulos, Ren and Tamassia,
"The Price of Tailoring the Index to Your Data: Poisoning Attacks on
Learned Index Structures" (SIGMOD 2022).

Public API tour:

* ``repro.data`` — keysets, key domains, workload generators;
* ``repro.core`` — the attacks (single-point, greedy, RMI) and the
  closed-form CDF regression they target;
* ``repro.index`` — learned index substrate (linear index, two-stage
  RMI, B-Tree baseline, lookup cost model);
* ``repro.defense`` — TRIM and the other Section VI mitigations;
* ``repro.runtime`` — parallel, resumable sweep engine (cells,
  checkpoints, process-pool fan-out);
* ``repro.workload`` — streaming traces, serving backends, the
  online simulator, and the closed-loop policies on its feedback
  ports;
* ``repro.cluster`` — sharded multi-tenant serving (CDF-partitioned
  shard maps, routing, rebalancing, SLO-weighted defense);
* ``repro.experiments`` — per-figure reproduction harness.

Quick taste::

    import numpy as np
    from repro.data import Domain, uniform_keyset
    from repro.core import greedy_poison

    keys = uniform_keyset(1000, Domain.of_size(10_000),
                          np.random.default_rng(0))
    attack = greedy_poison(keys, n_poison=100)
    print(f"MSE inflated {attack.ratio_loss:.1f}x")
"""

from . import core, data, defense, index, runtime
from .core import (
    AttackerCapability,
    GreedyResult,
    RMIAttackerCapability,
    RMIAttackResult,
    SinglePointResult,
    fit_cdf_regression,
    greedy_poison,
    optimal_single_point,
    poison_rmi,
)
from .data import Domain, KeySet

__version__ = "1.0.0"

__all__ = [
    "core",
    "data",
    "defense",
    "index",
    "runtime",
    "Domain",
    "KeySet",
    "fit_cdf_regression",
    "optimal_single_point",
    "greedy_poison",
    "poison_rmi",
    "SinglePointResult",
    "GreedyResult",
    "RMIAttackResult",
    "AttackerCapability",
    "RMIAttackerCapability",
]
