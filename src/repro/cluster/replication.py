"""k-replica shard groups: quorum reads + divergence detection.

One :class:`ReplicaGroup` fronts ``k`` worker processes (one
:class:`~repro.cluster.transport.WorkerClient` each) serving the same
key range, and implements the single-backend surface the
:class:`~repro.cluster.router.ClusterRouter` drives — so the whole
router stack (fan-out, migrations, defense hooks) works unchanged on
top.  Semantics:

* **mutations broadcast** to every live replica in replica order, so
  healthy replicas stay bit-identical;
* **reads quorum**: each query is served by all live replicas and
  combined per slot — membership by majority vote, probe cost as the
  q-th smallest (``q = n_live // 2 + 1``), i.e. the moment the
  q-th-fastest replica answers.  ``read_mode="primary"`` instead
  trusts the lowest-index live replica alone (the naive arm of the
  poisoned-replica duel);
* **divergence detection**: a poisoned replica serves *valid-looking*
  results, so byte-level checks can't see it — but its error-bound
  series drifts.  :class:`DivergenceDetector` compares each replica's
  error bound against the group median each tick; a replica outside
  the tolerance band for ``patience`` consecutive ticks is flagged
  poisoned and quarantined in the transport book (no further
  traffic), turning the paper's attack into a detectable fleet-level
  event.

:class:`TransportClusterRouter` is the cross-process cluster: it
overrides the router's single ``_make_backend`` seam to spawn replica
groups, carries the shared :class:`TransportBook`, and closes worker
fleets on migration/teardown.  With injection off and ``k`` healthy
replicas the group is pinned bit-identical to one in-process backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..workload.backends import BACKENDS
from ..workload.trace import OP_INSERT, OP_QUERY, OP_RANGE
from .router import ClusterRouter
from .shardmap import ShardMap
from .transport import (
    ReplicaDeadError,
    TransportBook,
    TransportConfig,
    WorkerClient,
    spawn_context,
)

__all__ = ["DivergenceConfig", "DivergenceDetector", "ReplicaGroup",
           "TransportClusterRouter"]


@dataclass(frozen=True)
class DivergenceConfig:
    """Tolerance band of the poisoned-replica detector.

    A replica is *out of band* in a tick when its error bound differs
    from the group median by more than ``tolerance * median + slack``
    (the absolute slack keeps tiny healthy wobbles on near-zero
    bounds from counting).  ``patience`` consecutive out-of-band
    ticks flag it — a single retrain blip self-clears.
    """

    tolerance: float = 0.5
    slack: float = 2.0
    patience: int = 2


class DivergenceDetector:
    """Per-group strike counter over replica error-bound series."""

    def __init__(self, config: DivergenceConfig, n_replicas: int):
        self._cfg = config
        self._strikes = [0] * n_replicas

    def observe(self, bounds: "list[tuple[int, float]]",
                ) -> "list[int]":
        """Feed one tick's live ``(replica, error_bound)`` pairs;
        returns replicas newly crossing the patience threshold."""
        if len(bounds) < 3:
            return []  # no majority of peers to define "normal"
        median = float(np.median([b for _, b in bounds]))
        band = self._cfg.tolerance * median + self._cfg.slack
        flagged = []
        for replica, bound in bounds:
            if abs(bound - median) > band:
                self._strikes[replica] += 1
                if self._strikes[replica] == self._cfg.patience:
                    flagged.append(replica)
            else:
                self._strikes[replica] = 0
        return flagged


class ReplicaGroup:
    """``k`` worker replicas of one shard behind the backend surface."""

    def __init__(self, book: TransportBook, shard: int, backend: str,
                 keys: np.ndarray, rebuild_threshold: float,
                 build_args: dict, n_replicas: int = 1,
                 read_mode: str = "quorum",
                 divergence: "DivergenceConfig | None" = None,
                 ctx: Any = None):
        if n_replicas < 1:
            raise ValueError(
                f"a shard group needs >= 1 replica: {n_replicas}")
        if read_mode not in ("quorum", "primary"):
            raise ValueError(f"unknown read mode: {read_mode!r}")
        self._book = book
        self._shard = int(shard)
        self._read_mode = read_mode
        self._threshold = rebuild_threshold
        self._keep: "float | None" = None
        self.supports_trim = BACKENDS[backend].supports_trim
        self._detector = (None if divergence is None
                          else DivergenceDetector(divergence,
                                                  n_replicas))
        self._flagged: "list[int]" = []
        self._closed = False
        ctx = ctx if ctx is not None else spawn_context()
        self._replicas = [
            WorkerClient(book, shard, r, backend, rebuild_threshold,
                         build_args, keys, ctx=ctx)
            for r in range(n_replicas)]

    # -- liveness ------------------------------------------------------
    @property
    def shard(self) -> int:
        return self._shard

    @property
    def n_replicas(self) -> int:
        return len(self._replicas)

    @property
    def flagged(self) -> "tuple[int, ...]":
        """Replicas the divergence detector flagged as poisoned."""
        return tuple(self._flagged)

    def _live(self) -> "list[tuple[int, WorkerClient]]":
        return [(i, client)
                for i, client in enumerate(self._replicas)
                if self._book.healthy(self._shard, i)]

    def _primary(self) -> "WorkerClient | None":
        live = self._live()
        return live[0][1] if live else None

    def live_replicas(self) -> "list[int]":
        return [i for i, _ in self._live()]

    # -- read combining ------------------------------------------------
    @staticmethod
    def _combine(rows: "list[tuple[np.ndarray, np.ndarray]]",
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Quorum-combine per read slot across replica answers.

        Found is the majority vote; the probe cost is the q-th
        smallest across replicas — a quorum read completes when the
        q-th-cheapest replica has answered, so one slow (poisoned)
        replica cannot inflate the served latency once flagged or
        outvoted.
        """
        if len(rows) == 1:
            return rows[0]
        quorum = len(rows) // 2 + 1
        found = np.stack([f for f, _ in rows]).sum(axis=0) >= quorum
        probes = np.sort(np.stack([p for _, p in rows]),
                         axis=0)[quorum - 1]
        return found, probes

    def _read_rows(self, rows: "list[tuple[int, np.ndarray, np.ndarray]]",
                   n_reads: int) -> tuple[np.ndarray, np.ndarray]:
        if not rows:  # total outage: every read misses at zero cost
            return (np.zeros(n_reads, dtype=bool),
                    np.zeros(n_reads, dtype=np.int64))
        if self._read_mode == "primary":
            primary = min(r for r, _, _ in rows)
            return next((f, p) for r, f, p in rows if r == primary)
        return self._combine([(f, p) for _, f, p in rows])

    # -- serving surface (mirrors ServingBackend) ----------------------
    def replay_ops(self, kinds: np.ndarray, keys: np.ndarray,
                   aux: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        kinds = np.asarray(kinds)
        n_reads = int(((kinds == OP_QUERY)
                       | (kinds == OP_RANGE)).sum())
        rows = []
        for i, client in self._live():
            ek, ekey, eaux = kinds, keys, aux
            poison = self._book.poison_keys(self._shard, i)
            if poison.size:
                # The compromise channel: extra inserts appended to
                # this replica's batch only, after the tick's real
                # ops — reads this tick still agree, the divergence
                # shows up in the next ticks' error bounds.
                ek = np.concatenate([
                    ek, np.full(poison.size, OP_INSERT,
                                dtype=kinds.dtype)])
                ekey = np.concatenate([
                    np.asarray(ekey, dtype=np.int64), poison])
                eaux = np.concatenate([
                    np.asarray(eaux, dtype=np.int64),
                    np.zeros(poison.size, dtype=np.int64)])
            try:
                found, probes = client.replay(ek, ekey, eaux)
            except ReplicaDeadError:
                continue
            rows.append((i, found, probes))
        return self._read_rows(rows, n_reads)

    def lookup_batch(self, keys: np.ndarray,
                     ) -> tuple[np.ndarray, np.ndarray]:
        keys = np.asarray(keys, dtype=np.int64)
        targets = self._live()
        if self._read_mode == "primary" and targets:
            targets = targets[:1]
        rows = []
        for i, client in targets:
            try:
                found, probes = client.lookup(keys)
            except ReplicaDeadError:
                continue
            rows.append((i, found, probes))
        return self._read_rows(rows, keys.size)

    def range_scan(self, lo: int, hi: int) -> int:
        targets = self._live()
        if self._read_mode == "primary" and targets:
            targets = targets[:1]
        costs = []
        for _, client in targets:
            try:
                costs.append(client.range_scan(lo, hi))
            except ReplicaDeadError:
                continue
        if not costs:
            return 0
        if self._read_mode == "primary":
            return costs[0]
        return int(sorted(costs)[len(costs) // 2 + 1 - 1])

    def insert_batch(self, keys: np.ndarray) -> None:
        for _, client in self._live():
            try:
                client.insert(keys)
            except ReplicaDeadError:
                continue

    def delete_batch(self, keys: np.ndarray) -> None:
        for _, client in self._live():
            try:
                client.delete(keys)
            except ReplicaDeadError:
                continue

    def rebuild(self) -> None:
        for _, client in self._live():
            try:
                client.rebuild()
            except ReplicaDeadError:
                continue

    # -- scalar surface (primary replica's view) -----------------------
    @property
    def n_keys(self) -> int:
        primary = self._primary()
        return 0 if primary is None else primary.stats().n_keys

    @property
    def retrain_count(self) -> int:
        primary = self._primary()
        return (0 if primary is None
                else primary.stats().retrain_count)

    @property
    def pending_updates(self) -> int:
        primary = self._primary()
        return (0 if primary is None
                else primary.stats().pending_updates)

    @property
    def quarantine_size(self) -> int:
        primary = self._primary()
        return (0 if primary is None
                else primary.stats().quarantine_size)

    def error_bound(self) -> float:
        primary = self._primary()
        return 0.0 if primary is None else primary.stats().error_bound

    def live_keys(self) -> np.ndarray:
        primary = self._primary()
        return (np.empty(0, dtype=np.int64) if primary is None
                else primary.live_keys())

    def state_digest(self) -> str:
        primary = self._primary()
        return "dead" if primary is None else primary.digest()

    def replica_digests(self) -> "list[str]":
        return [client.digest() for _, client in self._live()]

    # -- tuner hooks (router is the only writer, so the local copy
    # is authoritative and costs no round trip) -----------------------
    @property
    def rebuild_threshold(self) -> float:
        return self._threshold

    @property
    def trim_keep_fraction(self) -> "float | None":
        return self._keep

    def set_rebuild_threshold(self, threshold: float) -> None:
        self._threshold = threshold
        for _, client in self._live():
            try:
                client.set_rebuild_threshold(threshold)
            except ReplicaDeadError:
                continue

    def set_trim_keep_fraction(self, fraction: "float | None") -> None:
        self._keep = fraction
        for _, client in self._live():
            try:
                client.set_trim_keep_fraction(fraction)
            except ReplicaDeadError:
                continue

    # -- divergence detection ------------------------------------------
    def detect(self) -> "list[int]":
        """One detector tick: poll live error bounds, quarantine any
        replica out of band for ``patience`` consecutive ticks."""
        if self._detector is None:
            return []
        bounds = []
        for i, client in self._live():
            try:
                bounds.append((i, client.stats().error_bound))
            except ReplicaDeadError:
                continue
        flagged = self._detector.observe(bounds)
        for replica in flagged:
            self._book.quarantine_replica(self._shard, replica)
            self._flagged.append(replica)
        return flagged

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for client in self._replicas:
            client.close()


class TransportClusterRouter(ClusterRouter):
    """The cross-process cluster: worker-process replica groups under
    the unchanged router logic.

    Only :meth:`_make_backend` differs from the in-process router —
    each shard becomes a :class:`ReplicaGroup` of ``replicas`` worker
    processes sharing this router's :class:`TransportBook` — plus the
    transport bookkeeping the simulator reads (:meth:`start_tick`,
    :meth:`transport_tick_stats`) and worker-fleet lifecycle
    (migrations close orphaned groups; use as a context manager or
    call :meth:`close`).

    Divergence detection is armed by default (it only acts when a
    group has >= 3 live replicas — below that there is no majority of
    peers to define "normal") and is forced off with
    ``detect_divergence=False`` (the naive arm of the
    poisoned-replica duel).
    """

    def __init__(self, shard_map: ShardMap, keys: np.ndarray,
                 backend: str, *,
                 transport: "TransportConfig | None" = None,
                 replicas: int = 1, read_mode: str = "quorum",
                 divergence: "DivergenceConfig | None" = None,
                 detect_divergence: bool = True,
                 **router_args: Any):
        self._book = TransportBook(transport
                                   if transport is not None
                                   else TransportConfig())
        self._n_replicas = int(replicas)
        self._read_mode = read_mode
        if not detect_divergence:
            self._divergence = None
        else:
            self._divergence = (divergence if divergence is not None
                                else DivergenceConfig())
        self._ctx = spawn_context()
        self._spawned: "list[ReplicaGroup]" = []
        super().__init__(shard_map, keys, backend, **router_args)

    @property
    def book(self) -> TransportBook:
        return self._book

    def set_metrics(self, metrics) -> None:
        # Replica groups have no registry of their own; the book
        # carries it for every WorkerClient under this router.
        super().set_metrics(metrics)
        self._book.set_metrics(metrics)

    def _make_backend(self, keys: np.ndarray, threshold: float,
                      shard: int) -> ReplicaGroup:
        group = ReplicaGroup(
            self._book, shard, self._backend_name, keys, threshold,
            self._build_args, n_replicas=self._n_replicas,
            read_mode=self._read_mode, divergence=self._divergence,
            ctx=self._ctx)
        self._spawned.append(group)
        return group

    def apply_map(self, new_map: ShardMap) -> int:
        migrated = super().apply_map(new_map)
        current = {id(s) for s in self._shards if s is not None}
        for group in self._spawned:
            if id(group) not in current:
                group.close()
        self._spawned = [g for g in self._spawned
                         if id(g) in current]
        return migrated

    # -- transport surface ---------------------------------------------
    def start_tick(self, tick: int) -> None:
        self._book.start_tick(tick)

    def transport_tick_stats(self) -> tuple[int, int, float]:
        for group in self._shards:
            if group is not None:
                group.detect()
        return self._book.drain_tick_stats()

    def flagged_replicas(self) -> "list[tuple[int, int]]":
        return self._book.flagged()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        for group in self._spawned:
            group.close()

    def __enter__(self) -> "TransportClusterRouter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
