"""Cross-process shard transport: workers, wire protocol, fault book.

The in-process :class:`~repro.cluster.router.ClusterRouter` stops at
thread fan-out over shared-memory backends; this module is the real
transport underneath it.  Each shard replica is a **worker process**
hosting an unmodified :mod:`repro.workload.backends` backend and
speaking a versioned binary protocol over a pipe — the columnar
``replay_ops`` event runs are the wire unit, serialized by
:func:`repro.workload.columnar.encode_event_batch` rather than
pickled Python objects.  Three layers:

* **protocol** — framed request/reply messages (``version, code,
  seq`` header + packed body); a version mismatch or an unknown code
  fails loudly on either side, and a worker-side exception comes back
  as an ERR frame the client re-raises as :class:`ShardWorkerError`
  with the shard id attached;
* **worker** — :func:`shard_worker_main`, the per-process serve loop
  (build backend from a build spec, then dispatch until SHUTDOWN or
  the parent hangs up), shaped after the per-round server loop of
  SNIPPETS Snippet 1;
* **router-side book** — :class:`TransportBook` holds the injected
  latency/failure models (seeded via ``stable_seed_words``:
  deterministic per ``(shard, replica, tick, seq)``), the per-request
  timeout + capped exponential-backoff retry policy, the failover
  budget after which a replica is declared dead, and the per-tick
  degradation/latency accounting the simulator records as first-class
  series.

Worker processes start through a ``forkserver`` context where the
platform has one (fork-from-a-threaded-router is unsafe, raw spawn
pays a fresh interpreter per worker) and fall back to ``spawn``.
With injection off the book is pure pass-through — the parity suite
pins a process-transport cluster bit-identical to the in-process
router.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import struct
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..contracts import (
    FRAME as _FRAME,
    MSG_DELETE,
    MSG_DIGEST,
    MSG_INSERT,
    MSG_LIVE_KEYS,
    MSG_LOOKUP,
    MSG_RANGE,
    MSG_REBUILD,
    MSG_REPLAY,
    MSG_SET_KEEP,
    MSG_SET_THRESHOLD,
    MSG_SHUTDOWN,
    MSG_STATS,
    PROTOCOL_VERSION,
    REPLY_ERR,
    REPLY_OK,
    ContractViolation,
)
from ..runtime.cell import stable_seed_words
from ..workload.backends import ServingBackend, make_backend
from ..workload.columnar import decode_event_batch, encode_event_batch

__all__ = [
    "PROTOCOL_VERSION", "FaultSpec", "TransportConfig",
    "TransportBook", "WorkerClient", "WorkerStats",
    "ProtocolError", "ShardWorkerError", "ReplicaDeadError",
    "shard_worker_main",
]

# The frame header layout, the message-code registry, and the protocol
# version are declared once in :mod:`repro.contracts`; this module
# implements both endpoints and re-exports the names its established
# importers use.

_STATS = struct.Struct("<qqqqddd")


class ProtocolError(ContractViolation):
    """Malformed or version-mismatched frame on the shard wire."""


class ShardWorkerError(RuntimeError):
    """A worker's dispatch raised; re-raised router-side with the
    shard id attached so the failing range is identifiable."""

    def __init__(self, shard: int, message: str):
        super().__init__(f"shard {shard} worker: {message}")
        self.shard = shard


class ReplicaDeadError(RuntimeError):
    """A replica exhausted its failover budget and was declared dead.

    The replica group catches this and degrades (re-routes reads to
    the surviving replicas); it only escapes to the caller when a
    whole group is gone.
    """

    def __init__(self, shard: int, replica: int):
        super().__init__(
            f"shard {shard} replica {replica} declared dead")
        self.shard = shard
        self.replica = replica


# ---------------------------------------------------------------------
# Frame + body packing
# ---------------------------------------------------------------------
def _frame(code: int, seq: int, body: bytes = b"") -> bytes:
    return _FRAME.pack(PROTOCOL_VERSION, code, seq) + body


def _parse_frame(raw: bytes) -> tuple[int, int, bytes]:
    if len(raw) < _FRAME.size:
        raise ProtocolError(f"short frame: {len(raw)} bytes")
    version, code, seq = _FRAME.unpack_from(raw)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"frame version {version} != supported "
            f"{PROTOCOL_VERSION}")
    return code, seq, raw[_FRAME.size:]


def _pack_i64(arr: np.ndarray) -> bytes:
    arr = np.ascontiguousarray(arr, dtype="<i8")
    return struct.pack("<Q", arr.size) + arr.tobytes()


def _unpack_i64(buf: bytes, off: int) -> tuple[np.ndarray, int]:
    (n,) = struct.unpack_from("<Q", buf, off)
    off += 8
    arr = np.frombuffer(buf, dtype="<i8", count=n,
                        offset=off).astype(np.int64)
    return arr, off + 8 * n


def _pack_bool(arr: np.ndarray) -> bytes:
    arr = np.ascontiguousarray(arr, dtype=np.uint8)
    return struct.pack("<Q", arr.size) + arr.tobytes()


def _unpack_bool(buf: bytes, off: int) -> tuple[np.ndarray, int]:
    (n,) = struct.unpack_from("<Q", buf, off)
    off += 8
    arr = np.frombuffer(buf, dtype=np.uint8, count=n,
                        offset=off).astype(bool)
    return arr, off + n


@dataclass(frozen=True)
class WorkerStats:
    """One STATS reply: the scalar serving surface of a backend."""

    n_keys: int
    retrain_count: int
    pending_updates: int
    quarantine_size: int
    error_bound: float
    rebuild_threshold: float
    trim_keep_fraction: "float | None"

    def pack(self) -> bytes:
        keep = (np.nan if self.trim_keep_fraction is None
                else self.trim_keep_fraction)
        return _STATS.pack(self.n_keys, self.retrain_count,
                           self.pending_updates, self.quarantine_size,
                           self.error_bound, self.rebuild_threshold,
                           keep)

    @classmethod
    def unpack(cls, body: bytes) -> "WorkerStats":
        n, r, p, q, eb, thr, keep = _STATS.unpack(body)
        return cls(n, r, p, q, eb, thr,
                   None if np.isnan(keep) else keep)


# ---------------------------------------------------------------------
# Build spec: everything a worker needs to construct its backend
# ---------------------------------------------------------------------
def encode_build_spec(backend: str, rebuild_threshold: float,
                      build_args: dict, keys: np.ndarray) -> bytes:
    head = json.dumps(
        {"protocol": PROTOCOL_VERSION, "backend": backend,
         "rebuild_threshold": rebuild_threshold,
         "build_args": build_args},
        sort_keys=True).encode()
    return struct.pack("<Q", len(head)) + head + _pack_i64(keys)


def decode_build_spec(blob: bytes) -> ServingBackend:
    (head_len,) = struct.unpack_from("<Q", blob)
    head = json.loads(blob[8:8 + head_len].decode())
    if head["protocol"] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"build spec protocol {head['protocol']} != "
            f"supported {PROTOCOL_VERSION}")
    keys, _ = _unpack_i64(blob, 8 + head_len)
    return make_backend(head["backend"], keys,
                        rebuild_threshold=head["rebuild_threshold"],
                        **head["build_args"])


# ---------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------
def _dispatch(backend: ServingBackend, code: int,
              body: bytes) -> bytes:
    if code == MSG_REPLAY:
        kinds, keys, aux = decode_event_batch(body)
        found, probes = backend.replay_ops(kinds, keys, aux)
        return _pack_bool(found) + _pack_i64(probes)
    if code == MSG_LOOKUP:
        keys, _ = _unpack_i64(body, 0)
        found, probes = backend.lookup_batch(keys)
        return _pack_bool(found) + _pack_i64(probes)
    if code == MSG_INSERT:
        keys, _ = _unpack_i64(body, 0)
        backend.insert_batch(keys)
        return b""
    if code == MSG_DELETE:
        keys, _ = _unpack_i64(body, 0)
        backend.delete_batch(keys)
        return b""
    if code == MSG_RANGE:
        lo, hi = struct.unpack("<qq", body)
        return struct.pack("<q", backend.range_scan(lo, hi))
    if code == MSG_STATS:
        return WorkerStats(
            backend.n_keys, backend.retrain_count,
            backend.pending_updates, backend.quarantine_size,
            backend.error_bound(), backend.rebuild_threshold,
            backend.trim_keep_fraction).pack()
    if code == MSG_LIVE_KEYS:
        return _pack_i64(backend.live_keys())
    if code == MSG_SET_KEEP:
        (keep,) = struct.unpack("<d", body)
        backend.set_trim_keep_fraction(
            None if np.isnan(keep) else keep)
        return b""
    if code == MSG_SET_THRESHOLD:
        (threshold,) = struct.unpack("<d", body)
        backend.set_rebuild_threshold(threshold)
        return b""
    if code == MSG_REBUILD:
        backend.rebuild()
        return b""
    if code == MSG_DIGEST:
        return backend.state_digest().encode()
    raise ProtocolError(f"unknown message code: {code}")


def shard_worker_main(conn, build_blob: bytes) -> None:
    """The per-replica serve loop: build, ack, dispatch until told
    to stop (or until the router hangs up the pipe)."""
    try:
        backend = decode_build_spec(build_blob)
    except BaseException as exc:  # surface build failures as the ack
        try:
            conn.send_bytes(_frame(
                REPLY_ERR, 0,
                f"{type(exc).__name__}: {exc}".encode()))
        finally:
            conn.close()
        return
    conn.send_bytes(_frame(REPLY_OK, 0))
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            break  # router went away; nothing left to serve
        try:
            code, seq, body = _parse_frame(raw)
        except ProtocolError as exc:
            conn.send_bytes(_frame(REPLY_ERR, 0, str(exc).encode()))
            continue
        if code == MSG_SHUTDOWN:
            conn.send_bytes(_frame(REPLY_OK, seq))
            break
        try:
            out = _dispatch(backend, code, body)
        except Exception as exc:
            reply = _frame(REPLY_ERR, seq,
                           f"{type(exc).__name__}: {exc}".encode())
        else:
            reply = _frame(REPLY_OK, seq, out)
        try:
            conn.send_bytes(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


def spawn_context():
    """The start method shard workers use.

    ``forkserver`` where available: the router fan-out runs in
    threads, and forking a threaded process can deadlock the child on
    locks the fork snapshotted mid-acquire — the fork server stays
    single-threaded, so its forks are safe *and* cheap (one
    interpreter boot total, preloaded with the backend stack, instead
    of one per worker under ``spawn``).
    """
    methods = mp.get_all_start_methods()
    if "forkserver" in methods:
        ctx = mp.get_context("forkserver")
        try:
            ctx.set_forkserver_preload(["repro.cluster.transport"])
        except Exception:
            pass  # server already running: preload is set for good
        return ctx
    return mp.get_context("spawn")


# ---------------------------------------------------------------------
# Router-side failure/latency models
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, addressed to a ``(shard, replica)`` slot.

    ``kind`` is one of:

    * ``"timeout"`` — the slot's first ``attempts`` attempts per
      request time out while the spec is active (tick window
      ``[tick, until]``, ``until=None`` = forever);
    * ``"dead"`` — the slot is dead for the window (every attempt
      fails; with a budget-length window the replica is declared
      dead);
    * ``"poison"`` — ``keys`` are injected into the slot's replay
      batch once per active tick, *only on that replica* — the
      silent-compromise scenario divergence detection exists for.

    Shards are addressed by build-time index; a migration renumbers
    shards, so fault grids pair with static (unmanaged) scenarios.
    """

    kind: str
    shard: int
    replica: int = 0
    tick: int = 0
    until: "int | None" = None
    attempts: int = 1
    keys: "tuple[int, ...]" = ()

    def __post_init__(self):
        if self.kind not in ("timeout", "dead", "poison"):
            raise ValueError(f"unknown fault kind: {self.kind!r}")

    def active(self, tick: int) -> bool:
        return (tick >= self.tick
                and (self.until is None or tick <= self.until))


@dataclass(frozen=True)
class TransportConfig:
    """Knobs of the router-side transport book.

    Latency is *virtual* (model milliseconds, accounted per tick as
    the ``latency_ms`` series) so runs stay deterministic and fast;
    ``wall_timeout_s`` is the only real clock — a safety net against
    a genuinely wedged worker process.  With ``latency_mean_ms == 0``
    and no faults the book is inert and the transport is pinned
    bit-identical to the in-process router.
    """

    timeout_ms: float = 25.0        # virtual per-attempt budget
    failover_budget: int = 3        # failed attempts before dead
    backoff_base_ms: float = 2.0    # retry backoff: base * 2**attempt
    backoff_cap_ms: float = 16.0    # ... capped here
    latency_mean_ms: float = 0.0    # exponential model; 0 = off
    seed: int = 0
    wall_timeout_s: float = 60.0    # real pipe deadline
    faults: "tuple[FaultSpec, ...]" = ()

    @property
    def injection_enabled(self) -> bool:
        return self.latency_mean_ms > 0 or bool(self.faults)


class TransportBook:
    """Per-router ledger of transport state and injected faults.

    Seeding contract: the latency draw for attempt *a* of request
    *seq* to slot ``(shard, replica)`` in tick *t* is a pure function
    of ``(config.seed, shard, replica, t, seq)`` — per-slot request
    counters reset at each :meth:`start_tick`, so the same scenario
    replays the same degraded-window series at any fan-out job count.
    """

    def __init__(self, config: TransportConfig):
        self._cfg = config
        self._tick = 0
        #: Optional :class:`repro.observe.MetricsRegistry`; clients
        #: read it for the encode/rpc/decode/retry stage timers.
        #: Counters and timings are commutative, so one registry is
        #: safe across the router's thread fan-out.
        self.metrics = None
        self._lock = threading.Lock()
        self._seq: "dict[tuple[int, int], int]" = {}
        self._dead: "dict[tuple[int, int], int]" = {}
        self._quarantined: "dict[tuple[int, int], int]" = {}
        self._flagged: "list[tuple[int, int]]" = []
        self._tick_latency = 0.0
        self._tick_troubled: "set[tuple[int, int]]" = set()

    @property
    def config(self) -> TransportConfig:
        return self._cfg

    @property
    def tick(self) -> int:
        return self._tick

    def set_metrics(self, metrics) -> None:
        """Attach an opt-in metrics registry (None detaches).

        Timings are wall-clock-only observability; nothing recorded
        here can change replies, retry decisions, or digests.
        """
        self.metrics = metrics

    def start_tick(self, tick: int) -> None:
        with self._lock:
            self._tick = int(tick)
            self._seq.clear()

    # -- liveness ------------------------------------------------------
    def is_dead(self, shard: int, replica: int) -> bool:
        """Declared dead — only after a failover budget is spent.

        An injected ``"dead"`` fault does *not* flip this directly:
        the slot's attempts all fail, the client burns its retry
        budget, and only then is the death declared and its keys
        re-routed.  That is the graceful-degradation contract — a
        dead machine looks like timeouts until the budget says
        otherwise.
        """
        return (shard, replica) in self._dead

    def is_quarantined(self, shard: int, replica: int) -> bool:
        return (shard, replica) in self._quarantined

    def healthy(self, shard: int, replica: int) -> bool:
        return not (self.is_dead(shard, replica)
                    or self.is_quarantined(shard, replica))

    def mark_dead(self, shard: int, replica: int) -> None:
        with self._lock:
            self._dead.setdefault((shard, replica), self._tick)
            self._tick_troubled.add((shard, replica))

    def quarantine_replica(self, shard: int, replica: int) -> None:
        slot = (shard, replica)
        with self._lock:
            if slot not in self._quarantined:
                self._quarantined[slot] = self._tick
                self._flagged.append(slot)
                self._tick_troubled.add(slot)

    def flagged(self) -> "list[tuple[int, int]]":
        return list(self._flagged)

    # -- per-attempt model ---------------------------------------------
    def plan_attempt(self, shard: int, replica: int,
                     attempt: int) -> bool:
        """Decide one attempt's fate; charge its virtual latency.

        Returns whether the attempt goes through.  A successful
        attempt costs its latency draw; a timed-out one costs the
        full timeout budget plus the capped exponential backoff the
        client sleeps (virtually) before retrying.
        """
        cfg = self._cfg
        slot = (shard, replica)
        with self._lock:
            seq = self._seq.get(slot, 0)
            self._seq[slot] = seq + 1
        forced = any(
            spec.shard == shard and spec.replica == replica
            and spec.active(self._tick)
            and (spec.kind == "dead"
                 or (spec.kind == "timeout"
                     and attempt < spec.attempts))
            for spec in cfg.faults)
        latency = 0.0
        if cfg.latency_mean_ms > 0:
            rng = np.random.default_rng(stable_seed_words(
                cfg.seed, "transport-latency", shard, replica,
                self._tick, seq))
            latency = float(rng.exponential(cfg.latency_mean_ms))
        ok = not forced and latency <= cfg.timeout_ms
        charged = latency if ok else cfg.timeout_ms
        if not ok:
            charged += min(cfg.backoff_cap_ms,
                           cfg.backoff_base_ms * 2.0 ** attempt)
        with self._lock:
            self._tick_latency += charged
            if not ok:
                self._tick_troubled.add(slot)
        return ok

    def note_trouble(self, shard: int, replica: int) -> None:
        """Record a real (wall-clock) transport failure."""
        with self._lock:
            self._tick_troubled.add((shard, replica))

    def poison_keys(self, shard: int, replica: int) -> np.ndarray:
        parts = [spec.keys for spec in self._cfg.faults
                 if spec.kind == "poison" and spec.shard == shard
                 and spec.replica == replica
                 and spec.active(self._tick)]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.asarray(p, dtype=np.int64) for p in parts])

    # -- per-tick accounting -------------------------------------------
    def drain_tick_stats(self) -> tuple[int, int, float]:
        """(degraded slots, flagged replicas, injected ms) this tick.

        Degraded = replica slots that were dead, quarantined, or hit
        at least one failed attempt during the window — the
        first-class "degraded window" series.
        """
        with self._lock:
            degraded = len(set(self._dead)
                           | set(self._quarantined)
                           | self._tick_troubled)
            flagged = len(self._flagged)
            latency = self._tick_latency
            self._tick_latency = 0.0
            self._tick_troubled = set()
        return degraded, flagged, latency


# ---------------------------------------------------------------------
# Router-side worker proxy
# ---------------------------------------------------------------------
class WorkerClient:
    """One replica's pipe endpoint, with the book's retry policy.

    Every request runs the attempt loop: consult the book (injected
    timeouts, latency draws), send the frame, wait for the reply
    under the real wall deadline, back off and retry on failure.  A
    replica that exhausts ``failover_budget`` attempts is declared
    dead in the book, its process reaped, and
    :class:`ReplicaDeadError` raised for the group to absorb.
    """

    def __init__(self, book: TransportBook, shard: int, replica: int,
                 backend: str, rebuild_threshold: float,
                 build_args: dict, keys: np.ndarray, ctx=None):
        self._book = book
        self._shard = int(shard)
        self._replica = int(replica)
        self._seq = 0
        self._closed = False
        ctx = ctx if ctx is not None else spawn_context()
        parent, child = ctx.Pipe()
        blob = encode_build_spec(backend, rebuild_threshold,
                                 build_args, keys)
        self._process = ctx.Process(
            target=shard_worker_main, args=(child, blob),
            daemon=True, name=f"shard{shard}-r{replica}")
        self._process.start()
        child.close()
        self._conn = parent
        code, _, body = self._recv(book.config.wall_timeout_s)
        if code != REPLY_OK:
            self.close()
            raise ShardWorkerError(self._shard, body.decode())

    @property
    def shard(self) -> int:
        return self._shard

    @property
    def replica(self) -> int:
        return self._replica

    def _recv(self, timeout: float) -> tuple[int, int, bytes]:
        if not self._conn.poll(timeout):
            raise TimeoutError(
                f"shard {self._shard} replica {self._replica}: no "
                f"reply within {timeout}s")
        return _parse_frame(self._conn.recv_bytes())

    def call(self, code: int, body: bytes = b"") -> bytes:
        book = self._book
        cfg = book.config
        if self._closed or book.is_dead(self._shard, self._replica):
            raise ReplicaDeadError(self._shard, self._replica)
        metrics = book.metrics
        for attempt in range(cfg.failover_budget):
            if not book.plan_attempt(self._shard, self._replica,
                                     attempt):
                if metrics is not None:
                    metrics.inc("transport.retries")
                continue  # injected timeout consumed this attempt
            seq = self._seq
            self._seq += 1
            rpc_started = (time.perf_counter()
                           if metrics is not None else 0.0)
            try:
                self._conn.send_bytes(_frame(code, seq, body))
                rcode, rseq, rbody = self._recv(cfg.wall_timeout_s)
            except (EOFError, OSError, TimeoutError):
                book.note_trouble(self._shard, self._replica)
                if metrics is not None:
                    metrics.inc("transport.retries")
                    metrics.observe("transport.retry",
                                    time.perf_counter() - rpc_started)
                continue  # real failure: worker gone or wedged
            if metrics is not None:
                metrics.observe("transport.rpc",
                                time.perf_counter() - rpc_started)
                metrics.inc("transport.calls")
            if rcode == REPLY_ERR:
                raise ShardWorkerError(self._shard, rbody.decode())
            if rseq != seq:
                raise ProtocolError(
                    f"shard {self._shard}: reply seq {rseq} != "
                    f"request seq {seq}")
            return rbody
        book.mark_dead(self._shard, self._replica)
        self.close()
        raise ReplicaDeadError(self._shard, self._replica)

    # -- typed wrappers ------------------------------------------------
    def replay(self, kinds: np.ndarray, keys: np.ndarray,
               aux: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        metrics = self._book.metrics
        started = (time.perf_counter()
                   if metrics is not None else 0.0)
        payload = encode_event_batch(kinds, keys, aux)
        if metrics is not None:
            metrics.observe("transport.encode",
                            time.perf_counter() - started)
        body = self.call(MSG_REPLAY, payload)
        started = (time.perf_counter()
                   if metrics is not None else 0.0)
        found, off = _unpack_bool(body, 0)
        probes, _ = _unpack_i64(body, off)
        if metrics is not None:
            metrics.observe("transport.decode",
                            time.perf_counter() - started)
        return found, probes

    def lookup(self, keys: np.ndarray,
               ) -> tuple[np.ndarray, np.ndarray]:
        metrics = self._book.metrics
        started = (time.perf_counter()
                   if metrics is not None else 0.0)
        payload = _pack_i64(keys)
        if metrics is not None:
            metrics.observe("transport.encode",
                            time.perf_counter() - started)
        body = self.call(MSG_LOOKUP, payload)
        started = (time.perf_counter()
                   if metrics is not None else 0.0)
        found, off = _unpack_bool(body, 0)
        probes, _ = _unpack_i64(body, off)
        if metrics is not None:
            metrics.observe("transport.decode",
                            time.perf_counter() - started)
        return found, probes

    def insert(self, keys: np.ndarray) -> None:
        self.call(MSG_INSERT, _pack_i64(keys))

    def delete(self, keys: np.ndarray) -> None:
        self.call(MSG_DELETE, _pack_i64(keys))

    def range_scan(self, lo: int, hi: int) -> int:
        body = self.call(MSG_RANGE, struct.pack("<qq", lo, hi))
        return int(struct.unpack("<q", body)[0])

    def stats(self) -> WorkerStats:
        return WorkerStats.unpack(self.call(MSG_STATS))

    def live_keys(self) -> np.ndarray:
        keys, _ = _unpack_i64(self.call(MSG_LIVE_KEYS), 0)
        return keys

    def set_trim_keep_fraction(self, keep: "float | None") -> None:
        self.call(MSG_SET_KEEP, struct.pack(
            "<d", np.nan if keep is None else keep))

    def set_rebuild_threshold(self, threshold: float) -> None:
        self.call(MSG_SET_THRESHOLD, struct.pack("<d", threshold))

    def rebuild(self) -> None:
        self.call(MSG_REBUILD)

    def digest(self) -> str:
        return self.call(MSG_DIGEST).decode()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.send_bytes(_frame(MSG_SHUTDOWN, self._seq))
            if self._conn.poll(1.0):
                self._conn.recv_bytes()
        except (BrokenPipeError, OSError):
            pass
        finally:
            self._conn.close()
        self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=1.0)
