"""Shard maps: range-partitioning the key space from an empirical CDF.

A production deployment of a learned index does not serve one model
over one machine — it range-partitions the key space into *shards*,
each served by its own index, and routes every operation by key.  The
partition is itself data-dependent: split points sit at equal-mass
quantiles of the empirical CDF, so each shard holds the same number of
keys no matter how skewed the distribution is.  That makes the shard
map a *second* learned artifact trained on the key distribution — and
therefore a second poisoning surface: an adversary that concentrates
crafted keys in one region drags split points toward it and forces
the cluster to burn splits and migrations there
(:mod:`repro.cluster.rebalance`).

A :class:`ShardMap` is immutable and canonical, exactly like a
runtime :class:`~repro.runtime.Cell` or a workload
:class:`~repro.workload.trace.TraceSpec`: the interior split points
plus the domain are JSON scalars, hashed into a content digest, so two
maps route identically iff their digests match.  Routing is a pure
``searchsorted`` over the split points — stateless, which is what
makes it invariant under any re-chunking of an operation batch (pinned
by ``tests/cluster/test_shardmap_properties.py``).  Derivations
(:meth:`split`, :meth:`merge`, :meth:`rebalanced`) return new maps and
never mutate, so a simulator can log the full lineage of digests a
rebalancer walked through.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..data.keyset import Domain

__all__ = ["ShardMap"]

_DIGEST_HEX = 16  # matches Cell/TraceSpec's 64-bit prefix


@dataclass(frozen=True)
class ShardMap:
    """An ordered range partition of an integer key domain.

    ``splits`` holds the interior boundaries, strictly increasing and
    strictly inside ``(domain_lo, domain_hi]``; shard ``i`` owns the
    half-open key range ``[edge[i], edge[i+1])`` where the edge list is
    ``(domain_lo, *splits, domain_hi + 1)``.  An empty ``splits`` is
    the one-shard (single-machine) cluster.
    """

    domain_lo: int
    domain_hi: int
    splits: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.domain_hi < self.domain_lo:
            raise ValueError(
                f"empty shard-map domain: "
                f"[{self.domain_lo}, {self.domain_hi}]")
        previous = self.domain_lo
        for split in self.splits:
            if not previous < split <= self.domain_hi:
                raise ValueError(
                    f"split points must be strictly increasing inside "
                    f"({self.domain_lo}, {self.domain_hi}], "
                    f"got {self.splits}")
            previous = split

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def balanced(cls, keys: np.ndarray, n_shards: int,
                 domain: Domain) -> "ShardMap":
        """Equal-mass split points from the empirical CDF of ``keys``.

        Split ``i`` lands at the key of rank ``ceil(i * n / n_shards)``
        — each shard gets the same key count (±1) regardless of how
        the mass is distributed over the domain.  Deterministic in the
        sorted key array alone; duplicate quantile keys (a tiny keyset
        or a pathological distribution) collapse, yielding fewer
        shards rather than empty ones.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        keys = np.sort(np.asarray(keys, dtype=np.int64))
        if keys.size and not domain.contains_all(keys):
            raise ValueError(
                f"keys fall outside the domain "
                f"[{domain.lo}, {domain.hi}]")
        if keys.size == 0 or n_shards == 1:
            return cls(domain.lo, domain.hi)
        ranks = (np.arange(1, n_shards, dtype=np.int64)
                 * keys.size) // n_shards
        candidates = np.unique(keys[ranks])
        # A split at a key puts that key in the right-hand shard; the
        # domain floor can never be a legal interior boundary.
        candidates = candidates[candidates > domain.lo]
        return cls(domain.lo, domain.hi, tuple(int(s)
                                               for s in candidates))

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.splits) + 1

    @property
    def edges(self) -> np.ndarray:
        """Half-open edge list: shard ``i`` is ``[e[i], e[i+1])``."""
        return np.asarray(
            (self.domain_lo, *self.splits, self.domain_hi + 1),
            dtype=np.int64)

    def shard_range(self, shard: int) -> tuple[int, int]:
        """Inclusive ``(lo, hi)`` key range of one shard."""
        self._validate_shard(shard)
        edges = self.edges
        return int(edges[shard]), int(edges[shard + 1]) - 1

    def _validate_shard(self, shard: int) -> None:
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard must be in [0, {self.n_shards}), got {shard}")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, keys: np.ndarray) -> np.ndarray:
        """The shard serving each key — pure and stateless.

        ``searchsorted`` over the interior split points: a key equal
        to a split belongs to the right-hand shard.  Statelessness is
        the re-chunking invariant: routing a batch equals routing its
        concatenated sub-batches in any partition.
        """
        keys = np.asarray(keys, dtype=np.int64)
        return np.searchsorted(
            np.asarray(self.splits, dtype=np.int64), keys,
            side="right").astype(np.int64)

    def shard_counts(self, keys: np.ndarray) -> np.ndarray:
        """Keys-per-shard histogram (the mass balance of the map)."""
        return np.bincount(self.route(keys),
                           minlength=self.n_shards).astype(np.int64)

    # ------------------------------------------------------------------
    # Derivation (what the rebalancer applies)
    # ------------------------------------------------------------------
    def split(self, shard: int, keys: np.ndarray) -> "ShardMap":
        """Split one shard at the mass median of its live keys.

        The new boundary is the key at rank ``ceil(n/2)`` of the
        shard's keys — the equal-mass rule applied locally, so a
        poison cluster that made the shard hot ends up isolated on one
        side of the cut.  Splitting a shard whose keys cannot yield a
        legal interior boundary (fewer than 2 distinct keys, or all
        mass at the range floor) returns ``self`` unchanged.
        """
        self._validate_shard(shard)
        lo, hi = self.shard_range(shard)
        keys = np.sort(np.asarray(keys, dtype=np.int64))
        inside = keys[(keys >= lo) & (keys <= hi)]
        if inside.size < 2:
            return self
        cut = int(inside[inside.size // 2])
        if not lo < cut <= hi:
            return self
        return ShardMap(self.domain_lo, self.domain_hi,
                        tuple(sorted({*self.splits, cut})))

    def merge(self, shard: int) -> "ShardMap":
        """Merge one shard with its right neighbour (drop the split)."""
        self._validate_shard(shard)
        if shard >= self.n_shards - 1:
            raise ValueError(
                f"shard {shard} has no right neighbour to merge with "
                f"(n_shards={self.n_shards})")
        splits = list(self.splits)
        del splits[shard]
        return ShardMap(self.domain_lo, self.domain_hi, tuple(splits))

    def rebalanced(self, keys: np.ndarray) -> "ShardMap":
        """Recompute equal-mass splits for the current shard count."""
        return ShardMap.balanced(
            keys, self.n_shards,
            Domain(self.domain_lo, self.domain_hi))

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def spec(self) -> dict[str, Any]:
        """JSON-safe canonical description (what the digest covers)."""
        return {
            "domain": [self.domain_lo, self.domain_hi],
            "splits": list(self.splits),
        }

    def canonical_json(self) -> str:
        """Canonical serialisation: sorted keys, no whitespace games."""
        return json.dumps(self.spec(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def digest(self) -> str:
        """Hex content hash naming this exact partition."""
        raw = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return raw.hexdigest()[:_DIGEST_HEX]
