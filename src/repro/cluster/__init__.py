"""Sharded multi-tenant serving: shard maps, routing, rebalancing.

The production-scale layer above :mod:`repro.workload`: one learned
index per *shard*, a router fanning batched operations out by key
range, and the cluster-management loop (split/merge rebalancing plus
an SLO-weighted per-shard defense).  Six modules:

* :mod:`repro.cluster.shardmap` — :class:`ShardMap`, the
  content-addressed equal-mass range partition of the key space (a
  second learned artifact, and therefore a second poisoning surface);
* :mod:`repro.cluster.router` — :class:`ClusterRouter`, the uniform
  serving surface over per-shard :mod:`repro.workload.backends`
  instances, with per-tick load and migration accounting;
* :mod:`repro.cluster.rebalance` — :class:`Rebalancer` (churn- and
  latency-triggered split/merge with deterministic migration-cost
  proxies) and :class:`SloWeightedDefense` (per-shard
  :class:`~repro.workload.closedloop.TrimAutoTuner` instances weighted
  by tenant SLO pressure);
* :mod:`repro.cluster.simulator` — :class:`ClusterSimulator`, the
  replay loop recording cluster, per-tenant, and per-shard series,
  plus the cluster-aware poison placements on the PR 4 feedback port
  (``uniform`` / ``concentrated`` / ``hotshard``);
* :mod:`repro.cluster.transport` — the cross-process layer: shard
  replicas as worker processes speaking a versioned columnar batch
  protocol, with a router-side :class:`TransportBook` of injected
  latency/failure models, timeout + backoff retry, and failover
  accounting;
* :mod:`repro.cluster.replication` — :class:`ReplicaGroup` (k-replica
  shard groups: broadcast mutations, quorum reads) with
  :class:`DivergenceDetector` flagging a poisoned replica whose
  error-bound series drifts from its peers, and
  :class:`TransportClusterRouter` mounting it all under the unchanged
  router logic.

The ``cluster`` CLI target
(:mod:`repro.experiments.cluster_serving`) runs
tenant-layout × shard-count × backend × adversary × defense grids of
these on the :class:`repro.runtime.SweepEngine`.
"""

from .rebalance import RebalanceDecision, Rebalancer, SloWeightedDefense
from .replication import (
    DivergenceConfig,
    DivergenceDetector,
    ReplicaGroup,
    TransportClusterRouter,
)
from .router import ClusterRouter, ShardServingError
from .shardmap import ShardMap
from .simulator import (
    CLUSTER_ADVERSARIES,
    ClusterAdversary,
    ClusterReport,
    ClusterSimulator,
    ClusterTickObservation,
    ConcentratedClusterAdversary,
    HotShardAdversary,
    UniformClusterAdversary,
    make_cluster_adversary,
)
from .transport import (
    FaultSpec,
    ReplicaDeadError,
    ShardWorkerError,
    TransportBook,
    TransportConfig,
    WorkerClient,
)

__all__ = [
    "ShardMap",
    "ClusterRouter",
    "ShardServingError",
    "TransportClusterRouter",
    "TransportConfig",
    "TransportBook",
    "FaultSpec",
    "WorkerClient",
    "ReplicaGroup",
    "DivergenceConfig",
    "DivergenceDetector",
    "ShardWorkerError",
    "ReplicaDeadError",
    "Rebalancer",
    "RebalanceDecision",
    "SloWeightedDefense",
    "ClusterSimulator",
    "ClusterReport",
    "ClusterTickObservation",
    "ClusterAdversary",
    "UniformClusterAdversary",
    "ConcentratedClusterAdversary",
    "HotShardAdversary",
    "CLUSTER_ADVERSARIES",
    "make_cluster_adversary",
]
