"""The cluster router: one serving surface over many shard backends.

A :class:`ClusterRouter` owns a :class:`~repro.cluster.shardmap.ShardMap`
plus one :class:`~repro.workload.backends.ServingBackend` per shard —
the *unchanged* PR 3 backends, each serving only the keys its range
covers.  Reads fan out: a batch is routed, grouped by shard, served by
each shard's vectorized ``lookup_batch``, and scattered back into
request order, so probe counts are identical to routing one key at a
time (the re-chunking invariance the shard-map property tests pin).
Mutations route to exactly one shard.

The router also owns the two cluster-level books the simulator reads:

* **per-tick op accounting** — how many operations each shard served
  since the last :meth:`drain_tick_loads` call, from which the router
  *imbalance* (max shard share over the ideal ``1/n`` share) derives;
* **migration accounting** — applying a new shard map
  (:meth:`apply_map`, or the :meth:`split_shard`/:meth:`merge_shards`
  conveniences) exports ``live_keys`` from every backend whose range
  changed and rebuilds replacement backends over the new ranges.  The
  returned key count is the deterministic migration-cost proxy;
  backends whose range is untouched keep their object — and all their
  delta/tombstone/retrain state — so a rebalance never silently
  resets the rest of the cluster.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_EXCEPTION, wait
from typing import Any

import numpy as np

from ..runtime.engine import EXECUTORS
from ..workload.backends import ServingBackend, make_backend
from ..workload.trace import (
    OP_DELETE,
    OP_INSERT,
    OP_MODIFY,
    OP_POISON,
    OP_QUERY,
    OP_RANGE,
)
from .shardmap import ShardMap

__all__ = ["ClusterRouter", "ShardServingError"]


class ShardServingError(RuntimeError):
    """A shard's replay failed; carries which shard so a fleet
    operator (or a test) can tell the wedged range from its healthy
    siblings."""

    def __init__(self, shard: int, cause: BaseException):
        super().__init__(f"shard {shard}: "
                         f"{type(cause).__name__}: {cause}")
        self.shard = shard


class ClusterRouter:
    """Route batched serving operations to per-shard backends.

    ``fanout_jobs``/``fanout_executor`` configure :meth:`replay_ops`'s
    per-shard concurrency: shards are independent between migrations,
    so their op sequences can execute in parallel.  The executor is
    resolved from the sweep engine's registry; only in-process pools
    are accepted (shard state is shared mutable memory — a process
    pool would mutate copies).  Results are scattered back in shard
    order by the calling thread, so the replay stays bit-deterministic
    at any job count.
    """

    def __init__(self, shard_map: ShardMap, keys: np.ndarray,
                 backend: str, rebuild_threshold: float = 0.1,
                 trim_keep_fraction: "float | None" = None,
                 fanout_jobs: int = 1,
                 fanout_executor: str = "thread",
                 migration_rescreen: bool = True,
                 **build_args: Any):
        if fanout_jobs < 1:
            raise ValueError(
                f"fanout_jobs must be >= 1: {fanout_jobs}")
        if fanout_executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {fanout_executor!r}; known: "
                f"{sorted(EXECUTORS)}")
        if fanout_executor == "process":
            raise ValueError(
                "shard fan-out needs an in-process executor: shards "
                "share mutable state a process pool would copy")
        self._map = shard_map
        self._backend_name = backend
        self._threshold = rebuild_threshold
        self._keep_fraction = trim_keep_fraction
        self._fanout_jobs = int(fanout_jobs)
        self._fanout_executor = fanout_executor
        # The ablation seam: with re-screening off, a backend built
        # from migrated keys keeps its TRIM settings armed for future
        # rebuilds but skips the immediate screening compaction, so
        # the migrated training set is trusted as-is.  Default True —
        # a rebalance must never silently launder quarantined poison.
        self._migration_rescreen = bool(migration_rescreen)
        self._build_args = dict(build_args)
        self._metrics = None  # before _build_shard, which reads it
        keys = np.sort(np.asarray(keys, dtype=np.int64))
        self._shards: "list[ServingBackend | None]" = [
            self._build_shard(self._keys_in(keys, shard), shard=shard)
            for shard in range(shard_map.n_shards)]
        self._tick_loads = np.zeros(shard_map.n_shards, dtype=np.int64)
        self._retrains_migrated = 0
        self._keys_migrated_total = 0

    # ------------------------------------------------------------------
    def set_metrics(self, metrics) -> None:
        """Attach a :class:`repro.observe.MetricsRegistry`.

        Forwarded to every provisioned shard backend (and, on the
        transport router, to the book) so the columnar stage timers
        and transport counters land in one registry.  Shards built
        later — migration splits, first-insert materialisation —
        inherit it through :meth:`_build_shard`.
        """
        self._metrics = metrics
        for backend in self._shards:
            if backend is not None \
                    and hasattr(backend, "set_metrics"):
                backend.set_metrics(metrics)

    # ------------------------------------------------------------------
    def _keys_in(self, sorted_keys: np.ndarray,
                 shard: int) -> np.ndarray:
        lo, hi = self._map.shard_range(shard)
        left = int(np.searchsorted(sorted_keys, lo, side="left"))
        right = int(np.searchsorted(sorted_keys, hi, side="right"))
        return sorted_keys[left:right]

    def _make_backend(self, keys: np.ndarray, threshold: float,
                      shard: int) -> ServingBackend:
        """Construct one shard's backend (the transport seam).

        The in-process router builds the PR 3 backend directly;
        :class:`~repro.cluster.replication.TransportClusterRouter`
        overrides this single method to spawn a worker-process replica
        group instead, so every other router code path — migration,
        fan-out, defense hooks — is shared verbatim between the two.
        """
        del shard  # only the transport override cares which range
        return make_backend(self._backend_name, keys,
                            rebuild_threshold=threshold,
                            **self._build_args)

    def _build_shard(self, keys: np.ndarray,
                     settings: "tuple[float, float | None] | None"
                     = None, shard: int = 0,
                     ) -> "ServingBackend | None":
        """One shard backend, or ``None`` for a keyless range.

        ``settings`` is an optional ``(rebuild_threshold,
        trim_keep_fraction)`` pair overriding the router-level
        construction defaults — migration passes the *tuned* settings
        of the shard a range came from, so a split of a defended
        shard screens its training set exactly as a regular retrain
        there would have (a rebalance must never silently disarm the
        defense).

        Backends need at least one key (a learned model cannot train
        on nothing), so an empty shard is simply *unprovisioned*:
        ``None`` — lookups there miss at zero cost and the backend
        materialises with the first insert.  Fabricating a sentinel
        key instead would serve a phantom membership and leak it into
        migration pools.  In practice balanced maps never produce
        empty shards; this path only keeps degenerate hand-built maps
        serviceable.
        """
        if keys.size == 0:
            return None
        threshold, keep = (settings if settings is not None
                           else (self._threshold, self._keep_fraction))
        backend = self._make_backend(keys, threshold, shard)
        # TRIM arms through the live hook (model-free backends reject
        # the constructor argument), and because a backend's *initial*
        # build never screens, an armed shard compacts once right
        # away: a migration is a retrain, and a retrain on a defended
        # shard must screen its training set — otherwise a split
        # would launder quarantined poison straight into the next
        # model.
        if keep is not None and keep < 1.0 and backend.supports_trim:
            backend.set_trim_keep_fraction(keep)
            if self._migration_rescreen:
                backend.rebuild()
        if self._metrics is not None \
                and hasattr(backend, "set_metrics"):
            backend.set_metrics(self._metrics)
        return backend

    # ------------------------------------------------------------------
    # Shape / introspection
    # ------------------------------------------------------------------
    @property
    def shard_map(self) -> ShardMap:
        return self._map

    @property
    def n_shards(self) -> int:
        return self._map.n_shards

    @property
    def backend_name(self) -> str:
        return self._backend_name

    def shard(self, index: int) -> "ServingBackend | None":
        """One shard's backend (tuner hooks live here); ``None`` while
        the shard's range holds no keys."""
        return self._shards[index]

    @property
    def n_keys(self) -> int:
        """Live keys across the cluster."""
        return sum(s.n_keys for s in self._shards if s is not None)

    @property
    def retrain_count(self) -> int:
        """Cumulative retrains, including pre-migration cycles."""
        return self._retrains_migrated + sum(
            s.retrain_count for s in self._shards if s is not None)

    @property
    def keys_migrated_total(self) -> int:
        """Keys rebuilt into new shards over the cluster's lifetime."""
        return self._keys_migrated_total

    def error_bound(self) -> float:
        """Worst shard's worst-case search width (0 when empty)."""
        bounds = [s.error_bound() for s in self._shards
                  if s is not None]
        return max(bounds) if bounds else 0.0

    def shard_n_keys(self) -> np.ndarray:
        """Live key count per shard."""
        return np.asarray([0 if s is None else s.n_keys
                           for s in self._shards], dtype=np.int64)

    def live_keys(self) -> np.ndarray:
        """The cluster's live key set (sorted union over shards)."""
        parts = [s.live_keys() for s in self._shards if s is not None]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(parts))

    # ------------------------------------------------------------------
    # Serving surface (mirrors ServingBackend)
    # ------------------------------------------------------------------
    def lookup_batch(self, keys: np.ndarray,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """(found, probes) per query, served by each key's shard.

        Group-by-shard fan-out with scatter-back: probe counts equal
        the one-key-at-a-time replay exactly, so cluster latency
        series stay invariant under batching.
        """
        keys = np.asarray(keys, dtype=np.int64)
        found = np.zeros(keys.size, dtype=bool)
        probes = np.zeros(keys.size, dtype=np.int64)
        shards = self._map.route(keys)
        for shard in np.unique(shards):
            mask = shards == shard
            self._tick_loads[shard] += int(mask.sum())
            backend = self._shards[shard]
            if backend is None:  # unprovisioned: a zero-cost miss
                continue
            f, p = backend.lookup_batch(keys[mask])
            found[mask] = f
            probes[mask] = p
        return found, probes

    def range_scan(self, lo: int, hi: int) -> int:
        """Endpoint-location cost of ``[lo, hi]`` across its shards.

        Charged as one endpoint lookup on the first shard the range
        touches plus one on every additional shard it spans — the
        fan-out tax of a cross-shard scan (the sequential scan itself
        carries no signal, as in the single-backend surface).
        """
        first = int(self._map.route(np.asarray([lo]))[0])
        last = int(self._map.route(np.asarray([hi]))[0])
        cost = 0
        for shard in range(first, last + 1):
            shard_lo, _ = self._map.shard_range(shard)
            endpoint = lo if shard == first else shard_lo
            self._tick_loads[shard] += 1
            backend = self._shards[shard]
            if backend is None:
                continue
            cost += backend.range_scan(
                endpoint, min(hi, self._map.shard_range(shard)[1]))
        return cost

    def insert_batch(self, keys: np.ndarray) -> None:
        """Route fresh keys to their shards (batch-atomic per shard)."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        shards = self._map.route(keys)
        for shard in np.unique(shards):
            mask = shards == shard
            self._tick_loads[shard] += int(mask.sum())
            if self._shards[shard] is None:
                # First keys of an unprovisioned range: materialise
                # the backend over them.
                self._shards[shard] = self._build_shard(
                    np.sort(keys[mask]), shard=int(shard))
            else:
                self._shards[shard].insert_batch(keys[mask])

    def delete_batch(self, keys: np.ndarray) -> None:
        """Route removals to their shards."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        shards = self._map.route(keys)
        for shard in np.unique(shards):
            mask = shards == shard
            self._tick_loads[shard] += int(mask.sum())
            if self._shards[shard] is not None:
                self._shards[shard].delete_batch(keys[mask])

    def replay_ops(self, kinds: np.ndarray, keys: np.ndarray,
                   aux: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Serve one tick's op slice through every shard at once.

        Decomposes the slice into per-shard *events* — a query or a
        mutation lands one event on its routed shard, a modify one
        delete plus one insert on each key's shard, a range one
        endpoint event on every shard it spans — then hands each
        shard its events in op order through the backend's own
        :meth:`~repro.workload.backends.ServingBackend.replay_ops`.
        Shards are independent between migrations, so with
        ``fanout_jobs > 1`` their event runs execute concurrently;
        the calling thread scatters (found, probes) back by read
        slot, so results are bit-identical to the one-key-at-a-time
        feed at any job count.

        Returns ``(found, probes)`` with one entry per query/range op
        in the slice (found is only meaningful for queries; a range's
        probes sum its endpoint cost across every spanned shard,
        exactly like :meth:`range_scan`).
        """
        kinds = np.asarray(kinds)
        keys = np.asarray(keys, dtype=np.int64)
        aux = np.asarray(aux, dtype=np.int64)
        is_read = (kinds == OP_QUERY) | (kinds == OP_RANGE)
        read_slot = np.cumsum(is_read) - 1
        n_reads = int(is_read.sum())
        found_out = np.zeros(n_reads, dtype=bool)
        probes_out = np.zeros(n_reads, dtype=np.int64)
        pos = np.arange(kinds.size, dtype=np.int64)

        ev_order: list[np.ndarray] = []
        ev_kind: list[np.ndarray] = []
        ev_key: list[np.ndarray] = []
        ev_slot: list[np.ndarray] = []

        def add(mask_pos: np.ndarray, kind_code: int,
                event_keys: np.ndarray, slots: np.ndarray,
                suborder: int = 0) -> None:
            ev_order.append(mask_pos * 2 + suborder)
            ev_kind.append(np.full(mask_pos.size, kind_code,
                                   dtype=kinds.dtype))
            ev_key.append(np.asarray(event_keys, dtype=np.int64))
            ev_slot.append(np.asarray(slots, dtype=np.int64))

        no_slot = -1
        qm = kinds == OP_QUERY
        add(pos[qm], OP_QUERY, keys[qm], read_slot[qm])
        im = (kinds == OP_INSERT) | (kinds == OP_POISON)
        add(pos[im], OP_INSERT, keys[im],
            np.full(int(im.sum()), no_slot))
        dm = kinds == OP_DELETE
        add(pos[dm], OP_DELETE, keys[dm],
            np.full(int(dm.sum()), no_slot))
        mm = kinds == OP_MODIFY
        add(pos[mm], OP_DELETE, keys[mm],
            np.full(int(mm.sum()), no_slot), suborder=0)
        add(pos[mm], OP_INSERT, aux[mm],
            np.full(int(mm.sum()), no_slot), suborder=1)
        rm = kinds == OP_RANGE
        known = qm | im | dm | mm | rm
        if not known.all():
            bad = kinds[~known][0]
            raise ValueError(f"unknown op kind: {bad}")
        if rm.any():
            # One endpoint event per spanned shard: the op's own lo on
            # the first shard, the shard's range floor on every later
            # one (mirrors range_scan; the backend only ever locates
            # the endpoint, so the upper bound carries no event).
            add(pos[rm], OP_RANGE, keys[rm], read_slot[rm])
            first = self._map.route(keys[rm])
            last = self._map.route(aux[rm])
            for i in np.nonzero(last > first)[0]:
                spanned = np.arange(int(first[i]) + 1,
                                    int(last[i]) + 1, dtype=np.int64)
                floors = np.asarray(
                    [self._map.shard_range(int(s))[0]
                     for s in spanned], dtype=np.int64)
                add(np.full(spanned.size, pos[rm][i]), OP_RANGE,
                    floors, np.full(spanned.size, read_slot[rm][i]))

        order = np.concatenate(ev_order)
        kind_arr = np.concatenate(ev_kind)
        key_arr = np.concatenate(ev_key)
        slot_arr = np.concatenate(ev_slot)
        shard_arr = self._map.route(key_arr)
        self._tick_loads += np.bincount(shard_arr,
                                        minlength=self.n_shards)

        by_op = np.argsort(order, kind="stable")
        by_shard = by_op[np.argsort(shard_arr[by_op], kind="stable")]
        shards_grouped = shard_arr[by_shard]
        uniq, starts = np.unique(shards_grouped, return_index=True)
        bounds = np.append(starts[1:], by_shard.size)

        def serve_shard(shard: int, eidx: np.ndarray,
                        ) -> "tuple[np.ndarray, ...] | None":
            ek = kind_arr[eidx]
            ekey = key_arr[eidx]
            eslot = slot_arr[eidx]
            backend = self._shards[shard]
            if backend is None:
                # Reads miss at zero cost and deletes no-op until the
                # first insert materialises the shard, exactly as the
                # per-op feed would.
                ins = np.nonzero(ek == OP_INSERT)[0]
                if ins.size == 0:
                    return None
                k = int(ins[0])
                self._shards[shard] = self._build_shard(
                    ekey[k:k + 1], shard=shard)
                backend = self._shards[shard]
                ek, ekey, eslot = ek[k + 1:], ekey[k + 1:], \
                    eslot[k + 1:]
                if ek.size == 0:
                    return None
            f, p = backend.replay_ops(
                ek, ekey, np.zeros(ekey.size, dtype=np.int64))
            reads = (ek == OP_QUERY) | (ek == OP_RANGE)
            slots = eslot[reads]
            qmask = ek[reads] == OP_QUERY
            return slots, p, slots[qmask], f[qmask]

        def serve_guarded(shard: int, eidx: np.ndarray,
                          ) -> "tuple[np.ndarray, ...] | None":
            try:
                return serve_shard(shard, eidx)
            except ShardServingError:
                raise
            except Exception as exc:
                raise ShardServingError(shard, exc) from exc

        groups = [(int(s), by_shard[s0:s1])
                  for s, s0, s1 in zip(uniq, starts, bounds)]
        metrics = self._metrics
        fanout_started = (time.perf_counter()
                          if metrics is not None else 0.0)
        if metrics is not None:
            metrics.inc("router.events", int(key_arr.size))
            metrics.inc("router.shard_batches", len(groups))
        if self._fanout_jobs > 1 and len(groups) > 1:
            # Collect *all* futures and cancel the still-pending ones
            # on the first failure: pool.map would tear the context
            # manager down while sibling shard replays keep mutating
            # shared maps, and its exception loses which shard died.
            with EXECUTORS[self._fanout_executor](
                    max_workers=self._fanout_jobs) as pool:
                futures = [pool.submit(serve_guarded, s, eidx)
                           for s, eidx in groups]
                done, pending = wait(futures,
                                     return_when=FIRST_EXCEPTION)
                failed = next(
                    (f for f in done
                     if not f.cancelled() and f.exception()), None)
                if failed is not None:
                    for f in pending:
                        f.cancel()
                    raise failed.exception()
                results = [f.result() for f in futures]
        else:
            results = [serve_guarded(*g) for g in groups]
        if metrics is not None:
            metrics.observe("router.fanout",
                            time.perf_counter() - fanout_started)
        for result in results:
            if result is None:
                continue
            slots, p, qslots, qfound = result
            # A range op's slot appears on several shards; probes sum
            # (commutative, so scatter order never matters).  A query
            # slot appears on exactly one shard.
            np.add.at(probes_out, slots, p)
            found_out[qslots] = qfound
        return found_out, probes_out

    # ------------------------------------------------------------------
    # Per-tick load accounting
    # ------------------------------------------------------------------
    def drain_tick_loads(self) -> np.ndarray:
        """Ops served per shard since the last drain (then reset)."""
        loads = self._tick_loads.copy()
        self._tick_loads = np.zeros(self.n_shards, dtype=np.int64)
        return loads

    @staticmethod
    def imbalance(loads: np.ndarray) -> float:
        """Max shard share over the ideal share (1.0 = perfect).

        ``max(loads) / (total / n)`` — the router hot-spot factor a
        rebalancer watches.  An idle tick reports 1.0 (balanced) so
        the series never carries NaN.
        """
        loads = np.asarray(loads, dtype=np.float64)
        total = float(loads.sum())
        if total == 0.0 or loads.size == 0:
            return 1.0
        return float(loads.max() * loads.size / total)

    # ------------------------------------------------------------------
    # Rebalancing surface
    # ------------------------------------------------------------------
    def apply_map(self, new_map: ShardMap) -> int:
        """Adopt a new shard map; returns the migration cost in keys.

        Shards whose ``(lo, hi)`` range is identical under both maps
        keep their backend object (state intact).  Every other range
        is rebuilt from the exported ``live_keys`` of the old shards
        that overlapped it — the keys physically moved between
        machines, which is the deterministic cost the ``migrated``
        series records.  Retrain counters of rebuilt shards are folded
        into the router's total first, so the cluster-level retrain
        series stays monotone across migrations.
        """
        if (new_map.domain_lo, new_map.domain_hi) != \
                (self._map.domain_lo, self._map.domain_hi):
            raise ValueError(
                "the new shard map must cover the same domain: "
                f"[{new_map.domain_lo}, {new_map.domain_hi}] vs "
                f"[{self._map.domain_lo}, {self._map.domain_hi}]")
        old_ranges = {self._map.shard_range(i): self._shards[i]
                      for i in range(self._map.n_shards)}
        new_ranges = {new_map.shard_range(i)
                      for i in range(new_map.n_shards)}
        # Defense settings survive the migration: a rebuilt range
        # inherits the tuned (threshold, keep) of the old shard that
        # covered its floor key.
        old_edges = self._map.edges
        old_settings = [
            (self._threshold, self._keep_fraction) if backend is None
            else (backend.rebuild_threshold,
                  backend.trim_keep_fraction)
            for backend in self._shards]
        moved_keys: list[np.ndarray] = []
        keep: "dict[tuple[int, int], ServingBackend | None]" = {}
        for old_range, backend in old_ranges.items():
            if old_range in new_ranges:
                keep[old_range] = backend
            elif backend is not None:
                self._retrains_migrated += backend.retrain_count
                moved_keys.append(backend.live_keys())
        pool = (np.sort(np.concatenate(moved_keys)) if moved_keys
                else np.empty(0, dtype=np.int64))
        migrated = int(pool.size)

        new_shards: "list[ServingBackend | None]" = []
        for shard in range(new_map.n_shards):
            shard_range = new_map.shard_range(shard)
            if shard_range in keep:
                new_shards.append(keep[shard_range])
            else:
                lo, hi = shard_range
                left = int(np.searchsorted(pool, lo, side="left"))
                right = int(np.searchsorted(pool, hi, side="right"))
                source = min(
                    int(np.searchsorted(old_edges, lo,
                                        side="right")) - 1,
                    len(old_settings) - 1)
                new_shards.append(self._build_shard(
                    pool[left:right], settings=old_settings[source],
                    shard=shard))
        self._map = new_map
        self._shards = new_shards
        self._tick_loads = np.zeros(new_map.n_shards, dtype=np.int64)
        self._keys_migrated_total += migrated
        return migrated

    def split_shard(self, shard: int) -> int:
        """Split one shard at its live-key mass median; keys moved."""
        backend = self._shards[shard]
        if backend is None:  # nothing to cut a mass median from
            return 0
        new_map = self._map.split(shard, backend.live_keys())
        if new_map is self._map or new_map.splits == self._map.splits:
            return 0
        return self.apply_map(new_map)

    def merge_shards(self, shard: int) -> int:
        """Merge one shard with its right neighbour; keys moved."""
        return self.apply_map(self._map.merge(shard))

    # ------------------------------------------------------------------
    # Per-shard defense hooks
    # ------------------------------------------------------------------
    def set_shard_trim_keep_fraction(self, shard: int,
                                     fraction: "float | None") -> None:
        """Re-arm one shard's TRIM screen (no-op on model-free shards)."""
        backend = self._shards[shard]
        if backend is not None and backend.supports_trim:
            backend.set_trim_keep_fraction(fraction)

    def set_shard_rebuild_threshold(self, shard: int,
                                    threshold: float) -> None:
        """Retarget one shard's compaction trigger."""
        if self._shards[shard] is not None:
            self._shards[shard].set_rebuild_threshold(threshold)

    # ------------------------------------------------------------------
    # Transport surface (no-op in process; the cross-process router
    # overrides all four)
    # ------------------------------------------------------------------
    def start_tick(self, tick: int) -> None:
        """Open a tick window on the transport book (no-op here)."""

    def transport_tick_stats(self) -> tuple[int, int, float]:
        """(degraded replica slots, flagged replicas, injected ms)
        accumulated since the last call.

        The in-process router has no transport, so the triple is
        identically zero — which is exactly what keeps its series
        bit-comparable to a process-transport run with injection off.
        """
        return 0, 0, 0.0

    def flagged_replicas(self) -> "list[tuple[int, int]]":
        """(shard, replica) slots the divergence detector flagged."""
        return []

    def shard_digests(self) -> "list[str | None]":
        """Per-shard state digests (``None`` for unprovisioned)."""
        return [None if s is None else s.state_digest()
                for s in self._shards]

    def close(self) -> None:
        """Release shard resources (nothing to release in-process)."""
