"""The cluster replay loop: per-shard, per-tenant serving metrics.

:class:`ClusterSimulator` is the :class:`~repro.workload.simulator.
ServingSimulator` one level up: it drives a multi-tenant trace through
a :class:`~repro.cluster.router.ClusterRouter`, applies the
:class:`~repro.cluster.rebalance.Rebalancer` and
:class:`~repro.cluster.rebalance.SloWeightedDefense` at tick
boundaries, and records three families of series:

* **cluster** — p50/p95/p99 probe percentiles, throughput proxy,
  worst shard error bound, cumulative retrains, live keys, shard
  count, router imbalance, keys migrated, poison injected;
* **per-tenant** (2D, ``ticks × tenants``) — probe p95 and
  amplification against per-tenant probe samples, the series SLO
  compliance is judged on;
* **per-shard** (2D, ``ticks × max-shards``, NaN-padded on topology
  changes) — load, probe p95, live keys per shard, and the shard
  map's interior split-point positions (``shard_split_points``; a
  map with *k* shards fills *k−1* columns, the rest NaN like any
  other absent shard column) — the series that show a hot shard
  heating up, a split cooling it, and a concentrated attack
  dragging the partition boundaries toward the victim's range.

All metrics are deterministic cost proxies (probe counts, key
counts), so a cluster cell keeps the jobs/executor parity guarantee
of every other sweep on the engine.  Mutations apply one op at a
time, reads batch per same-kind run — retrain *and* rebalance timing
are invariant under batching by construction.

Cluster adversaries
-------------------
The simulator reuses the PR 4 feedback port: after every tick the
adversary observes a :class:`ClusterTickObservation` and its returned
keys are injected at the start of the next tick.  Three placements,
all budget-ledgered through the same
:class:`~repro.workload.closedloop.AdaptiveAdversary` machinery:

``uniform``       evenly spaced fresh keys across the whole domain —
                  the placement-blind baseline every shard absorbs a
                  proportional dose of;
``concentrated``  Algorithm 2 (architecture-aware) output against the
                  *victim tenant's* sub-CDF, every key inside the
                  victim's range — the cluster-aware attack that
                  drags split points and forces hot-shard splits
                  there;
``hotshard``      feedback-driven: packs crafted keys around the mass
                  centre of whichever shard the observation shows
                  hottest inside the victim's range.

Because all placements share one budget and one drip pacing, a gap
between them is attributable to *placement* alone — the cluster-level
analogue of PR 4's same-world timing duels.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.rmi_attack import poison_rmi
from ..core.threat_model import RMIAttackerCapability
from ..data.keyset import Domain, KeySet
from ..io import json_float
from ..observe.metrics import MetricsRegistry
from ..observe.metrics import active as observe_active
from ..runtime import stable_seed_words
from ..workload.closedloop import AdaptiveAdversary
from ..workload.simulator import TickObservation, last_finite
from ..workload.trace import (
    OP_DELETE,
    OP_INSERT,
    OP_MODIFY,
    OP_POISON,
    OP_QUERY,
    OP_RANGE,
    Trace,
)
from .rebalance import Rebalancer, SloWeightedDefense
from .router import ClusterRouter

__all__ = [
    "ClusterTickObservation", "ClusterReport", "ClusterSimulator",
    "ClusterAdversary", "UniformClusterAdversary",
    "ConcentratedClusterAdversary", "HotShardAdversary",
    "CLUSTER_ADVERSARIES", "make_cluster_adversary",
]

_CLUSTER_SERIES = ("p50", "p95", "p99", "mean_probes", "error_bound",
                   "retrains", "n_keys", "n_shards", "imbalance",
                   "migrated", "injected", "degraded", "flagged",
                   "latency_ms")
_TENANT_SERIES = ("tenant_p95", "tenant_amplification")
_SHARD_SERIES = ("shard_loads", "shard_p95", "shard_n_keys",
                 "shard_split_points")


@dataclass(frozen=True)
class ClusterTickObservation:
    """What the cluster feedback ports see at one tick boundary.

    Percentiles are backfilled to the last finite value like the
    single-backend observation; the per-tenant and per-shard tuples
    are the tick's raw rows (NaN where a tenant or shard saw no
    reads).  ``shard_ranges`` aligns with the shard tuples so a
    policy can target key space, not just indices.
    """

    tick: int
    ticks_total: int
    p95: float
    mean_probes: float
    retrains: int
    retrains_delta: int
    n_keys: int
    n_shards: int
    imbalance: float
    injected_total: int
    migrated_total: int
    tenant_p95: tuple[float, ...]
    tenant_amplification: tuple[float, ...]
    shard_loads: tuple[int, ...]
    shard_p95: tuple[float, ...]
    shard_ranges: tuple[tuple[int, int], ...]


#: Cluster feedback-port signatures (policies are plain callables).
ClusterAdversaryPort = Callable[[ClusterTickObservation],
                                "np.ndarray | None"]


@dataclass(frozen=True, eq=False)  # array fields: identity equality
class ClusterReport:
    """Everything one cluster replay measured.

    ``series`` holds the 1D cluster channels; ``tenant_series`` and
    ``shard_series`` hold the 2D ones (``ticks × tenants`` and
    ``ticks × max-shards``, the latter NaN-padded where a tick had
    fewer shards).  ``wall_seconds`` is the only non-deterministic
    field and stays out of :meth:`to_dict`.
    """

    backend: str
    spec_digest: str
    initial_map_digest: str
    final_map_digest: str
    n_ops: int
    tick_ops: int
    n_tenants: int
    series: dict[str, np.ndarray]
    tenant_series: dict[str, np.ndarray]
    shard_series: dict[str, np.ndarray]
    p50: float
    p95: float
    p99: float
    mean_probes: float
    found_fraction: float
    retrains: int
    injected_poison: int
    # Crafted keys the adversary emitted but the run never injected
    # (left pending when the trace ended); budget reconciliation is
    # emitted == injected_poison + discarded_poison.
    discarded_poison: int
    migrated_keys: int
    final_n_shards: int
    max_imbalance: float
    final_tenant_p95: tuple[float, ...]
    final_tenant_amplification: tuple[float, ...]
    tenant_slo_violation_fraction: tuple[float, ...]
    # Transport health (identically zero on the in-process router —
    # the bit-parity contract with a no-injection process transport):
    # ticks with at least one degraded replica slot, and replicas the
    # divergence detector flagged as poisoned.
    degraded_ticks: int
    flagged_replicas: int
    wall_seconds: float = field(compare=False)

    @property
    def n_ticks(self) -> int:
        return int(self.series["p50"].size)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe, deterministic summary (no wall-clock)."""
        return {
            "backend": self.backend,
            "spec_digest": self.spec_digest,
            "initial_map_digest": self.initial_map_digest,
            "final_map_digest": self.final_map_digest,
            "n_ops": self.n_ops,
            "tick_ops": self.tick_ops,
            "n_ticks": self.n_ticks,
            "n_tenants": self.n_tenants,
            "p50": json_float(self.p50),
            "p95": json_float(self.p95),
            "p99": json_float(self.p99),
            "mean_probes": json_float(self.mean_probes),
            "found_fraction": json_float(self.found_fraction),
            "retrains": self.retrains,
            "injected_poison": self.injected_poison,
            "discarded_poison": self.discarded_poison,
            "migrated_keys": self.migrated_keys,
            "final_n_shards": self.final_n_shards,
            "max_imbalance": json_float(self.max_imbalance),
            "final_tenant_p95": [json_float(v)
                                 for v in self.final_tenant_p95],
            "final_tenant_amplification": [
                json_float(v)
                for v in self.final_tenant_amplification],
            "tenant_slo_violation_fraction": [
                json_float(v)
                for v in self.tenant_slo_violation_fraction],
            "degraded_ticks": self.degraded_ticks,
            "flagged_replicas": self.flagged_replicas,
        }


# ----------------------------------------------------------------------
# Cluster adversaries (the PR 4 port, cluster-aware placements)
# ----------------------------------------------------------------------

def _fresh_even_keys(base: np.ndarray, lo: int, hi: int,
                     count: int) -> np.ndarray:
    """``count`` unoccupied keys evenly spaced across ``[lo, hi]``.

    Deterministic and RNG-free: candidates walk an even grid and each
    occupied candidate slides right to the nearest free value, so two
    processes (and two budgets paced differently) craft identical
    pools.
    """
    base = np.sort(np.asarray(base, dtype=np.int64))
    out: list[int] = []
    taken = set()
    for i in range(count):
        candidate = lo + ((2 * i + 1) * (hi - lo)) // max(2 * count, 1)
        for _ in range(hi - lo + 1):
            if candidate > hi:
                candidate = lo
            slot = int(np.searchsorted(base, candidate))
            occupied = (slot < base.size
                        and int(base[slot]) == candidate)
            if not occupied and candidate not in taken:
                break
            candidate += 1
        else:  # pragma: no cover - range denser than the budget
            break
        out.append(candidate)
        taken.add(candidate)
    return np.asarray(sorted(out), dtype=np.int64)


class ClusterAdversary(AdaptiveAdversary):
    """Budget-ledgered even drip of a fixed, placement-specific pool.

    Subclasses fill ``self._pool`` in ``__init__``; the base paces it
    evenly over the injection opportunities (the oblivious-drip
    timing), so any duel between placements is same-pacing by
    construction.  ``victim_range`` is the key range of the tenant
    under attack (tenant 0 by the grid's convention).
    """

    name = "abstract-cluster"

    def __init__(self, base_keys: np.ndarray, domain: Domain,
                 budget: int, seed: int,
                 victim_range: tuple[int, int]):
        super().__init__(base_keys, domain, budget, seed)
        lo, hi = victim_range
        if not domain.lo <= lo <= hi <= domain.hi:
            raise ValueError(
                f"victim range [{lo}, {hi}] must sit inside the "
                f"domain [{domain.lo}, {domain.hi}]")
        self._victim = (int(lo), int(hi))
        self._pool = np.empty(0, dtype=np.int64)

    @property
    def pool(self) -> np.ndarray:
        """The crafted poison pool (placement-specific, deterministic)."""
        return self._pool

    def _seal_pool(self, pool: np.ndarray) -> None:
        """Install the crafted pool; the ledger follows its size."""
        self._pool = np.asarray(pool, dtype=np.int64)[:self._budget]
        self._budget = min(self._budget, int(self._pool.size))

    def _take(self, count: int) -> np.ndarray:
        return self._pool[self._emitted:self._emitted + max(count, 0)]

    def _next_keys(self, obs: ClusterTickObservation) -> np.ndarray:
        chances = max(1, obs.ticks_total - 1)
        dose = -(-self.budget // chances)  # ceil: spend the whole pool
        return self._take(dose)


class UniformClusterAdversary(ClusterAdversary):
    """Placement-blind baseline: even spread over the whole domain.

    Every shard absorbs a dose proportional to its key-space width —
    the strongest attack an adversary ignorant of tenancy and the
    shard map can mount with the same budget and pacing.
    """

    name = "uniform"

    def __init__(self, base_keys: np.ndarray, domain: Domain,
                 budget: int, seed: int,
                 victim_range: tuple[int, int]):
        super().__init__(base_keys, domain, budget, seed, victim_range)
        self._seal_pool(_fresh_even_keys(self._base, domain.lo,
                                         domain.hi, budget))


class ConcentratedClusterAdversary(ClusterAdversary):
    """Cluster-aware placement: Algorithm 2 against the victim tenant.

    The architecture-aware RMI attack runs against the victim's
    *sub-CDF* (its keys, its range as the domain, the model count its
    key mass would be provisioned), so every crafted key lands inside
    the victim's slice of the key space — and, unlike a single dense
    cluster, the per-model placement survives the equal-size
    repartition of every subsequent retrain.  The local mass spike
    drags equal-mass split points toward the victim and concentrates
    model damage on exactly the shards serving it — the shard map
    itself becomes part of the attack surface.

    The paper caps Algorithm 2's budget at 20% of the victimised
    keys; a larger requested budget is clamped (the ledger follows
    the crafted pool), which only makes a same-budget duel against
    the uniform placement conservative.
    """

    name = "concentrated"

    def __init__(self, base_keys: np.ndarray, domain: Domain,
                 budget: int, seed: int,
                 victim_range: tuple[int, int], model_size: int = 100):
        super().__init__(base_keys, domain, budget, seed, victim_range)
        if model_size < 1:
            raise ValueError(
                f"model_size must be >= 1, got {model_size}")
        lo, hi = self._victim
        inside = self._base[(self._base >= lo) & (self._base <= hi)]
        if inside.size == 0:
            raise ValueError(
                f"victim range [{lo}, {hi}] holds no base keys")
        victim = KeySet(inside, domain=Domain(lo, hi))
        n_models = max(1, inside.size // model_size)
        percentage = min(20.0, 100.0 * budget / inside.size)
        self._seal_pool(np.asarray(poison_rmi(
            victim, n_models,
            RMIAttackerCapability(poisoning_percentage=percentage),
        ).poison_keys, dtype=np.int64))


class HotShardAdversary(ClusterAdversary):
    """Feedback-driven placement: chase the hottest victim shard.

    Each tick the observation's per-shard loads pick the busiest
    shard overlapping the victim's range; the dose packs outward from
    that shard's key-range centre, skipping occupied and
    already-crafted values.  The pool is crafted lazily, so this is
    the one placement that genuinely *uses* the feedback port's
    cluster channels.
    """

    name = "hotshard"

    def __init__(self, base_keys: np.ndarray, domain: Domain,
                 budget: int, seed: int,
                 victim_range: tuple[int, int]):
        super().__init__(base_keys, domain, budget, seed, victim_range)
        self._budget = int(budget)
        self._crafted: set[int] = set()

    def _hottest_victim_shard(self, obs: ClusterTickObservation,
                              ) -> tuple[int, int]:
        lo, hi = self._victim
        best, best_load = None, -1
        for (shard_lo, shard_hi), load in zip(obs.shard_ranges,
                                              obs.shard_loads):
            if shard_hi < lo or shard_lo > hi:
                continue
            if load > best_load:
                best, best_load = (max(shard_lo, lo),
                                   min(shard_hi, hi)), load
        return best if best is not None else (lo, hi)

    def _next_keys(self, obs: ClusterTickObservation) -> np.ndarray:
        chances = max(1, obs.ticks_total - 1)
        dose = min(-(-self.budget // chances), self.remaining)
        lo, hi = self._hottest_victim_shard(obs)
        centre = (lo + hi) // 2
        out: list[int] = []
        offset = 0
        while len(out) < dose and offset <= (hi - lo + 1):
            for candidate in (centre + offset, centre - offset):
                if len(out) >= dose:
                    break
                if not lo <= candidate <= hi:
                    continue
                if candidate in self._crafted:
                    continue
                slot = int(np.searchsorted(self._base, candidate))
                if (slot < self._base.size
                        and int(self._base[slot]) == candidate):
                    continue
                out.append(candidate)
                self._crafted.add(candidate)
            offset += 1
        return np.asarray(sorted(out), dtype=np.int64)


CLUSTER_ADVERSARIES: dict[str, type[ClusterAdversary]] = {
    cls.name: cls
    for cls in (UniformClusterAdversary, ConcentratedClusterAdversary,
                HotShardAdversary)
}


def make_cluster_adversary(name: str, base_keys: np.ndarray,
                           domain: Domain, budget: int, seed: int,
                           victim_range: tuple[int, int],
                           model_size: int = 100) -> ClusterAdversary:
    """Instantiate a registered cluster placement policy.

    ``model_size`` only reaches the architecture-aware
    ``concentrated`` placement; passing it for the others is allowed
    (and ignored) so callers can treat the registry uniformly.
    """
    try:
        cls = CLUSTER_ADVERSARIES[name]
    except KeyError:
        raise ValueError(
            f"unknown cluster adversary {name!r}; known: "
            f"{sorted(CLUSTER_ADVERSARIES)}") from None
    kwargs: dict[str, Any] = {"victim_range": victim_range}
    if cls is ConcentratedClusterAdversary:
        kwargs["model_size"] = model_size
    return cls(base_keys, domain, budget, seed, **kwargs)


# ----------------------------------------------------------------------
# The simulator
# ----------------------------------------------------------------------

class ClusterSimulator:
    """Drive one multi-tenant trace through one sharded cluster.

    Parameters
    ----------
    router:
        A freshly built :class:`ClusterRouter` over the trace's base
        keys.
    trace:
        The operation stream; its spec carries the tenant layout and
        SLO targets.
    tick_ops:
        Operations per metrics tick.
    probe_sample_size:
        Per-tenant probe-sample size for the amplification series
        (drawn deterministically from each tenant's base keys).
    adversary:
        Optional cluster feedback port; returned keys are injected at
        the start of the next tick, one op at a time.
    rebalancer:
        Optional :class:`Rebalancer`; its split/merge decisions apply
        at tick boundaries and their migration cost lands in the
        ``migrated`` series of the following tick.
    defense:
        Optional :class:`SloWeightedDefense`; per-shard decisions
        apply through the router's shard tuner hooks every tick.
    columnar:
        Serve each tick as one :meth:`ClusterRouter.replay_ops` call
        (the default fast path) instead of one router call per op
        run.  Both paths produce bit-identical reports; the scalar
        path remains as the parity reference.
    """

    def __init__(self, router: ClusterRouter, trace: Trace,
                 tick_ops: int = 200, probe_sample_size: int = 48,
                 adversary: "ClusterAdversaryPort | None" = None,
                 rebalancer: "Rebalancer | None" = None,
                 defense: "SloWeightedDefense | None" = None,
                 columnar: bool = True,
                 metrics: "MetricsRegistry | None" = None):
        if tick_ops < 1:
            raise ValueError(f"tick_ops must be >= 1: {tick_ops}")
        if probe_sample_size < 1:
            # A zero-sized sample would poison every per-tenant
            # baseline with NaN and silently blank the amplification
            # series; refuse up front instead.
            raise ValueError(
                f"probe_sample_size must be >= 1: {probe_sample_size}")
        self._router = router
        self._trace = trace
        self._spec = trace.spec
        self._tick_ops = int(tick_ops)
        self._adversary = adversary
        self._rebalancer = rebalancer
        self._defense = defense
        self._columnar = bool(columnar)
        # Opt-in instrumentation (explicit registry wins, else the
        # process-installed one); forwarded to the router so shard
        # backends and the transport book report into the same sink.
        self._metrics = (metrics if metrics is not None
                         else observe_active())
        if self._metrics is not None:
            router.set_metrics(self._metrics)
        self._n_tenants = self._spec.n_tenants
        tenants = self._spec.tenant_of(trace.base_keys)
        self._samples: list[np.ndarray] = []
        for tenant in range(self._n_tenants):
            own = trace.base_keys[tenants == tenant]
            rng = np.random.default_rng(stable_seed_words(
                self._spec.seed, "cluster-probe-sample", tenant,
                self._spec.digest))
            size = min(probe_sample_size, own.size)
            if size == 0:  # a tenant with no keys measures nothing
                self._samples.append(np.empty(0, dtype=np.int64))
            else:
                self._samples.append(rng.choice(own, size=size,
                                                replace=False))

    # ------------------------------------------------------------------
    def _sample_cost(self, tenant: int) -> float:
        """Mean probes over one tenant's fixed sample (measure only)."""
        sample = self._samples[tenant]
        if sample.size == 0:
            return float("nan")
        _, probes = self._router.lookup_batch(sample)
        # Measurement lookups must not count as served load.
        self._router.drain_tick_loads()
        return float(probes.mean())

    def _tenants_on_shard(self, lo: int, hi: int) -> np.ndarray:
        """Tenants whose key ranges overlap ``[lo, hi]``."""
        if self._spec.tenant_layout == "shared" \
                or self._n_tenants == 1:
            return np.arange(self._n_tenants, dtype=np.int64)
        first = int(self._spec.tenant_of(np.asarray([lo]))[0])
        last = int(self._spec.tenant_of(np.asarray([hi]))[0])
        return np.arange(first, last + 1, dtype=np.int64)

    def run(self) -> ClusterReport:
        """Replay the whole trace; returns the metrics report."""
        trace, router, spec = self._trace, self._router, self._spec
        kinds, keys, aux = trace.kinds, trace.keys, trace.aux
        n = trace.n_ops
        started = time.perf_counter()
        initial_digest = router.shard_map.digest
        baselines = np.asarray(
            [self._sample_cost(t) for t in range(self._n_tenants)])

        n_ticks = -(-n // self._tick_ops)  # ceil
        bounds = np.minimum(
            (np.arange(n_ticks, dtype=np.int64) + 1) * self._tick_ops,
            n)

        series: dict[str, list[float]] = {
            name: [] for name in _CLUSTER_SERIES}
        tenant_rows: dict[str, list[np.ndarray]] = {
            name: [] for name in _TENANT_SERIES}
        shard_rows: dict[str, list[np.ndarray]] = {
            name: [] for name in _SHARD_SERIES}

        all_probes: list[np.ndarray] = []
        tick_probes: list[np.ndarray] = []
        tick_tenants: list[np.ndarray] = []
        tick_shards: list[np.ndarray] = []
        found_total = 0
        query_total = 0
        injected_total = 0
        migrated_total = 0
        last_retrains = 0
        pending_inject = np.empty(0, dtype=np.int64)
        migrated_at_boundary = 0

        def close_tick(injected: int, migrated: int) -> None:
            merged = (np.concatenate(tick_probes) if tick_probes
                      else np.empty(0, dtype=np.int64))
            tenants = (np.concatenate(tick_tenants) if tick_tenants
                       else np.empty(0, dtype=np.int64))
            shards = (np.concatenate(tick_shards) if tick_shards
                      else np.empty(0, dtype=np.int64))
            if merged.size:
                p50, p95, p99 = np.percentile(merged, (50, 95, 99))
                mean = float(merged.mean())
            else:
                p50 = p95 = p99 = mean = float("nan")
            loads = router.drain_tick_loads()
            series["p50"].append(float(p50))
            series["p95"].append(float(p95))
            series["p99"].append(float(p99))
            series["mean_probes"].append(mean)
            series["error_bound"].append(router.error_bound())
            series["retrains"].append(float(router.retrain_count))
            series["n_keys"].append(float(router.n_keys))
            series["n_shards"].append(float(router.n_shards))
            series["imbalance"].append(
                ClusterRouter.imbalance(loads))
            series["migrated"].append(float(migrated))
            series["injected"].append(float(injected))

            tenant_p95 = np.full(self._n_tenants, np.nan)
            for tenant in range(self._n_tenants):
                own = merged[tenants == tenant]
                if own.size:
                    tenant_p95[tenant] = float(
                        np.percentile(own, 95))
            amp = np.asarray(
                [self._sample_cost(t) / baselines[t]
                 if math.isfinite(baselines[t]) and baselines[t] > 0
                 else float("nan")
                 for t in range(self._n_tenants)])
            tenant_rows["tenant_p95"].append(tenant_p95)
            tenant_rows["tenant_amplification"].append(amp)

            shard_p95 = np.full(router.n_shards, np.nan)
            for shard in range(router.n_shards):
                own = merged[shards == shard]
                if own.size:
                    shard_p95[shard] = float(np.percentile(own, 95))
            shard_rows["shard_loads"].append(
                loads.astype(np.float64))
            shard_rows["shard_p95"].append(shard_p95)
            shard_rows["shard_n_keys"].append(
                router.shard_n_keys().astype(np.float64))
            # Interior split positions as of this tick's map: the
            # first-class drift channel (k shards fill k-1 columns;
            # the NaN padding below aligns it with shard_loads).
            shard_rows["shard_split_points"].append(
                np.asarray(router.shard_map.splits,
                           dtype=np.float64))

            # Drain the transport window last so the tick's own
            # measurement lookups (amplification sampling above) are
            # charged to the tick they ran in; divergence detection
            # runs inside this call on the cross-process router.
            degraded, flagged, latency_ms = \
                router.transport_tick_stats()
            series["degraded"].append(float(degraded))
            series["flagged"].append(float(flagged))
            series["latency_ms"].append(float(latency_ms))

            all_probes.extend(tick_probes)
            tick_probes.clear()
            tick_tenants.clear()
            tick_shards.clear()

        def observe(tick: int) -> ClusterTickObservation:
            nonlocal last_retrains
            retrains = int(series["retrains"][-1])
            obs = ClusterTickObservation(
                tick=tick,
                ticks_total=int(bounds.size),
                p95=last_finite(series["p95"], float("nan")),
                mean_probes=last_finite(series["mean_probes"],
                                        float("nan")),
                retrains=retrains,
                retrains_delta=retrains - last_retrains,
                n_keys=int(series["n_keys"][-1]),
                n_shards=int(series["n_shards"][-1]),
                imbalance=float(series["imbalance"][-1]),
                injected_total=injected_total,
                migrated_total=migrated_total,
                tenant_p95=tuple(
                    float(v) for v in tenant_rows["tenant_p95"][-1]),
                tenant_amplification=tuple(
                    float(v)
                    for v in tenant_rows["tenant_amplification"][-1]),
                shard_loads=tuple(
                    int(v) for v in shard_rows["shard_loads"][-1]),
                shard_p95=tuple(
                    float(v) for v in shard_rows["shard_p95"][-1]),
                shard_ranges=tuple(
                    router.shard_map.shard_range(s)
                    for s in range(router.n_shards)))
            last_retrains = retrains
            return obs

        def apply_defense(obs: ClusterTickObservation) -> None:
            tenant_amp = np.asarray(obs.tenant_amplification)
            observed_p95 = np.asarray(obs.tenant_p95)
            for shard in range(router.n_shards):
                if router.shard(shard) is None:
                    continue  # unprovisioned: nothing to tune yet
                lo, hi = router.shard_map.shard_range(shard)
                on_shard = self._tenants_on_shard(lo, hi)
                shard_amp = float(np.nanmax(tenant_amp[on_shard])) \
                    if np.isfinite(tenant_amp[on_shard]).any() \
                    else float("nan")
                local = TickObservation(
                    tick=obs.tick, ticks_total=obs.ticks_total,
                    p50=obs.p95, p95=obs.p95, p99=obs.p95,
                    mean_probes=obs.mean_probes,
                    error_bound=0.0,
                    retrains=obs.retrains,
                    retrains_delta=obs.retrains_delta,
                    amplification=shard_amp,
                    n_keys=int(router.shard(shard).n_keys),
                    injected_total=obs.injected_total)
                keep, threshold = self._defense.decide_shard(
                    shard, router.n_shards, local, observed_p95,
                    tenant_amp, on_shard)
                router.set_shard_trim_keep_fraction(shard, keep)
                router.set_shard_rebuild_threshold(shard, threshold)

        start = 0
        metrics = self._metrics
        for tick_index, tick_end in enumerate(bounds):
            tick_started = (time.perf_counter()
                            if metrics is not None else 0.0)
            tick_start_op = start
            router.start_tick(tick_index)
            injected_this_tick = int(pending_inject.size)
            migrated_this_tick = migrated_at_boundary
            migrated_at_boundary = 0

            if self._columnar:
                # One router.replay_ops call per tick: pending poison
                # rides along as a synthetic OP_POISON prefix, so it
                # lands before the tick's ops exactly as the per-key
                # injection loop would.
                t_kinds = kinds[start:tick_end]
                t_keys = keys[start:tick_end]
                t_aux = aux[start:tick_end]
                if injected_this_tick:
                    t_kinds = np.concatenate([
                        np.full(injected_this_tick, OP_POISON,
                                dtype=kinds.dtype), t_kinds])
                    t_keys = np.concatenate([pending_inject, t_keys])
                    t_aux = np.concatenate([
                        np.zeros(injected_this_tick, dtype=np.int64),
                        t_aux])
                injected_total += injected_this_tick
                pending_inject = np.empty(0, dtype=np.int64)
                found, probes = router.replay_ops(t_kinds, t_keys,
                                                  t_aux)
                reads = ((t_kinds == OP_QUERY)
                         | (t_kinds == OP_RANGE))
                if probes.size:
                    read_keys = t_keys[reads]
                    tick_probes.append(probes)
                    tick_tenants.append(spec.tenant_of(read_keys))
                    tick_shards.append(
                        router.shard_map.route(read_keys))
                is_query = t_kinds[reads] == OP_QUERY
                found_total += int(found[is_query].sum())
                query_total += int(is_query.sum())
                start = tick_end
            else:
                for key in pending_inject:
                    router.insert_batch(key[np.newaxis])
                injected_total += injected_this_tick
                pending_inject = np.empty(0, dtype=np.int64)
                while start < tick_end:
                    kind = kinds[start]
                    stop = start + 1
                    while stop < tick_end and kinds[stop] == kind:
                        stop += 1
                    run_keys = keys[start:stop]
                    if kind == OP_QUERY:
                        found, probes = router.lookup_batch(run_keys)
                        tick_probes.append(probes)
                        tick_tenants.append(spec.tenant_of(run_keys))
                        tick_shards.append(
                            router.shard_map.route(run_keys))
                        found_total += int(found.sum())
                        query_total += int(found.size)
                    elif kind == OP_RANGE:
                        probes = np.asarray(
                            [router.range_scan(int(lo), int(hi))
                             for lo, hi in zip(run_keys,
                                               aux[start:stop])],
                            dtype=np.int64)
                        tick_probes.append(probes)
                        tick_tenants.append(spec.tenant_of(run_keys))
                        tick_shards.append(
                            router.shard_map.route(run_keys))
                    elif kind in (OP_INSERT, OP_POISON):
                        for key in run_keys:
                            router.insert_batch(key[np.newaxis])
                    elif kind == OP_DELETE:
                        for key in run_keys:
                            router.delete_batch(key[np.newaxis])
                    elif kind == OP_MODIFY:
                        for key, new in zip(run_keys, aux[start:stop]):
                            router.delete_batch(key[np.newaxis])
                            router.insert_batch(new[np.newaxis])
                    else:  # pragma: no cover - generator never emits
                        raise ValueError(f"unknown op kind: {kind}")
                    start = stop

            close_tick(injected_this_tick, migrated_this_tick)
            if metrics is not None:
                metrics.observe("cluster.tick",
                                time.perf_counter() - tick_started)
                metrics.inc("cluster.ticks")
                metrics.inc("cluster.ops",
                            int(tick_end - tick_start_op)
                            + injected_this_tick)
                metrics.trace(
                    "cluster.tick", tick=tick_index,
                    ops=int(tick_end - tick_start_op),
                    injected=injected_this_tick,
                    migrated=migrated_this_tick,
                    n_shards=int(series["n_shards"][-1]),
                    retrains=int(series["retrains"][-1]))
            needs_ports = (self._adversary is not None
                           or self._defense is not None
                           or self._rebalancer is not None)
            if needs_ports:
                obs = observe(tick_index)
                if self._defense is not None:
                    apply_defense(obs)
                # No topology change after the final tick: nothing
                # would serve under the new map, and the migration
                # cost would have no tick row left to land in (the
                # same guard the adversary port applies to its keys).
                last_tick = tick_index >= bounds.size - 1
                if self._rebalancer is not None and not last_tick:
                    decision = self._rebalancer.decide(
                        np.asarray(obs.shard_loads, dtype=np.int64),
                        np.asarray(obs.shard_p95),
                        router.shard_n_keys())
                    if decision is not None:
                        if decision.kind == "split":
                            moved = router.split_shard(decision.shard)
                        else:
                            moved = router.merge_shards(decision.shard)
                        migrated_at_boundary += moved
                        migrated_total += moved
                if self._adversary is not None:
                    crafted = self._adversary(obs)
                    if crafted is not None:
                        pending_inject = np.asarray(crafted,
                                                    dtype=np.int64)

        probes_flat = (np.concatenate(all_probes) if all_probes
                       else np.empty(0, dtype=np.int64))
        if probes_flat.size:
            p50, p95, p99 = (float(v) for v in
                             np.percentile(probes_flat, (50, 95, 99)))
            mean = float(probes_flat.mean())
        else:
            p50 = last_finite(series["p50"])
            p95 = last_finite(series["p95"])
            p99 = last_finite(series["p99"])
            mean = last_finite(series["mean_probes"])

        tenant_arrays = {
            name: np.vstack(rows)
            for name, rows in tenant_rows.items()}
        max_shards = max(row.size
                         for row in shard_rows["shard_loads"])
        shard_arrays = {}
        for name, rows in shard_rows.items():
            padded = np.full((len(rows), max_shards), np.nan)
            for i, row in enumerate(rows):
                padded[i, :row.size] = row
            shard_arrays[name] = padded

        final_p95 = tuple(
            last_finite(tenant_arrays["tenant_p95"][:, t],
                        float("nan"))
            for t in range(self._n_tenants))
        final_amp = tuple(
            last_finite(tenant_arrays["tenant_amplification"][:, t],
                        1.0)
            for t in range(self._n_tenants))
        slos = spec.tenant_slos()
        violations = []
        for tenant in range(self._n_tenants):
            observed = tenant_arrays["tenant_p95"][:, tenant]
            finite = observed[np.isfinite(observed)]
            if finite.size == 0 or not math.isfinite(slos[tenant]):
                violations.append(0.0)
            else:
                violations.append(
                    float((finite > slos[tenant]).mean()))

        return ClusterReport(
            backend=router.backend_name,
            spec_digest=spec.digest,
            initial_map_digest=initial_digest,
            final_map_digest=router.shard_map.digest,
            n_ops=n,
            tick_ops=self._tick_ops,
            n_tenants=self._n_tenants,
            series={name: np.asarray(values, dtype=np.float64)
                    for name, values in series.items()},
            tenant_series=tenant_arrays,
            shard_series=shard_arrays,
            p50=p50, p95=p95, p99=p99,
            mean_probes=mean,
            found_fraction=(found_total / query_total if query_total
                            else 0.0),
            retrains=int(router.retrain_count),
            injected_poison=injected_total,
            discarded_poison=int(pending_inject.size),
            migrated_keys=migrated_total,
            final_n_shards=int(router.n_shards),
            max_imbalance=float(np.max(series["imbalance"]))
            if series["imbalance"] else 1.0,
            final_tenant_p95=final_p95,
            final_tenant_amplification=final_amp,
            tenant_slo_violation_fraction=tuple(violations),
            degraded_ticks=int(np.count_nonzero(
                np.asarray(series["degraded"]) > 0)),
            flagged_replicas=(int(series["flagged"][-1])
                              if series["flagged"] else 0),
            # repro: allow[REP003] -- wall_seconds is an advisory stats field, never compared or digested
            wall_seconds=time.perf_counter() - started)
