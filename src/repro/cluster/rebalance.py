"""Rebalancing triggers and the SLO-weighted cluster defense.

Two deterministic control policies that close the cluster-management
loop, mirroring the single-backend policies of
:mod:`repro.workload.closedloop` one level up:

* :class:`Rebalancer` — watches per-shard load shares and probe p95s
  and decides at most one topology action per tick: **split** the
  hottest shard when its load or latency runs away from the cluster
  (the churn- and latency-driven triggers of the issue), or **merge**
  the two coldest adjacent shards when both idle well below the ideal
  share.  Splits cut at the live-key mass median
  (:meth:`~repro.cluster.shardmap.ShardMap.split`), so a poison
  cluster that heated a shard ends up isolated in its own range —
  rebalancing *is* a containment defense here, not just a load
  spreader.  Every action pays a migration cost the simulator records;
  a cooldown stops the trigger from thrashing.

* :class:`SloWeightedDefense` — one
  :class:`~repro.workload.closedloop.TrimAutoTuner` per shard, each
  fed a shard-local observation, with the decision *weighted by SLO
  pressure*: the worst ratio of observed tenant p95 to that tenant's
  SLO target among the tenants whose key ranges overlap the shard.  A
  shard serving an SLO-violating tenant gets a tightened TRIM screen
  (scaled toward the tuner's floor); a shard whose tenants are inside
  budget keeps the tuner's neutral decision.  Decisions are pure
  functions of the observation stream — the whole defense is exactly
  as deterministic as a fixed configuration.

Both policies are single-replay objects: construct fresh ones per
cell, as with every closed-loop policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..workload.closedloop import TrimAutoTuner
from ..workload.simulator import TickObservation

__all__ = ["RebalanceDecision", "Rebalancer", "SloWeightedDefense"]


@dataclass(frozen=True)
class RebalanceDecision:
    """One topology action: ``kind`` is ``"split"`` or ``"merge"``.

    ``shard`` names the split victim, or the left shard of a merge
    pair.  ``reason`` is a short human-readable trigger tag that lands
    in nothing but logs and tests.
    """

    kind: str
    shard: int
    reason: str


class Rebalancer:
    """Split/merge decisions from per-shard load and latency series."""

    def __init__(self, min_shards: int = 1, max_shards: int = 16,
                 split_load_factor: float = 2.0,
                 split_latency_factor: float = 1.5,
                 merge_load_factor: float = 0.25,
                 cooldown_ticks: int = 2,
                 min_shard_keys: int = 32):
        if min_shards < 1:
            raise ValueError(f"min_shards must be >= 1: {min_shards}")
        if max_shards < min_shards:
            raise ValueError(
                f"max_shards must be >= min_shards: {max_shards}")
        if split_load_factor <= 1.0:
            raise ValueError(
                f"split_load_factor must exceed 1: {split_load_factor}")
        if split_latency_factor <= 1.0:
            raise ValueError(
                f"split_latency_factor must exceed 1: "
                f"{split_latency_factor}")
        if not 0.0 < merge_load_factor < 1.0:
            raise ValueError(
                f"merge_load_factor must be in (0, 1): "
                f"{merge_load_factor}")
        if cooldown_ticks < 0:
            raise ValueError(
                f"cooldown_ticks must be >= 0: {cooldown_ticks}")
        if min_shard_keys < 2:
            raise ValueError(
                f"min_shard_keys must be >= 2: {min_shard_keys}")
        self._min_shards = int(min_shards)
        self._max_shards = int(max_shards)
        self._split_load = float(split_load_factor)
        self._split_latency = float(split_latency_factor)
        self._merge_load = float(merge_load_factor)
        self._cooldown_ticks = int(cooldown_ticks)
        self._min_shard_keys = int(min_shard_keys)
        self._cooldown = 0

    def decide(self, shard_loads: np.ndarray, shard_p95: np.ndarray,
               shard_keys: np.ndarray) -> "RebalanceDecision | None":
        """At most one action for the tick just observed.

        ``shard_loads`` — ops served per shard this tick;
        ``shard_p95`` — per-shard probe p95 (NaN for read-free
        shards); ``shard_keys`` — live keys per shard.  Split triggers
        rank hot shards by load share and then by latency ratio
        against the cluster median; ties break on the lowest shard
        index, so the decision stream is deterministic.
        """
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        loads = np.asarray(shard_loads, dtype=np.float64)
        p95 = np.asarray(shard_p95, dtype=np.float64)
        keys = np.asarray(shard_keys, dtype=np.int64)
        n = loads.size
        if n == 0:
            return None

        decision = self._split_decision(loads, p95, keys, n)
        if decision is None:
            decision = self._merge_decision(loads, n)
        if decision is not None:
            self._cooldown = self._cooldown_ticks
        return decision

    # ------------------------------------------------------------------
    def _split_decision(self, loads: np.ndarray, p95: np.ndarray,
                        keys: np.ndarray,
                        n: int) -> "RebalanceDecision | None":
        if n >= self._max_shards:
            return None
        total = loads.sum()
        splittable = keys >= self._min_shard_keys
        if total > 0:
            shares = loads * n / total
            hot = splittable & (shares >= self._split_load)
            if hot.any():
                shard = int(np.flatnonzero(hot)[
                    np.argmax(loads[hot])])
                return RebalanceDecision("split", shard, "hot-load")
        finite = p95[np.isfinite(p95)]
        if finite.size:
            median = float(np.median(finite))
            if median > 0:
                slow = (splittable & np.isfinite(p95)
                        & (p95 >= self._split_latency * median))
                if slow.any():
                    shard = int(np.flatnonzero(slow)[
                        np.argmax(p95[slow])])
                    return RebalanceDecision("split", shard,
                                             "slow-shard")
        return None

    def _merge_decision(self, loads: np.ndarray,
                        n: int) -> "RebalanceDecision | None":
        if n <= self._min_shards or n < 2:
            return None
        total = loads.sum()
        if total <= 0:
            return None
        shares = loads * n / total
        cold = shares < self._merge_load
        pairs = np.flatnonzero(cold[:-1] & cold[1:])
        if pairs.size == 0:
            return None
        left = int(pairs[np.argmin(shares[pairs] + shares[pairs + 1])])
        return RebalanceDecision("merge", left, "cold-pair")


class SloWeightedDefense:
    """Per-shard TRIM auto-tuning, weighted by tenant SLO pressure.

    Two levers per shard, both scaled by the worst SLO ratio among
    the tenants the shard serves:

    * **retrain deferral** — a shard under pressure raises its
      rebuild threshold to ``deferral_threshold``: don't retrain a
      shard that is already hurting its tenants, so dripped poison
      strands in the delta side table (which model-resident lookups
      never pay for) instead of training the next model — the
      cluster-level "don't retrain on a burst";
    * **TRIM tightening** — when a pressured shard *does* retrain (a
      threshold crossing, a migration rebuild), its keep fraction is
      tightened toward ``keep_floor`` so the training set is
      screened harder exactly where SLOs are burning.
    """

    def __init__(self, tenant_slos: "tuple[float, ...] | np.ndarray",
                 base_threshold: float = 0.1,
                 pressure_gain: float = 0.5,
                 keep_floor: float = 0.7,
                 deferral_threshold: float = 0.5,
                 amp_slo: float = 1.1,
                 trim: bool = True,
                 deferral: bool = True,
                 slo_weighting: bool = True,
                 **tuner_kwargs):
        slos = np.asarray(tenant_slos, dtype=np.float64)
        if slos.size == 0 or (slos <= 0).any():
            raise ValueError(
                f"tenant SLO targets must be positive: {tenant_slos}")
        if pressure_gain < 0.0:
            raise ValueError(
                f"pressure_gain must be non-negative: {pressure_gain}")
        if not 0.0 < keep_floor <= 1.0:
            raise ValueError(
                f"keep_floor must be in (0, 1]: {keep_floor}")
        if not 0.0 < deferral_threshold <= 1.0:
            raise ValueError(
                f"deferral_threshold must be in (0, 1]: "
                f"{deferral_threshold}")
        if amp_slo <= 1.0:
            raise ValueError(
                f"amp_slo must exceed the clean baseline (1.0): "
                f"{amp_slo}")
        self._slos = slos
        self._pressure_gain = float(pressure_gain)
        self._keep_floor = float(keep_floor)
        self._deferral_threshold = float(deferral_threshold)
        self._amp_slo = float(amp_slo)
        # Ablation seams, all armed by default.  ``trim`` off forces
        # keep=None (screen disarmed everywhere); ``deferral`` off
        # pins the per-shard tuner's threshold boost to 1x and skips
        # the pressure-driven deferral raise; ``slo_weighting`` off
        # skips the whole pressure block, leaving each shard with its
        # neutral tuner decision.
        self._trim = bool(trim)
        self._deferral = bool(deferral)
        self._slo_weighting = bool(slo_weighting)
        if not self._deferral:
            tuner_kwargs.setdefault("boost", 1.0)
        self._tuner_kwargs = dict(tuner_kwargs,
                                  base_threshold=base_threshold)
        self._tuners: dict[int, TrimAutoTuner] = {}
        self._epoch = 0
        self._n_shards: "int | None" = None

    def _tuner_for(self, shard: int, n_shards: int) -> TrimAutoTuner:
        # A topology change re-keys every shard index, so stale tuner
        # state (EMAs of a differently-shaped shard) is discarded and
        # each new shard starts from the neutral tuner — the same
        # fresh-policy-per-cell determinism rule, applied per epoch.
        if self._n_shards != n_shards:
            self._n_shards = n_shards
            self._tuners = {}
            self._epoch += 1
        if shard not in self._tuners:
            self._tuners[shard] = TrimAutoTuner(**self._tuner_kwargs)
        return self._tuners[shard]

    def pressure(self, tenant_p95: np.ndarray,
                 tenant_amplification: np.ndarray,
                 tenants_on_shard: np.ndarray) -> float:
        """Worst SLO ratio among the shard's tenants.

        Two budgets per tenant, worst wins: observed p95 over the
        tenant's probe target, and observed amplification over the
        cluster-wide ``amp_slo`` (the relative-latency budget).  The
        amplification arm matters because probe p95s are integers —
        a model quietly degrading inside one probe bucket shows up in
        the sample-mean amplification long before the p95 ticks over.
        Missing observations (NaN, e.g. a tenant with no reads yet)
        contribute no pressure; an unconstrained tenant (``inf``
        SLO) contributes none through the p95 arm by construction.
        """
        worst = 0.0
        for tenant in np.asarray(tenants_on_shard, dtype=np.int64):
            observed = float(tenant_p95[tenant])
            target = float(self._slos[tenant])
            if math.isfinite(observed) and math.isfinite(target) \
                    and target > 0:
                worst = max(worst, observed / target)
            amp = float(tenant_amplification[tenant])
            if math.isfinite(amp):
                worst = max(worst, amp / self._amp_slo)
        return worst

    def decide_shard(self, shard: int, n_shards: int,
                     observation: TickObservation,
                     tenant_p95: np.ndarray,
                     tenant_amplification: np.ndarray,
                     tenants_on_shard: np.ndarray,
                     ) -> tuple["float | None", float]:
        """(keep_fraction, rebuild_threshold) for one shard this tick.

        The shard's own tuner digests the shard-local observation;
        SLO pressure above 1 then tightens the keep fraction toward
        ``keep_floor`` (scaled by ``pressure_gain``) and raises the
        rebuild threshold to ``deferral_threshold`` — the
        premium-tenant shards defend harder, which is the whole point
        of SLO weighting.
        """
        decision = self._tuner_for(shard, n_shards)(observation)
        keep = decision.keep_fraction if self._trim else None
        threshold = decision.rebuild_threshold
        if not self._slo_weighting:
            return keep, threshold
        pressure = self.pressure(tenant_p95, tenant_amplification,
                                 tenants_on_shard)
        if pressure > 1.0:
            if keep is not None:
                tightened = keep - self._pressure_gain * (pressure
                                                         - 1.0)
                keep = max(self._keep_floor, min(keep, tightened))
            if self._deferral:
                threshold = max(threshold, self._deferral_threshold)
        return keep, threshold
