"""The REP rule corpus: this codebase's invariants as AST checks.

Every reproduction guarantee the repo sells rests on conventions the
interpreter does not enforce — seeds derived via ``stable_seed_words``
and never the salted builtin ``hash()``, deterministic cost proxies
instead of wall clock on tick paths, sorted iteration into canonical
JSON and digests, lock discipline on thread-shared state, and wire
keys that match on both ends.  Each rule here encodes one of them:

========  ============================================================
REP001    ambient / one-off-literal RNG seeding (use
          ``stable_seed_words``)
REP002    builtin ``hash()`` (PYTHONHASHSEED hazard) anywhere
REP003    wall clock on simulator/serving/cluster/transport tick
          paths (observability timers are recognized and allowed)
REP004    unsorted iteration or unsorted ``json.dumps`` feeding a
          canonical-JSON / digest sink
REP005    bare non-integral float ``==``/``!=`` in assertions
REP006    attribute of a lock-owning class mutated both inside and
          outside the lock
REP007    writer/reader string keys and frame codes cross-checked
          against :mod:`repro.contracts`
========  ============================================================

A rule is a callable ``rule(tree, relpath, lines, config)`` yielding
``(line, rule_id, message)`` triples; the engine owns pragma
filtering and the baseline.  Rules are registered in :data:`RULES`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

__all__ = ["RULES", "KeyBinding", "DispatchBinding",
           "default_bindings"]

RULES: dict = {}


def _register(rule_id: str):
    def wrap(fn):
        fn.rule_id = rule_id
        RULES[rule_id] = fn
        return fn
    return wrap


# ---------------------------------------------------------------------
# Shared resolution helpers
# ---------------------------------------------------------------------
def _alias_map(tree: ast.Module) -> dict:
    """Map local binding names to dotted module/function origins."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else \
                    alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases


def _dotted(node: ast.expr, aliases: dict) -> "str | None":
    """Resolve ``np.random.default_rng`` style chains to a dotted
    origin path, through the file's import aliases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = aliases.get(node.id, node.id)
    return ".".join([head] + list(reversed(parts)))


# ---------------------------------------------------------------------
# REP001 — unseeded / one-off-literal RNG
# ---------------------------------------------------------------------
_NP_RNG_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})


def _is_literal_seed(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool)
    if isinstance(node, (ast.List, ast.Tuple)):
        return bool(node.elts) and all(
            _is_literal_seed(el) for el in node.elts)
    return False


@_register("REP001")
def rep001_ambient_rng(tree, relpath, lines, config):
    """Ambient or one-off-literal RNG; seed via stable_seed_words."""
    if config.in_scope(relpath, config.rep001_exclude):
        return
    aliases = _alias_map(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        path = _dotted(node.func, aliases)
        if path is None:
            continue
        if path == "random" or path.startswith("random."):
            yield (node.lineno, "REP001",
                   f"stdlib `{path}` is ambient/interpreter-global "
                   f"RNG; derive a numpy Generator via "
                   f"stable_seed_words instead")
        elif path == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                yield (node.lineno, "REP001",
                       "default_rng() with no seed is entropy-"
                       "seeded; derive the seed via "
                       "stable_seed_words")
            elif node.args and _is_literal_seed(node.args[0]):
                yield (node.lineno, "REP001",
                       "one-off literal seed; derive it via "
                       "stable_seed_words so streams stay stable "
                       "across processes and refactors")
        elif path.startswith("numpy.random.") \
                and path.split(".")[-1] not in _NP_RNG_OK:
            yield (node.lineno, "REP001",
                   f"`{path}` uses numpy's ambient global RNG; "
                   f"use a Generator from default_rng("
                   f"stable_seed_words(...))")


# ---------------------------------------------------------------------
# REP002 — builtin hash()
# ---------------------------------------------------------------------
@_register("REP002")
def rep002_builtin_hash(tree, relpath, lines, config):
    """Builtin hash() on seed/digest paths (PYTHONHASHSEED hazard)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id == "hash":
            yield (node.lineno, "REP002",
                   "builtin hash() is salted per interpreter "
                   "(PYTHONHASHSEED); use stable_text_hash / "
                   "stable_seed_words on seed and digest paths")


# ---------------------------------------------------------------------
# REP003 — wall clock on deterministic tick paths
# ---------------------------------------------------------------------
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic",
    "time.monotonic_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
})

#: Assignment targets recognized as observability timer anchors or
#: accumulators (``started = perf_counter()``, ``adjust_seconds +=
#: ...``); anything else consuming a clock needs a pragma.
_TIMER_NAME = re.compile(r"(?:^|_)(?:started|start|t0|seconds)$")


def _wall_clock_calls(node: ast.AST, aliases: dict):
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) \
                and _dotted(sub.func, aliases) in _WALL_CLOCK:
            yield sub


def _timer_target(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return bool(_TIMER_NAME.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_TIMER_NAME.search(node.attr))
    return False


@_register("REP003")
def rep003_wall_clock(tree, relpath, lines, config):
    """Wall clock on deterministic tick paths (non-observability)."""
    if not config.in_scope(relpath, config.rep003_scope):
        return
    aliases = _alias_map(tree)
    allowed: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign,
                             ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            if all(_timer_target(t) for t in targets) \
                    and node.value is not None:
                allowed.update(id(c) for c in _wall_clock_calls(
                    node.value, aliases))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "observe":
            for arg in list(node.args) + [kw.value
                                          for kw in node.keywords]:
                allowed.update(id(c) for c in _wall_clock_calls(
                    arg, aliases))
    for call in _wall_clock_calls(tree, aliases):
        if id(call) in allowed:
            continue
        path = _dotted(call.func, aliases)
        yield (call.lineno, "REP003",
               f"wall clock `{path}` on a deterministic tick path; "
               f"costs must be deterministic proxies (observability "
               f"timers flow to metrics.observe or a "
               f"*_started/*_seconds anchor)")


# ---------------------------------------------------------------------
# REP004 — unsorted iteration into canonical-JSON / digest sinks
# ---------------------------------------------------------------------
_DIGEST_SINKS = frozenset({
    "hashlib.sha256", "hashlib.sha1", "hashlib.sha512",
    "hashlib.md5", "hashlib.blake2b", "hashlib.blake2s",
    "zlib.crc32", "zlib.adler32",
})
_UNORDERED_METHODS = frozenset({"keys", "values", "items"})


def _is_digest_sink(path: "str | None", func: ast.expr) -> bool:
    if path in _DIGEST_SINKS:
        return True
    tail = path.split(".")[-1] if path else (
        func.attr if isinstance(func, ast.Attribute) else None)
    return tail is not None and "digest" in tail


def _unordered_nodes(node: ast.expr):
    """Unordered-iterable expressions not wrapped in ``sorted()``."""
    stack: list[tuple[ast.AST, bool]] = [(node, False)]
    while stack:
        current, in_sorted = stack.pop()
        wrapped = in_sorted
        if isinstance(current, ast.Call) \
                and isinstance(current.func, ast.Name) \
                and current.func.id in ("sorted", "min", "max",
                                        "sum", "len"):
            wrapped = True
        if not in_sorted:
            if isinstance(current, (ast.Set, ast.SetComp)):
                yield current
            elif isinstance(current, ast.Call):
                if isinstance(current.func, ast.Name) \
                        and current.func.id in ("set", "frozenset"):
                    yield current
                elif isinstance(current.func, ast.Attribute) \
                        and current.func.attr in _UNORDERED_METHODS \
                        and not current.args:
                    yield current
        for child in ast.iter_child_nodes(current):
            stack.append((child, wrapped))


@_register("REP004")
def rep004_unsorted_digest(tree, relpath, lines, config):
    """Unsorted iteration / json.dumps feeding canonical-JSON or digest sinks."""
    aliases = _alias_map(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        path = _dotted(node.func, aliases)
        if path in ("json.dumps", "json.dump") \
                and config.in_scope(relpath,
                                    config.rep004_json_scope):
            sort_keys = any(
                kw.arg == "sort_keys"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords)
            if not sort_keys:
                yield (node.lineno, "REP004",
                       f"`{path}` without sort_keys=True: library "
                       f"JSON feeds canonical payloads and digests; "
                       f"key order must not depend on insertion "
                       f"history")
            continue
        if not _is_digest_sink(path, node.func):
            continue
        for arg in list(node.args) + [kw.value
                                      for kw in node.keywords]:
            for bad in _unordered_nodes(arg):
                kind = ("set" if isinstance(
                    bad, (ast.Set, ast.SetComp)) else
                    getattr(getattr(bad, "func", None), "attr",
                            None) or "set()")
                yield (bad.lineno, "REP004",
                       f"unordered `{kind}` iteration feeding "
                       f"digest sink `{path or 'digest'}`; wrap in "
                       f"sorted() — hash input order must be "
                       f"canonical")


# ---------------------------------------------------------------------
# REP005 — bare float equality in assertions
# ---------------------------------------------------------------------
def _fragile_float(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) \
            and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and not isinstance(node.value, bool)
            and (node.value != node.value
                 or node.value in (float("inf"), float("-inf"))
                 or node.value % 1 != 0))


@_register("REP005")
def rep005_float_equality(tree, relpath, lines, config):
    """Bare non-integral float ==/!= in report/parity assertions."""
    if not config.in_scope(relpath, config.rep005_scope):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assert):
            continue
        for sub in ast.walk(node.test):
            if not isinstance(sub, ast.Compare):
                continue
            operands = [sub.left] + list(sub.comparators)
            for op, left, right in zip(sub.ops, operands,
                                       operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _fragile_float(left) or _fragile_float(right):
                    yield (sub.lineno, "REP005",
                           "bare float ==/!= against a non-integral "
                           "literal in an assertion; compare full "
                           "payloads bit-exactly or use an explicit "
                           "tolerance")


# ---------------------------------------------------------------------
# REP006 — lock discipline on thread-shared classes
# ---------------------------------------------------------------------
_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
})
_MUTATORS = frozenset({
    "append", "add", "clear", "extend", "insert", "pop", "popitem",
    "remove", "discard", "update", "setdefault", "sort",
    "appendleft", "popleft",
})


def _self_attr(node: ast.expr) -> "str | None":
    """``self.<name>`` (possibly behind a Subscript) -> name."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def _lock_attrs(cls: ast.ClassDef, aliases: dict) -> "set[str]":
    locks: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Call) \
                and _dotted(node.value.func,
                            aliases) in _LOCK_FACTORIES:
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    locks.add(attr)
    return locks


def _walk_mutations(node: ast.AST, locks: "set[str]",
                    under: bool, out: dict) -> None:
    if isinstance(node, ast.With):
        holds = under or any(
            _self_attr(item.context_expr) in locks
            for item in node.items)
        for child in node.body:
            _walk_mutations(child, locks, holds, out)
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return  # nested scopes analyzed on their own
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        for target in targets:
            attr = _self_attr(target)
            if attr is not None and attr not in locks:
                out.setdefault(attr, []).append(
                    (node.lineno, under))
    if isinstance(node, ast.Call) \
            and isinstance(node.func, ast.Attribute) \
            and node.func.attr in _MUTATORS:
        attr = _self_attr(node.func.value)
        if attr is not None and attr not in locks:
            out.setdefault(attr, []).append((node.lineno, under))
    for child in ast.iter_child_nodes(node):
        _walk_mutations(child, locks, under, out)


@_register("REP006")
def rep006_lock_discipline(tree, relpath, lines, config):
    """Attribute mutated both inside and outside its owning lock."""
    aliases = _alias_map(tree)
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks = _lock_attrs(cls, aliases)
        if not locks:
            continue
        mutations: dict[str, list] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction is single-threaded
            for stmt in method.body:
                _walk_mutations(stmt, locks, False, mutations)
        for attr, sites in sorted(mutations.items()):
            inside = {ln for ln, under in sites if under}
            outside = sorted(ln for ln, under in sites
                             if not under)
            if inside and outside:
                for lineno in outside:
                    yield (lineno, "REP006",
                           f"`self.{attr}` of lock-owning class "
                           f"`{cls.name}` is mutated here without "
                           f"the lock but under it elsewhere "
                           f"(lines {sorted(inside)}); every "
                           f"mutation of shared state must hold "
                           f"the owning lock")


# ---------------------------------------------------------------------
# REP007 — wire/result contract cross-check
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class KeyBinding:
    """String keys read/written through variable ``var`` must be
    members of the declared ``keys`` universe."""

    var: str
    keys: frozenset
    contract: str


@dataclass(frozen=True)
class DispatchBinding:
    """Constant names with ``prefix`` must match the declared code
    registry, and every declared code must be consumed."""

    prefix: str
    names: frozenset
    contract: str


def default_bindings() -> tuple:
    """The self-hosted bindings, loaded from the declarations in
    :mod:`repro.contracts`."""
    from .. import contracts
    result_keys = frozenset(contracts.RESULT_REQUIRED_KEYS) \
        | frozenset(contracts.RESULT_OPTIONAL_KEYS)
    artifact_keys = frozenset(contracts.ARTIFACT_KEYS)
    request_names = frozenset(contracts.REQUEST_CODES)
    reply_names = frozenset(contracts.REPLY_CODES)
    ablation_keys = frozenset(contracts.ABLATION_KEYS)
    scenario_keys = frozenset(contracts.ABLATION_SCENARIO_KEYS)
    metric_keys = frozenset(contracts.ABLATION_METRIC_KEYS)
    component_keys = frozenset(contracts.ABLATION_COMPONENT_KEYS)
    return (
        ("src/repro/observe/gallery.py", (
            KeyBinding("payload", result_keys, "result/v2"),
            KeyBinding("entry", artifact_keys,
                       "result/v2 artifacts"),
            KeyBinding("ablation", ablation_keys,
                       "result ablation section"),
            KeyBinding("scenario_entry", scenario_keys,
                       "ablation scenario entry"),
            KeyBinding("component_entry", component_keys,
                       "ablation component entry"),
        )),
        ("src/repro/experiments/__main__.py", (
            KeyBinding("document", result_keys, "result/v2"),
        )),
        ("src/repro/ablate/importance.py", (
            KeyBinding("ablation", ablation_keys,
                       "result ablation section"),
            KeyBinding("block", scenario_keys,
                       "ablation scenario entry"),
            KeyBinding("metrics", metric_keys,
                       "ablation metric summary"),
            KeyBinding("row", component_keys,
                       "ablation component entry"),
        )),
        ("src/repro/cluster/transport.py", (
            DispatchBinding("MSG_", request_names,
                            "frame protocol request codes"),
            DispatchBinding("REPLY_", reply_names,
                            "frame protocol reply codes"),
        )),
    )


def _check_key_binding(tree, binding: KeyBinding):
    for node in ast.walk(tree):
        key = None
        if isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == binding.var \
                and isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, str):
            key = node.slice.value
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "get" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == binding.var \
                and node.args \
                and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            key = node.args[0].value
        if key is not None and key not in binding.keys:
            yield (node.lineno, "REP007",
                   f"key {key!r} on `{binding.var}` is not declared "
                   f"by the {binding.contract} contract "
                   f"(declared: {sorted(binding.keys)})")
            continue
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name)
                        and t.id == binding.var
                        for t in node.targets) \
                and isinstance(node.value, ast.Dict):
            for key_node in node.value.keys:
                if isinstance(key_node, ast.Constant) \
                        and isinstance(key_node.value, str) \
                        and key_node.value not in binding.keys:
                    yield (key_node.lineno, "REP007",
                           f"emitted key {key_node.value!r} is not "
                           f"declared by the {binding.contract} "
                           f"contract")


def _check_dispatch_binding(tree, binding: DispatchBinding):
    used: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) \
                and node.id.startswith(binding.prefix):
            used.setdefault(node.id, node.lineno)
    for name, lineno in sorted(used.items()):
        if name not in binding.names:
            yield (lineno, "REP007",
                   f"code `{name}` is not declared in the "
                   f"{binding.contract} registry")
    for name in sorted(binding.names - set(used)):
        yield (1, "REP007",
               f"declared code `{name}` from the "
               f"{binding.contract} registry has no consumer in "
               f"this module (missing dispatch arm or wrapper?)")


@_register("REP007")
def rep007_contract_drift(tree, relpath, lines, config):
    """Writer/reader keys and frame codes vs the declared contracts."""
    bindings = config.contract_bindings
    if bindings is None:
        bindings = default_bindings()
    for path, module_bindings in bindings:
        if not (relpath == path or relpath.endswith("/" + path)):
            continue
        for binding in module_bindings:
            if isinstance(binding, KeyBinding):
                yield from _check_key_binding(tree, binding)
            else:
                yield from _check_dispatch_binding(tree, binding)
