"""CLI of the self-hosted determinism/concurrency/contract linter.

Usage::

    PYTHONPATH=src python -m repro.analysis --check src tests
    PYTHONPATH=src python -m repro.analysis --list-rules
    PYTHONPATH=src python -m repro.analysis --update-baseline src tests

``--check`` is the CI gate: exit 1 when any finding is not covered by
the committed baseline (``.repro-analysis-baseline.json``).  Stale
baseline entries (fixed findings still listed) are reported but do
not fail the gate — run ``--update-baseline`` to shrink the file;
growing it is also explicit, never implicit.
"""

from __future__ import annotations

import argparse
import sys

from . import engine, rules


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro's determinism, concurrency, and "
                    "wire-contract linter (rules REP001-REP007)")
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint "
                             "(default: src tests)")
    parser.add_argument("--check", action="store_true",
                        help="gate mode: exit 1 on any finding not "
                             "in the baseline")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help=f"baseline file (default: "
                             f"{engine.DEFAULT_BASELINE})")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current "
                             "findings (explicit grandfathering; "
                             "review the diff before committing)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(rules.RULES):
            doc = (rules.RULES[rule_id].__doc__
                   or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{rule_id}  {summary}")
        print("REP000  malformed pragma / unparseable file "
              "(engine-level, not suppressible)")
        return 0

    baseline_path = args.baseline if args.baseline is not None \
        else engine.DEFAULT_BASELINE
    findings = engine.run_paths(args.paths)

    if args.update_baseline:
        engine.write_baseline(baseline_path, findings)
        print(f"baseline rewritten: {len(findings)} findings -> "
              f"{baseline_path}")
        return 0

    baseline = engine.load_baseline(baseline_path)
    new, stale = engine.baseline_delta(findings, baseline)
    baselined = len(findings) - len(new)
    for finding in new:
        print(finding.render())
    for path, rule_id, line in stale:
        print(f"stale baseline entry (fixed? run "
              f"--update-baseline): {path}:{line}: {rule_id}",
              file=sys.stderr)
    print(f"{len(findings)} findings ({len(new)} new, "
          f"{baselined} baselined, {len(stale)} stale baseline "
          f"entries) over {len(args.paths)} path(s)",
          file=sys.stderr)
    if args.check and new:
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # |head closed the pipe; not an error
        sys.exit(0)
