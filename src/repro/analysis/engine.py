"""Linter engine: file walking, pragma filtering, baseline diffs.

The engine is rule-agnostic: it parses each file once, hands the
tree to every enabled rule (:mod:`repro.analysis.rules`), filters
the findings through the ``# repro: allow[...]`` pragmas, and diffs
the survivors against the committed baseline file so the CI gate
fails only on *new* violations — grandfathered findings stay listed
until someone fixes them, but never grow silently.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from . import rules as rules_mod
from .pragmas import collect_pragmas

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_BASELINE",
    "Finding",
    "LintConfig",
    "baseline_delta",
    "iter_python_files",
    "lint_file",
    "load_baseline",
    "run_paths",
    "write_baseline",
]

BASELINE_SCHEMA = "repro.analysis.baseline/v1"

#: Committed at the repo root; the CI gate diffs against it.
DEFAULT_BASELINE = Path(".repro-analysis-baseline.json")

#: Directory names never walked into.  ``fixtures`` keeps the rule
#: corpus (known-bad files under ``tests/analysis/fixtures/``) out of
#: the self-hosted run — the corpus tests lint those files
#: explicitly, one at a time.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hypothesis", ".pytest_cache",
    ".benchmarks", "fixtures", "build", "dist",
})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def key(self) -> tuple:
        """Baseline identity — message text excluded so rewording a
        diagnostic does not churn the baseline."""
        return (self.path, self.rule, self.line)


@dataclass(frozen=True)
class LintConfig:
    """Per-rule path scoping, overridable for fixture tests.

    Scopes are posix-relpath prefixes; ``("",)`` scopes a rule to
    every file (the prefix of everything), ``()`` disables it.  The
    defaults encode *this* repository's layout and conventions.
    """

    enabled: tuple = ()  # () = every registered rule
    #: REP001 skips tests: a literal ``default_rng(0)`` is fine for
    #: test data, the hazard is one-off seeds on reproduction paths.
    rep001_exclude: tuple = ("tests/",)
    #: REP003 applies only to the deterministic tick paths.
    rep003_scope: tuple = ("src/repro/workload/", "src/repro/cluster/")
    #: REP004's ``json.dumps`` half applies to library code, where
    #: every emitted document is canonical.
    rep004_json_scope: tuple = ("src/",)
    #: REP005 watches parity/report assertions.
    rep005_scope: tuple = ("tests/", "src/repro/experiments/")
    #: REP007 module bindings; ``None`` loads the declarations from
    #: :mod:`repro.contracts` (the self-hosted default).
    contract_bindings: "tuple | None" = None
    exclude_dirs: frozenset = field(default=SKIP_DIRS)

    def in_scope(self, relpath: str, prefixes: tuple) -> bool:
        return any(relpath.startswith(p) for p in prefixes)


def iter_python_files(paths, config: LintConfig):
    """Yield every ``.py`` file under the given files/directories."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: "
                                    f"{raw}")
        for file in sorted(path.rglob("*.py")):
            if any(part in config.exclude_dirs
                   for part in file.parts):
                continue
            yield file


def _relpath(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(path, config: LintConfig = LintConfig(),
              relpath: "str | None" = None) -> "list[Finding]":
    """Lint one file; pragma-suppressed findings are dropped."""
    path = Path(path)
    relpath = relpath if relpath is not None else _relpath(path)
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    covers, malformed = collect_pragmas(source)
    findings = [
        Finding(relpath, lineno, "REP000", error)
        for lineno, error in malformed]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        findings.append(Finding(
            relpath, exc.lineno or 1, "REP000",
            f"file does not parse: {exc.msg}"))
        return sorted(findings)
    enabled = config.enabled or tuple(sorted(rules_mod.RULES))
    for rule_id in enabled:
        rule = rules_mod.RULES[rule_id]
        for lineno, fired_rule, message in rule(
                tree, relpath, lines, config):
            pragma = covers.get(lineno)
            if pragma is not None and pragma.allows(fired_rule):
                continue
            findings.append(
                Finding(relpath, lineno, fired_rule, message))
    return sorted(set(findings))


def run_paths(paths, config: LintConfig = LintConfig(),
              ) -> "list[Finding]":
    """Lint every python file under ``paths``; sorted findings."""
    findings: list[Finding] = []
    for file in iter_python_files(paths, config):
        findings.extend(lint_file(file, config))
    return sorted(findings)


# ---------------------------------------------------------------------
# Baseline: grandfathered findings the gate tolerates (and no more)
# ---------------------------------------------------------------------
def load_baseline(path) -> "set[tuple]":
    """Load the committed baseline; a missing file is empty."""
    path = Path(path)
    if not path.exists():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline schema {payload.get('schema')!r} != "
            f"{BASELINE_SCHEMA!r}")
    return {(f["path"], f["rule"], f["line"])
            for f in payload["findings"]}


def write_baseline(path, findings) -> None:
    """Write the baseline for the given findings, atomically enough
    for a file that only changes by explicit ``--update-baseline``."""
    entries = sorted({f.key() for f in findings})
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {"path": p, "rule": r, "line": n}
            for p, r, n in entries],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def baseline_delta(findings, baseline: "set[tuple]",
                   ) -> "tuple[list[Finding], list[tuple]]":
    """Split findings into (new, stale-baseline-entries)."""
    current = {f.key() for f in findings}
    new = [f for f in findings if f.key() not in baseline]
    stale = sorted(baseline - current)
    return new, stale
