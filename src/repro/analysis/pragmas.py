"""The ``# repro: allow[...]`` escape hatch.

A finding is suppressed by an *allow pragma* naming its rule, either
on the offending line itself or on a comment-only line immediately
above it (for lines with no room left)::

    value = time.time()  # repro: allow[REP003] -- demo wall clock

    # repro: allow[REP001,REP002] -- fixture exercises both rules
    seed = hash(np.random.rand())

The reason after ``--`` is mandatory: an unexplained suppression is
itself a finding (rule ``REP000``), as is any comment that starts
with the ``repro:`` marker but fails to parse — a typo'd pragma must
not silently suppress nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

__all__ = [
    "PRAGMA_MARKER",
    "Pragma",
    "collect_pragmas",
    "format_pragma",
    "parse_pragma",
]

PRAGMA_MARKER = re.compile(r"#\s*repro:\s*(?P<body>.*)$")
_ALLOW = re.compile(
    r"^allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>.*))?$")
RULE_ID = re.compile(r"^REP\d{3}$")


@dataclass(frozen=True)
class Pragma:
    """One parsed allow pragma."""

    rules: frozenset
    reason: str

    def allows(self, rule: str) -> bool:
        return rule in self.rules


def format_pragma(rules, reason: str) -> str:
    """Render the canonical pragma comment for a set of rule ids."""
    ids = sorted(set(rules))
    for rule in ids:
        if not RULE_ID.match(rule):
            raise ValueError(f"not a rule id: {rule!r}")
    reason = " ".join(str(reason).split())
    if not reason:
        raise ValueError("a pragma reason is mandatory")
    return f"# repro: allow[{','.join(ids)}] -- {reason}"


def parse_pragma(line: str) -> "Pragma | str | None":
    """Parse one source line.

    Returns a :class:`Pragma`, ``None`` when the line carries no
    ``repro:`` marker, or an error string when the marker is present
    but malformed (unknown directive, bad rule id, missing reason).
    """
    marker = PRAGMA_MARKER.search(line)
    if marker is None:
        return None
    body = marker.group("body").strip()
    allow = _ALLOW.match(body)
    if allow is None:
        return f"unparseable repro pragma: {body!r}"
    rules = [part.strip() for part in
             allow.group("rules").split(",") if part.strip()]
    if not rules:
        return "pragma allows no rules"
    bad = [rule for rule in rules if not RULE_ID.match(rule)]
    if bad:
        return f"bad rule ids in pragma: {bad}"
    reason = (allow.group("reason") or "").strip()
    if not reason:
        return ("pragma is missing its '-- reason'; unexplained "
                "suppressions are findings themselves")
    return Pragma(rules=frozenset(rules), reason=reason)


def collect_pragmas(source: str) -> tuple[dict, list]:
    """Map line numbers to the pragma that covers them.

    Only real ``COMMENT`` tokens are considered (a pragma-shaped
    string literal or docstring line is prose, not a directive).  A
    pragma trailing code covers its own line; a pragma on a
    comment-only line covers the next line.  Returns ``(covers,
    malformed)`` where ``covers`` maps 1-based line numbers to
    :class:`Pragma` and ``malformed`` is a list of ``(line, error)``
    pairs.
    """
    covers: dict[int, Pragma] = {}
    malformed: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return covers, malformed  # the engine reports parse errors
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        parsed = parse_pragma(token.string)
        if parsed is None:
            continue
        lineno = token.start[0]
        if isinstance(parsed, str):
            malformed.append((lineno, parsed))
            continue
        code = token.line[:token.start[1]].strip()
        covers[lineno if code else lineno + 1] = parsed
    return covers, malformed
