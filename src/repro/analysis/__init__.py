"""repro.analysis — the repo's self-hosted static analysis layer.

An AST linter that encodes this codebase's own reproduction
invariants as named rules (REP001-REP007) and runs over ``src`` +
``tests`` as a blocking CI gate::

    PYTHONPATH=src python -m repro.analysis --check src tests

See :mod:`repro.analysis.rules` for the rule catalogue,
:mod:`repro.analysis.pragmas` for the ``# repro: allow[REPnnn] --
reason`` escape hatch, and :mod:`repro.analysis.engine` for the
baseline (grandfathered findings) machinery.
"""

from .engine import (
    BASELINE_SCHEMA,
    DEFAULT_BASELINE,
    Finding,
    LintConfig,
    baseline_delta,
    iter_python_files,
    lint_file,
    load_baseline,
    run_paths,
    write_baseline,
)
from .pragmas import Pragma, collect_pragmas, format_pragma, \
    parse_pragma
from .rules import RULES, DispatchBinding, KeyBinding, \
    default_bindings

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_BASELINE",
    "DispatchBinding",
    "Finding",
    "KeyBinding",
    "LintConfig",
    "Pragma",
    "RULES",
    "baseline_delta",
    "collect_pragmas",
    "default_bindings",
    "format_pragma",
    "iter_python_files",
    "lint_file",
    "load_baseline",
    "parse_pragma",
    "run_paths",
    "write_baseline",
]
