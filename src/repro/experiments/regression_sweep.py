"""Shared machinery for the regression-poisoning sweeps (Figs. 5, 8).

Both figures report boxplots of the Ratio Loss over 20 random keysets
for a grid of (number of keys) x (key density) cells and a range of
poisoning percentages.  Figure 5 draws keys uniformly (the CDF shape a
learned index loves); Figure 8 draws them from the paper's clipped
normal (a shape linear models already struggle with).

One greedy run per trial at the *largest* percentage yields every
smaller percentage for free: Algorithm 1 is incremental, so the loss
after ``k`` insertions is the loss of a ``k``-key attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.greedy import greedy_poison
from ..core.metrics import BoxplotSummary, summarize
from ..data.keyset import Domain, KeySet
from ..data.synthetic import normal_keyset, uniform_keyset
from .report import format_ratio, render_table, section

__all__ = [
    "SweepConfig",
    "CellResult",
    "SweepResult",
    "run_sweep",
    "fig5_config",
    "fig8_config",
]

Generator = Callable[[int, Domain, np.random.Generator], KeySet]

_GENERATORS: dict[str, Generator] = {
    "uniform": uniform_keyset,
    "normal": normal_keyset,
}


@dataclass(frozen=True)
class SweepConfig:
    """Grid of a regression-poisoning sweep.

    Attributes
    ----------
    distribution:
        ``"uniform"`` (Fig. 5) or ``"normal"`` (Fig. 8).
    key_counts:
        Numbers of legitimate keys per cell (paper: 100 .. 10,000,
        typical second-stage partition sizes).
    densities:
        ``n / m`` per cell; the key domain is derived as ``n/density``
        (the paper fixes keys+density and varies the domain).
    poisoning_percentages:
        X-axis of each boxplot (paper: up to 15%).
    n_trials:
        Independent keysets per cell (paper: 20).
    seed:
        Base seed; trial ``t`` of each cell derives its own stream.
    """

    distribution: str
    key_counts: tuple[int, ...]
    densities: tuple[float, ...]
    poisoning_percentages: tuple[float, ...]
    n_trials: int = 20
    seed: int = 7

    def __post_init__(self) -> None:
        if self.distribution not in _GENERATORS:
            raise ValueError(f"unknown distribution: {self.distribution!r}")
        if any(not 0 < d <= 1 for d in self.densities):
            raise ValueError("densities must be in (0, 1]")
        if any(not 0 < p <= 20 for p in self.poisoning_percentages):
            raise ValueError("percentages must be in (0, 20]")


@dataclass(frozen=True)
class CellResult:
    """All boxplots of one (keys, density) subplot."""

    n_keys: int
    density: float
    domain_size: int
    summaries: dict[float, BoxplotSummary]  # percentage -> summary


@dataclass(frozen=True)
class SweepResult:
    """Results for the whole grid."""

    config: SweepConfig
    cells: tuple[CellResult, ...]

    def format(self) -> str:
        """Paper-style tables, one block per subplot."""
        blocks = []
        for cell in self.cells:
            title = (f"[{self.config.distribution}] Keys: {cell.n_keys}  "
                     f"Key Domain: {cell.domain_size}  "
                     f"Density: {cell.density:.0%}")
            rows = []
            for pct in self.config.poisoning_percentages:
                s = cell.summaries[pct]
                rows.append([f"{pct:g}%", format_ratio(s.median),
                             format_ratio(s.q1), format_ratio(s.q3),
                             format_ratio(s.minimum), format_ratio(s.maximum)])
            table = render_table(
                ["poison%", "median", "q1", "q3", "min", "max"], rows)
            blocks.append(f"{section(title)}\n{table}")
        return "\n\n".join(blocks)


def run_sweep(config: SweepConfig) -> SweepResult:
    """Run the full grid and summarise ratio losses per cell."""
    generator = _GENERATORS[config.distribution]
    max_pct = max(config.poisoning_percentages)
    cells = []
    for n_keys in config.key_counts:
        for density in config.densities:
            domain = Domain.of_size(int(round(n_keys / density)))
            ratios: dict[float, list[float]] = {
                pct: [] for pct in config.poisoning_percentages}
            for trial in range(config.n_trials):
                rng = np.random.default_rng(
                    [config.seed, n_keys, int(density * 1000), trial])
                keyset = generator(n_keys, domain, rng)
                budget = int(n_keys * max_pct / 100.0)
                run = greedy_poison(keyset, budget)
                for pct in config.poisoning_percentages:
                    k = int(n_keys * pct / 100.0)
                    k = min(k, run.n_injected)
                    if k == 0 or run.loss_before == 0.0:
                        ratios[pct].append(1.0)
                    else:
                        ratios[pct].append(
                            float(run.losses[k - 1]) / run.loss_before)
            cells.append(CellResult(
                n_keys=n_keys,
                density=density,
                domain_size=domain.size,
                summaries={pct: summarize(vals)
                           for pct, vals in ratios.items()}))
    return SweepResult(config=config, cells=tuple(cells))


def fig5_config(profile: str = "quick") -> SweepConfig:
    """Figure 5 grid: uniform keys.

    The quick profile drops the 10,000-key row (the costly one); the
    full profile matches the paper's grid extent.
    """
    key_counts = (100, 1000) if profile == "quick" else (100, 1000, 10000)
    return SweepConfig(
        distribution="uniform",
        key_counts=key_counts,
        densities=(0.1, 0.4, 0.8),
        poisoning_percentages=(2.0, 5.0, 8.0, 11.0, 14.0),
        n_trials=20)


def fig8_config(profile: str = "quick") -> SweepConfig:
    """Figure 8 grid: the appendix's clipped-normal keys."""
    key_counts = (100, 1000) if profile == "quick" else (100, 1000, 10000)
    return SweepConfig(
        distribution="normal",
        key_counts=key_counts,
        densities=(0.1, 0.4, 0.8),
        poisoning_percentages=(2.0, 5.0, 8.0, 11.0, 14.0),
        n_trials=20)
