"""Shared machinery for the regression-poisoning sweeps (Figs. 5, 8).

Both figures report boxplots of the Ratio Loss over 20 random keysets
for a grid of (number of keys) x (key density) cells and a range of
poisoning percentages.  Figure 5 draws keys uniformly (the CDF shape a
learned index loves); Figure 8 draws them from the paper's clipped
normal (a shape linear models already struggle with).

One greedy run per trial at the *largest* percentage yields every
smaller percentage for free: Algorithm 1 is incremental, so the loss
after ``k`` insertions is the loss of a ``k``-key attack.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..core.greedy import greedy_poison
from ..core.metrics import BoxplotSummary, summarize
from ..data.keyset import Domain, KeySet
from ..data.synthetic import normal_keyset, uniform_keyset
from ..runtime import Cell, CheckpointStore, SweepEngine
from .report import format_ratio, render_table, section

__all__ = [
    "SweepConfig",
    "CellResult",
    "SweepResult",
    "plan_cells",
    "run_trial_cell",
    "run_sweep",
    "fig5_config",
    "fig8_config",
]

Generator = Callable[[int, Domain, np.random.Generator], KeySet]

_GENERATORS: dict[str, Generator] = {
    "uniform": uniform_keyset,
    "normal": normal_keyset,
}


@dataclass(frozen=True)
class SweepConfig:
    """Grid of a regression-poisoning sweep.

    Attributes
    ----------
    distribution:
        ``"uniform"`` (Fig. 5) or ``"normal"`` (Fig. 8).
    key_counts:
        Numbers of legitimate keys per cell (paper: 100 .. 10,000,
        typical second-stage partition sizes).
    densities:
        ``n / m`` per cell; the key domain is derived as ``n/density``
        (the paper fixes keys+density and varies the domain).
    poisoning_percentages:
        X-axis of each boxplot (paper: up to 15%).
    n_trials:
        Independent keysets per cell (paper: 20).
    seed:
        Base seed; trial ``t`` of each cell derives its own stream.
    """

    distribution: str
    key_counts: tuple[int, ...]
    densities: tuple[float, ...]
    poisoning_percentages: tuple[float, ...]
    n_trials: int = 20
    seed: int = 7

    def __post_init__(self) -> None:
        if self.distribution not in _GENERATORS:
            raise ValueError(f"unknown distribution: {self.distribution!r}")
        if any(not 0 < d <= 1 for d in self.densities):
            raise ValueError("densities must be in (0, 1]")
        if any(not 0 < p <= 20 for p in self.poisoning_percentages):
            raise ValueError("percentages must be in (0, 20]")


@dataclass(frozen=True)
class CellResult:
    """All boxplots of one (keys, density) subplot."""

    n_keys: int
    density: float
    domain_size: int
    summaries: dict[float, BoxplotSummary]  # percentage -> summary


@dataclass(frozen=True)
class SweepResult:
    """Results for the whole grid."""

    config: SweepConfig
    cells: tuple[CellResult, ...]

    def format(self) -> str:
        """Paper-style tables, one block per subplot."""
        blocks = []
        for cell in self.cells:
            title = (f"[{self.config.distribution}] Keys: {cell.n_keys}  "
                     f"Key Domain: {cell.domain_size}  "
                     f"Density: {cell.density:.0%}")
            rows = []
            for pct in self.config.poisoning_percentages:
                s = cell.summaries[pct]
                rows.append([f"{pct:g}%", format_ratio(s.median),
                             format_ratio(s.q1), format_ratio(s.q3),
                             format_ratio(s.minimum), format_ratio(s.maximum)])
            table = render_table(
                ["poison%", "median", "q1", "q3", "min", "max"], rows)
            blocks.append(f"{section(title)}\n{table}")
        return "\n\n".join(blocks)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (the CLI's ``--out`` payload)."""
        return {
            "distribution": self.config.distribution,
            "n_trials": self.config.n_trials,
            "seed": self.config.seed,
            "poisoning_percentages": list(
                self.config.poisoning_percentages),
            "cells": [
                {
                    "n_keys": cell.n_keys,
                    "density": cell.density,
                    "domain_size": cell.domain_size,
                    "summaries": {f"{pct:g}": asdict(cell.summaries[pct])
                                  for pct in
                                  self.config.poisoning_percentages},
                }
                for cell in self.cells
            ],
        }


def plan_cells(config: SweepConfig) -> list[Cell]:
    """Expand a sweep grid into one cell per (keys, density, trial).

    One greedy run at the largest percentage serves every smaller one
    (Algorithm 1 is incremental), so the trial — not the percentage —
    is the unit of parallel work.
    """
    max_pct = max(config.poisoning_percentages)
    return [
        Cell.make("regression-sweep",
                  distribution=config.distribution,
                  n_keys=n_keys,
                  density=density,
                  max_percentage=max_pct,
                  seed=config.seed,
                  trial=trial)
        for n_keys in config.key_counts
        for density in config.densities
        for trial in range(config.n_trials)
    ]


def run_trial_cell(cell: Cell) -> dict[str, Any]:
    """Run one trial: generate its keyset, mount the greedy attack.

    Seeding reproduces the pre-runtime serial path bit for bit: the
    stream is derived from ``[seed, n_keys, density*1000, trial]``
    exactly as the legacy loop did (pinned by the golden grid under
    ``tests/experiments/``).
    """
    p = cell.params_dict
    n_keys, density = p["n_keys"], p["density"]
    domain = Domain.of_size(int(round(n_keys / density)))
    rng = np.random.default_rng(
        [p["seed"], n_keys, int(density * 1000), p["trial"]])
    keyset = _GENERATORS[p["distribution"]](n_keys, domain, rng)
    budget = int(n_keys * p["max_percentage"] / 100.0)
    run = greedy_poison(keyset, budget)
    return {
        "domain_size": domain.size,
        "loss_before": run.loss_before,
        "losses": run.losses.tolist(),
        "n_injected": run.n_injected,
        "exhausted": run.exhausted,
    }


def _aggregate(config: SweepConfig,
               trial_results: list[dict[str, Any]]) -> SweepResult:
    """Fold per-trial results back into the per-subplot summaries."""
    cells = []
    cursor = 0
    for n_keys in config.key_counts:
        for density in config.densities:
            ratios: dict[float, list[float]] = {
                pct: [] for pct in config.poisoning_percentages}
            domain_size = 0
            for _ in range(config.n_trials):
                trial = trial_results[cursor]
                cursor += 1
                domain_size = trial["domain_size"]
                losses = trial["losses"]
                loss_before = trial["loss_before"]
                for pct in config.poisoning_percentages:
                    k = int(n_keys * pct / 100.0)
                    k = min(k, trial["n_injected"])
                    if k == 0 or loss_before == 0.0:
                        ratios[pct].append(1.0)
                    else:
                        ratios[pct].append(
                            float(losses[k - 1]) / loss_before)
            cells.append(CellResult(
                n_keys=n_keys,
                density=density,
                domain_size=domain_size,
                summaries={pct: summarize(vals)
                           for pct, vals in ratios.items()}))
    return SweepResult(config=config, cells=tuple(cells))


def run_sweep(config: SweepConfig, jobs: int = 1,
              checkpoint_dir: str | Path | None = None,
              resume: bool = False,
              executor: str = "process",
              progress=None) -> SweepResult:
    """Run the full grid and summarise ratio losses per cell.

    ``jobs`` fans trials out over workers (``executor`` picks process
    or thread pools); ``checkpoint_dir`` persists each completed trial
    so an interrupted sweep restarted with ``resume=True`` only
    computes what is missing.  Results are identical for every
    combination of those options.
    """
    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.write_manifest({
            "experiment": f"regression-sweep/{config.distribution}",
            "config": {
                "distribution": config.distribution,
                "key_counts": list(config.key_counts),
                "densities": list(config.densities),
                "poisoning_percentages": list(
                    config.poisoning_percentages),
                "n_trials": config.n_trials,
                "seed": config.seed,
            },
        })
    engine = SweepEngine(run_trial_cell, jobs=jobs, checkpoint=store,
                         resume=resume, executor=executor,
                         progress=progress)
    return _aggregate(config, engine.run(plan_cells(config)))


def fig5_config(profile: str = "quick") -> SweepConfig:
    """Figure 5 grid: uniform keys.

    The quick profile drops the 10,000-key row (the costly one); the
    full profile matches the paper's grid extent.
    """
    key_counts = (100, 1000) if profile == "quick" else (100, 1000, 10000)
    return SweepConfig(
        distribution="uniform",
        key_counts=key_counts,
        densities=(0.1, 0.4, 0.8),
        poisoning_percentages=(2.0, 5.0, 8.0, 11.0, 14.0),
        n_trials=20)


def fig8_config(profile: str = "quick") -> SweepConfig:
    """Figure 8 grid: the appendix's clipped-normal keys."""
    key_counts = (100, 1000) if profile == "quick" else (100, 1000, 10000)
    return SweepConfig(
        distribution="normal",
        key_counts=key_counts,
        densities=(0.1, 0.4, 0.8),
        poisoning_percentages=(2.0, 5.0, 8.0, 11.0, 14.0),
        n_trials=20)
