"""The ``closedloop`` target: control-loop serving grids.

Each cell replays one (arrival model × backend × adversary × defense)
scenario: a rate-driven trace (the arrival model fixes the per-tick op
counts), an injection policy on the simulator's feedback port, and
optionally the TRIM auto-tuner on the defense port.  The grid is the
adaptive-vs-oblivious × tuned-vs-fixed experiment the static paper
cannot express: does watching serving latency buy the attacker
anything, and how much of it does a watching defender claw back?

Same-world design: every cell of one (arrival, seed) pair replays the
*identical* trace over the identical base keys, and every injection
policy — including the oblivious drip baseline — releases the same
Algorithm 2 (architecture-aware) pool.  Amplification differences
between cells are therefore attributable to the policy loop alone,
never to key quality or workload luck; this is what makes the
committed adaptive-beats-oblivious regression meaningful.

Cells are engine-backed (checkpoint, resume, process/thread fan-out,
jobs parity) and persist their full per-tick series — including the
control-loop channels ``injected``/``keep_fraction``/
``rebuild_threshold`` — as ``.npz`` artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..core.rmi_attack import poison_rmi
from ..core.threat_model import RMIAttackerCapability
from ..data.keyset import KeySet
from ..io import json_float, parse_json_float
from ..runtime import Cell, CellOutput, CheckpointStore, SweepEngine
from ..workload import (
    ServingSimulator,
    TraceSpec,
    TrimAutoTuner,
    generate_rate_driven_trace,
    make_adversary,
    make_arrival,
    make_backend,
)
from .report import (
    DuelRow,
    format_ratio,
    render_duel,
    render_table,
    section,
)

__all__ = ["ClosedLoopConfig", "ClosedLoopRow", "ClosedLoopResult",
           "plan_cells", "run_closedloop_cell", "run", "quick_config",
           "full_config", "DEFENSES"]

DEFENSES = ("fixed", "tuned")


@dataclass(frozen=True)
class ClosedLoopConfig:
    """The arrival×backend×adversary×defense grid of one sweep."""

    arrivals: tuple[str, ...] = ("poisson",)
    backends: tuple[str, ...] = ("rmi", "dynamic")
    adversaries: tuple[str, ...] = ("oblivious", "escalate",
                                    "hillclimb", "backoff")
    defenses: tuple[str, ...] = DEFENSES
    n_base_keys: int = 600
    n_ticks: int = 14
    rate: float = 90.0
    poison_percentage: float = 12.0
    insert_fraction: float = 0.04
    rebuild_threshold: float = 0.12
    model_size: int = 100
    target_amplification: float = 1.3
    seed: int = 11


def quick_config() -> ClosedLoopConfig:
    """16 cells, seconds of work — the CI smoke grid.

    The defaults are the calibrated demonstration scenario: on both
    learned backends the escalation adversary beats the oblivious
    drip, and the auto-tuner recovers more than half of that gap
    (pinned by ``tests/experiments/test_closedloop.py``).
    """
    return ClosedLoopConfig()


def full_config() -> ClosedLoopConfig:
    """96 cells over every arrival model and the model-free floor."""
    return ClosedLoopConfig(
        arrivals=("constant", "poisson", "diurnal"),
        backends=("binary", "linear", "rmi", "dynamic"),
        n_base_keys=2_000,
        n_ticks=24,
        rate=250.0)


@dataclass(frozen=True)
class ClosedLoopRow:
    """One grid point's control-loop summary."""

    arrival: str
    backend: str
    adversary: str
    defense: str
    p50: float
    p95: float
    p99: float
    retrains: int
    injected_poison: int
    amplification: float
    max_error_bound: float
    final_keep_fraction: float      # NaN while TRIM never armed
    final_rebuild_threshold: float


@dataclass(frozen=True)
class ClosedLoopResult:
    """All rows of the grid, in plan order."""

    config: ClosedLoopConfig
    rows: tuple[ClosedLoopRow, ...]

    def row(self, **criteria: Any) -> ClosedLoopRow:
        """The unique row matching all ``field=value`` criteria."""
        hits = [r for r in self.rows
                if all(getattr(r, k) == v for k, v in criteria.items())]
        if len(hits) != 1:
            raise KeyError(
                f"{criteria} matches {len(hits)} rows, expected 1")
        return hits[0]

    def format(self) -> str:
        """One block per arrival model, plus the duel summary."""
        blocks = []
        for arrival in self.config.arrivals:
            rows = [r for r in self.rows if r.arrival == arrival]
            if not rows:
                continue
            title = (f"closed loop: {arrival} arrivals "
                     f"({self.config.n_ticks} ticks @ "
                     f"{self.config.rate:g} ops, "
                     f"{self.config.poison_percentage:g}% budget)")
            body = [[r.backend, r.adversary, r.defense,
                     f"{r.p95:.1f}", format_ratio(r.amplification),
                     r.retrains, r.injected_poison,
                     ("off" if r.final_keep_fraction
                      != r.final_keep_fraction
                      else f"{r.final_keep_fraction:.2f}"),
                     f"{r.final_rebuild_threshold:.3f}"]
                    for r in rows]
            table = render_table(
                ["backend", "adversary", "defense", "p95", "amplif.",
                 "retrains", "injected", "keep", "threshold"],
                body)
            blocks.append(f"{section(title)}\n{table}")
        duel = self._format_duel()
        if duel:
            blocks.append(duel)
        return "\n\n".join(blocks)

    def duel_rows(self) -> list[DuelRow]:
        """Adaptive-vs-oblivious gaps (and tuner recovery) per cell."""
        if ("oblivious" not in self.config.adversaries
                or "fixed" not in self.config.defenses):
            return []
        rows = []
        for arrival in self.config.arrivals:
            for backend in self.config.backends:
                for adversary in self.config.adversaries:
                    if adversary == "oblivious":
                        continue
                    try:
                        oblivious = self.row(
                            arrival=arrival, backend=backend,
                            adversary="oblivious", defense="fixed")
                        fixed = self.row(
                            arrival=arrival, backend=backend,
                            adversary=adversary, defense="fixed")
                    except KeyError:  # pragma: no cover - partial grid
                        continue
                    recovered = None
                    if "tuned" in self.config.defenses:
                        tuned = self.row(
                            arrival=arrival, backend=backend,
                            adversary=adversary, defense="tuned")
                        recovered = (fixed.amplification
                                     - tuned.amplification)
                    rows.append(DuelRow(
                        group=(arrival, backend, adversary),
                        gap=(fixed.amplification
                             - oblivious.amplification),
                        recovered=recovered))
        return rows

    def _format_duel(self) -> str:
        """Adaptive-vs-oblivious gap and tuner recovery per backend."""
        return render_duel(
            "duel: adaptive gap and tuner recovery "
            "(final amplification)",
            ["arrival", "backend", "adversary"],
            self.duel_rows(),
            gap_header="gap vs oblivious",
            recovered_header="tuner recovered")

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (the CLI's ``--out`` payload)."""
        return {
            "seed": self.config.seed,
            "n_base_keys": self.config.n_base_keys,
            "n_ticks": self.config.n_ticks,
            "rate": self.config.rate,
            "poison_percentage": self.config.poison_percentage,
            "cells": [
                {
                    "arrival": r.arrival,
                    "backend": r.backend,
                    "adversary": r.adversary,
                    "defense": r.defense,
                    "p50": json_float(r.p50),
                    "p95": json_float(r.p95),
                    "p99": json_float(r.p99),
                    "retrains": r.retrains,
                    "injected_poison": r.injected_poison,
                    "amplification": json_float(r.amplification),
                    "max_error_bound": json_float(r.max_error_bound),
                    "final_keep_fraction": json_float(
                        r.final_keep_fraction),
                    "final_rebuild_threshold": json_float(
                        r.final_rebuild_threshold),
                }
                for r in self.rows
            ],
        }


def spec_for(params: dict[str, Any],
             n_ops: int) -> TraceSpec:
    """The canonical organic-stream spec of a closed-loop cell.

    The trace itself carries no poison schedule — every scenario's
    poison flows through the feedback port, so all policies of one
    (arrival, seed) pair share one bit-identical stream.
    """
    return TraceSpec(
        n_base_keys=params["n_base_keys"],
        n_ops=n_ops,
        query_mix="uniform",
        insert_fraction=params["insert_fraction"],
        poison_schedule="none",
        poison_percentage=0.0,
        seed=params["seed"])


def plan_cells(config: ClosedLoopConfig) -> list[Cell]:
    """One cell per (arrival, backend, adversary, defense)."""
    return [
        Cell.make("closedloop-serving",
                  arrival=arrival,
                  backend=backend,
                  adversary=adversary,
                  defense=defense,
                  n_base_keys=config.n_base_keys,
                  n_ticks=config.n_ticks,
                  rate=config.rate,
                  poison_percentage=config.poison_percentage,
                  insert_fraction=config.insert_fraction,
                  rebuild_threshold=config.rebuild_threshold,
                  model_size=config.model_size,
                  target_amplification=config.target_amplification,
                  seed=config.seed)
        for arrival in config.arrivals
        for backend in config.backends
        for adversary in config.adversaries
        for defense in config.defenses
    ]


def run_closedloop_cell(cell: Cell) -> CellOutput:
    """Replay one control-loop scenario; keep the time series.

    Deterministic in the cell parameters alone: the arrival counts,
    the trace, the Algorithm 2 pool, and every policy decision all
    derive from them, so resumed and fanned-out runs replay identical
    loops.
    """
    p = cell.params_dict
    arrival = make_arrival(p["arrival"], rate=p["rate"],
                           seed=p["seed"])
    tick_sizes = arrival.tick_sizes(p["n_ticks"])
    spec = spec_for(p, n_ops=int(tick_sizes.sum()))
    trace = generate_rate_driven_trace(spec, tick_sizes)

    budget = max(1, int(p["n_base_keys"] * p["poison_percentage"]
                        / 100.0))
    n_models = max(1, p["n_base_keys"] // p["model_size"])
    pool = np.asarray(poison_rmi(
        KeySet(trace.base_keys, domain=spec.domain()), n_models,
        RMIAttackerCapability(
            poisoning_percentage=p["poison_percentage"]),
    ).poison_keys, dtype=np.int64)

    policy_kwargs: dict[str, Any] = {}
    if p["adversary"] == "escalate":
        policy_kwargs["target_amplification"] = \
            p["target_amplification"]
    adversary = make_adversary(p["adversary"], trace.base_keys,
                               spec.domain(), budget, p["seed"],
                               pool=pool, **policy_kwargs)
    tuner = (TrimAutoTuner(base_threshold=p["rebuild_threshold"])
             if p["defense"] == "tuned" else None)

    build_args: dict[str, Any] = {}
    if p["backend"] in ("rmi", "dynamic"):
        build_args["model_size"] = p["model_size"]
    backend = make_backend(p["backend"], trace.base_keys,
                           rebuild_threshold=p["rebuild_threshold"],
                           **build_args)
    report = ServingSimulator(backend, trace, tick_sizes=tick_sizes,
                              adversary=adversary, tuner=tuner).run()

    result = report.to_dict()
    result.update({
        "arrival": p["arrival"],
        "adversary": p["adversary"],
        "defense": p["defense"],
        "budget": budget,
        "final_keep_fraction": json_float(
            float(report.series["keep_fraction"][-1])),
        "final_rebuild_threshold": json_float(
            float(report.series["rebuild_threshold"][-1])),
    })
    return CellOutput(
        result=result,
        arrays={f"tick_{name}": series
                for name, series in report.series.items()})


def run(config: ClosedLoopConfig | None = None, jobs: int = 1,
        checkpoint_dir: str | Path | None = None, resume: bool = False,
        executor: str = "process",
        progress=None) -> ClosedLoopResult:
    """Run the whole grid; identical results for any jobs/executor."""
    config = config or quick_config()
    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.write_manifest({
            "experiment": "closedloop-serving",
            "config": {
                "arrivals": list(config.arrivals),
                "backends": list(config.backends),
                "adversaries": list(config.adversaries),
                "defenses": list(config.defenses),
                "n_base_keys": config.n_base_keys,
                "n_ticks": config.n_ticks,
                "rate": config.rate,
                "poison_percentage": config.poison_percentage,
                "seed": config.seed,
            },
        })
    engine = SweepEngine(run_closedloop_cell, jobs=jobs,
                         checkpoint=store, resume=resume,
                         executor=executor, progress=progress)
    plan = plan_cells(config)
    rows = []
    for cell, outcome in zip(plan, engine.run(plan)):
        p = cell.params_dict
        rows.append(ClosedLoopRow(
            arrival=p["arrival"],
            backend=p["backend"],
            adversary=p["adversary"],
            defense=p["defense"],
            p50=parse_json_float(outcome["p50"]),
            p95=parse_json_float(outcome["p95"]),
            p99=parse_json_float(outcome["p99"]),
            retrains=outcome["retrains"],
            injected_poison=outcome["injected_poison"],
            amplification=parse_json_float(
                outcome["final_amplification"]),
            max_error_bound=parse_json_float(
                outcome["max_error_bound"]),
            final_keep_fraction=parse_json_float(
                outcome["final_keep_fraction"]),
            final_rebuild_threshold=parse_json_float(
                outcome["final_rebuild_threshold"])))
    return ClosedLoopResult(config=config, rows=tuple(rows))
