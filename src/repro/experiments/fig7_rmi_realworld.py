"""Figure 7: RMI poisoning on the two real-world datasets.

Dataset A: unique Miami-Dade employee salaries (n = 5,300, density
3.71%); dataset B: OSM school latitudes (n = 302,973, density 25.25%).
Three RMI setups with second-stage model sizes 50 / 100 / 200 keys,
per-model threshold alpha = 3, poisoning percentages 5 / 10 / 20%.
Paper headlines: RMI ratio between 4x and 24x, individual second-stage
models up to ~70x; larger models allow more poisoning per model and so
larger ratios.

The datasets are the simulated stand-ins of
:mod:`repro.data.realworld` (DESIGN.md section 2).  The quick profile
scales the OSM dataset to 30,000 keys; the full profile uses the
published 302,973.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metrics import BoxplotSummary, summarize
from ..core.rmi_attack import poison_rmi
from ..core.threat_model import RMIAttackerCapability
from ..data.keyset import KeySet
from ..data.realworld import OSM_N, miami_salaries, osm_school_latitudes
from .report import format_ratio, render_table, section

__all__ = ["Fig7Config", "Fig7Cell", "Fig7Result", "DatasetProfile",
           "profile_dataset", "run", "quick_config", "full_config"]


@dataclass(frozen=True)
class Fig7Config:
    """Parameters of the real-world RMI experiment."""

    osm_keys: int
    model_sizes: tuple[int, ...] = (50, 100, 200)
    poisoning_percentages: tuple[float, ...] = (5.0, 10.0, 20.0)
    alpha: float = 3.0
    max_exchanges_per_model: int = 2
    seed: int = 31
    include_osm: bool = True


@dataclass(frozen=True)
class Fig7Cell:
    """One boxplot of the figure."""

    dataset: str
    n_keys: int
    model_size: int
    n_models: int
    poisoning_percentage: float
    per_model: BoxplotSummary
    rmi_ratio: float


@dataclass(frozen=True)
class DatasetProfile:
    """Shape of one dataset's CDF (the second row of Fig. 7)."""

    dataset: str
    n_keys: int
    domain_size: int
    density: float
    percentile_keys: tuple[int, ...]  # keys at 10/25/50/75/90%

    def row(self) -> list[str]:
        """Formatted profile row."""
        p10, p25, p50, p75, p90 = self.percentile_keys
        return [self.dataset, f"{self.n_keys:,}",
                f"{self.domain_size:,}", f"{self.density:.2%}",
                f"{p10:,}", f"{p25:,}", f"{p50:,}", f"{p75:,}",
                f"{p90:,}"]


def profile_dataset(name: str, keyset: KeySet) -> DatasetProfile:
    """CDF summary of a dataset (stands in for the Fig. 7 CDF plots)."""
    percentiles = np.percentile(keyset.keys, [10, 25, 50, 75, 90])
    return DatasetProfile(
        dataset=name,
        n_keys=keyset.n,
        domain_size=keyset.m,
        density=keyset.density,
        percentile_keys=tuple(int(p) for p in percentiles))


@dataclass(frozen=True)
class Fig7Result:
    """All cells for both datasets."""

    config: Fig7Config
    cells: tuple[Fig7Cell, ...]
    profiles: tuple[DatasetProfile, ...] = ()

    def format(self) -> str:
        """One block per (dataset, model size), plus CDF profiles."""
        blocks = []
        if self.profiles:
            table = render_table(
                ["dataset", "keys", "domain", "density", "p10", "p25",
                 "p50", "p75", "p90"],
                [p.row() for p in self.profiles])
            blocks.append(f"{section('Fig. 7 CDF profiles')}\n{table}")
        seen: list[tuple[str, int]] = []
        for cell in self.cells:
            group = (cell.dataset, cell.model_size)
            if group not in seen:
                seen.append(group)
        for dataset, size in seen:
            sample = next(c for c in self.cells
                          if (c.dataset, c.model_size) == (dataset, size))
            title = (f"[{dataset}] Keys: {sample.n_keys}  "
                     f"Model Size: {size}  #Models: {sample.n_models}")
            rows = []
            for cell in self.cells:
                if (cell.dataset, cell.model_size) != (dataset, size):
                    continue
                rows.append([
                    f"{cell.poisoning_percentage:g}%",
                    format_ratio(cell.rmi_ratio),
                    format_ratio(cell.per_model.median),
                    format_ratio(cell.per_model.q3),
                    format_ratio(cell.per_model.maximum),
                ])
            table = render_table(
                ["poison%", "RMI ratio", "model med", "model q3",
                 "model max"], rows)
            blocks.append(f"{section(title)}\n{table}")
        return "\n\n".join(blocks)


def quick_config() -> Fig7Config:
    """Scaled OSM dataset (30k keys); salaries at full published size."""
    return Fig7Config(osm_keys=30_000)


def full_config() -> Fig7Config:
    """Published dataset sizes (OSM n = 302,973)."""
    return Fig7Config(osm_keys=OSM_N)


def _attack_dataset(name: str, keyset: KeySet,
                    config: Fig7Config) -> list[Fig7Cell]:
    cells = []
    for model_size in config.model_sizes:
        n_models = max(keyset.n // model_size, 1)
        for pct in config.poisoning_percentages:
            capability = RMIAttackerCapability(
                poisoning_percentage=pct, alpha=config.alpha)
            result = poison_rmi(
                keyset, n_models, capability,
                max_exchanges=config.max_exchanges_per_model * n_models)
            ratios = result.per_model_ratios
            finite = ratios[np.isfinite(ratios)]
            cells.append(Fig7Cell(
                dataset=name,
                n_keys=keyset.n,
                model_size=model_size,
                n_models=n_models,
                poisoning_percentage=pct,
                per_model=summarize(finite),
                rmi_ratio=result.rmi_ratio_loss))
    return cells


def run(config: Fig7Config | None = None) -> Fig7Result:
    """Attack both (simulated) real-world datasets."""
    config = config or quick_config()
    rng = np.random.default_rng(config.seed)
    salaries = miami_salaries(rng)
    cells = _attack_dataset("miami-salaries", salaries, config)
    profiles = [profile_dataset("miami-salaries", salaries)]
    if config.include_osm:
        latitudes = osm_school_latitudes(rng, n=config.osm_keys)
        cells += _attack_dataset("osm-latitudes", latitudes, config)
        profiles.append(profile_dataset("osm-latitudes", latitudes))
    return Fig7Result(config=config, cells=tuple(cells),
                      profiles=tuple(profiles))
