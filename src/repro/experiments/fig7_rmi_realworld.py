"""Figure 7: RMI poisoning on the two real-world datasets.

Dataset A: unique Miami-Dade employee salaries (n = 5,300, density
3.71%); dataset B: OSM school latitudes (n = 302,973, density 25.25%).
Three RMI setups with second-stage model sizes 50 / 100 / 200 keys,
per-model threshold alpha = 3, poisoning percentages 5 / 10 / 20%.
Paper headlines: RMI ratio between 4x and 24x, individual second-stage
models up to ~70x; larger models allow more poisoning per model and so
larger ratios.

The datasets are the simulated stand-ins of
:mod:`repro.data.realworld` (DESIGN.md section 2).  The quick profile
scales the OSM dataset to 30,000 keys; the full profile uses the
published 302,973.

Runtime: the grid runs on :class:`repro.runtime.SweepEngine`, one cell
per (dataset, model size, poisoning percentage) — coarse enough that a
cell regenerates its keyset once, fine enough that the full-profile
OSM cells (302,973 keys each) spread across every worker.  Each cell
derives its keyset stream from a CRC-32 of the dataset name (the
scheme fig6 uses), so workers and resumed runs draw identical keys,
and each cell emits its poisoning set and per-model ratio vector as
``.npz`` artifacts through the checkpoint store.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..core.metrics import BoxplotSummary, summarize
from ..core.rmi_attack import poison_rmi
from ..core.threat_model import RMIAttackerCapability
from ..data.keyset import KeySet
from ..data.realworld import (
    OSM_N,
    SALARY_N,
    miami_salaries,
    osm_school_latitudes,
)
from ..io import json_float, parse_json_float
from ..runtime import (
    Cell,
    CellOutput,
    CheckpointStore,
    SweepEngine,
    stable_seed_words,
)
from .report import format_ratio, render_table, section

__all__ = ["Fig7Config", "Fig7Cell", "Fig7Result", "DatasetProfile",
           "profile_dataset", "plan_cells", "run_realworld_cell", "run",
           "quick_config", "full_config"]

MIAMI, OSM = "miami-salaries", "osm-latitudes"


@dataclass(frozen=True)
class Fig7Config:
    """Parameters of the real-world RMI experiment."""

    osm_keys: int
    model_sizes: tuple[int, ...] = (50, 100, 200)
    poisoning_percentages: tuple[float, ...] = (5.0, 10.0, 20.0)
    alpha: float = 3.0
    max_exchanges_per_model: int = 2
    seed: int = 31
    include_osm: bool = True
    salary_keys: int = SALARY_N

    def datasets(self) -> tuple[tuple[str, int], ...]:
        """(name, key count) per dataset in the grid."""
        pairs = [(MIAMI, self.salary_keys)]
        if self.include_osm:
            pairs.append((OSM, self.osm_keys))
        return tuple(pairs)


@dataclass(frozen=True)
class Fig7Cell:
    """One boxplot of the figure."""

    dataset: str
    n_keys: int
    model_size: int
    n_models: int
    poisoning_percentage: float
    per_model: BoxplotSummary
    rmi_ratio: float


@dataclass(frozen=True)
class DatasetProfile:
    """Shape of one dataset's CDF (the second row of Fig. 7)."""

    dataset: str
    n_keys: int
    domain_size: int
    density: float
    percentile_keys: tuple[int, ...]  # keys at 10/25/50/75/90%

    def row(self) -> list[str]:
        """Formatted profile row."""
        p10, p25, p50, p75, p90 = self.percentile_keys
        return [self.dataset, f"{self.n_keys:,}",
                f"{self.domain_size:,}", f"{self.density:.2%}",
                f"{p10:,}", f"{p25:,}", f"{p50:,}", f"{p75:,}",
                f"{p90:,}"]


def profile_dataset(name: str, keyset: KeySet) -> DatasetProfile:
    """CDF summary of a dataset (stands in for the Fig. 7 CDF plots)."""
    percentiles = np.percentile(keyset.keys, [10, 25, 50, 75, 90])
    return DatasetProfile(
        dataset=name,
        n_keys=keyset.n,
        domain_size=keyset.m,
        density=keyset.density,
        percentile_keys=tuple(int(p) for p in percentiles))


@dataclass(frozen=True)
class Fig7Result:
    """All cells for both datasets."""

    config: Fig7Config
    cells: tuple[Fig7Cell, ...]
    profiles: tuple[DatasetProfile, ...] = ()

    def format(self) -> str:
        """One block per (dataset, model size), plus CDF profiles."""
        blocks = []
        if self.profiles:
            table = render_table(
                ["dataset", "keys", "domain", "density", "p10", "p25",
                 "p50", "p75", "p90"],
                [p.row() for p in self.profiles])
            blocks.append(f"{section('Fig. 7 CDF profiles')}\n{table}")
        seen: list[tuple[str, int]] = []
        for cell in self.cells:
            group = (cell.dataset, cell.model_size)
            if group not in seen:
                seen.append(group)
        for dataset, size in seen:
            sample = next(c for c in self.cells
                          if (c.dataset, c.model_size) == (dataset, size))
            title = (f"[{dataset}] Keys: {sample.n_keys}  "
                     f"Model Size: {size}  #Models: {sample.n_models}")
            rows = []
            for cell in self.cells:
                if (cell.dataset, cell.model_size) != (dataset, size):
                    continue
                rows.append([
                    f"{cell.poisoning_percentage:g}%",
                    format_ratio(cell.rmi_ratio),
                    format_ratio(cell.per_model.median),
                    format_ratio(cell.per_model.q3),
                    format_ratio(cell.per_model.maximum),
                ])
            table = render_table(
                ["poison%", "RMI ratio", "model med", "model q3",
                 "model max"], rows)
            blocks.append(f"{section(title)}\n{table}")
        return "\n\n".join(blocks)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (the CLI's ``--out`` payload)."""
        return {
            "seed": self.config.seed,
            "profiles": [
                {
                    "dataset": p.dataset,
                    "n_keys": p.n_keys,
                    "domain_size": p.domain_size,
                    "density": p.density,
                    "percentile_keys": list(p.percentile_keys),
                }
                for p in self.profiles
            ],
            "cells": [
                {
                    "dataset": cell.dataset,
                    "n_keys": cell.n_keys,
                    "model_size": cell.model_size,
                    "n_models": cell.n_models,
                    "poisoning_percentage": cell.poisoning_percentage,
                    "per_model": asdict(cell.per_model),
                    "rmi_ratio": json_float(cell.rmi_ratio),
                }
                for cell in self.cells
            ],
        }


def quick_config() -> Fig7Config:
    """Scaled OSM dataset (30k keys); salaries at full published size."""
    return Fig7Config(osm_keys=30_000)


def full_config() -> Fig7Config:
    """Published dataset sizes (OSM n = 302,973)."""
    return Fig7Config(osm_keys=OSM_N)


def _make_keyset(dataset: str, n_keys: int, seed: int) -> KeySet:
    """The cell's keyset, regenerated deterministically per cell.

    Each dataset derives an independent stream from a CRC-32 of its
    name (via :func:`repro.runtime.stable_seed_words`); the legacy
    serial path instead threaded one generator through both datasets,
    which coupled the OSM draw to the salary draw and could never be
    split across workers.  The golden grid under
    ``tests/experiments/golden_fig7_grid.json`` pins this derivation.
    """
    rng = np.random.default_rng(stable_seed_words(seed, n_keys, dataset))
    if dataset == MIAMI:
        return miami_salaries(rng, n=n_keys)
    if dataset == OSM:
        return osm_school_latitudes(rng, n=n_keys)
    raise ValueError(f"unknown fig7 dataset: {dataset!r}")


def plan_cells(config: Fig7Config) -> list[Cell]:
    """One cell per (dataset, model size, poisoning percentage)."""
    return [
        Cell.make("fig7-rmi",
                  dataset=dataset,
                  n_keys=n_keys,
                  model_size=model_size,
                  poisoning_percentage=pct,
                  alpha=config.alpha,
                  max_exchanges_per_model=config.max_exchanges_per_model,
                  seed=config.seed)
        for dataset, n_keys in config.datasets()
        for model_size in config.model_sizes
        for pct in config.poisoning_percentages
    ]


def run_realworld_cell(cell: Cell) -> CellOutput:
    """Mount Algorithm 2 on one (dataset, model size, percentage).

    The JSON summary carries the scalars; the poisoning set and the
    full per-model ratio vector travel as array artifacts so the
    aggregation (and any external analysis) reads the exact arrays
    whether the cell was computed or resumed.
    """
    p = cell.params_dict
    keyset = _make_keyset(p["dataset"], p["n_keys"], p["seed"])
    n_models = max(p["n_keys"] // p["model_size"], 1)
    capability = RMIAttackerCapability(
        poisoning_percentage=p["poisoning_percentage"], alpha=p["alpha"])
    result = poison_rmi(
        keyset, n_models, capability,
        max_exchanges=p["max_exchanges_per_model"] * n_models)
    profile = profile_dataset(p["dataset"], keyset)
    return CellOutput(
        result={
            "n_models": n_models,
            "rmi_ratio": json_float(result.rmi_ratio_loss),
            # Identical for every cell of a dataset (profile depends
            # only on dataset/n_keys/seed); carried per cell so a
            # fully resumed run never regenerates a keyset.
            "profile": {
                "domain_size": profile.domain_size,
                "density": profile.density,
                "percentile_keys": list(profile.percentile_keys),
            },
        },
        arrays={
            "poison_keys": np.asarray(result.poison_keys,
                                      dtype=np.int64),
            "per_model_ratios": np.asarray(result.per_model_ratios,
                                           dtype=np.float64),
        })


def run(config: Fig7Config | None = None, jobs: int = 1,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False, executor: str = "process",
        progress=None) -> Fig7Result:
    """Attack both (simulated) real-world datasets.

    ``jobs`` fans the grid out over workers (``executor`` picks the
    pool backend); ``checkpoint_dir``/``resume`` persist and reuse
    completed cells including their ``.npz`` artifacts.  Results are
    identical for every combination of those options.
    """
    config = config or quick_config()
    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.write_manifest({
            "experiment": "fig7-rmi",
            "config": {
                "datasets": [list(pair) for pair in config.datasets()],
                "model_sizes": list(config.model_sizes),
                "poisoning_percentages": list(
                    config.poisoning_percentages),
                "alpha": config.alpha,
                "seed": config.seed,
            },
        })
    engine = SweepEngine(run_realworld_cell, jobs=jobs, checkpoint=store,
                         resume=resume, executor=executor,
                         progress=progress)
    plan = plan_cells(config)
    outputs = engine.run_outputs(plan)
    cells = []
    profile_by_dataset: dict[str, DatasetProfile] = {}
    for cell, output in zip(plan, outputs):
        p = cell.params_dict
        ratios = np.asarray(output.arrays["per_model_ratios"],
                            dtype=np.float64)
        finite = ratios[np.isfinite(ratios)]
        cells.append(Fig7Cell(
            dataset=p["dataset"],
            n_keys=p["n_keys"],
            model_size=p["model_size"],
            n_models=output.result["n_models"],
            poisoning_percentage=p["poisoning_percentage"],
            per_model=summarize(finite),
            rmi_ratio=parse_json_float(output.result["rmi_ratio"])))
        if p["dataset"] not in profile_by_dataset:
            stats = output.result["profile"]
            profile_by_dataset[p["dataset"]] = DatasetProfile(
                dataset=p["dataset"],
                n_keys=p["n_keys"],
                domain_size=stats["domain_size"],
                density=stats["density"],
                percentile_keys=tuple(stats["percentile_keys"]))
    profiles = tuple(profile_by_dataset[dataset]
                     for dataset, _ in config.datasets())
    return Fig7Result(config=config, cells=tuple(cells),
                      profiles=profiles)
