"""Figure 6: RMI poisoning on synthetic uniform and log-normal keys.

The paper's flagship experiment: a two-stage RMI over 10^7 keys, three
architectures (model sizes 10^2, 10^3, 10^4 keys, i.e. 10^5 .. 10^3
second-stage models), key domains 5*10^7 and 10^9, per-model threshold
alpha in {2, 3}, poisoning 1/5/10%.  Reported: the per-second-stage-
model ratio-loss distribution (boxplot) and the overall RMI ratio (the
black line).  Headlines: up to ~300x RMI ratio and ~3000x single-model
ratio on the log-normal keys; ratios grow with the model size.

We keep the paper's *shape parameters* (model sizes, keys:domain
ratios of 5x and 100x, alphas, percentages) and scale the key count:
the quick profile runs n = 10^4 with model sizes {10^2, 10^3}; the
full profile runs n = 10^5 with model sizes up to 10^4.  DESIGN.md
section 2 records the scaling argument.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..core.metrics import BoxplotSummary, summarize
from ..core.rmi_attack import poison_rmi
from ..core.threat_model import RMIAttackerCapability
from ..data.keyset import Domain
from ..data.synthetic import lognormal_keyset, uniform_keyset
from ..io import json_float, parse_json_float
from ..runtime import Cell, CheckpointStore, SweepEngine, stable_text_hash
from .report import format_ratio, render_table, section

__all__ = ["Fig6Config", "Fig6Cell", "Fig6Result", "plan_cells",
           "run_rmi_cell", "run", "quick_config", "full_config"]


@dataclass(frozen=True)
class Fig6Config:
    """Grid of the synthetic RMI experiment.

    ``domain_multipliers`` express the paper's two universes relative
    to the key count (10^9 / 10^7 = 100 and 5*10^7 / 10^7 = 5), so the
    density — what actually drives the attack — is preserved when the
    key count is scaled down.
    """

    n_keys: int
    model_sizes: tuple[int, ...]
    domain_multipliers: tuple[int, ...] = (5, 100)
    distributions: tuple[str, ...] = ("uniform", "lognormal")
    poisoning_percentages: tuple[float, ...] = (1.0, 5.0, 10.0)
    alphas: tuple[float, ...] = (2.0, 3.0)
    max_exchanges_per_model: int = 2
    seed: int = 23


@dataclass(frozen=True)
class Fig6Cell:
    """One boxplot of the figure."""

    distribution: str
    model_size: int
    n_models: int
    domain_multiplier: int
    poisoning_percentage: float
    alpha: float
    per_model: BoxplotSummary
    rmi_ratio: float


@dataclass(frozen=True)
class Fig6Result:
    """All cells of the grid."""

    config: Fig6Config
    cells: tuple[Fig6Cell, ...]

    def format(self) -> str:
        """One table block per (distribution, model size, domain)."""
        blocks = []
        seen = []
        for cell in self.cells:
            group = (cell.distribution, cell.model_size,
                     cell.domain_multiplier)
            if group not in seen:
                seen.append(group)
        for dist, size, mult in seen:
            title = (f"[{dist}] Keys: {self.config.n_keys}  "
                     f"Model Size: {size}  "
                     f"#Models: {self.config.n_keys // size}  "
                     f"Key Domain: {self.config.n_keys * mult}")
            rows = []
            for cell in self.cells:
                if (cell.distribution, cell.model_size,
                        cell.domain_multiplier) != (dist, size, mult):
                    continue
                rows.append([
                    f"{cell.poisoning_percentage:g}%",
                    f"a={cell.alpha:g}",
                    format_ratio(cell.rmi_ratio),
                    format_ratio(cell.per_model.median),
                    format_ratio(cell.per_model.q3),
                    format_ratio(cell.per_model.maximum),
                ])
            table = render_table(
                ["poison%", "alpha", "RMI ratio", "model med",
                 "model q3", "model max"], rows)
            blocks.append(f"{section(title)}\n{table}")
        return "\n\n".join(blocks)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (the CLI's ``--out`` payload)."""
        return {
            "n_keys": self.config.n_keys,
            "seed": self.config.seed,
            "cells": [
                {
                    "distribution": cell.distribution,
                    "model_size": cell.model_size,
                    "n_models": cell.n_models,
                    "domain_multiplier": cell.domain_multiplier,
                    "poisoning_percentage": cell.poisoning_percentage,
                    "alpha": cell.alpha,
                    "per_model": asdict(cell.per_model),
                    "rmi_ratio": json_float(cell.rmi_ratio),
                }
                for cell in self.cells
            ],
        }


def quick_config() -> Fig6Config:
    """Scaled-down grid that finishes in a couple of minutes."""
    return Fig6Config(n_keys=10_000, model_sizes=(100, 1000))


def full_config() -> Fig6Config:
    """The larger grid (n = 10^5, model sizes up to 10^4)."""
    return Fig6Config(n_keys=100_000, model_sizes=(100, 1000, 10000))


def _make_keyset(distribution: str, n_keys: int, multiplier: int,
                 seed: int):
    """The cell's keyset, regenerated deterministically per cell.

    Workers cannot share the parent's keyset object, so each cell
    rebuilds it from the same stream.  The stream seed uses a CRC-32
    of the distribution name: the builtin ``hash(str)`` is salted per
    interpreter, which would have made resumed runs draw different
    keysets than the original run.
    """
    domain = Domain.of_size(n_keys * multiplier)
    rng = np.random.default_rng(
        [seed, multiplier, stable_text_hash(distribution) % 2**31])
    if distribution == "uniform":
        return uniform_keyset(n_keys, domain, rng)
    return lognormal_keyset(n_keys, domain, rng)


def plan_cells(config: Fig6Config) -> list[Cell]:
    """One cell per (distribution, domain, model size, poison%, alpha)."""
    return [
        Cell.make("fig6-rmi",
                  distribution=distribution,
                  n_keys=config.n_keys,
                  domain_multiplier=multiplier,
                  model_size=model_size,
                  poisoning_percentage=pct,
                  alpha=alpha,
                  max_exchanges_per_model=config.max_exchanges_per_model,
                  seed=config.seed)
        for distribution in config.distributions
        for multiplier in config.domain_multipliers
        for model_size in config.model_sizes
        for pct in config.poisoning_percentages
        for alpha in config.alphas
    ]


def run_rmi_cell(cell: Cell) -> dict[str, Any]:
    """Mount Algorithm 2 for one grid point."""
    p = cell.params_dict
    keyset = _make_keyset(p["distribution"], p["n_keys"],
                          p["domain_multiplier"], p["seed"])
    n_models = max(p["n_keys"] // p["model_size"], 1)
    capability = RMIAttackerCapability(
        poisoning_percentage=p["poisoning_percentage"], alpha=p["alpha"])
    result = poison_rmi(
        keyset, n_models, capability,
        max_exchanges=p["max_exchanges_per_model"] * n_models)
    ratios = result.per_model_ratios
    finite = ratios[np.isfinite(ratios)]
    return {
        "n_models": n_models,
        "per_model_finite_ratios": finite.tolist(),
        "rmi_ratio": json_float(result.rmi_ratio_loss),
    }


def run(config: Fig6Config | None = None, jobs: int = 1,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False, executor: str = "process",
        progress=None) -> Fig6Result:
    """Run every cell of the grid, optionally in parallel/resumable."""
    config = config or quick_config()
    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.write_manifest({
            "experiment": "fig6-rmi",
            "config": {
                "n_keys": config.n_keys,
                "model_sizes": list(config.model_sizes),
                "domain_multipliers": list(config.domain_multipliers),
                "distributions": list(config.distributions),
                "poisoning_percentages": list(
                    config.poisoning_percentages),
                "alphas": list(config.alphas),
                "seed": config.seed,
            },
        })
    engine = SweepEngine(run_rmi_cell, jobs=jobs, checkpoint=store,
                         resume=resume, executor=executor,
                         progress=progress)
    plan = plan_cells(config)
    outcomes = engine.run(plan)
    cells = []
    for cell, outcome in zip(plan, outcomes):
        p = cell.params_dict
        cells.append(Fig6Cell(
            distribution=p["distribution"],
            model_size=p["model_size"],
            n_models=outcome["n_models"],
            domain_multiplier=p["domain_multiplier"],
            poisoning_percentage=p["poisoning_percentage"],
            alpha=p["alpha"],
            per_model=summarize(
                np.asarray(outcome["per_model_finite_ratios"])),
            rmi_ratio=parse_json_float(outcome["rmi_ratio"])))
    return Fig6Result(config=config, cells=tuple(cells))
