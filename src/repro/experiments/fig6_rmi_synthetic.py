"""Figure 6: RMI poisoning on synthetic uniform and log-normal keys.

The paper's flagship experiment: a two-stage RMI over 10^7 keys, three
architectures (model sizes 10^2, 10^3, 10^4 keys, i.e. 10^5 .. 10^3
second-stage models), key domains 5*10^7 and 10^9, per-model threshold
alpha in {2, 3}, poisoning 1/5/10%.  Reported: the per-second-stage-
model ratio-loss distribution (boxplot) and the overall RMI ratio (the
black line).  Headlines: up to ~300x RMI ratio and ~3000x single-model
ratio on the log-normal keys; ratios grow with the model size.

We keep the paper's *shape parameters* (model sizes, keys:domain
ratios of 5x and 100x, alphas, percentages) and scale the key count:
the quick profile runs n = 10^4 with model sizes {10^2, 10^3}; the
full profile runs n = 10^5 with model sizes up to 10^4.  DESIGN.md
section 2 records the scaling argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metrics import BoxplotSummary, summarize
from ..core.rmi_attack import poison_rmi
from ..core.threat_model import RMIAttackerCapability
from ..data.keyset import Domain
from ..data.synthetic import lognormal_keyset, uniform_keyset
from .report import format_ratio, render_table, section

__all__ = ["Fig6Config", "Fig6Cell", "Fig6Result", "run", "quick_config",
           "full_config"]


@dataclass(frozen=True)
class Fig6Config:
    """Grid of the synthetic RMI experiment.

    ``domain_multipliers`` express the paper's two universes relative
    to the key count (10^9 / 10^7 = 100 and 5*10^7 / 10^7 = 5), so the
    density — what actually drives the attack — is preserved when the
    key count is scaled down.
    """

    n_keys: int
    model_sizes: tuple[int, ...]
    domain_multipliers: tuple[int, ...] = (5, 100)
    distributions: tuple[str, ...] = ("uniform", "lognormal")
    poisoning_percentages: tuple[float, ...] = (1.0, 5.0, 10.0)
    alphas: tuple[float, ...] = (2.0, 3.0)
    max_exchanges_per_model: int = 2
    seed: int = 23


@dataclass(frozen=True)
class Fig6Cell:
    """One boxplot of the figure."""

    distribution: str
    model_size: int
    n_models: int
    domain_multiplier: int
    poisoning_percentage: float
    alpha: float
    per_model: BoxplotSummary
    rmi_ratio: float


@dataclass(frozen=True)
class Fig6Result:
    """All cells of the grid."""

    config: Fig6Config
    cells: tuple[Fig6Cell, ...]

    def format(self) -> str:
        """One table block per (distribution, model size, domain)."""
        blocks = []
        seen = []
        for cell in self.cells:
            group = (cell.distribution, cell.model_size,
                     cell.domain_multiplier)
            if group not in seen:
                seen.append(group)
        for dist, size, mult in seen:
            title = (f"[{dist}] Keys: {self.config.n_keys}  "
                     f"Model Size: {size}  "
                     f"#Models: {self.config.n_keys // size}  "
                     f"Key Domain: {self.config.n_keys * mult}")
            rows = []
            for cell in self.cells:
                if (cell.distribution, cell.model_size,
                        cell.domain_multiplier) != (dist, size, mult):
                    continue
                rows.append([
                    f"{cell.poisoning_percentage:g}%",
                    f"a={cell.alpha:g}",
                    format_ratio(cell.rmi_ratio),
                    format_ratio(cell.per_model.median),
                    format_ratio(cell.per_model.q3),
                    format_ratio(cell.per_model.maximum),
                ])
            table = render_table(
                ["poison%", "alpha", "RMI ratio", "model med",
                 "model q3", "model max"], rows)
            blocks.append(f"{section(title)}\n{table}")
        return "\n\n".join(blocks)


def quick_config() -> Fig6Config:
    """Scaled-down grid that finishes in a couple of minutes."""
    return Fig6Config(n_keys=10_000, model_sizes=(100, 1000))


def full_config() -> Fig6Config:
    """The larger grid (n = 10^5, model sizes up to 10^4)."""
    return Fig6Config(n_keys=100_000, model_sizes=(100, 1000, 10000))


def run(config: Fig6Config | None = None) -> Fig6Result:
    """Run every cell of the grid."""
    config = config or quick_config()
    cells = []
    for distribution in config.distributions:
        for multiplier in config.domain_multipliers:
            domain = Domain.of_size(config.n_keys * multiplier)
            rng = np.random.default_rng(
                [config.seed, multiplier, hash(distribution) % 2**31])
            if distribution == "uniform":
                keyset = uniform_keyset(config.n_keys, domain, rng)
            else:
                keyset = lognormal_keyset(config.n_keys, domain, rng)
            for model_size in config.model_sizes:
                n_models = max(config.n_keys // model_size, 1)
                for pct in config.poisoning_percentages:
                    for alpha in config.alphas:
                        capability = RMIAttackerCapability(
                            poisoning_percentage=pct, alpha=alpha)
                        result = poison_rmi(
                            keyset, n_models, capability,
                            max_exchanges=(config.max_exchanges_per_model
                                           * n_models))
                        ratios = result.per_model_ratios
                        finite = ratios[np.isfinite(ratios)]
                        cells.append(Fig6Cell(
                            distribution=distribution,
                            model_size=model_size,
                            n_models=n_models,
                            domain_multiplier=multiplier,
                            poisoning_percentage=pct,
                            alpha=alpha,
                            per_model=summarize(finite),
                            rmi_ratio=result.rmi_ratio_loss))
    return Fig6Result(config=config, cells=tuple(cells))
