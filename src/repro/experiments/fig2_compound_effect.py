"""Figure 2: the compound effect of a single poisoning key.

A 10-key keyset on a small domain; one optimally placed poisoning key
re-ranks every larger legitimate key, dragging the regression line and
inflating most points' residuals.  The experiment reports the
regression before and after, the per-key residuals, and the ratio
loss, matching the two panels of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cdf_regression import LinearModel, fit_cdf_regression
from ..core.single_point import SinglePointResult, optimal_single_point
from ..data.keyset import Domain, KeySet
from ..data.synthetic import uniform_keyset
from .report import format_ratio, render_table, section

__all__ = ["Fig2Config", "Fig2Result", "run", "default_config"]


@dataclass(frozen=True)
class Fig2Config:
    """Parameters of the illustration (paper: n = 10 on [0, 40])."""

    n_keys: int = 10
    domain_size: int = 41
    seed: int = 3


@dataclass(frozen=True)
class Fig2Result:
    """Both panels of the figure as data."""

    keyset: KeySet
    attack: SinglePointResult
    model_before: LinearModel
    model_after: LinearModel
    residuals_before: np.ndarray
    residuals_after: np.ndarray

    def format(self) -> str:
        """Plain-text rendition of the two panels."""
        header = section(
            "Fig. 2 - compound effect of one poisoning key "
            f"(ratio loss {format_ratio(self.attack.ratio_loss)})")
        rows = []
        poisoned = self.keyset.insert([self.attack.key])
        kp_rank = poisoned.rank_of(self.attack.key)
        for key, rank in zip(poisoned.keys, poisoned.ranks):
            tag = "POISON" if key == self.attack.key else ""
            pred = self.model_after.predict(float(key))
            rows.append([key, rank, f"{pred:7.2f}",
                         f"{rank - pred:+7.2f}", tag])
        table = render_table(
            ["key", "rank", "predicted", "residual", ""], rows)
        lines = [
            header,
            f"before: rank = {self.model_before.slope:.4f} * key "
            f"+ {self.model_before.intercept:.4f}   "
            f"MSE = {self.attack.loss_before:.4f}",
            f"after : rank = {self.model_after.slope:.4f} * key "
            f"+ {self.model_after.intercept:.4f}   "
            f"MSE = {self.attack.loss_after:.4f}",
            f"poisoning key kp = {self.attack.key} takes rank {kp_rank}; "
            "all larger keys shift up by one",
            table,
        ]
        return "\n".join(lines)


def default_config() -> Fig2Config:
    """The paper-scale illustration config."""
    return Fig2Config()


def run(config: Fig2Config | None = None) -> Fig2Result:
    """Build the keyset, mount the single-point attack, collect panels."""
    config = config or default_config()
    rng = np.random.default_rng(config.seed)
    keyset = uniform_keyset(config.n_keys,
                            Domain.of_size(config.domain_size), rng)
    before = fit_cdf_regression(keyset)
    attack = optimal_single_point(keyset)
    poisoned = keyset.insert([attack.key])
    after = fit_cdf_regression(poisoned)
    return Fig2Result(
        keyset=keyset,
        attack=attack,
        model_before=before.model,
        model_after=after.model,
        residuals_before=(before.model.predict(keyset.keys.astype(float))
                          - keyset.ranks),
        residuals_after=(after.model.predict(poisoned.keys.astype(float))
                         - poisoned.ranks))
