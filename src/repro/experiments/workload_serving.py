"""The ``workload`` target: streaming scenarios on the sweep engine.

Each cell of the grid replays one (query mix × poison schedule ×
backend) streaming scenario through the serving simulator and reports
latency percentiles, the throughput proxy, error-bound drift, retrain
count, and poison amplification.  Cells are engine-backed — checkpoint,
resume, process/thread fan-out, jobs parity — and each cell persists
its full per-tick time series as ``.npz`` artifacts, so the latency
trajectory of every scenario survives for offline plotting.

Every cell regenerates its trace from the canonical
:class:`~repro.workload.trace.TraceSpec` its parameters describe; the
spec digest is recorded in the result so an artifact can always be
traced back to the exact scenario that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any


from ..io import json_float, parse_json_float
from ..runtime import Cell, CellOutput, CheckpointStore, SweepEngine
from ..workload import (
    ServingSimulator,
    TraceSpec,
    generate_trace,
    make_backend,
)
from .report import format_ratio, render_table, section

__all__ = ["WorkloadConfig", "WorkloadRow", "WorkloadResult",
           "plan_cells", "run_workload_cell", "run", "quick_config",
           "full_config"]


@dataclass(frozen=True)
class WorkloadConfig:
    """The scenario×backend×schedule grid of one workload sweep."""

    query_mixes: tuple[str, ...] = ("uniform", "zipfian")
    poison_schedules: tuple[str, ...] = ("oneshot", "drip")
    backends: tuple[str, ...] = ("binary", "rmi", "dynamic")
    n_base_keys: int = 800
    n_ops: int = 1_200
    tick_ops: int = 200
    poison_percentage: float = 10.0
    insert_fraction: float = 0.05
    delete_fraction: float = 0.03
    modify_fraction: float = 0.02
    range_fraction: float = 0.04
    rebuild_threshold: float = 0.08
    seed: int = 67


def quick_config() -> WorkloadConfig:
    """12 cells, seconds of work — the CI smoke grid."""
    return WorkloadConfig()


def full_config() -> WorkloadConfig:
    """45 cells over every mix, schedule, and backend."""
    return WorkloadConfig(
        query_mixes=("uniform", "zipfian", "hotspot"),
        poison_schedules=("oneshot", "drip", "burst"),
        backends=("binary", "btree", "linear", "rmi", "dynamic"),
        n_base_keys=20_000,
        n_ops=50_000,
        tick_ops=1_000)


@dataclass(frozen=True)
class WorkloadRow:
    """One grid point's serving summary."""

    query_mix: str
    poison_schedule: str
    backend: str
    p50: float
    p95: float
    p99: float
    mean_probes: float
    found_fraction: float
    retrains: int
    amplification: float
    max_error_bound: float


@dataclass(frozen=True)
class WorkloadResult:
    """All rows of the grid, in plan order."""

    config: WorkloadConfig
    rows: tuple[WorkloadRow, ...]

    def format(self) -> str:
        """One block per (query mix, schedule), backends as rows."""
        blocks = []
        for mix in self.config.query_mixes:
            for schedule in self.config.poison_schedules:
                rows = [r for r in self.rows
                        if (r.query_mix, r.poison_schedule)
                        == (mix, schedule)]
                if not rows:
                    continue
                title = (f"workload: {mix} queries, {schedule} poison "
                         f"({self.config.poison_percentage:g}% budget, "
                         f"{self.config.n_ops} ops)")
                body = [[r.backend, f"{r.p50:.1f}", f"{r.p95:.1f}",
                         f"{r.p99:.1f}", f"{r.mean_probes:.2f}",
                         f"{r.found_fraction:.1%}", r.retrains,
                         format_ratio(r.amplification),
                         f"{r.max_error_bound:.0f}"]
                        for r in rows]
                table = render_table(
                    ["backend", "p50", "p95", "p99", "mean",
                     "found", "retrains", "amplif.", "max err"],
                    body)
                blocks.append(f"{section(title)}\n{table}")
        return "\n\n".join(blocks)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (the CLI's ``--out`` payload)."""
        return {
            "seed": self.config.seed,
            "n_base_keys": self.config.n_base_keys,
            "n_ops": self.config.n_ops,
            "cells": [
                {
                    "query_mix": r.query_mix,
                    "poison_schedule": r.poison_schedule,
                    "backend": r.backend,
                    "p50": json_float(r.p50),
                    "p95": json_float(r.p95),
                    "p99": json_float(r.p99),
                    "mean_probes": json_float(r.mean_probes),
                    "found_fraction": json_float(r.found_fraction),
                    "retrains": r.retrains,
                    "amplification": json_float(r.amplification),
                    "max_error_bound": json_float(r.max_error_bound),
                }
                for r in self.rows
            ],
        }


def spec_for(params: dict[str, Any]) -> TraceSpec:
    """The canonical trace spec a workload cell's parameters name."""
    return TraceSpec(
        n_base_keys=params["n_base_keys"],
        n_ops=params["n_ops"],
        query_mix=params["query_mix"],
        insert_fraction=params["insert_fraction"],
        delete_fraction=params["delete_fraction"],
        modify_fraction=params["modify_fraction"],
        range_fraction=params["range_fraction"],
        poison_schedule=params["poison_schedule"],
        poison_percentage=params["poison_percentage"],
        seed=params["seed"])


def plan_cells(config: WorkloadConfig) -> list[Cell]:
    """One cell per (query mix, poison schedule, backend)."""
    return [
        Cell.make("workload-serving",
                  query_mix=mix,
                  poison_schedule=schedule,
                  backend=backend,
                  n_base_keys=config.n_base_keys,
                  n_ops=config.n_ops,
                  tick_ops=config.tick_ops,
                  poison_percentage=config.poison_percentage,
                  insert_fraction=config.insert_fraction,
                  delete_fraction=config.delete_fraction,
                  modify_fraction=config.modify_fraction,
                  range_fraction=config.range_fraction,
                  rebuild_threshold=config.rebuild_threshold,
                  seed=config.seed)
        for mix in config.query_mixes
        for schedule in config.poison_schedules
        for backend in config.backends
    ]


def run_workload_cell(cell: Cell) -> CellOutput:
    """Replay one scenario on one backend; keep the time series.

    The trace regenerates deterministically from the cell parameters
    (its spec digest travels in the result), so resumed and fanned-out
    runs replay identical streams.  The per-tick series land as
    ``.npz`` artifacts next to the checkpoint.
    """
    p = cell.params_dict
    trace = generate_trace(spec_for(p))
    backend = make_backend(p["backend"], trace.base_keys,
                           rebuild_threshold=p["rebuild_threshold"])
    report = ServingSimulator(backend, trace,
                              tick_ops=p["tick_ops"]).run()
    return CellOutput(
        result=report.to_dict(),
        arrays={f"tick_{name}": series
                for name, series in report.series.items()})


def run(config: WorkloadConfig | None = None, jobs: int = 1,
        checkpoint_dir: str | Path | None = None, resume: bool = False,
        executor: str = "process", progress=None) -> WorkloadResult:
    """Run the whole grid; identical results for any jobs/executor."""
    config = config or quick_config()
    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.write_manifest({
            "experiment": "workload-serving",
            "config": {
                "query_mixes": list(config.query_mixes),
                "poison_schedules": list(config.poison_schedules),
                "backends": list(config.backends),
                "n_base_keys": config.n_base_keys,
                "n_ops": config.n_ops,
                "poison_percentage": config.poison_percentage,
                "seed": config.seed,
            },
        })
    engine = SweepEngine(run_workload_cell, jobs=jobs, checkpoint=store,
                         resume=resume, executor=executor,
                         progress=progress)
    plan = plan_cells(config)
    rows = []
    for cell, outcome in zip(plan, engine.run(plan)):
        p = cell.params_dict
        rows.append(WorkloadRow(
            query_mix=p["query_mix"],
            poison_schedule=p["poison_schedule"],
            backend=p["backend"],
            p50=parse_json_float(outcome["p50"]),
            p95=parse_json_float(outcome["p95"]),
            p99=parse_json_float(outcome["p99"]),
            mean_probes=parse_json_float(outcome["mean_probes"]),
            found_fraction=parse_json_float(outcome["found_fraction"]),
            retrains=outcome["retrains"],
            amplification=parse_json_float(
                outcome["final_amplification"]),
            max_error_bound=parse_json_float(
                outcome["max_error_bound"])))
    return WorkloadResult(config=config, rows=tuple(rows))
