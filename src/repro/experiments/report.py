"""Plain-text rendering of experiment results.

The paper reports boxplots; a terminal harness reports the same
five-number summaries as aligned tables plus a coarse ascii boxplot so
shapes are comparable at a glance.  Every benchmark prints through
these helpers so EXPERIMENTS.md rows can be pasted verbatim.

Serving grids (``closedloop``, ``cluster``) additionally end in a
*duel* block: every challenger row compared against its same-world
baseline, with the gap the attack opened and, when a tuned/defended
arm exists, how much of it the defense recovered.  :class:`DuelRow`
plus :func:`render_duel` are the shared rendering for both targets —
the figure targets keep their historical tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.metrics import BoxplotSummary

__all__ = ["section", "render_table", "ascii_boxplot", "format_ratio",
           "format_gap", "DuelRow", "render_duel"]


def section(title: str, width: int = 78) -> str:
    """A banner line announcing one experiment block."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def format_ratio(value: float) -> str:
    """Ratio losses rendered like the paper annotates them (e.g. 7.4x)."""
    if value != value:  # NaN
        return "nan"
    if value == float("inf"):
        return "inf"
    if value >= 100:
        return f"{value:.0f}x"
    return f"{value:.1f}x"


def format_gap(value: float) -> str:
    """Signed gap/recovery deltas, e.g. ``+0.132`` (``nan`` passes)."""
    if value != value:  # NaN
        return "nan"
    return f"{value:+.3f}"


@dataclass(frozen=True)
class DuelRow:
    """One challenger-vs-baseline comparison of a serving grid.

    ``group`` labels the grid point (arrival/backend/adversary for
    ``closedloop``; layout/backend/adversary for ``cluster``);
    ``gap`` is challenger-minus-baseline on the duel metric, and
    ``recovered`` — when a defended arm exists — is how much of the
    challenger's damage the defense clawed back (``None`` renders no
    column).
    """

    group: tuple[str, ...]
    gap: float
    recovered: "float | None" = None


def render_duel(title: str, group_headers: Sequence[str],
                rows: Sequence[DuelRow],
                gap_header: str = "gap vs baseline",
                recovered_header: str = "recovered") -> str:
    """The duel block: a section banner over gap/recovery columns.

    The recovery column appears iff any row carries one; rows without
    it render ``-`` there, so partially defended grids still align.
    """
    if not rows:
        return ""
    with_recovery = any(row.recovered is not None for row in rows)
    headers = [*group_headers, gap_header]
    if with_recovery:
        headers.append(recovered_header)
    body = []
    for row in rows:
        line = [*row.group, format_gap(row.gap)]
        if with_recovery:
            line.append("-" if row.recovered is None
                        else format_gap(row.recovered))
        body.append(line)
    return f"{section(title)}\n{render_table(headers, body)}"


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Monospace table with right-padded columns."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def ascii_boxplot(summary: BoxplotSummary, lo: float, hi: float,
                  width: int = 40) -> str:
    """One-line ascii boxplot of a summary scaled into ``[lo, hi]``.

    Layout: ``|----[==M==]------|`` where ``[``/``]`` are quartiles and
    ``M`` the median; whiskers span min..max.
    """
    if hi <= lo:
        hi = lo + 1.0
    def col(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return min(max(int(frac * (width - 1)), 0), width - 1)
    cells = [" "] * width
    for pos in range(col(summary.minimum), col(summary.maximum) + 1):
        cells[pos] = "-"
    for pos in range(col(summary.q1), col(summary.q3) + 1):
        cells[pos] = "="
    cells[col(summary.q1)] = "["
    cells[col(summary.q3)] = "]"
    cells[col(summary.median)] = "M"
    return "".join(cells)
