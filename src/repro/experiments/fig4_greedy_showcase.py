"""Figure 4: greedy multi-point poisoning on 90 uniform keys.

The paper's showcase run injects 10 poisoning keys into 90 uniformly
distributed keys and reports a 7.4x error increase, with the poisoning
keys visibly clustered in dense areas of the CDF.  We reproduce the
setup, report the ratio trajectory per insertion, and quantify the
clustering (spread of the poisoning keys vs the legitimate spread).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.greedy import GreedyResult, greedy_poison
from ..data.keyset import Domain, KeySet
from ..data.synthetic import uniform_keyset
from .report import format_ratio, render_table, section

__all__ = ["Fig4Config", "Fig4Result", "run", "default_config"]


@dataclass(frozen=True)
class Fig4Config:
    """Paper setup: 90 keys, domain ~500, 10 poisoning keys."""

    n_keys: int = 90
    domain_size: int = 500
    n_poison: int = 10
    seed: int = 11


@dataclass(frozen=True)
class Fig4Result:
    """Greedy trajectory plus the clustering statistic."""

    keyset: KeySet
    greedy: GreedyResult
    poison_span_fraction: float

    def format(self) -> str:
        """Ratio per insertion and placement of the poisoning keys."""
        header = section(
            "Fig. 4 - greedy multi-point attack, "
            f"{self.greedy.n_injected} poisoning keys, final ratio "
            f"{format_ratio(self.greedy.ratio_loss)} (paper: 7.4x)")
        rows = []
        for i, (key, loss) in enumerate(
                zip(self.greedy.poison_keys, self.greedy.losses), start=1):
            rows.append([i, int(key),
                         format_ratio(loss / self.greedy.loss_before)])
        table = render_table(["step", "poison key", "ratio so far"], rows)
        span = (f"poisoning keys span {self.poison_span_fraction:.1%} of "
                "the key range (clustered in a dense region)")
        return "\n".join([header, span, table])


def default_config() -> Fig4Config:
    """The paper-scale showcase config."""
    return Fig4Config()


def run(config: Fig4Config | None = None) -> Fig4Result:
    """Run the greedy attack and measure poison-key clustering."""
    config = config or default_config()
    rng = np.random.default_rng(config.seed)
    keyset = uniform_keyset(config.n_keys,
                            Domain.of_size(config.domain_size), rng)
    greedy = greedy_poison(keyset, config.n_poison)
    key_range = float(keyset.keys[-1] - keyset.keys[0])
    if greedy.n_injected > 1 and key_range > 0:
        span = float(greedy.poison_keys.max() - greedy.poison_keys.min())
        span_fraction = span / key_range
    else:
        span_fraction = 0.0
    return Fig4Result(keyset=keyset, greedy=greedy,
                      poison_span_fraction=span_fraction)
