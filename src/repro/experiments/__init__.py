"""Experiment harness: one module per paper figure plus ablations.

Every module exposes ``run(config) -> result`` and result objects with
a ``format()`` method that prints paper-comparable tables.  The
benchmarks under ``benchmarks/`` are thin wrappers that time these
runs and print the tables; ``python -m repro.experiments <name>`` runs
one directly.
"""

from . import (
    ablations,
    fig2_compound_effect,
    fig3_loss_landscape,
    fig4_greedy_showcase,
    fig6_rmi_synthetic,
    fig7_rmi_realworld,
    regression_sweep,
    workload_serving,
)
from .regression_sweep import fig5_config, fig8_config, run_sweep
from .report import (
    DuelRow,
    ascii_boxplot,
    format_gap,
    format_ratio,
    render_duel,
    render_table,
    section,
)

__all__ = [
    "fig2_compound_effect",
    "fig3_loss_landscape",
    "fig4_greedy_showcase",
    "regression_sweep",
    "fig5_config",
    "fig8_config",
    "run_sweep",
    "fig6_rmi_synthetic",
    "fig7_rmi_realworld",
    "workload_serving",
    "ablations",
    "section",
    "render_table",
    "ascii_boxplot",
    "format_ratio",
    "format_gap",
    "DuelRow",
    "render_duel",
]
