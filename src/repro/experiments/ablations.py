"""Ablations and extensions beyond the paper's figures (DESIGN.md §3).

* **A1** — optimal-vs-brute-force single point: identical key and
  loss; wall-clock gap grows with the domain (O(n) vs O(m n)).
* **A2** — TRIM defenses against the CDF attack: classic TRIM vs
  rank-aware TRIM, precision/recall and residual ratio loss.
* **A3** — end-to-end lookup cost: clean RMI vs poisoned RMI vs
  B-Tree on the same query set (the performance story behind the
  Ratio Loss).
* **A4** — alpha sweep: how much the per-model threshold's slack
  buys the RMI attack.
* **A5** — greedy vs uniform volume allocation for the RMI attack
  (the value of Algorithm 2's exchange loop over its initialisation).
* **A6** — deletion adversary vs insertion adversary at equal budget
  (Sec. VI names key removal as an open extension).
* **A7** — polynomial second-stage refits of the poisoned CDF: how
  much loss the extra model capacity absorbs, at what storage cost.
* **A8** — black-box extraction of the second stage by probing, and
  the attack mounted on the recovered parameters.
* **A9** — poisoning a *dynamic* learned index purely through its
  public insert API (the update-time adversary of Sec. VI).
* **A10** — ridge regularisation: does L2 shrinkage (which the paper
  sets aside as "unclear" for LIS) buy any poisoning robustness?
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..core.brute_force import brute_force_single_point
from ..core.greedy import greedy_poison
from ..core.rmi_attack import poison_rmi
from ..core.single_point import optimal_single_point
from ..core.threat_model import RMIAttackerCapability
from ..data.keyset import Domain
from ..data.synthetic import lognormal_keyset, uniform_keyset
from ..defense.trim import TrimResult, trim_cdf, trim_regression
from ..index.cost import CostReport, compare_costs
from ..io import json_float, parse_json_float
from ..runtime import (
    Cell,
    CellOutput,
    CheckpointStore,
    SweepEngine,
    stable_seed_words,
)
from .report import format_ratio, render_table, section

__all__ = [
    "BruteForceRow", "plan_bruteforce_cells",
    "run_bruteforce_equivalence",
    "TrimRow", "plan_trim_cells", "run_trim_defense",
    "plan_lookup_cost_cells", "run_lookup_cost",
    "AlphaRow", "plan_alpha_cells", "run_alpha_sweep",
    "AllocationRow", "plan_allocation_cells",
    "run_allocation_ablation",
    "DeletionRow", "plan_deletion_cells", "run_deletion_ablation",
    "PolynomialRow", "plan_polynomial_cells",
    "run_polynomial_ablation",
    "BlackboxReport", "plan_blackbox_cells", "run_blackbox_ablation",
    "UpdateChannelReport", "plan_update_cells", "run_update_ablation",
    "RidgeRow", "plan_ridge_cells", "run_ridge_ablation",
    "AdversaryRow", "plan_adversary_cells", "run_adversary_comparison",
]


def _engine(runner, jobs: int, checkpoint_dir: str | Path | None,
            resume: bool, executor: str,
            progress=None) -> SweepEngine:
    """The sweep engine every A-series ablation shares."""
    store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    return SweepEngine(runner, jobs=jobs, checkpoint=store,
                       resume=resume, executor=executor,
                       progress=progress)


# ----------------------------------------------------------------------
# A1: optimal vs brute force
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BruteForceRow:
    """One keyset's equivalence check and timing."""

    n_keys: int
    domain_size: int
    same_key: bool
    fast_seconds: float
    brute_seconds: float
    speedup: float


def plan_bruteforce_cells(key_counts: tuple[int, ...] = (50, 100, 200),
                          density: float = 0.05,
                          seed: int = 5) -> list[Cell]:
    """A1's plan: one cell per key count (defaults mirror the run)."""
    return [Cell.make("a1-bruteforce", n_keys=n, density=density,
                      seed=seed)
            for n in key_counts]


def run_bruteforce_cell(cell: Cell) -> dict[str, Any]:
    """One A1 key count: equivalence check plus wall-clock timing."""
    p = cell.params_dict
    n = p["n_keys"]
    rng = np.random.default_rng([p["seed"], n])
    keyset = uniform_keyset(n, Domain.of_size(int(n / p["density"])), rng)
    t0 = time.perf_counter()
    fast = optimal_single_point(keyset)
    fast_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    brute = brute_force_single_point(keyset)
    brute_s = time.perf_counter() - t0
    return {
        "domain_size": keyset.m,
        "same_key": bool(fast.key == brute.key
                         and abs(fast.loss_after - brute.loss_after)
                         <= 1e-7 * max(1.0, brute.loss_after)),
        "fast_seconds": fast_s,
        "brute_seconds": brute_s,
        "speedup": json_float(brute_s / fast_s if fast_s > 0
                              else float("inf")),
    }


def run_bruteforce_equivalence(
        key_counts: tuple[int, ...] = (50, 100, 200),
        density: float = 0.05, seed: int = 5, jobs: int = 1,
        checkpoint_dir: str | Path | None = None, resume: bool = False,
        executor: str = "process", progress=None) -> list[BruteForceRow]:
    """A1: the O(n) attack must match the O(m n) oracle, faster.

    The equivalence verdict is deterministic; the timings are not, so
    resumed runs keep the wall-clock numbers of the run that computed
    each cell (which is what a benchmark log should do).  With
    ``jobs > 1`` the cells time each other's contention as well —
    run at ``jobs=1`` when the milliseconds themselves matter; the
    asymptotic gap dwarfs contention either way.
    """
    cells = plan_bruteforce_cells(key_counts, density, seed)
    engine = _engine(run_bruteforce_cell, jobs, checkpoint_dir, resume,
                     executor, progress)
    return [
        BruteForceRow(
            n_keys=n,
            domain_size=outcome["domain_size"],
            same_key=outcome["same_key"],
            fast_seconds=outcome["fast_seconds"],
            brute_seconds=outcome["brute_seconds"],
            speedup=parse_json_float(outcome["speedup"]))
        for n, outcome in zip(key_counts, engine.run(cells))
    ]


def format_bruteforce(rows: list[BruteForceRow]) -> str:
    """Table for A1."""
    body = [[r.n_keys, r.domain_size, r.same_key,
             f"{r.fast_seconds*1e3:.2f}ms", f"{r.brute_seconds*1e3:.1f}ms",
             f"{r.speedup:.0f}x"] for r in rows]
    return (section("A1 - optimal O(n) attack vs brute force O(mn)") + "\n"
            + render_table(["keys", "domain", "match", "fast", "brute",
                            "speedup"], body))


# ----------------------------------------------------------------------
# A2: TRIM defenses
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TrimRow:
    """Defense outcome for one poisoning percentage."""

    poisoning_percentage: float
    attack_ratio: float
    variant: str
    recall: float
    precision: float
    residual_ratio: float


def _residual_ratio(defended: TrimResult, clean_loss: float) -> float:
    if clean_loss == 0.0:
        return 1.0
    return defended.final_loss / clean_loss


def plan_trim_cells(n_keys: int = 1000, density: float = 0.1,
                    percentages: tuple[float, ...] = (5.0, 10.0, 20.0),
                    seed: int = 13) -> list[Cell]:
    """A2's plan: one cell per poisoning percentage."""
    return [Cell.make("a2-trim", n_keys=n_keys, density=density,
                      percentage=pct, seed=seed)
            for pct in percentages]


def run_trim_cell(cell: Cell) -> CellOutput:
    """One A2 percentage: poison the shared keyset, run both TRIMs.

    Every cell regenerates the identical keyset from the shared seed
    (the legacy loop built it once), so per-percentage comparisons
    stay exact across workers.  The poisoning set rides along as an
    ``.npz`` artifact for offline defense analysis.
    """
    p = cell.params_dict
    n_keys = p["n_keys"]
    rng = np.random.default_rng(p["seed"])
    keyset = uniform_keyset(
        n_keys, Domain.of_size(int(n_keys / p["density"])), rng)
    budget = int(n_keys * p["percentage"] / 100.0)
    attack = greedy_poison(keyset, budget)
    poisoned = keyset.insert(attack.poison_keys)
    clean_loss = attack.loss_before

    classic = trim_regression(
        poisoned.keys.astype(np.float64),
        poisoned.ranks.astype(np.float64), n_keep=n_keys, seed=p["seed"])
    aware = trim_cdf(poisoned.keys, n_keep=n_keys, seed=p["seed"])
    variants = {}
    for variant, res in (("classic", classic), ("rank-aware", aware)):
        variants[variant] = {
            "recall": res.recall_against(attack.poison_keys),
            "precision": res.precision_against(attack.poison_keys),
            "residual_ratio": json_float(
                _residual_ratio(res, clean_loss)),
        }
    return CellOutput(
        result={
            "attack_ratio": json_float(attack.ratio_loss),
            "variants": variants,
        },
        arrays={"poison_keys": np.asarray(attack.poison_keys,
                                          dtype=np.int64)})


def run_trim_defense(n_keys: int = 1000, density: float = 0.1,
                     percentages: tuple[float, ...] = (5.0, 10.0, 20.0),
                     seed: int = 13, jobs: int = 1,
                     checkpoint_dir: str | Path | None = None,
                     resume: bool = False,
                     executor: str = "process",
                     progress=None) -> list[TrimRow]:
    """A2: can TRIM undo the CDF attack?

    For each percentage: poison, then hand the defense the poisoned
    keyset and the true clean count ``n`` (the most charitable
    setting), and measure how much loss survives after trimming.
    """
    cells = plan_trim_cells(n_keys, density, percentages, seed)
    engine = _engine(run_trim_cell, jobs, checkpoint_dir, resume,
                     executor, progress)
    rows = []
    for pct, outcome in zip(percentages, engine.run(cells)):
        for variant in ("classic", "rank-aware"):
            scores = outcome["variants"][variant]
            rows.append(TrimRow(
                poisoning_percentage=pct,
                attack_ratio=parse_json_float(outcome["attack_ratio"]),
                variant=variant,
                recall=scores["recall"],
                precision=scores["precision"],
                residual_ratio=parse_json_float(
                    scores["residual_ratio"])))
    return rows


def format_trim(rows: list[TrimRow]) -> str:
    """Table for A2."""
    body = [[f"{r.poisoning_percentage:g}%", format_ratio(r.attack_ratio),
             r.variant, f"{r.recall:.0%}", f"{r.precision:.0%}",
             format_ratio(r.residual_ratio)] for r in rows]
    return (section("A2 - TRIM vs the CDF poisoning attack") + "\n"
            + render_table(["poison%", "attack ratio", "variant", "recall",
                            "precision", "loss after trim"], body))


# ----------------------------------------------------------------------
# A3: end-to-end lookup cost
# ----------------------------------------------------------------------

def plan_lookup_cost_cells(n_keys: int = 20_000, density: float = 0.1,
                           model_size: int = 200,
                           poisoning_percentage: float = 10.0,
                           seed: int = 17) -> list[Cell]:
    """A3's plan: a single cell."""
    return [Cell.make("a3-cost", n_keys=n_keys, density=density,
                      model_size=model_size,
                      poisoning_percentage=poisoning_percentage,
                      seed=seed)]


def run_lookup_cost_cell(cell: Cell) -> dict[str, Any]:
    """The single A3 cell: attack once, probe all three structures."""
    p = cell.params_dict
    n_keys = p["n_keys"]
    rng = np.random.default_rng(p["seed"])
    keyset = uniform_keyset(
        n_keys, Domain.of_size(int(n_keys / p["density"])), rng)
    n_models = max(n_keys // p["model_size"], 1)
    capability = RMIAttackerCapability(
        poisoning_percentage=p["poisoning_percentage"], alpha=3.0)
    attack = poison_rmi(keyset, n_models, capability,
                        max_exchanges=n_models)
    poisoned = keyset.insert(attack.poison_keys)
    reports = compare_costs(keyset.keys, poisoned.keys, n_models,
                            seed=p["seed"])
    return {"reports": [
        {"structure": r.structure, "mean_cost": r.mean_cost,
         "max_cost": r.max_cost, "n_queries": r.n_queries}
        for r in reports]}


def run_lookup_cost(n_keys: int = 20_000, density: float = 0.1,
                    model_size: int = 200, poisoning_percentage: float = 10.0,
                    seed: int = 17, jobs: int = 1,
                    checkpoint_dir: str | Path | None = None,
                    resume: bool = False,
                    executor: str = "process",
                    progress=None) -> list[CostReport]:
    """A3: clean RMI vs poisoned RMI vs B-Tree probe counts.

    A single (but expensive at full size) unit of work, so it runs as
    one cell — parallelism buys nothing here, but checkpoint/resume
    still lets an interrupted ``all`` run skip it the second time.
    """
    cells = plan_lookup_cost_cells(n_keys, density, model_size,
                                   poisoning_percentage, seed)
    engine = _engine(run_lookup_cost_cell, jobs, checkpoint_dir, resume,
                     executor, progress)
    (outcome,) = engine.run(cells)
    return [CostReport(structure=r["structure"],
                       mean_cost=r["mean_cost"],
                       max_cost=r["max_cost"],
                       n_queries=r["n_queries"])
            for r in outcome["reports"]]


def format_lookup_cost(reports: list[CostReport]) -> str:
    """Table for A3."""
    return (section("A3 - end-to-end lookup cost (probes per lookup)")
            + "\n" + "\n".join(r.row() for r in reports))


# ----------------------------------------------------------------------
# A4: alpha sweep
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AlphaRow:
    """RMI ratio at one per-model threshold multiplier."""

    alpha: float
    rmi_ratio: float
    max_model_ratio: float
    exchanges: int


def plan_alpha_cells(n_keys: int = 10_000, model_size: int = 500,
                     poisoning_percentage: float = 10.0,
                     alphas: tuple[float, ...] = (1.0, 1.5, 2.0, 3.0,
                                                  5.0),
                     seed: int = 19) -> list[Cell]:
    """A4's plan: one cell per threshold multiplier."""
    return [Cell.make("a4-alpha", n_keys=n_keys, model_size=model_size,
                      poisoning_percentage=poisoning_percentage,
                      alpha=alpha, seed=seed)
            for alpha in alphas]


def run_alpha_cell(cell: Cell) -> dict[str, Any]:
    """One A4 threshold multiplier on the shared log-normal keyset."""
    p = cell.params_dict
    n_keys = p["n_keys"]
    rng = np.random.default_rng(p["seed"])
    keyset = lognormal_keyset(n_keys, Domain.of_size(100 * n_keys), rng)
    n_models = max(n_keys // p["model_size"], 1)
    capability = RMIAttackerCapability(
        poisoning_percentage=p["poisoning_percentage"], alpha=p["alpha"])
    result = poison_rmi(keyset, n_models, capability,
                        max_exchanges=2 * n_models)
    ratios = result.per_model_ratios
    finite = ratios[np.isfinite(ratios)]
    return {
        "rmi_ratio": json_float(result.rmi_ratio_loss),
        "max_model_ratio": json_float(float(finite.max())),
        "exchanges": result.exchanges,
    }


def run_alpha_sweep(n_keys: int = 10_000, model_size: int = 500,
                    poisoning_percentage: float = 10.0,
                    alphas: tuple[float, ...] = (1.0, 1.5, 2.0, 3.0, 5.0),
                    seed: int = 19, jobs: int = 1,
                    checkpoint_dir: str | Path | None = None,
                    resume: bool = False,
                    executor: str = "process",
                    progress=None) -> list[AlphaRow]:
    """A4: how much threshold slack helps the volume allocation."""
    cells = plan_alpha_cells(n_keys, model_size, poisoning_percentage,
                             alphas, seed)
    engine = _engine(run_alpha_cell, jobs, checkpoint_dir, resume,
                     executor, progress)
    return [
        AlphaRow(alpha=alpha,
                 rmi_ratio=parse_json_float(outcome["rmi_ratio"]),
                 max_model_ratio=parse_json_float(
                     outcome["max_model_ratio"]),
                 exchanges=outcome["exchanges"])
        for alpha, outcome in zip(alphas, engine.run(cells))
    ]


def format_alpha(rows: list[AlphaRow]) -> str:
    """Table for A4."""
    body = [[f"{r.alpha:g}", format_ratio(r.rmi_ratio),
             format_ratio(r.max_model_ratio), r.exchanges] for r in rows]
    return (section("A4 - per-model threshold (alpha) sweep") + "\n"
            + render_table(["alpha", "RMI ratio", "max model ratio",
                            "exchanges"], body))


# ----------------------------------------------------------------------
# A5: greedy vs uniform volume allocation
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AllocationRow:
    """Greedy-vs-uniform comparison for one distribution."""

    distribution: str
    uniform_ratio: float
    greedy_ratio: float
    improvement: float


ALLOCATION_DISTRIBUTIONS = ("uniform", "lognormal")


def plan_allocation_cells(n_keys: int = 10_000, model_size: int = 500,
                          poisoning_percentage: float = 10.0,
                          seed: int = 29) -> list[Cell]:
    """A5's plan: one cell per distribution."""
    return [Cell.make("a5-allocation", n_keys=n_keys,
                      model_size=model_size,
                      poisoning_percentage=poisoning_percentage,
                      distribution=distribution, seed=seed)
            for distribution in ALLOCATION_DISTRIBUTIONS]


def run_allocation_cell(cell: Cell) -> dict[str, Any]:
    """One A5 distribution: uniform vs greedy budget allocation.

    The keyset stream hashes the distribution name with CRC-32 (via
    :func:`repro.runtime.stable_seed_words`); the legacy loop used the
    salted builtin ``hash``, which silently drew different keysets in
    every interpreter.
    """
    p = cell.params_dict
    n_keys = p["n_keys"]
    rng = np.random.default_rng(
        stable_seed_words(p["seed"], p["distribution"]))
    domain = Domain.of_size(100 * n_keys)
    if p["distribution"] == "uniform":
        keyset = uniform_keyset(n_keys, domain, rng)
    else:
        keyset = lognormal_keyset(n_keys, domain, rng)
    n_models = max(n_keys // p["model_size"], 1)
    capability = RMIAttackerCapability(
        poisoning_percentage=p["poisoning_percentage"], alpha=3.0)
    flat = poison_rmi(keyset, n_models, capability, max_exchanges=0)
    greedy = poison_rmi(keyset, n_models, capability,
                        max_exchanges=2 * n_models)
    improvement = (greedy.rmi_ratio_loss / flat.rmi_ratio_loss
                   if flat.rmi_ratio_loss > 0 else float("inf"))
    return {
        "uniform_ratio": json_float(flat.rmi_ratio_loss),
        "greedy_ratio": json_float(greedy.rmi_ratio_loss),
        "improvement": json_float(improvement),
    }


def run_allocation_ablation(n_keys: int = 10_000, model_size: int = 500,
                            poisoning_percentage: float = 10.0,
                            seed: int = 29, jobs: int = 1,
                            checkpoint_dir: str | Path | None = None,
                            resume: bool = False,
                            executor: str = "process",
                            progress=None) -> list[AllocationRow]:
    """A5: value of the exchange loop over uniform initial budgets."""
    distributions = ALLOCATION_DISTRIBUTIONS
    cells = plan_allocation_cells(n_keys, model_size,
                                  poisoning_percentage, seed)
    engine = _engine(run_allocation_cell, jobs, checkpoint_dir, resume,
                     executor, progress)
    return [
        AllocationRow(
            distribution=distribution,
            uniform_ratio=parse_json_float(outcome["uniform_ratio"]),
            greedy_ratio=parse_json_float(outcome["greedy_ratio"]),
            improvement=parse_json_float(outcome["improvement"]))
        for distribution, outcome in zip(distributions,
                                         engine.run(cells))
    ]


def format_allocation(rows: list[AllocationRow]) -> str:
    """Table for A5."""
    body = [[r.distribution, format_ratio(r.uniform_ratio),
             format_ratio(r.greedy_ratio), f"{r.improvement:.2f}x"]
            for r in rows]
    return (section("A5 - greedy vs uniform volume allocation") + "\n"
            + render_table(["distribution", "uniform alloc", "greedy alloc",
                            "improvement"], body))


# ----------------------------------------------------------------------
# A6: deletion adversary (Sec. VI future work)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DeletionRow:
    """Insertion-vs-deletion comparison at one budget."""

    budget_percentage: float
    insertion_ratio: float
    deletion_ratio: float


def _ablation_keyset_and_budget(params: dict[str, Any]):
    """Rebuild an A-series cell's shared keyset and its budget.

    Every budget cell regenerates the identical keyset from the shared
    seed, so per-percentage comparisons stay exact across workers.
    """
    rng = np.random.default_rng(params["seed"])
    keyset = uniform_keyset(
        params["n_keys"],
        Domain.of_size(int(params["n_keys"] / params["density"])), rng)
    budget = int(params["n_keys"] * params["percentage"] / 100.0)
    return keyset, budget


def plan_deletion_cells(n_keys: int = 1000, density: float = 0.1,
                        percentages: tuple[float, ...] = (5.0, 10.0,
                                                          20.0),
                        seed: int = 37) -> list[Cell]:
    """A6's plan: one cell per budget percentage."""
    return [Cell.make("a6-deletion", n_keys=n_keys, density=density,
                      percentage=pct, seed=seed)
            for pct in percentages]


def run_deletion_cell(cell: Cell) -> dict[str, Any]:
    """One A6 budget: insertion vs deletion on the shared keyset."""
    from ..core.deletion import greedy_delete

    keyset, budget = _ablation_keyset_and_budget(cell.params_dict)
    return {
        "insertion_ratio": greedy_poison(keyset, budget).ratio_loss,
        "deletion_ratio": greedy_delete(keyset, budget).ratio_loss,
    }


def run_deletion_ablation(n_keys: int = 1000, density: float = 0.1,
                          percentages: tuple[float, ...] = (5.0, 10.0, 20.0),
                          seed: int = 37, jobs: int = 1,
                          checkpoint_dir: str | Path | None = None,
                          resume: bool = False,
                          executor: str = "process",
                          progress=None) -> list[DeletionRow]:
    """A6: how does removing keys compare to injecting them?

    Both adversaries get the same budget (p keys inserted vs p keys
    deleted) against the same uniform keyset; every worker regenerates
    that keyset from the shared seed, so the comparison stays exact.
    """
    cells = plan_deletion_cells(n_keys, density, percentages, seed)
    engine = _engine(run_deletion_cell, jobs, checkpoint_dir, resume,
                     executor, progress)
    return [
        DeletionRow(budget_percentage=pct,
                    insertion_ratio=outcome["insertion_ratio"],
                    deletion_ratio=outcome["deletion_ratio"])
        for pct, outcome in zip(percentages, engine.run(cells))
    ]


def format_deletion(rows: list["DeletionRow"]) -> str:
    """Table for A6."""
    body = [[f"{r.budget_percentage:g}%", format_ratio(r.insertion_ratio),
             format_ratio(r.deletion_ratio)] for r in rows]
    return (section("A6 - insertion vs deletion adversary") + "\n"
            + render_table(["budget", "insertion ratio",
                            "deletion ratio"], body))


# ----------------------------------------------------------------------
# A7: polynomial second-stage robustness (Sec. VI mitigation)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PolynomialRow:
    """Loss absorbed by a higher-degree refit of the poisoned CDF."""

    degree: int
    n_parameters: int
    multiply_adds: int
    poisoned_ratio: float


def plan_polynomial_cells(n_keys: int = 1000, density: float = 0.1,
                          poisoning_percentage: float = 10.0,
                          degrees: tuple[int, ...] = (1, 2, 3, 5),
                          seed: int = 41) -> list[Cell]:
    """A7's plan: one cell per polynomial degree."""
    return [Cell.make("a7-polynomial", n_keys=n_keys, density=density,
                      poisoning_percentage=poisoning_percentage,
                      degree=degree, seed=seed)
            for degree in degrees]


def run_polynomial_cell(cell: Cell) -> dict[str, Any]:
    """One A7 degree: refit the shared poisoned keyset.

    Every cell regenerates the identical keyset and attack from the
    shared seed (the legacy loop mounted the attack once), so the
    per-degree comparison stays exact across workers.
    """
    from ..core.polynomial import fit_polynomial_cdf

    p = cell.params_dict
    n_keys = p["n_keys"]
    rng = np.random.default_rng(p["seed"])
    keyset = uniform_keyset(
        n_keys, Domain.of_size(int(n_keys / p["density"])), rng)
    budget = int(n_keys * p["poisoning_percentage"] / 100.0)
    attack = greedy_poison(keyset, budget)
    poisoned = keyset.insert(attack.poison_keys)
    clean_fit = fit_polynomial_cdf(keyset, p["degree"])
    dirty_fit = fit_polynomial_cdf(poisoned, p["degree"])
    ratio = (dirty_fit.mse / clean_fit.mse if clean_fit.mse > 0
             else float("inf"))
    return {
        "n_parameters": dirty_fit.model.n_parameters,
        "multiply_adds": dirty_fit.model.multiply_adds_per_lookup,
        "poisoned_ratio": json_float(ratio),
    }


def run_polynomial_ablation(n_keys: int = 1000, density: float = 0.1,
                            poisoning_percentage: float = 10.0,
                            degrees: tuple[int, ...] = (1, 2, 3, 5),
                            seed: int = 41, jobs: int = 1,
                            checkpoint_dir: str | Path | None = None,
                            resume: bool = False,
                            executor: str = "process",
                            progress=None) -> list[PolynomialRow]:
    """A7: does a more complex final-stage model blunt the attack?

    Mount the linear attack, then refit the poisoned keyset with
    polynomial models of increasing degree and report the remaining
    ratio loss next to the extra storage/compute each degree costs —
    the trade-off Sec. VI says would "negatively affect the storage
    overhead".
    """
    cells = plan_polynomial_cells(n_keys, density,
                                  poisoning_percentage, degrees, seed)
    engine = _engine(run_polynomial_cell, jobs, checkpoint_dir, resume,
                     executor, progress)
    return [
        PolynomialRow(
            degree=degree,
            n_parameters=outcome["n_parameters"],
            multiply_adds=outcome["multiply_adds"],
            poisoned_ratio=parse_json_float(outcome["poisoned_ratio"]))
        for degree, outcome in zip(degrees, engine.run(cells))
    ]


def format_polynomial(rows: list["PolynomialRow"]) -> str:
    """Table for A7."""
    body = [[r.degree, r.n_parameters, r.multiply_adds,
             format_ratio(r.poisoned_ratio)] for r in rows]
    return (section("A7 - polynomial second-stage robustness") + "\n"
            + render_table(["degree", "params", "mul-adds",
                            "poisoned/clean loss"], body))


# ----------------------------------------------------------------------
# A8: black-box extraction (Sec. VI future work)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BlackboxReport:
    """Fidelity of the extraction and of the attack built on it."""

    n_probes: int
    models_recovered: int
    n_models: int
    max_slope_error: float
    whitebox_ratio: float
    blackbox_ratio: float


def plan_blackbox_cells(n_keys: int = 5000, n_models: int = 25,
                        poisoning_percentage: float = 10.0,
                        seed: int = 43) -> list[Cell]:
    """A8's plan: a single (extraction + two attacks) cell."""
    return [Cell.make("a8-blackbox", n_keys=n_keys, n_models=n_models,
                      poisoning_percentage=poisoning_percentage,
                      seed=seed)]


def run_blackbox_cell(cell: Cell) -> dict[str, Any]:
    """The single A8 cell: extract, then attack both ways."""
    from ..core.blackbox import extract_second_stage, observe_rmi
    from ..index.rmi import RecursiveModelIndex

    p = cell.params_dict
    n_keys, n_models = p["n_keys"], p["n_models"]
    rng = np.random.default_rng(p["seed"])
    keyset = uniform_keyset(n_keys, Domain.of_size(20 * n_keys), rng)
    rmi = RecursiveModelIndex.build_equal_size(keyset, n_models)

    observations = observe_rmi(rmi, keyset.keys)
    extraction = extract_second_stage(observations)
    slope_errors = extraction.slope_errors(rmi)

    capability = RMIAttackerCapability(
        poisoning_percentage=p["poisoning_percentage"], alpha=3.0)
    whitebox = poison_rmi(keyset, n_models, capability,
                          max_exchanges=n_models)

    # Black-box attacker re-derives the partition from the recovered
    # boundaries and runs the same algorithm.
    blackbox_models = extraction.boundaries.size
    blackbox = poison_rmi(keyset, blackbox_models, capability,
                          max_exchanges=blackbox_models)

    return {
        "n_probes": keyset.n,
        "models_recovered": len(extraction.models),
        "max_slope_error": json_float(float(slope_errors.max())),
        "whitebox_ratio": json_float(whitebox.rmi_ratio_loss),
        "blackbox_ratio": json_float(blackbox.rmi_ratio_loss),
    }


def run_blackbox_ablation(n_keys: int = 5000, n_models: int = 25,
                          poisoning_percentage: float = 10.0,
                          seed: int = 43, jobs: int = 1,
                          checkpoint_dir: str | Path | None = None,
                          resume: bool = False,
                          executor: str = "process",
                          progress=None) -> BlackboxReport:
    """A8: infer the second stage by probing, then attack with it.

    Probes every stored key (the attacker contributed/knows the data
    under the threat model; only the *model parameters* are hidden),
    recovers each second-stage line, and mounts Algorithm 2 using the
    recovered partition boundaries.  The paper's conjecture is that
    the black-box gap is thin; the report quantifies it.

    One (expensive) unit of work, so it runs as a single cell — like
    A3, parallelism buys nothing but checkpoint/resume still lets an
    interrupted ``all`` run skip it the second time.
    """
    cells = plan_blackbox_cells(n_keys, n_models,
                                poisoning_percentage, seed)
    engine = _engine(run_blackbox_cell, jobs, checkpoint_dir, resume,
                     executor, progress)
    (outcome,) = engine.run(cells)
    return BlackboxReport(
        n_probes=outcome["n_probes"],
        models_recovered=outcome["models_recovered"],
        n_models=n_models,
        max_slope_error=parse_json_float(outcome["max_slope_error"]),
        whitebox_ratio=parse_json_float(outcome["whitebox_ratio"]),
        blackbox_ratio=parse_json_float(outcome["blackbox_ratio"]))


def format_blackbox(report: "BlackboxReport") -> str:
    """Table for A8."""
    rows = [
        ["probes issued", report.n_probes],
        ["models recovered",
         f"{report.models_recovered}/{report.n_models}"],
        ["max relative slope error", f"{report.max_slope_error:.2e}"],
        ["white-box attack ratio", format_ratio(report.whitebox_ratio)],
        ["black-box attack ratio", format_ratio(report.blackbox_ratio)],
    ]
    return (section("A8 - black-box second-stage extraction") + "\n"
            + render_table(["metric", "value"], rows))


# ----------------------------------------------------------------------
# A9: update-channel poisoning (Sec. VI future work)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class UpdateChannelReport:
    """Static pre-training attack vs the same budget via updates."""

    static_ratio: float
    update_ratio: float
    retrains_triggered: int
    clean_lookup_cost: float
    poisoned_lookup_cost: float


def plan_update_cells(n_keys: int = 2000, n_models: int = 20,
                      poisoning_percentage: float = 10.0,
                      seed: int = 47) -> list[Cell]:
    """A9's plan: a single (static attack + live attack) cell."""
    return [Cell.make("a9-updates", n_keys=n_keys, n_models=n_models,
                      poisoning_percentage=poisoning_percentage,
                      seed=seed)]


def run_update_cell(cell: Cell) -> dict[str, Any]:
    """The single A9 cell: static reference vs insert-API attack."""
    from ..core.update_attack import poison_via_updates
    from ..index.dynamic import DynamicLearnedIndex

    p = cell.params_dict
    n_keys, n_models = p["n_keys"], p["n_models"]
    rng = np.random.default_rng(p["seed"])
    keyset = uniform_keyset(n_keys, Domain.of_size(20 * n_keys), rng)

    capability = RMIAttackerCapability(
        poisoning_percentage=p["poisoning_percentage"], alpha=3.0)
    static = poison_rmi(keyset, n_models, capability,
                        max_exchanges=n_models)

    clean_index = DynamicLearnedIndex(keyset, n_models=n_models)
    queries = keyset.keys[::7]
    clean_cost = clean_index.lookup_cost(queries)

    live = DynamicLearnedIndex(keyset, n_models=n_models,
                               retrain_threshold=0.05)
    update = poison_via_updates(live, p["poisoning_percentage"])

    return {
        "static_ratio": json_float(static.rmi_ratio_loss),
        "update_ratio": json_float(update.ratio_loss),
        "retrains_triggered": update.retrains_triggered,
        "clean_lookup_cost": clean_cost,
        "poisoned_lookup_cost": live.lookup_cost(queries),
    }


def run_update_ablation(n_keys: int = 2000, n_models: int = 20,
                        poisoning_percentage: float = 10.0,
                        seed: int = 47, jobs: int = 1,
                        checkpoint_dir: str | Path | None = None,
                        resume: bool = False,
                        executor: str = "process",
                        progress=None) -> UpdateChannelReport:
    """A9: does the update API reopen the pre-training attack surface?

    Build a dynamic index, poison it purely through ``insert`` calls,
    and compare the post-retrain damage with the static Algorithm 2
    attack of equal budget.  Because retraining consumes the merged
    base + buffer, the update channel stages the identical poisoned
    training set — the attack surface never closed.
    """
    cells = plan_update_cells(n_keys, n_models, poisoning_percentage,
                              seed)
    engine = _engine(run_update_cell, jobs, checkpoint_dir, resume,
                     executor, progress)
    (outcome,) = engine.run(cells)
    return UpdateChannelReport(
        static_ratio=parse_json_float(outcome["static_ratio"]),
        update_ratio=parse_json_float(outcome["update_ratio"]),
        retrains_triggered=outcome["retrains_triggered"],
        clean_lookup_cost=outcome["clean_lookup_cost"],
        poisoned_lookup_cost=outcome["poisoned_lookup_cost"])


def format_update(report: "UpdateChannelReport") -> str:
    """Table for A9."""
    rows = [
        ["static attack ratio", format_ratio(report.static_ratio)],
        ["update-channel attack ratio",
         format_ratio(report.update_ratio)],
        ["retrains triggered", report.retrains_triggered],
        ["clean lookup cost", f"{report.clean_lookup_cost:.2f}"],
        ["poisoned lookup cost",
         f"{report.poisoned_lookup_cost:.2f}"],
    ]
    return (section("A9 - poisoning through the update channel") + "\n"
            + render_table(["metric", "value"], rows))


# ----------------------------------------------------------------------
# A10: ridge regularisation (Sec. IV-A open question)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RidgeRow:
    """Clean and poisoned loss of one shrinkage level."""

    lam_fraction: float
    clean_mse: float
    poisoned_mse: float

    @property
    def poisoned_ratio(self) -> float:
        if self.clean_mse == 0.0:
            return float("inf") if self.poisoned_mse > 0 else 1.0
        return self.poisoned_mse / self.clean_mse


def plan_ridge_cells(n_keys: int = 1000, density: float = 0.1,
                     poisoning_percentage: float = 10.0,
                     lam_fractions: tuple[float, ...] = (
                         0.0, 0.01, 0.1, 0.5),
                     seed: int = 53) -> list[Cell]:
    """A10's plan: one cell per shrinkage level."""
    return [Cell.make("a10-ridge", n_keys=n_keys, density=density,
                      poisoning_percentage=poisoning_percentage,
                      lam_fraction=fraction, seed=seed)
            for fraction in lam_fractions]


def run_ridge_cell(cell: Cell) -> dict[str, Any]:
    """One A10 shrinkage level on the shared poisoned keyset."""
    from ..core.cdf_regression import fit_ridge_cdf

    p = cell.params_dict
    n_keys = p["n_keys"]
    rng = np.random.default_rng(p["seed"])
    keyset = uniform_keyset(
        n_keys, Domain.of_size(int(n_keys / p["density"])), rng)
    budget = int(n_keys * p["poisoning_percentage"] / 100.0)
    attack = greedy_poison(keyset, budget)
    poisoned = keyset.insert(attack.poison_keys)

    lam = p["lam_fraction"] * float(keyset.keys.astype(np.float64).var())
    return {
        "clean_mse": fit_ridge_cdf(keyset, lam).mse,
        "poisoned_mse": fit_ridge_cdf(poisoned, lam).mse,
    }


def run_ridge_ablation(n_keys: int = 1000, density: float = 0.1,
                       poisoning_percentage: float = 10.0,
                       lam_fractions: tuple[float, ...] = (
                           0.0, 0.01, 0.1, 0.5),
                       seed: int = 53, jobs: int = 1,
                       checkpoint_dir: str | Path | None = None,
                       resume: bool = False,
                       executor: str = "process",
                       progress=None) -> list[RidgeRow]:
    """A10: does L2 shrinkage blunt the poisoning?

    The paper sets regularisation aside because LIS queries are
    training data.  We measure it anyway: for each penalty (as a
    fraction of the clean key variance), fit ridge on the clean and on
    the poisoned keysets and compare training errors.  Shrinking the
    slope mostly *adds* clean error without removing poisoned error —
    the attack manipulates ranks, not leverage points.
    """
    cells = plan_ridge_cells(n_keys, density, poisoning_percentage,
                             lam_fractions, seed)
    engine = _engine(run_ridge_cell, jobs, checkpoint_dir, resume,
                     executor, progress)
    return [
        RidgeRow(lam_fraction=fraction,
                 clean_mse=outcome["clean_mse"],
                 poisoned_mse=outcome["poisoned_mse"])
        for fraction, outcome in zip(lam_fractions,
                                     engine.run(cells))
    ]


def format_ridge(rows: list["RidgeRow"]) -> str:
    """Table for A10."""
    body = [[f"{r.lam_fraction:g}", f"{r.clean_mse:.2f}",
             f"{r.poisoned_mse:.2f}", format_ratio(r.poisoned_ratio)]
            for r in rows]
    return (section("A10 - ridge regularisation against poisoning")
            + "\n" + render_table(
                ["lambda/Var(K)", "clean MSE", "poisoned MSE",
                 "ratio"], body))


# ----------------------------------------------------------------------
# A11: the three adversaries head to head (Sec. VI future work)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AdversaryRow:
    """Ratio losses of insert / delete / modify at one budget."""

    budget_percentage: float
    insertion_ratio: float
    deletion_ratio: float
    modification_ratio: float


def plan_adversary_cells(n_keys: int = 1000, density: float = 0.1,
                         percentages: tuple[float, ...] = (5.0, 10.0,
                                                           20.0),
                         seed: int = 59) -> list[Cell]:
    """A11's plan: one cell per budget percentage."""
    return [Cell.make("a11-adversaries", n_keys=n_keys,
                      density=density, percentage=pct, seed=seed)
            for pct in percentages]


def run_adversary_cell(cell: Cell) -> dict[str, Any]:
    """One A11 budget: all three adversaries on the shared keyset."""
    from ..core.deletion import greedy_delete
    from ..core.modification import greedy_modify

    keyset, budget = _ablation_keyset_and_budget(cell.params_dict)
    return {
        "insertion_ratio": greedy_poison(keyset, budget).ratio_loss,
        "deletion_ratio": greedy_delete(keyset, budget).ratio_loss,
        "modification_ratio": greedy_modify(keyset, budget).ratio_loss,
    }


def run_adversary_comparison(n_keys: int = 1000, density: float = 0.1,
                             percentages: tuple[float, ...] = (
                                 5.0, 10.0, 20.0),
                             seed: int = 59, jobs: int = 1,
                             checkpoint_dir: str | Path | None = None,
                             resume: bool = False,
                             executor: str = "process",
                             progress=None) -> list[AdversaryRow]:
    """A11: insert vs delete vs modify at equal budget.

    A modification spends one budget unit on a delete + insert pair,
    so it matches or beats pure insertion while leaving the key count
    untouched — the stealthiest and often strongest adversary.
    """
    cells = plan_adversary_cells(n_keys, density, percentages, seed)
    engine = _engine(run_adversary_cell, jobs, checkpoint_dir, resume,
                     executor, progress)
    return [
        AdversaryRow(budget_percentage=pct,
                     insertion_ratio=outcome["insertion_ratio"],
                     deletion_ratio=outcome["deletion_ratio"],
                     modification_ratio=outcome["modification_ratio"])
        for pct, outcome in zip(percentages, engine.run(cells))
    ]


def format_adversaries(rows: list["AdversaryRow"]) -> str:
    """Table for A11."""
    body = [[f"{r.budget_percentage:g}%",
             format_ratio(r.insertion_ratio),
             format_ratio(r.deletion_ratio),
             format_ratio(r.modification_ratio)] for r in rows]
    return (section("A11 - insert vs delete vs modify adversaries")
            + "\n" + render_table(
                ["budget", "insert", "delete", "modify"], body))
