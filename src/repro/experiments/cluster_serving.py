"""The ``cluster`` target: sharded multi-tenant serving grids.

Each cell replays one (tenant layout × shard count × backend ×
adversary × defense) scenario: a multi-tenant trace over a
CDF-partitioned :class:`~repro.cluster.shardmap.ShardMap`, a
:class:`~repro.cluster.router.ClusterRouter` of per-shard serving
backends, a poison *placement* on the cluster feedback port, and —
in the ``managed`` defense arm — the split/merge
:class:`~repro.cluster.rebalance.Rebalancer` plus the SLO-weighted
per-shard TRIM auto-tuners.

The grid asks the cluster-level question the single-index
reproduction cannot: does *aiming* a fixed poison budget at one
tenant's key range beat spreading it across the cluster, and how much
of the victim's damage does cluster management (rebalancing +
per-shard tuning) claw back?  Same-world design as the ``closedloop``
grid: every cell of one (layout, seed) pair replays the identical
trace over the identical base keys with the identical budget and drip
pacing — placement is the only attacker difference, so the committed
concentrated-beats-uniform regression measures placement alone.

Cells are engine-backed (checkpoint, resume, process/thread fan-out,
jobs parity) and persist their full series — cluster channels as 1D
``tick_*`` arrays, per-tenant and per-shard channels as 2D arrays
(``tenant_p95``, ``tenant_amplification``, ``shard_loads``,
``shard_p95``, ``shard_n_keys``, ``shard_split_points``) — as
``.npz`` artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..cluster import (
    ClusterRouter,
    ClusterSimulator,
    ConcentratedClusterAdversary,
    FaultSpec,
    Rebalancer,
    ShardMap,
    SloWeightedDefense,
    TransportClusterRouter,
    TransportConfig,
    make_cluster_adversary,
)
from ..io import json_float, parse_json_float
from ..runtime import Cell, CellOutput, CheckpointStore, SweepEngine
from ..workload import TraceSpec, generate_trace
from .report import (
    DuelRow,
    format_ratio,
    render_duel,
    render_table,
    section,
)

__all__ = ["ClusterConfig", "ClusterRow", "ClusterResult",
           "plan_cells", "run_cluster_cell", "run", "quick_config",
           "full_config", "CLUSTER_DEFENSES", "VICTIM_TENANT",
           "ReplicaDuelArm", "ReplicaDuelResult",
           "run_poisoned_replica_scenario"]

CLUSTER_DEFENSES = ("static", "managed")

#: The tenant under attack — tenant 0 is the heavy (premium) tenant
#: of the ``skewed`` layout, with the tightest SLO tier.
VICTIM_TENANT = 0


@dataclass(frozen=True)
class ClusterConfig:
    """The layout×shards×backend×adversary×defense grid of one sweep."""

    tenant_layouts: tuple[str, ...] = ("skewed",)
    shard_counts: tuple[int, ...] = (4,)
    backends: tuple[str, ...] = ("rmi", "dynamic")
    adversaries: tuple[str, ...] = ("uniform", "concentrated")
    defenses: tuple[str, ...] = CLUSTER_DEFENSES
    n_tenants: int = 3
    tenant_skew: float = 0.5
    n_base_keys: int = 600
    n_ops: int = 2_400
    tick_ops: int = 200
    poison_percentage: float = 12.0
    insert_fraction: float = 0.04
    rebuild_threshold: float = 0.12
    model_size: int = 100
    slo_p95: float = 5.0
    slo_tier_factor: float = 1.5
    max_shards: int = 12
    transport: str = "inproc"
    replicas: int = 1
    seed: int = 23


def quick_config() -> ClusterConfig:
    """8 cells, seconds of work — the CI smoke grid.

    The defaults are the calibrated demonstration scenario: on both
    learned backends the concentrated (cluster-aware) placement beats
    the uniform spread on the victim tenant, and cluster management
    recovers at least half of that gap (pinned by
    ``tests/experiments/test_cluster.py``).
    """
    return ClusterConfig()


def full_config() -> ClusterConfig:
    """108 cells over both ranged layouts, 3 shard counts, 3 backends."""
    return ClusterConfig(
        tenant_layouts=("ranges", "skewed"),
        shard_counts=(2, 4, 8),
        backends=("binary", "rmi", "dynamic"),
        adversaries=("uniform", "concentrated", "hotshard"),
        n_base_keys=2_000,
        n_ops=8_000,
        tick_ops=400)


@dataclass(frozen=True)
class ClusterRow:
    """One grid point's cluster summary."""

    tenant_layout: str
    n_shards: int
    backend: str
    adversary: str
    defense: str
    p95: float
    victim_p95: float
    victim_amplification: float
    victim_slo_violations: float
    retrains: int
    injected_poison: int
    migrated_keys: int
    final_n_shards: int
    max_imbalance: float


@dataclass(frozen=True)
class ClusterResult:
    """All rows of the grid, in plan order."""

    config: ClusterConfig
    rows: tuple[ClusterRow, ...]

    def row(self, **criteria: Any) -> ClusterRow:
        """The unique row matching all ``field=value`` criteria."""
        hits = [r for r in self.rows
                if all(getattr(r, k) == v for k, v in criteria.items())]
        if len(hits) != 1:
            raise KeyError(
                f"{criteria} matches {len(hits)} rows, expected 1")
        return hits[0]

    def format(self) -> str:
        """One block per (layout, shard count), plus the duel."""
        blocks = []
        for layout in self.config.tenant_layouts:
            for n_shards in self.config.shard_counts:
                rows = [r for r in self.rows
                        if (r.tenant_layout, r.n_shards)
                        == (layout, n_shards)]
                if not rows:
                    continue
                title = (f"cluster: {layout} tenants, {n_shards} "
                         f"shards ({self.config.n_tenants} tenants, "
                         f"{self.config.poison_percentage:g}% budget "
                         f"on tenant {VICTIM_TENANT})")
                body = [[r.backend, r.adversary, r.defense,
                         f"{r.p95:.1f}", f"{r.victim_p95:.1f}",
                         format_ratio(r.victim_amplification),
                         f"{r.victim_slo_violations:.0%}",
                         r.retrains, r.migrated_keys,
                         r.final_n_shards,
                         f"{r.max_imbalance:.2f}"]
                        for r in rows]
                table = render_table(
                    ["backend", "adversary", "defense", "p95",
                     "victim p95", "victim amp", "slo viol",
                     "retrains", "migrated", "shards", "imbal"],
                    body)
                blocks.append(f"{section(title)}\n{table}")
        duel = self._format_duel()
        if duel:
            blocks.append(duel)
        return "\n\n".join(blocks)

    def duel_rows(self) -> list[DuelRow]:
        """Concentrated-vs-uniform gaps and management recovery.

        The gap is on the victim tenant's final amplification at the
        ``static`` defense; recovery is the managed arm's claw-back of
        the concentrated attack's damage.
        """
        if ("uniform" not in self.config.adversaries
                or "static" not in self.config.defenses):
            return []
        rows = []
        for layout in self.config.tenant_layouts:
            for n_shards in self.config.shard_counts:
                for backend in self.config.backends:
                    for adversary in self.config.adversaries:
                        if adversary == "uniform":
                            continue
                        try:
                            uniform = self.row(
                                tenant_layout=layout,
                                n_shards=n_shards, backend=backend,
                                adversary="uniform",
                                defense="static")
                            static = self.row(
                                tenant_layout=layout,
                                n_shards=n_shards, backend=backend,
                                adversary=adversary,
                                defense="static")
                        except KeyError:  # pragma: no cover
                            continue
                        recovered = None
                        if "managed" in self.config.defenses:
                            managed = self.row(
                                tenant_layout=layout,
                                n_shards=n_shards, backend=backend,
                                adversary=adversary,
                                defense="managed")
                            recovered = (
                                static.victim_amplification
                                - managed.victim_amplification)
                        rows.append(DuelRow(
                            group=(layout, str(n_shards), backend,
                                   adversary),
                            gap=(static.victim_amplification
                                 - uniform.victim_amplification),
                            recovered=recovered))
        return rows

    def _format_duel(self) -> str:
        return render_duel(
            "duel: placement gap and cluster-management recovery "
            "(victim tenant's final amplification)",
            ["layout", "shards", "backend", "adversary"],
            self.duel_rows(),
            gap_header="gap vs uniform",
            recovered_header="managed recovered")

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (the CLI's ``--out`` payload)."""
        return {
            "seed": self.config.seed,
            "n_tenants": self.config.n_tenants,
            "n_base_keys": self.config.n_base_keys,
            "n_ops": self.config.n_ops,
            "poison_percentage": self.config.poison_percentage,
            "victim_tenant": VICTIM_TENANT,
            "transport": self.config.transport,
            "replicas": self.config.replicas,
            "cells": [
                {
                    "tenant_layout": r.tenant_layout,
                    "n_shards": r.n_shards,
                    "backend": r.backend,
                    "adversary": r.adversary,
                    "defense": r.defense,
                    "p95": json_float(r.p95),
                    "victim_p95": json_float(r.victim_p95),
                    "victim_amplification": json_float(
                        r.victim_amplification),
                    "victim_slo_violations": json_float(
                        r.victim_slo_violations),
                    "retrains": r.retrains,
                    "injected_poison": r.injected_poison,
                    "migrated_keys": r.migrated_keys,
                    "final_n_shards": r.final_n_shards,
                    "max_imbalance": json_float(r.max_imbalance),
                }
                for r in self.rows
            ],
        }


def spec_for(params: dict[str, Any]) -> TraceSpec:
    """The canonical multi-tenant spec of a cluster cell.

    No poison schedule: like the ``closedloop`` grid, every crafted
    key flows through the feedback port, so all placements of one
    (layout, seed) pair share one bit-identical organic stream.
    """
    return TraceSpec(
        n_base_keys=params["n_base_keys"],
        n_ops=params["n_ops"],
        query_mix="uniform",
        insert_fraction=params["insert_fraction"],
        poison_schedule="none",
        poison_percentage=0.0,
        n_tenants=params["n_tenants"],
        tenant_layout=params["tenant_layout"],
        tenant_skew=params["tenant_skew"],
        slo_p95=params["slo_p95"],
        slo_tier_factor=params["slo_tier_factor"],
        seed=params["seed"])


def plan_cells(config: ClusterConfig) -> list[Cell]:
    """One cell per (layout, shard count, backend, adversary, defense)."""
    return [
        Cell.make("cluster-serving",
                  tenant_layout=layout,
                  n_shards=n_shards,
                  backend=backend,
                  adversary=adversary,
                  defense=defense,
                  n_tenants=config.n_tenants,
                  tenant_skew=config.tenant_skew,
                  n_base_keys=config.n_base_keys,
                  n_ops=config.n_ops,
                  tick_ops=config.tick_ops,
                  poison_percentage=config.poison_percentage,
                  insert_fraction=config.insert_fraction,
                  rebuild_threshold=config.rebuild_threshold,
                  model_size=config.model_size,
                  slo_p95=config.slo_p95,
                  slo_tier_factor=config.slo_tier_factor,
                  max_shards=config.max_shards,
                  transport=config.transport,
                  replicas=config.replicas,
                  seed=config.seed)
        for layout in config.tenant_layouts
        for n_shards in config.shard_counts
        for backend in config.backends
        for adversary in config.adversaries
        for defense in config.defenses
    ]


def run_cluster_cell(cell: Cell) -> CellOutput:
    """Replay one sharded scenario; keep all three series families.

    Deterministic in the cell parameters alone: the trace, the shard
    map, the crafted pools, and every rebalance/tuning decision all
    derive from them, so resumed and fanned-out runs replay identical
    clusters.
    """
    p = cell.params_dict
    spec = spec_for(p)
    trace = generate_trace(spec)
    shard_map = ShardMap.balanced(trace.base_keys, p["n_shards"],
                                  spec.domain())

    build_args: dict[str, Any] = {}
    if p["backend"] in ("rmi", "dynamic"):
        build_args["model_size"] = p["model_size"]
    if p.get("transport", "inproc") == "process":
        # The cross-process cluster: every shard is a group of
        # ``replicas`` worker processes behind the wire protocol.
        # Injection stays off, so the cell's numbers are pinned
        # bit-identical to the in-process arm (the parity suite's
        # contract) — the axis measures the transport, not a scenario.
        router: ClusterRouter = TransportClusterRouter(
            shard_map, trace.base_keys, p["backend"],
            rebuild_threshold=p["rebuild_threshold"],
            replicas=p.get("replicas", 1), **build_args)
    else:
        router = ClusterRouter(
            shard_map, trace.base_keys, p["backend"],
            rebuild_threshold=p["rebuild_threshold"], **build_args)

    budget = max(1, int(p["n_base_keys"] * p["poison_percentage"]
                        / 100.0))
    adversary = make_cluster_adversary(
        p["adversary"], trace.base_keys, spec.domain(), budget,
        p["seed"],
        victim_range=spec.tenant_ranges()[VICTIM_TENANT],
        model_size=p["model_size"])

    rebalancer = defense = None
    if p["defense"] == "managed":
        rebalancer = Rebalancer(max_shards=p["max_shards"])
        # Calibrated screen: a shallow deadband + strong gain so the
        # TRIM arm reacts to sub-probe model drift, while recovery
        # runs mostly through SLO-pressured retrain deferral —
        # faithful to Section VI (TRIM cannot cheaply separate CDF
        # poison) and to the PR 4 closed-loop finding.
        defense = SloWeightedDefense(
            spec.tenant_slos(),
            base_threshold=p["rebuild_threshold"],
            keep_deadband=0.1, keep_gain=0.75)

    try:
        report = ClusterSimulator(router, trace,
                                  tick_ops=p["tick_ops"],
                                  adversary=adversary,
                                  rebalancer=rebalancer,
                                  defense=defense).run()
    finally:
        router.close()

    result = report.to_dict()
    result.update({
        "tenant_layout": p["tenant_layout"],
        "n_shards": p["n_shards"],
        "adversary": p["adversary"],
        "defense": p["defense"],
        "budget": budget,
        "victim_p95": json_float(
            report.final_tenant_p95[VICTIM_TENANT]),
        "victim_amplification": json_float(
            report.final_tenant_amplification[VICTIM_TENANT]),
        "victim_slo_violations": json_float(
            report.tenant_slo_violation_fraction[VICTIM_TENANT]),
    })
    arrays = {f"tick_{name}": series
              for name, series in report.series.items()}
    arrays.update(report.tenant_series)
    arrays.update(report.shard_series)
    return CellOutput(result=result, arrays=arrays)


# ----------------------------------------------------------------------
# The poisoned-replica duel: the replication acceptance scenario
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ReplicaDuelArm:
    """One arm of the poisoned-replica duel."""

    read_mode: str
    detector: bool
    flagged: tuple[tuple[int, int], ...]
    victim_p95: float
    victim_amplification: float
    victim_slo_violations: float
    degraded_ticks: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "read_mode": self.read_mode,
            "detector": self.detector,
            "flagged": [list(slot) for slot in self.flagged],
            "victim_p95": json_float(self.victim_p95),
            "victim_amplification": json_float(
                self.victim_amplification),
            "victim_slo_violations": json_float(
                self.victim_slo_violations),
            "degraded_ticks": self.degraded_ticks,
        }


@dataclass(frozen=True)
class ReplicaDuelResult:
    """Both arms of the duel, plus the compromise parameters."""

    backend: str
    replicas: int
    victim_shard: int
    poison_budget: int
    slo_p95: float
    quorum: ReplicaDuelArm
    primary: ReplicaDuelArm

    def format(self) -> str:
        title = (f"replication duel: compromised replica 0 of shard "
                 f"{self.victim_shard} ({self.backend} backend, "
                 f"{self.replicas} replicas, {self.poison_budget} "
                 f"silent poison inserts, victim SLO p95 <= "
                 f"{self.slo_p95:g})")
        body = []
        for label, arm in (("quorum + detector", self.quorum),
                           ("primary, no detector", self.primary)):
            flagged = (", ".join(f"s{s}r{r}" for s, r in arm.flagged)
                       or "-")
            body.append([label, flagged, f"{arm.victim_p95:.1f}",
                         format_ratio(arm.victim_amplification),
                         f"{arm.victim_slo_violations:.0%}",
                         arm.degraded_ticks])
        table = render_table(
            ["arm", "flagged", "victim p95", "victim amp",
             "slo viol", "degraded ticks"], body)
        return f"{section(title)}\n{table}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "replicas": self.replicas,
            "victim_shard": self.victim_shard,
            "poison_budget": self.poison_budget,
            "slo_p95": json_float(self.slo_p95),
            "quorum": self.quorum.to_dict(),
            "primary": self.primary.to_dict(),
        }


def _poison_doses(pool: np.ndarray, shard: int,
                  ticks: tuple[int, ...]) -> tuple[FaultSpec, ...]:
    """Split a crafted pool into one single-tick dose per tick."""
    parts = np.array_split(np.asarray(pool, dtype=np.int64),
                           len(ticks))
    return tuple(
        FaultSpec(kind="poison", shard=shard, replica=0, tick=tick,
                  until=tick, keys=tuple(int(k) for k in part))
        for tick, part in zip(ticks, parts) if part.size)


def run_poisoned_replica_scenario(backend: str = "rmi",
                                  replicas: int = 3,
                                  seed: int = 23) -> ReplicaDuelResult:
    """The committed silent-compromise demonstration.

    One replica of the victim tenant's shard is compromised: every
    early tick it silently absorbs a dose of Algorithm-2 poison
    (crafted against the victim's sub-CDF) that its peers never see.
    Reads still come back valid-looking, so byte-level checks can't
    catch it — the duel measures the two defenses replication buys:

    * **quorum + detector** — quorum reads outvote the poisoned
      replica's inflated probe costs, and the divergence detector
      flags and quarantines it once its error-bound series drifts
      from its peers;
    * **primary, no detector** — the naive arm trusts replica 0
      alone, so the victim tenant eats the full poisoned latency.

    Deterministic in ``(backend, replicas, seed)``; the acceptance
    test pins the detector flagging exactly the compromised slot and
    the quorum arm holding the victim inside its SLO band.
    """
    if backend not in ("rmi", "dynamic"):
        raise ValueError(
            "the compromise targets a learned backend: "
            f"{backend!r}")
    spec = TraceSpec(
        n_base_keys=400, n_ops=1_600, query_mix="uniform",
        insert_fraction=0.04, poison_schedule="none",
        poison_percentage=0.0, n_tenants=3, tenant_layout="skewed",
        tenant_skew=0.5, slo_p95=5.0, slo_tier_factor=1.5, seed=seed)
    trace = generate_trace(spec)
    shard_map = ShardMap.balanced(trace.base_keys, 2, spec.domain())
    lo, hi = spec.tenant_ranges()[VICTIM_TENANT]
    victim_shard = int(shard_map.route(
        np.asarray([(lo + hi) // 2], dtype=np.int64))[0])
    crafted = ConcentratedClusterAdversary(
        trace.base_keys, spec.domain(), 80, seed, (lo, hi),
        model_size=100)
    shard_lo, shard_hi = shard_map.shard_range(victim_shard)
    pool = crafted.pool[(crafted.pool >= shard_lo)
                        & (crafted.pool <= shard_hi)]
    faults = _poison_doses(pool, victim_shard, (1, 2, 3, 4))

    def run_arm(read_mode: str, detector: bool) -> ReplicaDuelArm:
        router = TransportClusterRouter(
            shard_map, trace.base_keys, backend,
            transport=TransportConfig(faults=faults),
            replicas=replicas, read_mode=read_mode,
            detect_divergence=detector,
            rebuild_threshold=0.12, model_size=100)
        try:
            report = ClusterSimulator(router, trace,
                                      tick_ops=200).run()
            flagged = tuple(router.flagged_replicas())
        finally:
            router.close()
        return ReplicaDuelArm(
            read_mode=read_mode, detector=detector, flagged=flagged,
            victim_p95=report.final_tenant_p95[VICTIM_TENANT],
            victim_amplification=report.final_tenant_amplification[
                VICTIM_TENANT],
            victim_slo_violations=report.tenant_slo_violation_fraction[
                VICTIM_TENANT],
            degraded_ticks=report.degraded_ticks)

    return ReplicaDuelResult(
        backend=backend, replicas=replicas,
        victim_shard=victim_shard, poison_budget=int(pool.size),
        slo_p95=5.0,
        quorum=run_arm("quorum", True),
        primary=run_arm("primary", False))


def run(config: ClusterConfig | None = None, jobs: int = 1,
        checkpoint_dir: str | Path | None = None, resume: bool = False,
        executor: str = "process", progress=None) -> ClusterResult:
    """Run the whole grid; identical results for any jobs/executor."""
    config = config or quick_config()
    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.write_manifest({
            "experiment": "cluster-serving",
            "config": {
                "tenant_layouts": list(config.tenant_layouts),
                "shard_counts": list(config.shard_counts),
                "backends": list(config.backends),
                "adversaries": list(config.adversaries),
                "defenses": list(config.defenses),
                "n_tenants": config.n_tenants,
                "n_base_keys": config.n_base_keys,
                "n_ops": config.n_ops,
                "poison_percentage": config.poison_percentage,
                "transport": config.transport,
                "replicas": config.replicas,
                "seed": config.seed,
            },
        })
    engine = SweepEngine(run_cluster_cell, jobs=jobs, checkpoint=store,
                         resume=resume, executor=executor,
                         progress=progress)
    plan = plan_cells(config)
    rows = []
    for cell, outcome in zip(plan, engine.run(plan)):
        p = cell.params_dict
        rows.append(ClusterRow(
            tenant_layout=p["tenant_layout"],
            n_shards=p["n_shards"],
            backend=p["backend"],
            adversary=p["adversary"],
            defense=p["defense"],
            p95=parse_json_float(outcome["p95"]),
            victim_p95=parse_json_float(outcome["victim_p95"]),
            victim_amplification=parse_json_float(
                outcome["victim_amplification"]),
            victim_slo_violations=parse_json_float(
                outcome["victim_slo_violations"]),
            retrains=outcome["retrains"],
            injected_poison=outcome["injected_poison"],
            migrated_keys=outcome["migrated_keys"],
            final_n_shards=outcome["final_n_shards"],
            max_imbalance=parse_json_float(
                outcome["max_imbalance"])))
    return ClusterResult(config=config, rows=tuple(rows))
