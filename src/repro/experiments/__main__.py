"""Command-line entry point: ``python -m repro.experiments <target>``.

Targets mirror the paper's figures and the ablations, plus the
streaming serving grid:

    fig2 fig3 fig4 fig5 fig6 fig7 fig8
    workload closedloop cluster ablate
    a1-bruteforce a2-trim a3-cost a4-alpha a5-allocation
    all

``--profile quick`` (default, ``--quick`` is an alias) runs the
scaled-down configurations; ``--profile full`` runs the larger grids
recorded in EXPERIMENTS.md.

``workload`` replays streaming scenarios (query mixes × poison
schedules × index backends) through the serving simulator; with
``--out`` it also writes ``BENCH_workload.json``
(``repro.bench.workload/v1``) next to its ``result.json`` — the
wall-clock perf-trajectory record, deliberately separate from the
deterministic result payload.

``closedloop`` runs the control-loop grids (arrival models ×
backends × injection policies × fixed/tuned defense) — the
adaptive-vs-oblivious duel with per-cell ``.npz`` series including
the ``injected``/``keep_fraction``/``rebuild_threshold`` channels.

``cluster`` runs the sharded multi-tenant grids (tenant layouts ×
shard counts × backends × poison placements × static/managed
defense) — the concentrated-vs-uniform placement duel with per-cell
``.npz`` series including the per-tenant (``tenant_*``) and
per-shard (``shard_*``) 2D channels.

``ablate`` runs the leave-one-out defense-ablation grids: per
scenario (the closed-loop drip duel and the sharded victim cluster)
an all-on baseline, one cell per removed defense component, and an
all-off floor, ranked into a per-component importance report
(``--list-components`` prints the registry; ``--components``
restricts the axes).

Runtime flags (engine-backed targets: fig5, fig6, fig7, fig8,
workload, closedloop, cluster, ablate, and every ablation a1-a11):

``--jobs N``
    Fan the sweep's cells out over N workers.  Results are
    bit-identical to ``--jobs 1``.  (Sole exception:
    ``a1-bruteforce`` is a timing benchmark, so its wall-clock
    columns — and only those — differ between any two runs, and at
    ``--jobs`` > 1 they additionally measure worker contention; its
    equivalence verdicts are deterministic.)
``--executor {process,thread}``
    Pool backend for ``--jobs`` > 1.  ``process`` (default) isolates
    cells in worker processes; ``thread`` skips pickling and suits the
    numpy-heavy cell runners, whose kernels release the GIL.  Both
    backends produce identical results.
``--out DIR``
    Checkpoint completed cells under ``DIR/<target>/`` and write the
    aggregated summary to ``DIR/<target>/result.json``.  Cells that
    emit array artifacts (fig7 poison sets, a2 poison sets) store them
    as sibling ``.npz`` files, indexed by the result's artifact
    manifest.
``--resume``
    With ``--out``, reuse completed cells from a previous (possibly
    interrupted) run instead of recomputing them.
``--instrument``
    Opt-in observability: install a
    :class:`repro.observe.MetricsRegistry` for the duration of each
    target and attach its profile (deterministic counters + trace
    event count, wall-clock stage timings) to ``result.json`` under
    the sibling ``instrument`` key.  The ``result`` payload is
    byte-identical with or without the flag.

Targets that are not sweeps ignore ``--jobs``/``--executor``/
``--resume`` and simply skip the ``result.json`` payload.

The ``report`` pseudo-target runs nothing: with ``--out DIR`` it
renders deterministic SVG figure galleries from every
``DIR/<target>/result.json`` already on disk (plus the bench
trajectory sparkline when ``benchmarks/trajectory/`` exists) — see
:mod:`repro.observe.gallery`.

Result schema (``repro.experiments.result/v2``)
-----------------------------------------------
``result.json`` carries::

    {
      "schema":    "repro.experiments.result/v2",
      "target":    "<target name>",
      "profile":   "quick" | "full",
      "jobs":      <int>,
      "executor":  "process" | "thread",
      "result":    { ... target-specific summary ... },
      "artifacts": [{"file": "cells/<name>.npz",
                     "arrays": ["<array name>", ...]}, ...]
    }

v1 -> v2 compatibility: v2 adds the ``executor`` and ``artifacts``
keys and changes nothing else — the ``result`` payload of every
pre-existing target is byte-compatible with v1, so readers that only
consume ``result`` keep working unchanged.  Readers that dispatch on
``schema`` should accept both ids and treat a missing ``artifacts``
list (v1) as empty.  Each artifact entry names a ``.npz`` relative to
the target's output directory, loadable with
:func:`repro.io.load_arrays`.  The manifest covers exactly the cells
of the run that wrote the result — stale artifacts of other grids
sharing the (content-addressed) checkpoint directory are never
listed.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable

from .. import ablate, io, observe
from ..contracts import RESULT_SCHEMA, validate_result
from ..observe import gallery
from ..runtime import EXECUTORS, CheckpointStore
from . import (
    ablations,
    closedloop_serving,
    cluster_serving,
    fig2_compound_effect,
    fig3_loss_landscape,
    fig4_greedy_showcase,
    fig6_rmi_synthetic,
    fig7_rmi_realworld,
    workload_serving,
)
from .regression_sweep import fig5_config, fig8_config, run_sweep
from .regression_sweep import plan_cells as plan_regression

BENCH_SCHEMA = "repro.bench.workload/v1"


@dataclass(frozen=True)
class RunOptions:
    """Parsed runtime flags handed to every target."""

    profile: str = "quick"
    jobs: int = 1
    out: Path | None = None
    resume: bool = False
    executor: str = "process"
    progress: bool = False
    transport: str = "inproc"
    replicas: int = 1
    components: "tuple[str, ...] | None" = None

    def checkpoint_dir(self, target: str) -> Path | None:
        """Per-target checkpoint directory under ``--out`` (if any)."""
        return self.out / target if self.out is not None else None

    def engine_kwargs(self, target: str) -> dict[str, Any]:
        """The runtime keywords every engine-backed target forwards."""
        return {
            "jobs": self.jobs,
            "checkpoint_dir": self.checkpoint_dir(target),
            "resume": self.resume,
            "executor": self.executor,
            "progress": (_stderr_progress(target) if self.progress
                         else None),
        }


def _stderr_progress(target: str) -> Callable[[Any], None]:
    """A ``SweepProgress`` printer for long sweeps (stderr, one line
    per completed cell, so piped stdout tables stay clean)."""
    def report(event: Any) -> None:
        eta = (f", eta {event.eta_seconds:.0f}s"
               if event.eta_seconds is not None else "")
        print(f"[{target}] {event.done}/{event.total} cells "
              f"({event.reused} reused) "
              f"{event.seconds_elapsed:.1f}s elapsed{eta}",
              file=sys.stderr, flush=True)
    return report


# Each target returns (formatted text, JSON payload or None, plan).
# The plan — this run's cells — scopes the artifact manifest: the
# checkpoint directory is content-addressed and shared across runs, so
# only the current plan's artifacts belong in this run's result.json.
TargetOutput = tuple[str, "dict[str, Any] | None", "list[Any]"]
Target = Callable[[RunOptions], TargetOutput]


def _run_fig5(opts: RunOptions) -> TargetOutput:
    config = fig5_config(opts.profile)
    result = run_sweep(config, **opts.engine_kwargs("fig5"))
    return result.format(), result.to_dict(), plan_regression(config)


def _run_fig8(opts: RunOptions) -> TargetOutput:
    config = fig8_config(opts.profile)
    result = run_sweep(config, **opts.engine_kwargs("fig8"))
    return result.format(), result.to_dict(), plan_regression(config)


def _run_fig6(opts: RunOptions) -> TargetOutput:
    config = (fig6_rmi_synthetic.full_config() if opts.profile == "full"
              else fig6_rmi_synthetic.quick_config())
    result = fig6_rmi_synthetic.run(config, **opts.engine_kwargs("fig6"))
    return (result.format(), result.to_dict(),
            fig6_rmi_synthetic.plan_cells(config))


def _run_fig7(opts: RunOptions) -> TargetOutput:
    config = (fig7_rmi_realworld.full_config() if opts.profile == "full"
              else fig7_rmi_realworld.quick_config())
    result = fig7_rmi_realworld.run(config, **opts.engine_kwargs("fig7"))
    return (result.format(), result.to_dict(),
            fig7_rmi_realworld.plan_cells(config))


def _run_workload(opts: RunOptions) -> TargetOutput:
    """The streaming serving grid, plus the perf-trajectory record.

    When ``--out`` is given, a ``BENCH_workload.json`` lands next to
    ``result.json``: the only place wall-clock enters the pipeline.
    The result payload itself stays deterministic (probe-count
    metrics), which is what the jobs-parity CI check compares.
    """
    config = (workload_serving.full_config() if opts.profile == "full"
              else workload_serving.quick_config())
    started = time.perf_counter()
    result = workload_serving.run(config,
                                  **opts.engine_kwargs("workload"))
    wall = time.perf_counter() - started
    if opts.out is not None:
        out_dir = opts.checkpoint_dir("workload")
        out_dir.mkdir(parents=True, exist_ok=True)
        by_backend: dict[str, list[Any]] = {}
        for row in result.rows:
            by_backend.setdefault(row.backend, []).append(row)
        io.save_json({
            "schema": BENCH_SCHEMA,
            "profile": opts.profile,
            "jobs": opts.jobs,
            "executor": opts.executor,
            "serving": {
                "cells": len(result.rows),
                "ops_per_cell": config.n_ops,
                "wall_seconds": wall,
                "cells_per_second": (len(result.rows) / wall
                                     if wall > 0 else 0.0),
                "backends": {
                    name: {
                        "mean_probes": io.json_float(
                            sum(r.mean_probes for r in rows)
                            / len(rows)),
                        "worst_p99": io.json_float(
                            max(r.p99 for r in rows)),
                        "worst_amplification": io.json_float(
                            max(r.amplification for r in rows)),
                    }
                    for name, rows in by_backend.items()
                },
            },
        }, out_dir / "BENCH_workload.json")
    return (result.format(), result.to_dict(),
            workload_serving.plan_cells(config))


def _run_closedloop(opts: RunOptions) -> TargetOutput:
    config = (closedloop_serving.full_config() if opts.profile == "full"
              else closedloop_serving.quick_config())
    result = closedloop_serving.run(config,
                                    **opts.engine_kwargs("closedloop"))
    return (result.format(), result.to_dict(),
            closedloop_serving.plan_cells(config))


def _run_cluster(opts: RunOptions) -> TargetOutput:
    """The sharded grid; ``--transport process`` runs it over worker
    processes (bit-identical numbers — the parity contract), and with
    ``--replicas >= 3`` appends the poisoned-replica duel (quorum
    reads + divergence detection vs naive primary reads)."""
    config = (cluster_serving.full_config() if opts.profile == "full"
              else cluster_serving.quick_config())
    config = replace(config, transport=opts.transport,
                     replicas=opts.replicas)
    result = cluster_serving.run(config,
                                 **opts.engine_kwargs("cluster"))
    text, payload = result.format(), result.to_dict()
    if opts.transport == "process" and opts.replicas >= 3:
        duel = cluster_serving.run_poisoned_replica_scenario(
            replicas=opts.replicas)
        text = f"{text}\n\n{duel.format()}"
        payload["replication_duel"] = duel.to_dict()
    return text, payload, cluster_serving.plan_cells(config)


def _run_ablate(opts: RunOptions) -> TargetOutput:
    """The leave-one-out defense-ablation grid: an all-on baseline,
    one cell per removed component, and an all-off floor per
    scenario, ranked by how much victim damage each removal
    re-admits.  ``--components`` restricts which one-off cells run;
    ``--transport process --replicas >= 3`` adds the replication
    layer (quorum + divergence detection) as an ablation axis."""
    config = (ablate.full_config() if opts.profile == "full"
              else ablate.quick_config())
    config = replace(config, transport=opts.transport,
                     replicas=opts.replicas,
                     components=opts.components)
    result = ablate.run(config, **opts.engine_kwargs("ablate"))
    return (result.format(), result.to_dict(),
            ablate.plan_cells(config))


def _format_components() -> str:
    """The ``--list-components`` registry table."""
    from .report import render_table, section
    body = [[spec.name, spec.title, ",".join(spec.scenarios),
             spec.requires(), spec.description]
            for spec in ablate.COMPONENTS]
    table = render_table(
        ["component", "title", "scenarios", "requires",
         "description"], body)
    return f"{section('ablatable defense components')}\n{table}"


def _run_a1(opts: RunOptions) -> TargetOutput:
    rows = ablations.run_bruteforce_equivalence(
        **opts.engine_kwargs("a1-bruteforce"))
    payload = {"rows": [
        {"n_keys": r.n_keys, "domain_size": r.domain_size,
         "same_key": r.same_key,
         "fast_seconds": r.fast_seconds,
         "brute_seconds": r.brute_seconds,
         "speedup": io.json_float(r.speedup)}
        for r in rows]}
    return (ablations.format_bruteforce(rows), payload,
            ablations.plan_bruteforce_cells())


def _run_a2(opts: RunOptions) -> TargetOutput:
    rows = ablations.run_trim_defense(**opts.engine_kwargs("a2-trim"))
    payload = {"rows": [
        {"poisoning_percentage": r.poisoning_percentage,
         "attack_ratio": io.json_float(r.attack_ratio),
         "variant": r.variant,
         "recall": r.recall, "precision": r.precision,
         "residual_ratio": io.json_float(r.residual_ratio)}
        for r in rows]}
    return (ablations.format_trim(rows), payload,
            ablations.plan_trim_cells())


def _run_a3(opts: RunOptions) -> TargetOutput:
    reports = ablations.run_lookup_cost(**opts.engine_kwargs("a3-cost"))
    payload = {"reports": [
        {"structure": r.structure, "mean_cost": r.mean_cost,
         "max_cost": r.max_cost, "n_queries": r.n_queries}
        for r in reports]}
    return (ablations.format_lookup_cost(reports), payload,
            ablations.plan_lookup_cost_cells())


def _run_a4(opts: RunOptions) -> TargetOutput:
    rows = ablations.run_alpha_sweep(**opts.engine_kwargs("a4-alpha"))
    payload = {"rows": [
        {"alpha": r.alpha,
         "rmi_ratio": io.json_float(r.rmi_ratio),
         "max_model_ratio": io.json_float(r.max_model_ratio),
         "exchanges": r.exchanges}
        for r in rows]}
    return (ablations.format_alpha(rows), payload,
            ablations.plan_alpha_cells())


def _run_a5(opts: RunOptions) -> TargetOutput:
    rows = ablations.run_allocation_ablation(
        **opts.engine_kwargs("a5-allocation"))
    payload = {"rows": [
        {"distribution": r.distribution,
         "uniform_ratio": io.json_float(r.uniform_ratio),
         "greedy_ratio": io.json_float(r.greedy_ratio),
         "improvement": io.json_float(r.improvement)}
        for r in rows]}
    return (ablations.format_allocation(rows), payload,
            ablations.plan_allocation_cells())


def _run_a6(opts: RunOptions) -> TargetOutput:
    rows = ablations.run_deletion_ablation(
        **opts.engine_kwargs("a6-deletion"))
    payload = {"rows": [
        {"budget_percentage": r.budget_percentage,
         "insertion_ratio": io.json_float(r.insertion_ratio),
         "deletion_ratio": io.json_float(r.deletion_ratio)}
        for r in rows]}
    return (ablations.format_deletion(rows), payload,
            ablations.plan_deletion_cells())


def _run_a11(opts: RunOptions) -> TargetOutput:
    rows = ablations.run_adversary_comparison(
        **opts.engine_kwargs("a11-adversaries"))
    payload = {"rows": [
        {"budget_percentage": r.budget_percentage,
         "insertion_ratio": io.json_float(r.insertion_ratio),
         "deletion_ratio": io.json_float(r.deletion_ratio),
         "modification_ratio": io.json_float(r.modification_ratio)}
        for r in rows]}
    return (ablations.format_adversaries(rows), payload,
            ablations.plan_adversary_cells())


def _run_a7(opts: RunOptions) -> TargetOutput:
    rows = ablations.run_polynomial_ablation(
        **opts.engine_kwargs("a7-polynomial"))
    payload = {"rows": [
        {"degree": r.degree, "n_parameters": r.n_parameters,
         "multiply_adds": r.multiply_adds,
         "poisoned_ratio": io.json_float(r.poisoned_ratio)}
        for r in rows]}
    return (ablations.format_polynomial(rows), payload,
            ablations.plan_polynomial_cells())


def _run_a8(opts: RunOptions) -> TargetOutput:
    report = ablations.run_blackbox_ablation(
        **opts.engine_kwargs("a8-blackbox"))
    payload = {
        "n_probes": report.n_probes,
        "models_recovered": report.models_recovered,
        "n_models": report.n_models,
        "max_slope_error": io.json_float(report.max_slope_error),
        "whitebox_ratio": io.json_float(report.whitebox_ratio),
        "blackbox_ratio": io.json_float(report.blackbox_ratio),
    }
    return (ablations.format_blackbox(report), payload,
            ablations.plan_blackbox_cells())


def _run_a9(opts: RunOptions) -> TargetOutput:
    report = ablations.run_update_ablation(
        **opts.engine_kwargs("a9-updates"))
    payload = {
        "static_ratio": io.json_float(report.static_ratio),
        "update_ratio": io.json_float(report.update_ratio),
        "retrains_triggered": report.retrains_triggered,
        "clean_lookup_cost": report.clean_lookup_cost,
        "poisoned_lookup_cost": report.poisoned_lookup_cost,
    }
    return (ablations.format_update(report), payload,
            ablations.plan_update_cells())


def _run_a10(opts: RunOptions) -> TargetOutput:
    rows = ablations.run_ridge_ablation(
        **opts.engine_kwargs("a10-ridge"))
    payload = {"rows": [
        {"lam_fraction": r.lam_fraction, "clean_mse": r.clean_mse,
         "poisoned_mse": r.poisoned_mse,
         "poisoned_ratio": io.json_float(r.poisoned_ratio)}
        for r in rows]}
    return (ablations.format_ridge(rows), payload,
            ablations.plan_ridge_cells())


def _plain(render: Callable[[RunOptions], str]) -> Target:
    """Wrap a non-sweep target: formatted text only, no payload."""
    return lambda opts: (render(opts), None, [])


_TARGETS: dict[str, Target] = {
    "fig2": _plain(lambda opts: fig2_compound_effect.run().format()),
    "fig3": _plain(lambda opts: fig3_loss_landscape.run().format()),
    "fig4": _plain(lambda opts: fig4_greedy_showcase.run().format()),
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "workload": _run_workload,
    "closedloop": _run_closedloop,
    "cluster": _run_cluster,
    "ablate": _run_ablate,
    "a1-bruteforce": _run_a1,
    "a2-trim": _run_a2,
    "a3-cost": _run_a3,
    "a4-alpha": _run_a4,
    "a5-allocation": _run_a5,
    "a6-deletion": _run_a6,
    "a7-polynomial": _run_a7,
    "a8-blackbox": _run_a8,
    "a9-updates": _run_a9,
    "a10-ridge": _run_a10,
    "a11-adversaries": _run_a11,
}


def _collect_artifacts(out_dir: Path,
                       plan: list[Any]) -> list[dict[str, Any]]:
    """Manifest of this run's ``.npz`` artifacts.

    Scoped to the plan's cells — the checkpoint directory is shared
    across runs (content addressing keeps stale cells of other grids
    around on purpose), but this run's result must only index its own
    artifacts.  Defensive like the checkpoint store: an unreadable
    archive is skipped rather than fatal.
    """
    store = CheckpointStore(out_dir)
    entries = []
    seen: set[str] = set()
    for cell in plan:
        if cell.digest in seen:
            continue
        seen.add(cell.digest)
        path = store.arrays_path(cell)
        if not path.exists():
            continue
        try:
            names = io.npz_array_names(path)
        except Exception:
            continue
        # as_posix keeps the manifest portable: a result written on
        # Windows must still resolve on POSIX readers.
        entries.append({"file": path.relative_to(out_dir).as_posix(),
                        "arrays": names})
    return entries


def _write_result(target: str, opts: RunOptions,
                  payload: dict[str, Any], plan: list[Any],
                  registry: "observe.MetricsRegistry | None" = None,
                  ) -> None:
    """Emit ``<out>/<target>/result.json`` with the stable schema.

    With ``--instrument``, the registry's profile lands under the
    sibling ``instrument`` key — outside ``result``, which is the
    payload the jobs-parity CI check compares, because the timing
    half of the profile is wall-clock and run-specific.
    """
    out_dir = opts.checkpoint_dir(target)
    out_dir.mkdir(parents=True, exist_ok=True)
    document = {
        "schema": RESULT_SCHEMA,
        "target": target,
        "profile": opts.profile,
        "jobs": opts.jobs,
        "executor": opts.executor,
        "result": payload,
        "artifacts": _collect_artifacts(out_dir, plan),
    }
    if registry is not None:
        document["instrument"] = registry.to_profile()
    # Writer-side contract check: a document this CLI cannot itself
    # re-load through the declared schema never reaches disk.
    validate_result(document)
    io.save_json(document, out_dir / "result.json")


def main(argv: list[str] | None = None) -> int:
    """Parse the target and print its tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce a figure or ablation of the paper.")
    parser.add_argument("target",
                        choices=sorted(_TARGETS) + ["all", "report"],
                        help="which experiment to run; 'report' "
                             "renders SVG figure galleries from an "
                             "existing --out tree instead of running "
                             "anything")
    parser.add_argument("--profile", choices=("quick", "full"),
                        default="quick",
                        help="quick (scaled, default) or full grids")
    parser.add_argument("--quick", action="store_true",
                        help="alias for --profile quick")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="workers for sweep targets "
                             "(default 1; results are identical)")
    parser.add_argument("--executor", choices=sorted(EXECUTORS),
                        default="process",
                        help="pool backend for --jobs > 1: isolated "
                             "processes (default) or threads for the "
                             "GIL-releasing numpy runners; results "
                             "are identical")
    parser.add_argument("--out", type=Path, default=None, metavar="DIR",
                        help="checkpoint cells (and .npz artifacts) "
                             "and write result.json under "
                             "DIR/<target>/")
    parser.add_argument("--resume", action="store_true",
                        help="with --out: reuse completed cells from a "
                             "previous run")
    parser.add_argument("--progress", action="store_true",
                        help="print per-cell progress and an ETA to "
                             "stderr (engine-backed targets)")
    parser.add_argument("--transport", choices=("inproc", "process"),
                        default="inproc",
                        help="cluster target: serve shards in-process "
                             "(default) or as worker processes behind "
                             "the versioned batch protocol (results "
                             "are identical)")
    parser.add_argument("--replicas", type=int, default=1, metavar="K",
                        help="cluster/ablate targets with --transport "
                             "process: worker replicas per shard; >= 3 "
                             "also runs the poisoned-replica duel "
                             "(cluster) or ablates the replication "
                             "layer (ablate)")
    parser.add_argument("--components", default=None, metavar="NAMES",
                        help="ablate target: comma-separated defense "
                             "components to ablate (default: every "
                             "applicable component); see "
                             "--list-components")
    parser.add_argument("--list-components", action="store_true",
                        help="ablate target: print the registry of "
                             "ablatable defense components and exit")
    parser.add_argument("--instrument", action="store_true",
                        help="record counters/stage timings/trace "
                             "events while running and attach the "
                             "profile to result.json under the "
                             "'instrument' key (results themselves "
                             "are unchanged)")
    args = parser.parse_args(argv)
    if args.quick and args.profile == "full":
        parser.error("--quick contradicts --profile full")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.resume and args.out is None:
        parser.error("--resume requires --out")
    if args.replicas < 1:
        parser.error("--replicas must be >= 1")
    if args.replicas > 1 and args.transport != "process":
        parser.error("--replicas > 1 requires --transport process")
    if args.out is not None and args.out.exists() and not args.out.is_dir():
        parser.error(f"--out {args.out} exists and is not a directory")
    if args.list_components and args.target != "ablate":
        parser.error("--list-components only applies to the ablate "
                     "target")
    components = None
    if args.components is not None:
        if args.target != "ablate":
            parser.error("--components only applies to the ablate "
                         "target")
        components = tuple(
            name.strip() for name in args.components.split(",")
            if name.strip())
        if not components:
            parser.error("--components must name at least one "
                         "defense component")
        for name in components:
            if name not in ablate.COMPONENT_NAMES:
                parser.error(
                    f"--components must name defense components in "
                    f"{list(ablate.COMPONENT_NAMES)}, got {name!r}")
    opts = RunOptions(profile=args.profile, jobs=args.jobs, out=args.out,
                      resume=args.resume, executor=args.executor,
                      progress=args.progress, transport=args.transport,
                      replicas=args.replicas, components=components)

    if args.list_components:
        print(_format_components())
        return 0

    if args.target == "report":
        if args.out is None:
            parser.error("report requires --out")
        for path in gallery.render_out_tree(args.out):
            print(path)
        return 0

    targets = sorted(_TARGETS) if args.target == "all" else [args.target]
    for name in targets:
        # One registry per target, so an "all" run profiles each
        # experiment separately instead of blending them.
        if args.instrument:
            registry = observe.MetricsRegistry()
            with observe.installed(registry):
                text, payload, plan = _TARGETS[name](opts)
        else:
            registry = None
            text, payload, plan = _TARGETS[name](opts)
        print(text)
        print()
        if opts.out is not None and payload is not None:
            _write_result(name, opts, payload, plan, registry=registry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
