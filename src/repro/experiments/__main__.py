"""Command-line entry point: ``python -m repro.experiments <target>``.

Targets mirror the paper's figures and the ablations:

    fig2 fig3 fig4 fig5 fig6 fig7 fig8
    a1-bruteforce a2-trim a3-cost a4-alpha a5-allocation
    all

``--profile quick`` (default) runs the scaled-down configurations;
``--profile full`` runs the larger grids recorded in EXPERIMENTS.md.

Runtime flags (engine-backed targets: fig5, fig6, fig8, a6, a11):

``--jobs N``
    Fan the sweep's cells out over N worker processes.  Results are
    bit-identical to ``--jobs 1``.
``--out DIR``
    Checkpoint completed cells under ``DIR/<target>/`` and write the
    aggregated summary to ``DIR/<target>/result.json``.
``--resume``
    With ``--out``, reuse completed cells from a previous (possibly
    interrupted) run instead of recomputing them.

Targets that are not sweeps ignore ``--jobs``/``--resume`` and simply
skip the ``result.json`` payload.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from .. import io
from . import (
    ablations,
    fig2_compound_effect,
    fig3_loss_landscape,
    fig4_greedy_showcase,
    fig6_rmi_synthetic,
    fig7_rmi_realworld,
)
from .regression_sweep import fig5_config, fig8_config, run_sweep

RESULT_SCHEMA = "repro.experiments.result/v1"


@dataclass(frozen=True)
class RunOptions:
    """Parsed runtime flags handed to every target."""

    profile: str = "quick"
    jobs: int = 1
    out: Path | None = None
    resume: bool = False

    def checkpoint_dir(self, target: str) -> Path | None:
        """Per-target checkpoint directory under ``--out`` (if any)."""
        return self.out / target if self.out is not None else None


# Each target returns (formatted text, JSON payload or None).
Target = Callable[[RunOptions], tuple[str, dict[str, Any] | None]]


def _run_fig5(opts: RunOptions) -> tuple[str, dict[str, Any] | None]:
    result = run_sweep(fig5_config(opts.profile), jobs=opts.jobs,
                       checkpoint_dir=opts.checkpoint_dir("fig5"),
                       resume=opts.resume)
    return result.format(), result.to_dict()


def _run_fig8(opts: RunOptions) -> tuple[str, dict[str, Any] | None]:
    result = run_sweep(fig8_config(opts.profile), jobs=opts.jobs,
                       checkpoint_dir=opts.checkpoint_dir("fig8"),
                       resume=opts.resume)
    return result.format(), result.to_dict()


def _run_fig6(opts: RunOptions) -> tuple[str, dict[str, Any] | None]:
    config = (fig6_rmi_synthetic.full_config() if opts.profile == "full"
              else fig6_rmi_synthetic.quick_config())
    result = fig6_rmi_synthetic.run(
        config, jobs=opts.jobs,
        checkpoint_dir=opts.checkpoint_dir("fig6"), resume=opts.resume)
    return result.format(), result.to_dict()


def _run_fig7(opts: RunOptions) -> tuple[str, dict[str, Any] | None]:
    config = (fig7_rmi_realworld.full_config() if opts.profile == "full"
              else fig7_rmi_realworld.quick_config())
    return fig7_rmi_realworld.run(config).format(), None


def _run_a6(opts: RunOptions) -> tuple[str, dict[str, Any] | None]:
    rows = ablations.run_deletion_ablation(
        jobs=opts.jobs, checkpoint_dir=opts.checkpoint_dir("a6-deletion"),
        resume=opts.resume)
    payload = {"rows": [
        {"budget_percentage": r.budget_percentage,
         "insertion_ratio": io.json_float(r.insertion_ratio),
         "deletion_ratio": io.json_float(r.deletion_ratio)}
        for r in rows]}
    return ablations.format_deletion(rows), payload


def _run_a11(opts: RunOptions) -> tuple[str, dict[str, Any] | None]:
    rows = ablations.run_adversary_comparison(
        jobs=opts.jobs,
        checkpoint_dir=opts.checkpoint_dir("a11-adversaries"),
        resume=opts.resume)
    payload = {"rows": [
        {"budget_percentage": r.budget_percentage,
         "insertion_ratio": io.json_float(r.insertion_ratio),
         "deletion_ratio": io.json_float(r.deletion_ratio),
         "modification_ratio": io.json_float(r.modification_ratio)}
        for r in rows]}
    return ablations.format_adversaries(rows), payload


def _plain(render: Callable[[RunOptions], str]) -> Target:
    """Wrap a non-sweep target: formatted text only, no payload."""
    return lambda opts: (render(opts), None)


_TARGETS: dict[str, Target] = {
    "fig2": _plain(lambda opts: fig2_compound_effect.run().format()),
    "fig3": _plain(lambda opts: fig3_loss_landscape.run().format()),
    "fig4": _plain(lambda opts: fig4_greedy_showcase.run().format()),
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "a1-bruteforce": _plain(lambda opts: ablations.format_bruteforce(
        ablations.run_bruteforce_equivalence())),
    "a2-trim": _plain(lambda opts: ablations.format_trim(
        ablations.run_trim_defense())),
    "a3-cost": _plain(lambda opts: ablations.format_lookup_cost(
        ablations.run_lookup_cost())),
    "a4-alpha": _plain(lambda opts: ablations.format_alpha(
        ablations.run_alpha_sweep())),
    "a5-allocation": _plain(lambda opts: ablations.format_allocation(
        ablations.run_allocation_ablation())),
    "a6-deletion": _run_a6,
    "a7-polynomial": _plain(lambda opts: ablations.format_polynomial(
        ablations.run_polynomial_ablation())),
    "a8-blackbox": _plain(lambda opts: ablations.format_blackbox(
        ablations.run_blackbox_ablation())),
    "a9-updates": _plain(lambda opts: ablations.format_update(
        ablations.run_update_ablation())),
    "a10-ridge": _plain(lambda opts: ablations.format_ridge(
        ablations.run_ridge_ablation())),
    "a11-adversaries": _run_a11,
}


def _write_result(target: str, opts: RunOptions,
                  payload: dict[str, Any]) -> None:
    """Emit ``<out>/<target>/result.json`` with the stable schema."""
    out_dir = opts.checkpoint_dir(target)
    out_dir.mkdir(parents=True, exist_ok=True)
    io.save_json({
        "schema": RESULT_SCHEMA,
        "target": target,
        "profile": opts.profile,
        "jobs": opts.jobs,
        "result": payload,
    }, out_dir / "result.json")


def main(argv: list[str] | None = None) -> int:
    """Parse the target and print its tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce a figure or ablation of the paper.")
    parser.add_argument("target",
                        choices=sorted(_TARGETS) + ["all"],
                        help="which experiment to run")
    parser.add_argument("--profile", choices=("quick", "full"),
                        default="quick",
                        help="quick (scaled, default) or full grids")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep targets "
                             "(default 1; results are identical)")
    parser.add_argument("--out", type=Path, default=None, metavar="DIR",
                        help="checkpoint cells and write result.json "
                             "under DIR/<target>/")
    parser.add_argument("--resume", action="store_true",
                        help="with --out: reuse completed cells from a "
                             "previous run")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.resume and args.out is None:
        parser.error("--resume requires --out")
    if args.out is not None and args.out.exists() and not args.out.is_dir():
        parser.error(f"--out {args.out} exists and is not a directory")
    opts = RunOptions(profile=args.profile, jobs=args.jobs, out=args.out,
                      resume=args.resume)

    targets = sorted(_TARGETS) if args.target == "all" else [args.target]
    for name in targets:
        text, payload = _TARGETS[name](opts)
        print(text)
        print()
        if opts.out is not None and payload is not None:
            _write_result(name, opts, payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
