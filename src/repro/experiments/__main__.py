"""Command-line entry point: ``python -m repro.experiments <target>``.

Targets mirror the paper's figures and the ablations:

    fig2 fig3 fig4 fig5 fig6 fig7 fig8
    a1-bruteforce a2-trim a3-cost a4-alpha a5-allocation
    all

``--profile quick`` (default) runs the scaled-down configurations;
``--profile full`` runs the larger grids recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    ablations,
    fig2_compound_effect,
    fig3_loss_landscape,
    fig4_greedy_showcase,
    fig6_rmi_synthetic,
    fig7_rmi_realworld,
)
from .regression_sweep import fig5_config, fig8_config, run_sweep


def _run_fig5(profile: str) -> str:
    return run_sweep(fig5_config(profile)).format()


def _run_fig8(profile: str) -> str:
    return run_sweep(fig8_config(profile)).format()


def _run_fig6(profile: str) -> str:
    config = (fig6_rmi_synthetic.full_config() if profile == "full"
              else fig6_rmi_synthetic.quick_config())
    return fig6_rmi_synthetic.run(config).format()


def _run_fig7(profile: str) -> str:
    config = (fig7_rmi_realworld.full_config() if profile == "full"
              else fig7_rmi_realworld.quick_config())
    return fig7_rmi_realworld.run(config).format()


_TARGETS = {
    "fig2": lambda profile: fig2_compound_effect.run().format(),
    "fig3": lambda profile: fig3_loss_landscape.run().format(),
    "fig4": lambda profile: fig4_greedy_showcase.run().format(),
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "a1-bruteforce": lambda profile: ablations.format_bruteforce(
        ablations.run_bruteforce_equivalence()),
    "a2-trim": lambda profile: ablations.format_trim(
        ablations.run_trim_defense()),
    "a3-cost": lambda profile: ablations.format_lookup_cost(
        ablations.run_lookup_cost()),
    "a4-alpha": lambda profile: ablations.format_alpha(
        ablations.run_alpha_sweep()),
    "a5-allocation": lambda profile: ablations.format_allocation(
        ablations.run_allocation_ablation()),
    "a6-deletion": lambda profile: ablations.format_deletion(
        ablations.run_deletion_ablation()),
    "a7-polynomial": lambda profile: ablations.format_polynomial(
        ablations.run_polynomial_ablation()),
    "a8-blackbox": lambda profile: ablations.format_blackbox(
        ablations.run_blackbox_ablation()),
    "a9-updates": lambda profile: ablations.format_update(
        ablations.run_update_ablation()),
    "a10-ridge": lambda profile: ablations.format_ridge(
        ablations.run_ridge_ablation()),
    "a11-adversaries": lambda profile: ablations.format_adversaries(
        ablations.run_adversary_comparison()),
}


def main(argv: list[str] | None = None) -> int:
    """Parse the target and print its tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce a figure or ablation of the paper.")
    parser.add_argument("target",
                        choices=sorted(_TARGETS) + ["all"],
                        help="which experiment to run")
    parser.add_argument("--profile", choices=("quick", "full"),
                        default="quick",
                        help="quick (scaled, default) or full grids")
    args = parser.parse_args(argv)

    targets = sorted(_TARGETS) if args.target == "all" else [args.target]
    for name in targets:
        print(_TARGETS[name](args.profile))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
