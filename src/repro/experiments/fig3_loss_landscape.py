"""Figure 3: the loss sequence over candidate keys and its derivative.

For the Fig. 2 keyset, evaluate the post-poisoning loss ``L(kp)`` at
*every* unoccupied key and take its discrete first derivative.  The
plot's message — each run of consecutive unoccupied keys forms a
convex piece, so maxima sit at gap endpoints (Theorem 2) — becomes a
checkable property here: the experiment verifies the second difference
is non-negative inside every gap and reports where the optimum lies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cdf_regression import fit_cdf_regression
from ..core.sequences import discrete_derivative, find_gaps
from ..core.single_point import loss_landscape
from ..data.keyset import Domain, KeySet
from ..data.synthetic import uniform_keyset
from .report import render_table, section

__all__ = ["Fig3Config", "Fig3Result", "run", "default_config"]


@dataclass(frozen=True)
class Fig3Config:
    """Same keyset shape as Fig. 2 (n = 10 on a small domain)."""

    n_keys: int = 10
    domain_size: int = 41
    seed: int = 3


@dataclass(frozen=True)
class Fig3Result:
    """The full loss sequence plus structural checks."""

    keyset: KeySet
    candidates: np.ndarray
    losses: np.ndarray
    loss_before: float
    all_gaps_convex: bool
    argmax_is_endpoint: bool

    def format(self) -> str:
        """Loss sequence table with per-gap convexity verdicts."""
        header = section("Fig. 3 - loss landscape L(kp) and convexity")
        best = int(np.argmax(self.losses))
        rows = [[int(c), f"{l:8.4f}"]
                for c, l in zip(self.candidates, self.losses)]
        table = render_table(["candidate kp", "L(kp)"], rows)
        lines = [
            header,
            f"loss before poisoning: {self.loss_before:.4f}",
            f"optimal kp = {int(self.candidates[best])} with "
            f"L = {self.losses[best]:.4f}",
            f"every gap convex: {self.all_gaps_convex}",
            f"optimum at a gap endpoint: {self.argmax_is_endpoint}",
            table,
        ]
        return "\n".join(lines)


def default_config() -> Fig3Config:
    """The paper-scale illustration config."""
    return Fig3Config()


def run(config: Fig3Config | None = None) -> Fig3Result:
    """Evaluate the whole landscape and check Theorem 2's structure."""
    config = config or default_config()
    rng = np.random.default_rng(config.seed)
    keyset = uniform_keyset(config.n_keys,
                            Domain.of_size(config.domain_size), rng)
    candidates, losses = loss_landscape(keyset)
    gaps = find_gaps(keyset)

    all_convex = True
    for lo, hi in zip(gaps.lefts, gaps.rights):
        mask = (candidates >= lo) & (candidates <= hi)
        piece = losses[mask]
        second = discrete_derivative(discrete_derivative(piece))
        if second.size and second.min() < -1e-9:
            all_convex = False
            break

    best_key = int(candidates[np.argmax(losses)])
    endpoints = set(gaps.lefts.tolist()) | set(gaps.rights.tolist())
    return Fig3Result(
        keyset=keyset,
        candidates=candidates,
        losses=losses,
        loss_before=fit_cdf_regression(keyset).mse,
        all_gaps_convex=all_convex,
        argmax_is_endpoint=best_key in endpoints)
