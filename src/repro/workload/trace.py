"""Streaming workload traces: canonical specs + seeded generators.

The paper evaluates poisoning as a static snapshot (poison, rebuild,
measure), but its threat model is inherently *online*: queries,
inserts, deletions, and drip-fed poison arrive interleaved against a
live index.  A :class:`TraceSpec` names one such time-evolving
scenario with canonical JSON scalars — like :class:`repro.runtime.Cell`
it is content-addressable, so a trace can be regenerated bit-for-bit
from its spec in any worker process of any resumed run.

A generated :class:`Trace` is four aligned numpy arrays (base keys,
op kinds, op keys, op aux values).  All randomness flows from
``stable_seed_words`` over the spec — never the salted builtin
``hash`` — which is what makes replay deterministic across processes
(pinned by ``tests/workload/test_trace_properties.py``).

Operation kinds
---------------
``query``   point lookup of a (possibly since-deleted) key
``insert``  organic insert of a fresh in-domain key
``delete``  removal of a stored key
``modify``  delete ``key`` + insert ``aux`` (one budget unit, the
            stealthiest adversary of ablation A11 — here an organic op)
``range``   range scan ``[key, aux]``
``poison``  adversarial insert of a crafted key (Algorithm 1 output)

Poison schedules
----------------
``oneshot`` the whole budget lands as one contiguous block at 25% of
            the trace — the static attack replayed online;
``drip``    evenly interleaved single insertions — the low-and-slow
            attacker a rate limiter would have to catch;
``burst``   ``burst_count`` contiguous bursts spread across the trace.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import asdict, dataclass, replace
from typing import Any, Sequence

import numpy as np

from ..core.greedy import greedy_poison
from ..data.keyset import Domain, KeySet
from ..data.synthetic import uniform_keyset
from ..runtime import stable_seed_words

__all__ = [
    "OP_QUERY", "OP_INSERT", "OP_DELETE", "OP_MODIFY", "OP_RANGE",
    "OP_POISON", "OP_NAMES", "QUERY_MIXES", "POISON_SCHEDULES",
    "TraceSpec", "Trace", "generate_trace",
    "generate_rate_driven_trace",
]

OP_QUERY, OP_INSERT, OP_DELETE, OP_MODIFY, OP_RANGE, OP_POISON = range(6)

OP_NAMES = {
    OP_QUERY: "query",
    OP_INSERT: "insert",
    OP_DELETE: "delete",
    OP_MODIFY: "modify",
    OP_RANGE: "range",
    OP_POISON: "poison",
}

QUERY_MIXES = ("uniform", "zipfian", "hotspot")
POISON_SCHEDULES = ("none", "oneshot", "drip", "burst")

_DIGEST_HEX = 16  # matches Cell's 64-bit content-hash prefix


@dataclass(frozen=True)
class TraceSpec:
    """Canonical description of one streaming scenario.

    Every field is a JSON scalar; :attr:`digest` hashes the canonical
    serialisation, so two specs describe the same workload iff their
    digests match — the property the checkpointed workload sweep and
    the cross-process determinism tests both rely on.
    """

    n_base_keys: int = 1_000
    domain_factor: int = 10          # |domain| = factor * n_base_keys
    n_ops: int = 2_000
    query_mix: str = "uniform"
    zipf_s: float = 1.2              # zipfian popularity exponent
    hotspot_fraction: float = 0.1    # hot range width / domain size
    hotspot_weight: float = 0.9      # share of queries hitting it
    range_fraction: float = 0.0
    range_span_fraction: float = 0.01  # scan width / domain size
    insert_fraction: float = 0.0
    delete_fraction: float = 0.0
    modify_fraction: float = 0.0
    poison_schedule: str = "none"
    poison_percentage: float = 0.0   # budget as % of the base keys
    burst_count: int = 4
    seed: int = 101

    def __post_init__(self) -> None:
        if self.n_base_keys < 1:
            raise ValueError(f"need base keys, got {self.n_base_keys}")
        if self.domain_factor < 2:
            raise ValueError(
                f"domain factor must leave gaps: {self.domain_factor}")
        if self.n_ops < 1:
            raise ValueError(f"need operations, got {self.n_ops}")
        if self.query_mix not in QUERY_MIXES:
            raise ValueError(
                f"query mix must be one of {QUERY_MIXES}, "
                f"got {self.query_mix!r}")
        if self.poison_schedule not in POISON_SCHEDULES:
            raise ValueError(
                f"poison schedule must be one of {POISON_SCHEDULES}, "
                f"got {self.poison_schedule!r}")
        if (self.poison_schedule == "none") != (self.poison_percentage == 0.0):
            raise ValueError(
                "poison_percentage must be 0 exactly when the schedule "
                "is 'none'")
        if not 0.0 <= self.poison_percentage <= 20.0:
            raise ValueError(
                f"poisoning is capped at 20%: {self.poison_percentage}")
        for name in ("range_fraction", "insert_fraction",
                     "delete_fraction", "modify_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 0.5:
                raise ValueError(f"{name} must be in [0, 0.5]: {value}")
        if self.burst_count < 1:
            raise ValueError(f"need at least one burst: {self.burst_count}")
        counts = self.op_counts()
        if counts["query"] < 1:
            raise ValueError(
                "op fractions plus the poison budget leave no queries")
        if counts["delete"] + counts["modify"] > self.n_base_keys // 2:
            raise ValueError(
                "delete + modify stream would consume over half of the "
                "base keys")

    # ------------------------------------------------------------------
    def poison_budget(self) -> int:
        """Crafted keys the adversary may inject."""
        if self.poison_schedule == "none":
            return 0
        return max(1, int(self.n_base_keys * self.poison_percentage
                          / 100.0))

    def op_counts(self) -> dict[str, int]:
        """How many operations of each kind the trace will hold."""
        counts = {
            "insert": int(self.n_ops * self.insert_fraction),
            "delete": int(self.n_ops * self.delete_fraction),
            "modify": int(self.n_ops * self.modify_fraction),
            "range": int(self.n_ops * self.range_fraction),
            "poison": self.poison_budget(),
        }
        counts["query"] = self.n_ops - sum(counts.values())
        return counts

    def domain(self) -> Domain:
        """The key universe of the scenario."""
        return Domain.of_size(self.domain_factor * self.n_base_keys)

    # ------------------------------------------------------------------
    def spec(self) -> dict[str, Any]:
        """JSON-safe canonical description (what the digest covers)."""
        return dict(sorted(asdict(self).items()))

    def canonical_json(self) -> str:
        """Canonical serialisation: sorted keys, no whitespace games."""
        return json.dumps(self.spec(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def digest(self) -> str:
        """Hex content hash naming this scenario."""
        raw = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return raw.hexdigest()[:_DIGEST_HEX]


@dataclass(frozen=True, eq=False)  # array fields: identity equality
class Trace:
    """A generated operation stream, ready to replay.

    ``kinds``/``keys``/``aux`` align element-for-element; ``aux``
    carries the range-scan upper bound or the modify replacement key
    and is zero elsewhere.
    """

    spec: TraceSpec
    base_keys: np.ndarray
    kinds: np.ndarray
    keys: np.ndarray
    aux: np.ndarray

    @property
    def n_ops(self) -> int:
        return int(self.kinds.size)

    def counts(self) -> dict[str, int]:
        """Observed operation counts by kind name."""
        return {OP_NAMES[kind]: int((self.kinds == kind).sum())
                for kind in OP_NAMES}

    def poison_keys(self) -> np.ndarray:
        """The adversarial keys, in injection order."""
        return self.keys[self.kinds == OP_POISON]

    def checksum(self) -> int:
        """CRC-32 over every array — the cross-process fingerprint."""
        crc = 0
        for arr in (self.base_keys, self.kinds, self.keys, self.aux):
            crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
        return crc


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------

def _fresh_keys(rng: np.random.Generator, domain: Domain,
                taken: np.ndarray, count: int) -> np.ndarray:
    """``count`` unique in-domain keys avoiding ``taken`` (rejection)."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    chosen = np.empty(0, dtype=np.int64)
    for _ in range(64):
        draw = rng.integers(domain.lo, domain.hi + 1,
                            size=max(4 * count, 256))
        draw = np.setdiff1d(draw, taken)
        draw = np.setdiff1d(draw, chosen)
        # setdiff1d sorts; permute before taking, or the subset would
        # collapse to the smallest keys of every oversample.
        take = rng.permutation(draw)[:count - chosen.size]
        chosen = np.concatenate([chosen, take])
        if chosen.size >= count:
            # Shuffle once more so stream order is also unbiased.
            return rng.permutation(chosen)
    raise RuntimeError(
        f"could not draw {count} fresh keys from a domain of "
        f"{domain.size} with {taken.size} taken")


def _query_stream(rng: np.random.Generator, spec: TraceSpec,
                  base: KeySet, count: int) -> np.ndarray:
    """``count`` point-query keys drawn per the spec's mix."""
    keys = base.keys
    if spec.query_mix == "uniform":
        return keys[rng.integers(0, keys.size, size=count)]
    if spec.query_mix == "zipfian":
        # Popularity rank is a deterministic permutation of the keys,
        # so skew is uncorrelated with key order (the hotspot mix
        # covers the correlated case).
        ranks = np.arange(1, keys.size + 1, dtype=np.float64)
        weights = ranks ** -spec.zipf_s
        weights /= weights.sum()
        popularity = rng.permutation(keys)
        return popularity[rng.choice(keys.size, size=count, p=weights)]
    # hotspot: a contiguous slice of the key range takes most queries.
    width = max(1, int(spec.hotspot_fraction * base.m))
    lo = int(rng.integers(base.domain.lo, base.domain.hi - width + 2))
    hot = keys[(keys >= lo) & (keys < lo + width)]
    if hot.size == 0:
        hot = keys  # degenerate hot range; fall back to uniform
    hot_mask = rng.random(count) < spec.hotspot_weight
    out = keys[rng.integers(0, keys.size, size=count)]
    out[hot_mask] = hot[rng.integers(0, hot.size,
                                     size=int(hot_mask.sum()))]
    return out


def _poison_positions(spec: TraceSpec, count: int) -> np.ndarray:
    """Trace positions (sorted, unique) for the poison schedule."""
    n = spec.n_ops
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if spec.poison_schedule == "oneshot":
        start = min(n - count, n // 4)
        return np.arange(start, start + count, dtype=np.int64)
    if spec.poison_schedule == "drip":
        return np.floor(np.arange(count) * (n / count)).astype(np.int64)
    # burst: contiguous runs centred at evenly spaced points.
    bursts = min(spec.burst_count, count)
    sizes = np.diff(np.linspace(0, count, bursts + 1).astype(int))
    positions = []
    cursor = 0
    for i, size in enumerate(sizes):
        centre = int((i + 0.5) / bursts * n)
        start = max(cursor, min(centre - size // 2, n - (count - cursor)))
        positions.append(np.arange(start, start + size, dtype=np.int64))
        cursor = start + size
    return np.concatenate(positions)


def generate_trace(spec: TraceSpec) -> Trace:
    """Materialise the operation stream a spec describes.

    Deterministic in the spec alone: the generator stream seeds from
    ``stable_seed_words(seed, digest)``, so every process — worker,
    resumed run, another machine — regenerates identical arrays.
    """
    rng = np.random.default_rng(
        stable_seed_words(spec.seed, spec.digest))
    domain = spec.domain()
    base = uniform_keyset(spec.n_base_keys, domain, rng)
    counts = spec.op_counts()

    # Adversarial stream: Algorithm 1 against the base keyset.  The
    # schedule only decides *when* the crafted keys land.
    poison = np.empty(0, dtype=np.int64)
    if counts["poison"]:
        poison = np.asarray(
            greedy_poison(base, counts["poison"]).poison_keys,
            dtype=np.int64)
        counts = dict(counts)
        counts["poison"] = int(poison.size)  # attack may exhaust early
        counts["query"] = spec.n_ops - sum(
            v for k, v in counts.items() if k != "query")

    # Organic mutation streams, all disjoint by construction.
    victims = rng.choice(base.keys, size=counts["delete"]
                         + counts["modify"], replace=False)
    delete_victims = victims[:counts["delete"]]
    modify_victims = victims[counts["delete"]:]
    taken = np.union1d(base.keys, poison)
    organic = _fresh_keys(rng, domain, taken,
                          counts["insert"] + counts["modify"])
    insert_keys = organic[:counts["insert"]]
    modify_new = organic[counts["insert"]:]

    queries = _query_stream(rng, spec, base, counts["query"])
    range_span = max(1, int(spec.range_span_fraction * domain.size))
    range_lo = base.keys[rng.integers(0, base.keys.size,
                                      size=counts["range"])]
    range_hi = np.minimum(range_lo + range_span, domain.hi)

    # Interleave: poison occupies its scheduled slots; everything else
    # fills the remaining slots in one global shuffle.
    kinds = np.full(spec.n_ops, OP_QUERY, dtype=np.int8)
    keys = np.zeros(spec.n_ops, dtype=np.int64)
    aux = np.zeros(spec.n_ops, dtype=np.int64)

    poison_at = _poison_positions(spec, int(poison.size))
    kinds[poison_at] = OP_POISON
    keys[poison_at] = poison

    other_kinds = np.concatenate([
        np.full(counts["query"], OP_QUERY, dtype=np.int8),
        np.full(counts["insert"], OP_INSERT, dtype=np.int8),
        np.full(counts["delete"], OP_DELETE, dtype=np.int8),
        np.full(counts["modify"], OP_MODIFY, dtype=np.int8),
        np.full(counts["range"], OP_RANGE, dtype=np.int8),
    ])
    other_keys = np.concatenate([queries, insert_keys, delete_victims,
                                 modify_victims, range_lo])
    other_aux = np.concatenate([
        np.zeros(counts["query"] + counts["insert"] + counts["delete"],
                 dtype=np.int64),
        modify_new, range_hi])
    order = rng.permutation(other_kinds.size)

    slots = np.setdiff1d(np.arange(spec.n_ops, dtype=np.int64),
                         poison_at)
    kinds[slots] = other_kinds[order]
    keys[slots] = other_keys[order]
    aux[slots] = other_aux[order]

    for arr in (kinds, keys, aux):
        arr.setflags(write=False)
    return Trace(spec=spec, base_keys=base.keys, kinds=kinds, keys=keys,
                 aux=aux)


def generate_rate_driven_trace(spec: TraceSpec,
                               tick_sizes: Sequence[int]) -> Trace:
    """Materialise a spec whose op count an arrival process dictates.

    ``tick_sizes`` — typically
    :meth:`repro.workload.closedloop.ArrivalModel.tick_sizes` output —
    replaces the spec's nominal ``n_ops`` with its sum; every other
    field (mix, fractions, schedule, seed) carries over unchanged.
    The returned trace is the canonical stream of the *resized* spec:
    two runs with the same spec + arrival counts regenerate
    bit-identical arrays.  Note the digest names only that resized
    spec, not the arrival shape — two arrival processes with equal
    totals yield the same stream, and it is the per-tick boundaries
    that differ, so feed the same ``tick_sizes`` to the simulator
    (and keep the arrival parameters in any cell identity, as the
    ``closedloop`` grid does).
    """
    sizes = np.asarray(tick_sizes, dtype=np.int64)
    if sizes.size == 0 or (sizes < 0).any():
        raise ValueError(
            "tick_sizes must be a non-empty sequence of non-negative "
            f"counts: {tick_sizes!r}")
    total = int(sizes.sum())
    if total < 1:
        raise ValueError("arrival process produced an empty stream")
    return generate_trace(replace(spec, n_ops=total))
